//! Workspace umbrella for top-level examples and integration tests.
