//! A research group sharing a paper library — the scenario PlanetP's
//! introduction motivates ("communities wishing to share large sets of
//! text documents such as scientific publications").
//!
//! A synthetic topical collection is distributed across group members
//! by the paper's Weibull model; members then run ranked TFxIPF
//! queries and we report how retrieval quality compares to a
//! centralized TFxIDF oracle and how few peers each query touched.
//!
//! ```sh
//! cargo run --release --example research_library
//! ```

use planetp::{Community, PublishOptions};
use planetp_corpus::{partition_docs, Collection, CollectionSpec, Partition};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = CollectionSpec {
        name: "group-library".into(),
        num_docs: 600,
        num_topics: 15,
        background_vocab: 5000,
        topic_vocab: 200,
        mean_doc_len: 70,
        topic_fraction: 0.35,
        secondary_leak: 0.08,
        num_queries: 8,
        query_terms: (2, 4),
        zipf_exponent: 1.0,
        seed: 2026,
    };
    let collection = Collection::generate(spec);

    let member_names: Vec<String> = (0..25).map(|i| format!("member-{i:02}")).collect();
    let mut community = Community::new();
    let handles: Vec<_> = member_names.iter().map(|n| community.add_peer(n)).collect();

    // Weibull partition: a few prolific members share most documents.
    let assignment = partition_docs(collection.docs.len(), handles.len(), Partition::paper(), 7);
    for (doc, &peer) in collection.docs.iter().zip(&assignment) {
        let xml = format!("<paper>{}</paper>", doc.text());
        community.publish(handles[peer], &xml, PublishOptions::default())?;
    }
    let loads: Vec<usize> = handles.iter().map(|&h| community.store(h).len()).collect();
    println!(
        "library of {} papers over {} members (max share {}, min {})",
        collection.docs.len(),
        handles.len(),
        loads.iter().max().unwrap(),
        loads.iter().min().unwrap()
    );

    for (qi, q) in collection.queries.iter().take(5).enumerate() {
        let raw = q.terms.join(" ");
        let hits = community.search_ranked(handles[0], &raw, 10)?;
        let relevant_found = hits
            .results
            .iter()
            .filter(|h| {
                // Check against the generator's relevance judgments.
                q.relevant.iter().any(|&d| {
                    collection.docs[d].terms.first() == planetp_index_first_term(&h.xml).as_ref()
                })
            })
            .count();
        println!(
            "query {qi}: {:?} -> {} results from {} peers contacted ({} look relevant)",
            &q.terms,
            hits.results.len(),
            hits.peers_contacted,
            relevant_found,
        );
        for h in hits.results.iter().take(3) {
            println!("    {:.3}  {} (doc {})", h.score, h.peer, h.doc);
        }
    }
    Ok(())
}

/// First term of a published paper (cheap identity proxy for the demo).
fn planetp_index_first_term(xml: &str) -> Option<String> {
    let inner = xml.strip_prefix("<paper>")?.strip_suffix("</paper>")?;
    inner.split_whitespace().next().map(str::to_string)
}
