//! A news-wire community: fresh stories must be findable *seconds*
//! after publication, long before a new Bloom filter could gossip
//! around. Publishers push each story's hottest terms to the
//! information brokerage (§4) with a short discard time, and
//! subscribers use persistent queries (§5.1) for push-style delivery.
//!
//! ```sh
//! cargo run --example news_wire
//! ```

use planetp::{Community, Notification, PublishOptions};
use std::sync::{Arc, Mutex};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut community = Community::new();
    let agency = community.add_peer("wire-agency");
    let blogger = community.add_peer("blogger");
    let _readers: Vec<_> = (0..6)
        .map(|i| community.add_peer(&format!("reader-{i}")))
        .collect();
    let desk = community.add_peer("news-desk");

    // The news desk subscribes to anything about "volcano".
    let inbox: Arc<Mutex<Vec<String>>> = Arc::default();
    let sink = Arc::clone(&inbox);
    community.register_persistent_query(desk, "volcano eruption", move |n| {
        if let Notification::Snippet { publisher, xml } = n {
            sink.lock().unwrap().push(format!("[{publisher}] {xml}"));
        }
    });

    // Breaking story: dual-published — indexed locally (Bloom path) and
    // hottest 10% of terms to the brokers (fresh path).
    community.publish(
        agency,
        "<story><title>Volcano eruption on remote island</title>
          <body>eruption eruption volcano ash cloud disrupts flights</body></story>",
        PublishOptions {
            broker_hot_terms: Some(0.10),
        },
    )?;
    community.publish(
        blogger,
        "<post><title>Gardening notes</title><body>tomatoes and basil</body></post>",
        PublishOptions {
            broker_hot_terms: Some(0.10),
        },
    )?;

    // Immediately findable through the brokerage.
    let hits = community.search_exhaustive(desk, "volcano eruption")?;
    println!(
        "t+0s: exhaustive search found {} indexed doc(s) and {} fresh snippet(s)",
        hits.results.len(),
        hits.snippets.len()
    );
    println!("news desk inbox ({} pushed):", inbox.lock().unwrap().len());
    for line in inbox.lock().unwrap().iter() {
        let shown: String = line.chars().take(72).collect();
        println!("  {shown}...");
    }

    // Eleven minutes later the snippet has expired; the Bloom-filter
    // path (by now gossiped everywhere) still finds the story.
    community.advance_time(11 * 60 * 1000);
    let hits = community.search_exhaustive(desk, "volcano eruption")?;
    println!(
        "t+11min: {} indexed doc(s), {} snippet(s) (snippets expired, index remains)",
        hits.results.len(),
        hits.snippets.len()
    );
    Ok(())
}
