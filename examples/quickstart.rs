//! Quickstart: a three-peer community, publishing and both kinds of
//! search.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use planetp::{Community, PublishOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut community = Community::new();
    let alice = community.add_peer("alice");
    let bob = community.add_peer("bob");
    let carol = community.add_peer("carol");

    // Each peer publishes XML documents into its local data store;
    // PlanetP indexes the text and (conceptually) gossips a Bloom
    // filter summary to everyone.
    community.publish(
        alice,
        r#"<paper year="1987">
             <title>Epidemic algorithms for replicated database maintenance</title>
             <abstract>Randomized gossip: anti-entropy and rumor mongering
             spread updates reliably with modest traffic.</abstract>
           </paper>"#,
        PublishOptions::default(),
    )?;
    community.publish(
        bob,
        r#"<paper year="1970">
             <title>Space/time trade-offs in hash coding with allowable errors</title>
             <abstract>Bloom filters answer membership queries compactly,
             with false positives but never false negatives.</abstract>
           </paper>"#,
        PublishOptions::default(),
    )?;
    community.publish(
        carol,
        r#"<recipe><title>Sourdough</title>
           <body>flour water salt patience</body></recipe>"#,
        PublishOptions::default(),
    )?;

    // Exhaustive search: a conjunction of keys, answered by every peer
    // whose Bloom filter may match.
    let hits = community.search_exhaustive(carol, "gossip updates")?;
    println!(
        "exhaustive 'gossip updates' -> {} hit(s)",
        hits.results.len()
    );
    for h in &hits.results {
        println!("  [{}] doc {}", h.peer, h.doc);
    }

    // Ranked search: TFxIPF, the distributed approximation of TFxIDF.
    let hits = community.search_ranked(carol, "bloom filter membership", 5)?;
    println!(
        "ranked 'bloom filter membership' -> {} hit(s), {} peer(s) contacted",
        hits.results.len(),
        hits.peers_contacted
    );
    for h in &hits.results {
        println!("  {:.3}  [{}] doc {}", h.score, h.peer, h.doc);
    }

    // Persistent queries: get called back when matching content appears.
    community.register_persistent_query(alice, "sourdough", |n| {
        println!("alice's persistent query fired: {n:?}");
    });
    community.publish(
        carol,
        "<recipe><title>Sourdough II</title><body>more sourdough notes</body></recipe>",
        PublishOptions::default(),
    )?;
    Ok(())
}
