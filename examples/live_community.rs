//! A live PlanetP community over real TCP sockets: six peers gossiping
//! on localhost, then searching each other's stores. Gossip intervals
//! are shrunk from the paper's 30 s to 50 ms so convergence is
//! immediate to watch.
//!
//! ```sh
//! cargo run --example live_community
//! ```

use planetp::live::{LiveConfig, LiveNode};
use planetp_gossip::GossipConfig;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = |seed| LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: 50,
            max_interval_ms: 150,
            slowdown_ms: 25,
            ..GossipConfig::default()
        },
        io_timeout: Duration::from_secs(2),
        seed,
        ..LiveConfig::default()
    };
    let founder = LiveNode::start(0, config(1), None)?;
    println!("founder listening on {}", founder.addr());
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..6 {
        nodes.push(LiveNode::start(
            id,
            config(1 + u64::from(id)),
            Some(bootstrap.clone()),
        )?);
    }

    wait(
        || nodes.iter().all(|n| n.directory_size() == 6),
        "membership",
    );
    println!("all 6 directories complete");

    nodes[2].publish(
        "<doc><title>Chord</title><body>consistent hashing distributed lookup</body></doc>",
    )?;
    nodes[4].publish(
        "<doc><title>PlanetP</title><body>gossiped bloom filters rank peers for content search</body></doc>",
    )?;
    nodes[5].publish("<doc><title>Picnic plans</title><body>sandwiches lemonade</body></doc>")?;

    wait(
        || {
            let d = nodes[0].directory_digest();
            nodes.iter().all(|n| n.directory_digest() == d)
        },
        "filter convergence",
    );
    println!("bloom filters converged everywhere");

    let result = nodes[1].search_ranked("content search with bloom filters", 5)?;
    println!(
        "node 1 ranked search -> {} hit(s), coverage {:.0}%:",
        result.hits.len(),
        result.coverage.coverage_fraction() * 100.0
    );
    for h in &result.hits {
        println!("  {:.3} peer {} doc {}", h.score, h.peer, h.doc);
    }
    let hits = nodes[3].search_exhaustive("consistent hashing")?.hits;
    println!(
        "node 3 exhaustive search -> {} hit(s) (owner {})",
        hits.len(),
        hits[0].peer
    );
    Ok(())
}

fn wait(mut cond: impl FnMut() -> bool, what: &str) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    println!("{what} reached in {:.1}s", start.elapsed().as_secs_f64());
}
