//! PFS, the personal semantic file system of §6: query-named
//! directories over a community's shared files.
//!
//! ```sh
//! cargo run --example pfs_demo
//! ```

use planetp::Community;
use planetp_pfs::{PfsNode, SharedCommunity};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let community: SharedCommunity = Arc::new(parking_lot_mutex(Community::new()));
    let mut alice = PfsNode::new(Arc::clone(&community), "alice");
    let mut bob = PfsNode::new(Arc::clone(&community), "bob");
    let mut carol = PfsNode::new(Arc::clone(&community), "carol");

    bob.publish_file(
        "papers/demers87.txt",
        "epidemic algorithms for replicated database maintenance gossip anti-entropy",
    )?;
    carol.publish_file(
        "papers/bloom70.txt",
        "space time trade-offs in hash coding with allowable errors bloom filter",
    )?;
    carol.publish_file("misc/shopping.txt", "milk eggs flour")?;

    // Alice names a directory by a query; PFS populates it with links
    // to every matching shared file, community-wide.
    alice.make_directory("gossip epidemic")?;
    alice.make_directory("bloom filter")?;

    for dir in ["gossip epidemic", "bloom filter"] {
        let listing = alice.open_directory(dir).expect("directory exists");
        println!("/{dir}/ ({} file(s))", listing.len());
        for link in listing.entries.values() {
            println!("  {} -> {} (owner {})", link.name, link.url, link.owner);
        }
    }

    // New matching files appear automatically (persistent queries).
    bob.publish_file(
        "papers/karp00.txt",
        "randomized rumor spreading gossip push pull epidemic",
    )?;
    let listing = alice.open_directory("gossip epidemic").expect("exists");
    println!(
        "/gossip epidemic/ after bob shares more: {} file(s)",
        listing.len()
    );

    // Links resolve at the owner's file server.
    let link = listing.entries.values().next().unwrap();
    let owner_fs = if link.owner == "bob" {
        bob.file_server()
    } else {
        carol.file_server()
    };
    let content = owner_fs.get_url(&link.url).unwrap();
    println!("GET {} -> {} bytes", link.url, content.len());
    Ok(())
}

fn parking_lot_mutex(c: Community) -> parking_lot::Mutex<Community> {
    parking_lot::Mutex::new(c)
}
