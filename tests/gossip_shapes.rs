//! Scaled-down versions of the paper's gossiping experiments, asserting
//! the qualitative *shapes* the paper reports. The bench binaries run
//! the full-size sweeps; these tests keep the shapes from regressing.

use planetp_obs::names;
use planetp_simnet::experiments::{
    dynamic_community, dynamic_scenarios, join_storm, poisson_join_interference, propagation,
    DynamicConfig, Scenario,
};
use planetp_simnet::{LinkClass, SimConfig, Simulator};

#[test]
fn fig2_shape_planetp_beats_anti_entropy_only() {
    let scenarios = Scenario::fig2_all();
    let lan = propagation(scenarios[0], 80, 21, 3600);
    let lan_ae = propagation(scenarios[1], 80, 21, 3600);
    assert!(lan.time_s.is_some(), "LAN did not converge");
    assert!(lan_ae.time_s.is_some(), "LAN-AE did not converge");
    // The paper: PlanetP outperforms anti-entropy-only on both time and
    // volume, the volume gap being dramatic (summary size ~ community
    // size).
    assert!(
        lan_ae.total_bytes as f64 > lan.total_bytes as f64 * 3.0,
        "AE-only volume {} not >> PlanetP {}",
        lan_ae.total_bytes,
        lan.total_bytes
    );
    assert!(
        lan_ae.time_s.unwrap() > lan.time_s.unwrap() * 0.9,
        "AE-only should not be meaningfully faster"
    );
}

#[test]
fn fig2_shape_interval_trades_time_for_bandwidth() {
    let all = Scenario::fig2_all();
    let dsl10 = propagation(all[2], 60, 5, 3600);
    let dsl60 = propagation(all[4], 60, 5, 3600 * 2);
    let (t10, t60) = (dsl10.time_s.unwrap(), dsl60.time_s.unwrap());
    assert!(
        t60 > t10 * 2.0,
        "6x interval should slow propagation substantially: {t10} vs {t60}"
    );
    // Slower gossip also means lower average bandwidth.
    assert!(dsl60.per_peer_bw_bps < dsl10.per_peer_bw_bps);
}

#[test]
fn fig2_shape_time_grows_sublinearly() {
    let lan = Scenario::fig2_all()[0];
    let small = propagation(lan, 40, 9, 3600).time_s.unwrap();
    let large = propagation(lan, 320, 9, 3600).time_s.unwrap();
    assert!(
        large < small * 3.0,
        "8x community size cost {small}s -> {large}s; expected ~log growth"
    );
}

/// Convergence-bound regression at N=200, asserted entirely through the
/// unified [`planetp_obs::MetricsSnapshot`] rather than simulator
/// internals — the same schema `planetp stats` serves for live nodes.
///
/// The paper's claim (§7.2, Fig 2): rumor propagation completes in
/// O(log N) gossip rounds. We grant a generous constant — 6 × log2(N)
/// base intervals — so the bound catches regressions to linear-time
/// spreading without flaking on scheduling noise.
#[test]
fn n200_propagation_within_log_round_envelope() {
    const N: usize = 200;
    let config = SimConfig::default();
    let interval_ms = config.gossip.base_interval_ms;
    let envelope_ms = (6.0 * (N as f64).log2() * interval_ms as f64).ceil() as u64;

    let mut sim = Simulator::new(config);
    sim.add_stable_community(&[LinkClass::Lan45M; N], 3000);
    let rumor = sim.local_update(0, 3000);
    sim.track(rumor);
    sim.run_until(envelope_ms);

    let snap = sim.snapshot();
    assert_eq!(
        snap.counter(names::SIM_RUMORS_CONVERGED),
        1,
        "rumor did not reach all {N} peers within {envelope_ms} ms \
         ({} of {N} know it)",
        snap.counter(names::SIM_TRACKED_KNOWN)
    );
    // Every peer learned it exactly once (the origin counts too).
    assert_eq!(snap.counter(names::SIM_TRACKED_KNOWN), N as u64);
    // The recorded latency itself sits inside the envelope.
    let conv = snap
        .histogram(names::SIM_CONVERGENCE_MS)
        .expect("registered");
    assert_eq!(conv.count, 1);
    assert!(
        conv.sum <= envelope_ms,
        "convergence took {} ms, envelope is {envelope_ms} ms",
        conv.sum
    );
    // The engines' own counters rode along in the same snapshot: rounds
    // ran community-wide, and propagation cost real simulated bytes.
    assert!(snap.counter(names::GOSSIP_ROUNDS) >= N as u64);
    assert!(snap.counter(names::NET_BYTES_OUT) > 0);
    assert!(
        snap.counter(names::GOSSIP_LEARNED_PUSH)
            + snap.counter(names::GOSSIP_LEARNED_PARTIAL_AE)
            + snap.counter(names::GOSSIP_LEARNED_AE)
            >= (N - 1) as u64,
        "fewer rumor learns than peers: {snap:#?}"
    );
}

#[test]
fn fig3_shape_join_storm_converges_and_costs_bandwidth() {
    let lan = Scenario::fig2_all()[0];
    let r = join_storm(lan, 60, 15, 31, 3600);
    assert!(r.time_s.is_some(), "join storm never converged");
    // Joins are bandwidth-intensive: every joiner downloads the full
    // directory (60 peers x 16 KB), and 15 new filters spread to all.
    let min_expected = 15 * 60 * 16_000 / 4;
    assert!(
        r.total_bytes as usize > min_expected,
        "volume {} implausibly small for a join storm",
        r.total_bytes
    );
}

#[test]
fn fig4a_shape_partial_ae_tightens_the_tail() {
    let with = poisson_join_interference(80, 12, 30.0, true, 77, 2400);
    let without = poisson_join_interference(80, 12, 30.0, false, 77, 2400);
    let p90 = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        if v.is_empty() {
            return f64::INFINITY;
        }
        v[((0.9 * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1]
    };
    let (p_with, p_without) = (p90(with.latencies_s), p90(without.latencies_s));
    assert!(
        p_with <= p_without * 1.25,
        "partial AE p90 {p_with}s should not exceed no-partial-AE {p_without}s"
    );
    assert!(with.unconverged == 0, "events lost with partial AE");
}

#[test]
fn fig4b_shape_dynamic_community_mostly_converges() {
    let cfg = DynamicConfig {
        total_members: 60,
        duration_s: 3600,
        tail_s: 1500,
        mean_online_s: 900.0,
        mean_offline_s: 2100.0,
        ..DynamicConfig::default()
    };
    let r = dynamic_community(dynamic_scenarios()[0], cfg, 13);
    assert!(!r.events.is_empty());
    let converged = r.events.iter().filter(|e| e.latency_s.is_some()).count();
    assert!(
        converged * 10 >= r.events.len() * 6,
        "only {converged}/{} events converged",
        r.events.len()
    );
    assert!(r.bandwidth.total() > 0);
}
