//! End-to-end pipeline through the public API: generate a synthetic
//! collection, publish it as XML documents into a community, and check
//! that distributed TFxIPF retrieval through `Community::search_ranked`
//! finds relevant documents while contacting few peers.

use planetp::{Community, PublishOptions};
use planetp_corpus::{partition_docs, Collection, CollectionSpec, Partition};

fn small_collection() -> Collection {
    Collection::generate(CollectionSpec {
        name: "pipeline".into(),
        num_docs: 400,
        num_topics: 10,
        background_vocab: 3000,
        topic_vocab: 150,
        mean_doc_len: 50,
        topic_fraction: 0.4,
        secondary_leak: 0.08,
        num_queries: 10,
        query_terms: (2, 3),
        zipf_exponent: 1.0,
        seed: 77,
    })
}

#[test]
fn publish_and_rank_through_public_api() {
    let collection = small_collection();
    let n_peers = 20;
    let mut community = Community::new();
    let handles: Vec<_> = (0..n_peers)
        .map(|i| community.add_peer(&format!("peer-{i}")))
        .collect();
    let assignment = partition_docs(collection.docs.len(), n_peers, Partition::paper(), 3);

    // Track where each generated document landed so relevance judgments
    // can be checked. Documents are published as XML; the community
    // analyzer tokenizes/stems them, and the generator's terms survive
    // analysis unchanged (lowercase alphanumeric pseudo-words).
    let mut placed: Vec<(usize, u64)> = Vec::new();
    for (doc, &peer) in collection.docs.iter().zip(&assignment) {
        let xml = format!("<d>{}</d>", doc.text());
        let id = community
            .publish(handles[peer], &xml, PublishOptions::default())
            .expect("publish");
        placed.push((peer, id));
    }

    let mut total_recall = 0.0;
    let mut queries = 0;
    let mut total_contacted = 0usize;
    for q in &collection.queries {
        if q.relevant.is_empty() {
            continue;
        }
        queries += 1;
        let raw = q.terms.join(" ");
        let hits = community
            .search_ranked(handles[0], &raw, 20)
            .expect("search");
        total_contacted += hits.peers_contacted;
        let relevant: std::collections::HashSet<(usize, u64)> =
            q.relevant.iter().map(|&d| placed[d]).collect();
        let found = hits
            .results
            .iter()
            .filter(|h| {
                let peer_idx: usize = h.peer.strip_prefix("peer-").unwrap().parse().unwrap();
                relevant.contains(&(peer_idx, h.doc))
            })
            .count();
        total_recall += found as f64 / relevant.len().min(20) as f64;
    }
    assert!(queries >= 8, "most queries must have relevance judgments");
    let recall = total_recall / queries as f64;
    assert!(recall > 0.5, "end-to-end recall too low: {recall:.3}");
    let avg_contacted = total_contacted as f64 / queries as f64;
    assert!(
        avg_contacted < n_peers as f64 * 0.8,
        "adaptive stopping not effective: {avg_contacted:.1}/{n_peers}"
    );
}

#[test]
fn offline_owner_documents_resurface_on_rejoin() {
    let collection = small_collection();
    let mut community = Community::new();
    let a = community.add_peer("a");
    let b = community.add_peer("b");
    // Peer b owns a unique document.
    let unique = &collection.docs[0];
    community
        .publish(
            b,
            &format!("<d>{}</d>", unique.text()),
            PublishOptions::default(),
        )
        .unwrap();
    let term = unique.terms[0].clone();

    let hits = community.search_exhaustive(a, &term).unwrap();
    assert!(!hits.results.is_empty());

    community.set_offline(b);
    let hits = community.search_exhaustive(a, &term).unwrap();
    assert!(hits.results.is_empty());
    assert_eq!(hits.possibly_on_offline_peers, vec!["b"]);

    community.set_online(b);
    let hits = community.search_exhaustive(a, &term).unwrap();
    assert!(!hits.results.is_empty(), "rejoin restores availability");
}
