//! Rumors: the unit of news spread by gossiping.
//!
//! Directory-changing events — "the joining of a new member, the rejoin
//! of a previously off-line member, and a change in a Bloom filter" (§3)
//! — each become a rumor. A rumor is news that some *subject* peer has
//! reached a given `(status_version, bloom_version)` pair; a peer
//! "already knows" a rumor if its directory entry for the subject is at
//! least that new, which makes rumor identity insensitive to the path
//! the news took.

use crate::PeerId;
use serde::{Deserialize, Serialize};

/// What a peer's shared state ("Bloom filter") looks like to the gossip
/// layer. The simulator uses [`SizedPayload`] stubs carrying only a wire
/// size; the live runtime uses real compressed Bloom filters.
pub trait Payload: Clone + std::fmt::Debug + PartialEq {
    /// Serialized size in bytes when carried in a rumor or an
    /// anti-entropy reply.
    fn wire_bytes(&self) -> usize;
}

/// A payload stub that models only its wire size — what the paper's own
/// simulator does via the Table 2 constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizedPayload {
    /// Bytes this payload occupies on the wire (u32 keeps directory
    /// entries small — simulations hold N² of these).
    pub bytes: u32,
}

impl Payload for SizedPayload {
    fn wire_bytes(&self) -> usize {
        self.bytes as usize
    }
}

/// Globally unique rumor identity: the subject peer plus the version
/// pair the news announces. 16 bytes on the wire ("in order of tens of
/// bytes" for the m piggybacked ids, §3).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct RumorId {
    /// The peer the news is about.
    pub subject: PeerId,
    /// Subject's membership incarnation (bumped on join/rejoin).
    pub status_version: u64,
    /// Subject's Bloom filter version (bumped on index change).
    pub bloom_version: u32,
}

/// Why the rumor exists. Only affects wire size accounting and
/// diagnostics; staleness is decided by the version pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RumorKind {
    /// A brand-new member joined.
    Join,
    /// A previously known member came back online (no new content).
    Rejoin,
    /// A member's Bloom filter changed.
    BloomUpdate,
}

/// A rumor in flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rumor<P: Payload> {
    /// Identity (subject + versions).
    pub id: RumorId,
    /// Event class.
    pub kind: RumorKind,
    /// The subject's current Bloom filter, when the event carries content
    /// (Join and BloomUpdate do; Rejoin does not).
    pub payload: Option<P>,
}

impl<P: Payload> Rumor<P> {
    /// Bytes this rumor occupies inside a message: a 48-byte peer
    /// summary (Table 2) plus the payload, if any.
    pub fn wire_bytes(&self) -> usize {
        48 + self.payload.as_ref().map_or(0, Payload::wire_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rumor(bytes: Option<usize>) -> Rumor<SizedPayload> {
        Rumor {
            id: RumorId { subject: 7, status_version: 1, bloom_version: 3 },
            kind: RumorKind::BloomUpdate,
            payload: bytes.map(|b| SizedPayload { bytes: b as u32 }),
        }
    }

    #[test]
    fn wire_bytes_includes_peer_summary() {
        assert_eq!(rumor(None).wire_bytes(), 48);
        assert_eq!(rumor(Some(3000)).wire_bytes(), 3048);
    }

    #[test]
    fn rumor_ids_order_by_subject_then_versions() {
        let a = RumorId { subject: 1, status_version: 1, bloom_version: 0 };
        let b = RumorId { subject: 1, status_version: 2, bloom_version: 0 };
        let c = RumorId { subject: 2, status_version: 0, bloom_version: 0 };
        assert!(a < b && b < c);
    }
}
