//! Rumors: the unit of news spread by gossiping.
//!
//! Directory-changing events — "the joining of a new member, the rejoin
//! of a previously off-line member, and a change in a Bloom filter" (§3)
//! — each become a rumor. A rumor is news that some *subject* peer has
//! reached a given `(status_version, bloom_version)` pair; a peer
//! "already knows" a rumor if its directory entry for the subject is at
//! least that new, which makes rumor identity insensitive to the path
//! the news took.
//!
//! # Delta payloads
//!
//! A bloom-update rumor can carry either the subject's **full** payload
//! or a **delta chain**: consecutive single-step diffs taking
//! `base_bloom_version` to the rumor's `bloom_version`, valid only
//! within one `status_version` ("PlanetP sends diffs of the Bloom
//! filters to save bandwidth", §7.2). A receiver whose directory entry
//! sits anywhere inside the chain's range applies the matching suffix;
//! a receiver whose base is missing (or whose apply fails) pulls the
//! full payload via the existing `Pull`/`PullReply` machinery instead —
//! a broken chain can delay news, never corrupt it.

use crate::messages::{PEER_SUMMARY_BYTES, RUMOR_ID_BYTES};
use crate::PeerId;
use serde::{de::DeserializeOwned, Deserialize, Serialize};

/// Fixed wire overhead of a delta chain: the base version plus the step
/// count (the rumor id itself is counted separately).
pub const DELTA_CHAIN_HEADER_BYTES: usize = 8;

/// What a peer's shared state ("Bloom filter") looks like to the gossip
/// layer. The simulator uses [`SizedPayload`] stubs carrying only wire
/// sizes (the paper's own Table 2 methodology); the live runtime uses
/// real Golomb-compressed Bloom filters whose bloom updates travel as
/// `BloomDiff` deltas, with the full compressed filter as the fallback
/// form.
pub trait Payload: Clone + std::fmt::Debug + PartialEq {
    /// Compact wire form of the change between two *consecutive*
    /// `bloom_version`s of this payload.
    type Delta: Clone + std::fmt::Debug + PartialEq + Serialize + DeserializeOwned;

    /// Serialized size in bytes when carried in a rumor or an
    /// anti-entropy reply.
    fn wire_bytes(&self) -> usize;

    /// Serialized size of one delta step.
    fn delta_wire_bytes(delta: &Self::Delta) -> usize;

    /// Apply a single delta step, producing the next version. `None`
    /// means the step cannot be applied (parameter mismatch, corrupt
    /// payload); the caller must fall back to pulling the full payload.
    fn apply_delta(&self, delta: &Self::Delta) -> Option<Self>;
}

/// A payload stub that models only its wire size — what the paper's own
/// simulator does via the Table 2 constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizedPayload {
    /// Bytes this payload occupies on the wire (u32 keeps directory
    /// entries small — simulations hold N² of these).
    pub bytes: u32,
}

/// Wire-size stub for one delta step between consecutive versions of a
/// [`SizedPayload`] (Table 2: a 1000-key diff ≈ 3000 bytes while the
/// full 20k-key filter ≈ 16000 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizedDelta {
    /// Bytes the delta occupies on the wire.
    pub bytes: u32,
    /// Bytes of the *resulting* full payload (what applying the delta
    /// yields), so the directory's stored size stays faithful.
    pub full_bytes: u32,
}

impl Payload for SizedPayload {
    type Delta = SizedDelta;

    fn wire_bytes(&self) -> usize {
        self.bytes as usize
    }

    fn delta_wire_bytes(delta: &SizedDelta) -> usize {
        delta.bytes as usize
    }

    fn apply_delta(&self, delta: &SizedDelta) -> Option<Self> {
        Some(SizedPayload {
            bytes: delta.full_bytes,
        })
    }
}

/// Globally unique rumor identity: the subject peer plus the version
/// pair the news announces. 16 bytes on the wire ("in order of tens of
/// bytes" for the m piggybacked ids, §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RumorId {
    /// The peer the news is about.
    pub subject: PeerId,
    /// Subject's membership incarnation (bumped on join/rejoin).
    pub status_version: u64,
    /// Subject's Bloom filter version (bumped on index change). For a
    /// delta-carrying rumor this is the version the chain's last step
    /// produces.
    pub bloom_version: u32,
}

/// Why the rumor exists. Only affects wire size accounting and
/// diagnostics; staleness is decided by the version pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RumorKind {
    /// A brand-new member joined.
    Join,
    /// A previously known member came back online (no new content).
    Rejoin,
    /// A member's Bloom filter changed.
    BloomUpdate,
}

/// Consecutive single-step deltas: step `i` takes
/// `base_bloom_version + i` to `base_bloom_version + i + 1`, and the
/// whole chain lands on the carrying rumor's `bloom_version`. Only
/// meaningful within one `status_version` (the rumor id's).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaChain<P: Payload> {
    /// `bloom_version` the first step applies to.
    pub base_bloom_version: u32,
    /// One delta per version bump, oldest first.
    pub steps: Vec<P::Delta>,
}

impl<P: Payload> DeltaChain<P> {
    /// Wire size: chain header plus every step.
    pub fn wire_bytes(&self) -> usize {
        DELTA_CHAIN_HEADER_BYTES
            + self
                .steps
                .iter()
                .map(|d| P::delta_wire_bytes(d))
                .sum::<usize>()
    }
}

/// The content a bloom-update rumor carries on the wire: the subject's
/// full payload, or a delta chain for receivers that hold a version the
/// chain covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RumorPayload<P: Payload> {
    /// Complete payload — joins, fallback when no usable chain exists,
    /// and anti-entropy (which always ships full state).
    Full(P),
    /// Delta chain ending at the rumor's `bloom_version`.
    Delta(DeltaChain<P>),
}

/// A rumor in flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rumor<P: Payload> {
    /// Identity (subject + versions).
    pub id: RumorId,
    /// Event class.
    pub kind: RumorKind,
    /// The subject's current Bloom filter — full or as a delta chain —
    /// when the event carries content (Join and BloomUpdate do; Rejoin
    /// does not).
    pub payload: Option<RumorPayload<P>>,
}

impl<P: Payload> Rumor<P> {
    /// Bytes this rumor occupies inside a message. A full (or empty)
    /// rumor costs the Table 2 48-byte peer summary plus its payload; a
    /// delta rumor costs only the 16-byte rumor id, the chain header,
    /// and the steps — the delta wire form the paper's §7.2 bandwidth
    /// numbers assume.
    pub fn wire_bytes(&self) -> usize {
        match &self.payload {
            None => PEER_SUMMARY_BYTES,
            Some(RumorPayload::Full(p)) => PEER_SUMMARY_BYTES + p.wire_bytes(),
            Some(RumorPayload::Delta(chain)) => RUMOR_ID_BYTES + chain.wire_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rumor(bytes: Option<usize>) -> Rumor<SizedPayload> {
        Rumor {
            id: RumorId {
                subject: 7,
                status_version: 1,
                bloom_version: 3,
            },
            kind: RumorKind::BloomUpdate,
            payload: bytes.map(|b| RumorPayload::Full(SizedPayload { bytes: b as u32 })),
        }
    }

    #[test]
    fn wire_bytes_includes_peer_summary() {
        assert_eq!(rumor(None).wire_bytes(), 48);
        assert_eq!(rumor(Some(3000)).wire_bytes(), 3048);
    }

    #[test]
    fn delta_rumor_charges_id_plus_chain() {
        let r: Rumor<SizedPayload> = Rumor {
            id: RumorId {
                subject: 7,
                status_version: 1,
                bloom_version: 5,
            },
            kind: RumorKind::BloomUpdate,
            payload: Some(RumorPayload::Delta(DeltaChain {
                base_bloom_version: 3,
                steps: vec![
                    SizedDelta {
                        bytes: 150,
                        full_bytes: 3000,
                    },
                    SizedDelta {
                        bytes: 200,
                        full_bytes: 3100,
                    },
                ],
            })),
        };
        // rumor id + chain header + steps
        assert_eq!(r.wire_bytes(), 16 + 8 + 150 + 200);
    }

    #[test]
    fn sized_delta_applies_to_resulting_size() {
        let p = SizedPayload { bytes: 3000 };
        let next = p
            .apply_delta(&SizedDelta {
                bytes: 120,
                full_bytes: 3200,
            })
            .unwrap();
        assert_eq!(next, SizedPayload { bytes: 3200 });
    }

    #[test]
    fn rumor_ids_order_by_subject_then_versions() {
        let a = RumorId {
            subject: 1,
            status_version: 1,
            bloom_version: 0,
        };
        let b = RumorId {
            subject: 1,
            status_version: 2,
            bloom_version: 0,
        };
        let c = RumorId {
            subject: 2,
            status_version: 0,
            bloom_version: 0,
        };
        assert!(a < b && b < c);
    }
}
