//! The replicated global directory.
//!
//! "This directory contains the names and addresses of all current
//! members, as well as a Bloom filter per member that summarizes the set
//! of terms contained in the documents being shared by that member"
//! (§1). Each peer holds its own copy; gossiping keeps the copies
//! convergent.
//!
//! Offline status is strictly local: "Each peer discovers that another
//! peer is offline when an attempt to communicate with it fails. It
//! marks the peer as off-line in its directory but does not gossip this
//! information" (§3).

use crate::dethash::DetHashMap;
use crate::rumor::Payload;
use crate::{PeerId, TimeMs};
use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// Connectivity class for bandwidth-aware gossiping (§7.2): Fast is
/// 512 Kbps or better, Slow is modem-speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpeedClass {
    /// 512 Kbps or better.
    Fast,
    /// Modem-speed connectivity.
    Slow,
}

/// A peer's liveness as locally believed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerStatus {
    /// Believed reachable.
    Online,
    /// A communication attempt failed at the given time; subject to
    /// T_Dead expiry.
    Offline {
        /// When the peer was first marked offline.
        since: TimeMs,
    },
}

/// One directory entry: everything this peer believes about another.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirEntry<P: Payload> {
    /// Membership incarnation; a peer bumps its own on join/rejoin.
    pub status_version: u64,
    /// Version of the peer's Bloom filter.
    pub bloom_version: u32,
    /// The peer's Bloom filter (or a sized stub in simulation).
    pub payload: Option<P>,
    /// Local liveness belief (never gossiped).
    pub status: PeerStatus,
    /// Connectivity class, learned out of band ("assuming that peers can
    /// learn of each other's connectivity speed", §7.2).
    pub speed: SpeedClass,
}

impl<P: Payload> DirEntry<P> {
    /// Is the entry at least as new as the given version pair?
    pub fn covers(&self, status_version: u64, bloom_version: u32) -> bool {
        (self.status_version, self.bloom_version) >= (status_version, bloom_version)
    }
}

/// A peer's local copy of the global directory.
#[derive(Debug, Clone, Default)]
pub struct Directory<P: Payload> {
    entries: DetHashMap<PeerId, DirEntry<P>>,
    /// Tombstones for peers dropped by T_Dead expiry: the versions known
    /// at expiry. Without these, a stale anti-entropy summary from a
    /// peer that has not yet noticed the departure would resurrect the
    /// entry indefinitely. A genuine rejoin bumps `status_version` past
    /// the tombstone and is accepted.
    expired: DetHashMap<PeerId, (u64, u32)>,
    /// Lazily cached content digest; invalidated on any mutation.
    digest_cache: Cell<Option<u64>>,
}

impl<P: Payload> Directory<P> {
    /// Empty directory.
    pub fn new() -> Self {
        Self {
            entries: DetHashMap::default(),
            expired: DetHashMap::default(),
            digest_cache: Cell::new(None),
        }
    }

    /// Look up a peer.
    pub fn get(&self, id: PeerId) -> Option<&DirEntry<P>> {
        self.entries.get(&id)
    }

    /// Mutable lookup. Conservatively invalidates the digest cache.
    pub fn get_mut(&mut self, id: PeerId) -> Option<&mut DirEntry<P>> {
        self.digest_cache.set(None);
        self.entries.get_mut(&id)
    }

    /// Insert or replace an entry wholesale. Clears any tombstone — the
    /// caller has decided this peer is live again.
    pub fn insert(&mut self, id: PeerId, entry: DirEntry<P>) {
        self.digest_cache.set(None);
        self.expired.remove(&id);
        self.entries.insert(id, entry);
    }

    /// Remove a peer entirely (T_Dead expiry).
    pub fn remove(&mut self, id: PeerId) -> Option<DirEntry<P>> {
        self.digest_cache.set(None);
        self.entries.remove(&id)
    }

    /// Number of known peers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no peers are known.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (PeerId, &DirEntry<P>)> {
        self.entries.iter().map(|(&id, e)| (id, e))
    }

    /// Ids of peers currently believed online.
    pub fn believed_online(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.entries
            .iter()
            .filter_map(|(&id, e)| (e.status == PeerStatus::Online).then_some(id))
    }

    /// Would news `(subject, status_version, bloom_version)` teach this
    /// directory anything?
    pub fn is_news(&self, subject: PeerId, status_version: u64, bloom_version: u32) -> bool {
        match self.entries.get(&subject) {
            None => match self.expired.get(&subject) {
                // Expired: only a strictly newer incarnation or filter
                // is news.
                Some(&(sv, bv)) => (status_version, bloom_version) > (sv, bv),
                None => true,
            },
            Some(e) => !e.covers(status_version, bloom_version),
        }
    }

    /// Mark a peer offline at `now` (idempotent: keeps the earliest
    /// `since` so T_Dead measures continuous absence).
    pub fn mark_offline(&mut self, id: PeerId, now: TimeMs) {
        if let Some(e) = self.entries.get_mut(&id) {
            if e.status == PeerStatus::Online {
                e.status = PeerStatus::Offline { since: now };
            }
        }
    }

    /// Mark a peer online (on hearing fresh news about it).
    pub fn mark_online(&mut self, id: PeerId) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.status = PeerStatus::Online;
        }
    }

    /// Drop peers continuously offline for `t_dead_ms` ("all information
    /// about it is dropped from the directory", §3). Returns the ids
    /// dropped.
    pub fn expire_dead(&mut self, now: TimeMs, t_dead_ms: TimeMs) -> Vec<PeerId> {
        let dead: Vec<PeerId> = self
            .entries
            .iter()
            .filter_map(|(&id, e)| match e.status {
                PeerStatus::Offline { since } if now.saturating_sub(since) >= t_dead_ms => Some(id),
                _ => None,
            })
            .collect();
        if !dead.is_empty() {
            self.digest_cache.set(None);
        }
        for id in &dead {
            if let Some(e) = self.entries.remove(id) {
                self.expired
                    .insert(*id, (e.status_version, e.bloom_version));
            }
        }
        dead
    }

    /// Content digest over `(id, status_version, bloom_version)` for all
    /// entries. Excludes liveness (local-only) so two peers that know
    /// the same news digest equal even if they disagree about who is
    /// reachable. Used for the cheap "same directory?" test that drives
    /// the adaptive interval.
    pub fn digest(&self) -> u64 {
        if let Some(d) = self.digest_cache.get() {
            return d;
        }
        // Order-independent: sum of per-entry mixes.
        let mut acc = 0u64;
        for (&id, e) in &self.entries {
            let mut z =
                u64::from(id) ^ (e.status_version << 32) ^ (u64::from(e.bloom_version) << 8);
            // SplitMix64 finalizer.
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            acc = acc.wrapping_add(z ^ (z >> 31));
        }
        self.digest_cache.set(Some(acc));
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rumor::SizedPayload;

    fn entry(sv: u64, bv: u32) -> DirEntry<SizedPayload> {
        DirEntry {
            status_version: sv,
            bloom_version: bv,
            payload: Some(SizedPayload { bytes: 100 }),
            status: PeerStatus::Online,
            speed: SpeedClass::Fast,
        }
    }

    #[test]
    fn news_detection() {
        let mut d = Directory::new();
        assert!(d.is_news(1, 1, 0), "unknown peer is news");
        d.insert(1, entry(1, 5));
        assert!(!d.is_news(1, 1, 5), "same version is stale");
        assert!(!d.is_news(1, 1, 4), "older bloom is stale");
        assert!(d.is_news(1, 1, 6), "newer bloom is news");
        assert!(d.is_news(1, 2, 0), "newer incarnation is news");
    }

    #[test]
    fn offline_keeps_earliest_since() {
        let mut d = Directory::new();
        d.insert(1, entry(1, 0));
        d.mark_offline(1, 100);
        d.mark_offline(1, 200);
        assert_eq!(d.get(1).unwrap().status, PeerStatus::Offline { since: 100 });
        d.mark_online(1);
        assert_eq!(d.get(1).unwrap().status, PeerStatus::Online);
    }

    #[test]
    fn t_dead_expiry() {
        let mut d = Directory::new();
        d.insert(1, entry(1, 0));
        d.insert(2, entry(1, 0));
        d.mark_offline(1, 0);
        assert!(d.expire_dead(50, 100).is_empty());
        assert_eq!(d.expire_dead(100, 100), vec![1]);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn digest_ignores_liveness_but_not_versions() {
        let mut a = Directory::new();
        let mut b = Directory::new();
        a.insert(1, entry(1, 1));
        b.insert(1, entry(1, 1));
        assert_eq!(a.digest(), b.digest());
        b.mark_offline(1, 5);
        assert_eq!(a.digest(), b.digest(), "liveness is local-only");
        b.get_mut(1).unwrap().bloom_version = 2;
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_is_order_independent() {
        let mut a = Directory::new();
        a.insert(1, entry(1, 1));
        a.insert(2, entry(3, 4));
        let mut b = Directory::new();
        b.insert(2, entry(3, 4));
        b.insert(1, entry(1, 1));
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn believed_online_filters() {
        let mut d = Directory::new();
        d.insert(1, entry(1, 0));
        d.insert(2, entry(1, 0));
        d.mark_offline(2, 7);
        let online: Vec<_> = d.believed_online().collect();
        assert_eq!(online, vec![1]);
    }
}
