//! PlanetP's gossiping layer (§3 of the paper).
//!
//! Every peer keeps a local copy of the *global directory* — the list of
//! peers, their addresses, and their Bloom filters — and the community
//! continually gossips to keep these copies convergent. The algorithm is
//! a combination of:
//!
//! 1. **Rumor mongering**: news (a join, a rejoin, a Bloom filter change)
//!    is pushed to random targets every gossip round; a peer stops
//!    spreading a rumor after contacting `n` peers in a row that already
//!    knew it.
//! 2. **Pull anti-entropy**: every `K`th round (or when there is nothing
//!    to rumor), a peer asks a random target for a summary of its entire
//!    directory and pulls anything newer — catching the residue rumoring
//!    misses.
//! 3. **Partial anti-entropy** (the paper's novel extension): every rumor
//!    *reply* piggybacks the ids of the last `m` rumors the responder
//!    retired, letting the initiator pull recent news it missed at the
//!    cost of tens of bytes.
//!
//! Bloom-filter updates travel as **delta chains** by default — the
//! compressed diff steps between consecutive `bloom_version`s, with the
//! full filter as the fallback whenever a receiver's base is missing
//! ("PlanetP sends diffs of the Bloom filters to save bandwidth", §7.2).
//! See [`rumor::RumorPayload`] and `GossipConfig::delta_updates`.
//!
//! The gossip interval adapts: it stretches by `slowdown` every time the
//! peer sees `gossipless_threshold` consecutive identical-directory
//! contacts while holding no rumors, and snaps back to the base interval
//! the moment new information arrives.
//!
//! The engine in [`engine::GossipEngine`] is a deterministic,
//! transport-agnostic state machine: callers (the discrete-event
//! simulator in `planetp-simnet`, or the live TCP runtime in `planetp`)
//! deliver ticks and messages and route the `(target, message)` pairs the
//! engine emits. All randomness comes from a per-engine seeded RNG, so
//! simulations are exactly reproducible.

pub mod config;
pub mod dethash;
pub mod directory;
pub mod engine;
pub mod messages;
pub mod rumor;
pub mod selector;
pub mod stats;

pub use config::{Algorithm, GossipConfig};
pub use dethash::{DetHashMap, DetState};
pub use directory::{DirEntry, Directory, PeerStatus, SpeedClass};
pub use engine::{GossipEngine, TickOutcome};
pub use messages::Message;
pub use rumor::{
    DeltaChain, Payload, Rumor, RumorId, RumorKind, RumorPayload, SizedDelta, SizedPayload,
};
pub use stats::{EngineCounters, EngineStats};

/// Peer identifier. Dense small integers keep the simulator's state
/// arrays flat; the live runtime maps socket addresses to ids.
pub type PeerId = u32;

/// Simulation / protocol time in milliseconds. Integer so that runs are
/// exactly reproducible and times hash cleanly.
pub type TimeMs = u64;
