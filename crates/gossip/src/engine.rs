//! The gossip state machine.
//!
//! [`GossipEngine`] is transport-agnostic and fully deterministic given
//! its seed: a driver (the discrete-event simulator, or the live TCP
//! runtime) calls [`GossipEngine::tick`] on the engine's schedule and
//! [`GossipEngine::handle_message`] on delivery, and routes the
//! `(target, message)` pairs both return.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

use crate::config::{Algorithm, GossipConfig};
use crate::dethash::DetHashMap;
use crate::directory::{DirEntry, Directory, PeerStatus, SpeedClass};
use crate::messages::{Message, PeerState, PeerSummary, PEER_SUMMARY_BYTES, RUMOR_ID_BYTES};
use crate::rumor::{DeltaChain, Payload, Rumor, RumorId, RumorKind, RumorPayload};
use crate::selector::{pick_target, SelectionPurpose};
use crate::stats::{EngineCounters, EngineStats};
use crate::{PeerId, TimeMs};
use planetp_obs::Registry;

/// A rumor this peer is actively spreading.
#[derive(Debug, Clone)]
struct ActiveRumor {
    id: RumorId,
    kind: RumorKind,
    /// Consecutive contacts that already knew this rumor; retire at
    /// `config.rumor_death_n`.
    consecutive_known: u32,
}

/// A stored run of consecutive single-step deltas for one subject,
/// covering `base_bloom_version .. base_bloom_version + steps.len()`
/// within `status_version`. Kept alongside the directory (which always
/// stores the *full* payload) so outgoing bloom-update rumors can carry
/// the compact chain; receivers that applied a chain keep it too, which
/// lets them forward deltas instead of re-expanding to full filters.
#[derive(Debug, Clone)]
struct StoredChain<P: Payload> {
    status_version: u64,
    /// `bloom_version` the first step applies to.
    base_bloom_version: u32,
    /// One delta per version bump, oldest first.
    steps: VecDeque<P::Delta>,
}

impl<P: Payload> StoredChain<P> {
    /// The `bloom_version` the chain's last step produces.
    fn end_version(&self) -> u32 {
        self.base_bloom_version + self.steps.len() as u32
    }
}

/// What a tick produced: one message to send to one target.
#[derive(Debug, Clone, PartialEq)]
pub struct TickOutcome<P: Payload> {
    /// Chosen gossip partner.
    pub target: PeerId,
    /// Message to deliver.
    pub message: Message<P>,
}

/// The per-peer gossip protocol instance.
#[derive(Debug, Clone)]
pub struct GossipEngine<P: Payload> {
    id: PeerId,
    speed: SpeedClass,
    config: GossipConfig,
    dir: Directory<P>,
    /// Active rumors keyed by subject (at most one per subject — fresher
    /// news supersedes).
    active: DetHashMap<PeerId, ActiveRumor>,
    /// Delta chains keyed by subject, each ending exactly at that
    /// subject's current directory versions (see [`StoredChain`]).
    chains: DetHashMap<PeerId, StoredChain<P>>,
    /// Recently retired rumor ids, newest last (partial anti-entropy).
    recent: VecDeque<RumorId>,
    /// Rumor ids last pushed to each target, awaiting a `RumorAck`.
    pending_acks: DetHashMap<PeerId, Vec<RumorId>>,
    round: u64,
    interval_ms: TimeMs,
    /// Gossip-less counter p.
    gossipless: u32,
    /// Force an anti-entropy exchange on the next tick (set at
    /// join/rejoin so the peer downloads the directory immediately).
    force_ae: bool,
    rng: SmallRng,
    stats: EngineCounters,
}

impl<P: Payload> GossipEngine<P> {
    /// Create an engine for a peer joining a community.
    ///
    /// `bootstrap` is the one existing member a new peer knows (with its
    /// speed class); pass `None` for the community's founding member.
    /// `payload` is the peer's initial Bloom filter, gossiped to
    /// everyone as its Join rumor.
    pub fn new(
        id: PeerId,
        speed: SpeedClass,
        config: GossipConfig,
        seed: u64,
        payload: Option<P>,
        bootstrap: Option<(PeerId, SpeedClass)>,
    ) -> Self {
        let mut dir = Directory::new();
        dir.insert(
            id,
            DirEntry {
                status_version: 1,
                bloom_version: if payload.is_some() { 1 } else { 0 },
                payload,
                status: PeerStatus::Online,
                speed,
            },
        );
        let mut engine = Self {
            id,
            speed,
            config,
            dir,
            active: DetHashMap::default(),
            chains: DetHashMap::default(),
            recent: VecDeque::new(),
            pending_acks: DetHashMap::default(),
            round: 0,
            interval_ms: config.base_interval_ms,
            gossipless: 0,
            force_ae: false,
            rng: SmallRng::seed_from_u64(seed),
            stats: EngineCounters::default(),
        };
        if let Some((contact, contact_speed)) = bootstrap {
            engine.dir.insert(
                contact,
                DirEntry {
                    status_version: 0,
                    bloom_version: 0,
                    payload: None,
                    status: PeerStatus::Online,
                    speed: contact_speed,
                },
            );
            engine.force_ae = true;
            engine.activate_self_rumor(RumorKind::Join);
        }
        engine
    }

    /// Create an engine with a pre-populated directory (used to set up
    /// stable communities in simulations without simulating their
    /// formation).
    pub fn with_directory(
        id: PeerId,
        speed: SpeedClass,
        config: GossipConfig,
        seed: u64,
        dir: Directory<P>,
    ) -> Self {
        assert!(
            dir.get(id).is_some(),
            "directory must contain the peer itself"
        );
        Self {
            id,
            speed,
            config,
            dir,
            active: DetHashMap::default(),
            chains: DetHashMap::default(),
            recent: VecDeque::new(),
            pending_acks: DetHashMap::default(),
            round: 0,
            interval_ms: config.base_interval_ms,
            gossipless: 0,
            force_ae: false,
            rng: SmallRng::seed_from_u64(seed),
            stats: EngineCounters::default(),
        }
    }

    /// This peer's id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// This peer's speed class.
    pub fn speed(&self) -> SpeedClass {
        self.speed
    }

    /// Read access to the local directory copy.
    pub fn directory(&self) -> &Directory<P> {
        &self.dir
    }

    /// Mutable access to the local directory (drivers use this to seed
    /// state; the protocol itself goes through messages).
    pub fn directory_mut(&mut self) -> &mut Directory<P> {
        &mut self.dir
    }

    /// Protocol counters, frozen at this instant.
    pub fn stats(&self) -> EngineStats {
        self.stats.view()
    }

    /// The metrics registry this engine records into. Private to the
    /// engine unless a driver re-homed it via
    /// [`Self::attach_metrics`].
    pub fn metrics(&self) -> &Registry {
        self.stats.registry()
    }

    /// Record this engine's metrics in `registry` (carrying over
    /// anything already counted), so one registry can cover gossip,
    /// transport, and search at once.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        self.stats.attach(registry);
    }

    /// Milliseconds until the next tick should run (the adaptive
    /// interval).
    pub fn current_interval(&self) -> TimeMs {
        self.interval_ms
    }

    /// Number of rumors currently being spread.
    pub fn active_rumors(&self) -> usize {
        self.active.len()
    }

    /// Does this peer's directory cover the given news?
    pub fn knows(&self, id: RumorId) -> bool {
        !self
            .dir
            .is_news(id.subject, id.status_version, id.bloom_version)
    }

    /// The delta steps taking `subject` from `(status_version, from_bv)`
    /// to `to_bv`, if this peer's stored chain covers that exact range.
    /// The live runtime's query mirror uses this to advance an
    /// already-decompressed filter in place instead of re-decompressing
    /// the full payload on every version bump.
    pub fn delta_steps(
        &self,
        subject: PeerId,
        status_version: u64,
        from_bv: u32,
        to_bv: u32,
    ) -> Option<Vec<P::Delta>> {
        let c = self.chains.get(&subject)?;
        if c.status_version != status_version
            || from_bv < c.base_bloom_version
            || to_bv > c.end_version()
            || from_bv >= to_bv
        {
            return None;
        }
        let skip = (from_bv - c.base_bloom_version) as usize;
        let take = (to_bv - from_bv) as usize;
        Some(c.steps.iter().skip(skip).take(take).cloned().collect())
    }

    // ------------------------------------------------------------------
    // Local events
    // ------------------------------------------------------------------

    /// The local peer's Bloom filter changed (new terms published),
    /// with no delta available: subsequent rumors carry the full
    /// payload. Prefer [`Self::local_update_delta`] when the caller can
    /// compute the diff from the previous version.
    pub fn local_update(&mut self, payload: P) {
        self.chains.remove(&self.id);
        let e = self
            .dir
            .get_mut(self.id)
            .expect("self entry always present");
        e.bloom_version += 1;
        e.payload = Some(payload);
        self.activate_self_rumor(RumorKind::BloomUpdate);
        self.learned_news();
    }

    /// The local peer's Bloom filter changed, and `delta` is the
    /// single-step diff from the previous version to `payload`. The
    /// directory stores the full payload (anti-entropy always ships
    /// full state); the delta extends this peer's own chain so rumor
    /// pushes carry diffs — the §7.2 bandwidth optimization.
    pub fn local_update_delta(&mut self, payload: P, delta: P::Delta) {
        let (status_version, old_bv) = {
            let e = self.dir.get(self.id).expect("self entry always present");
            (e.status_version, e.bloom_version)
        };
        self.push_chain_step(self.id, status_version, old_bv, delta);
        let e = self
            .dir
            .get_mut(self.id)
            .expect("self entry always present");
        e.bloom_version += 1;
        e.payload = Some(payload);
        self.activate_self_rumor(RumorKind::BloomUpdate);
        self.learned_news();
    }

    /// The local peer came back online after an absence. `new_payload`
    /// carries a changed Bloom filter, if any (the paper's "Join" event
    /// in Fig 4; `None` is the "Rejoin" event).
    pub fn local_rejoin(&mut self, new_payload: Option<P>) {
        // A new incarnation invalidates any chain built in the old one.
        self.chains.remove(&self.id);
        let e = self
            .dir
            .get_mut(self.id)
            .expect("self entry always present");
        e.status_version += 1;
        e.status = PeerStatus::Online;
        let kind = if let Some(p) = new_payload {
            e.bloom_version += 1;
            e.payload = Some(p);
            RumorKind::BloomUpdate
        } else {
            RumorKind::Rejoin
        };
        self.activate_self_rumor(kind);
        self.force_ae = true;
        self.learned_news();
    }

    /// The local peer restarted from persisted state. `floor` is the
    /// persisted `(status_version, bloom_version)` high-water mark;
    /// both versions are bumped *past* it so whatever the community
    /// already gossiped about this peer — including versions a torn
    /// write may have lost from the local log — is strictly superseded
    /// and the versioned-record invariant holds. Emits the rejoin
    /// rumor (a `BloomUpdate` carrying the fresh payload, §3's Fig 4
    /// "Join" event) and forces an anti-entropy catch-up on the next
    /// tick. Returns the new version pair.
    pub fn local_recover(&mut self, payload: P, floor: (u64, u32)) -> (u64, u32) {
        self.chains.remove(&self.id);
        let e = self
            .dir
            .get_mut(self.id)
            .expect("self entry always present");
        e.status_version = e.status_version.max(floor.0) + 1;
        e.bloom_version = e.bloom_version.max(floor.1) + 1;
        e.payload = Some(payload);
        e.status = PeerStatus::Online;
        let versions = (e.status_version, e.bloom_version);
        self.activate_self_rumor(RumorKind::BloomUpdate);
        self.force_ae = true;
        self.learned_news();
        versions
    }

    /// A communication attempt to `peer` failed: mark it offline
    /// locally. Never gossiped (§3).
    pub fn on_contact_failed(&mut self, peer: PeerId, now: TimeMs) {
        self.dir.mark_offline(peer, now);
        self.pending_acks.remove(&peer);
        self.stats.contact_failures.inc();
    }

    /// A contact attempt to `peer` failed, but the caller's failure
    /// budget for it is not yet exhausted: count the suspicion without
    /// touching the directory. The live runtime's health layer calls
    /// this during the suspect phase so one transient transport error
    /// does not remove a peer from gossip target selection;
    /// [`Self::on_contact_failed`] remains the offline transition.
    pub fn note_contact_suspect(&mut self, _peer: PeerId) {
        self.stats.contact_suspects.inc();
    }

    /// A peer that had been failing answered again: clear any local
    /// offline mark (liveness is local-only, §3, so recovery is too).
    pub fn on_contact_recovered(&mut self, peer: PeerId) {
        self.dir.mark_online(peer);
        self.stats.contact_recoveries.inc();
    }

    // ------------------------------------------------------------------
    // The gossip round
    // ------------------------------------------------------------------

    /// Run one gossip round at time `now`. Returns the message to send,
    /// or `None` if no reachable peer is known.
    pub fn tick(&mut self, now: TimeMs) -> Option<TickOutcome<P>> {
        self.round += 1;
        let dropped = self.dir.expire_dead(now, self.config.t_dead_ms);
        for d in dropped {
            self.active.remove(&d);
            self.chains.remove(&d);
        }

        if self.config.algorithm == Algorithm::AntiEntropyOnly {
            return self.push_ae_tick();
        }

        // Full anti-entropy (whole-directory summary) runs every Kth
        // round. On other rounds, a peer with rumors pushes them; an
        // idle peer sends a cheap digest ping and pulls only recent
        // changes. Sending the full summary on every idle round would
        // make volume proportional to community size and contradict the
        // paper's Fig 2(b) ("message sizes are mostly proportional to
        // the number of changes being propagated, not the community
        // size"); going silent instead would stretch the residual tail
        // far past the paper's Fig 2(a) times. The cheap ping is the
        // paper's partial-anti-entropy idea applied to the idle path.
        let do_full_ae = self.force_ae
            || self
                .round
                .is_multiple_of(u64::from(self.config.anti_entropy_every));
        if do_full_ae {
            self.force_ae = false;
            let target = pick_target(
                &self.dir,
                self.id,
                self.speed,
                SelectionPurpose::AntiEntropy,
                self.config.bandwidth_aware,
                self.config.fast_to_slow_prob,
                &mut self.rng,
            )?;
            self.stats.rounds.inc();
            self.stats.ae_msgs_sent.inc();
            let message = Message::AeRequest {
                digest: self.dir.digest(),
            };
            self.stats.on_message_out(&message);
            return Some(TickOutcome { target, message });
        }
        if self.active.is_empty() {
            let target = pick_target(
                &self.dir,
                self.id,
                self.speed,
                SelectionPurpose::AntiEntropy,
                self.config.bandwidth_aware,
                self.config.fast_to_slow_prob,
                &mut self.rng,
            )?;
            self.stats.rounds.inc();
            self.stats.ae_msgs_sent.inc();
            let message = Message::AePing {
                digest: self.dir.digest(),
            };
            self.stats.on_message_out(&message);
            return Some(TickOutcome { target, message });
        }

        // Rumor round: push all active rumors.
        let purpose = if self.active.contains_key(&self.id) {
            SelectionPurpose::RumorSource
        } else {
            SelectionPurpose::RumorForward
        };
        let target = pick_target(
            &self.dir,
            self.id,
            self.speed,
            purpose,
            self.config.bandwidth_aware,
            self.config.fast_to_slow_prob,
            &mut self.rng,
        )?;
        let rumors: Vec<Rumor<P>> = self.active.values().map(|a| self.build_rumor(a)).collect();
        self.pending_acks
            .insert(target, rumors.iter().map(|r| r.id).collect());
        self.stats.rounds.inc();
        // `on_message_out` counts the rumor class, which IS
        // `rumor_msgs_sent` — no separate increment.
        let message = Message::Rumor { rumors };
        self.stats.on_message_out(&message);
        Some(TickOutcome { target, message })
    }

    fn push_ae_tick(&mut self) -> Option<TickOutcome<P>> {
        let target = pick_target(
            &self.dir,
            self.id,
            self.speed,
            SelectionPurpose::AntiEntropy,
            self.config.bandwidth_aware,
            self.config.fast_to_slow_prob,
            &mut self.rng,
        )?;
        self.stats.rounds.inc();
        self.stats.ae_msgs_sent.inc();
        let message = Message::AePush {
            entries: self.summaries(),
            digest: self.dir.digest(),
        };
        self.stats.on_message_out(&message);
        Some(TickOutcome { target, message })
    }

    /// Handle a message from `from`; returns responses to send.
    pub fn handle_message(
        &mut self,
        from: PeerId,
        msg: Message<P>,
        now: TimeMs,
    ) -> Vec<(PeerId, Message<P>)> {
        // `now` is only needed for T_Dead expiry, which tick() drives;
        // the parameter keeps drivers passing a consistent clock.
        let _ = now;
        self.stats.on_message_in(&msg);
        // Hearing from a peer proves it is online.
        self.dir.mark_online(from);
        let responses = match msg {
            Message::Rumor { rumors } => self.on_rumor(from, rumors),
            Message::RumorAck {
                already_knew,
                recent_ids,
            } => self.on_rumor_ack(from, &already_knew, &recent_ids),
            Message::Pull { ids } => {
                let entries = self.states_for(ids.iter().map(|i| i.subject));
                vec![(from, Message::PullReply { entries })]
            }
            Message::PullReply { entries } => {
                let learned = self.absorb(&entries, true);
                self.stats.rumors_learned_partial_ae.add(learned);
                Vec::new()
            }
            Message::AePing { digest } => {
                if digest == self.dir.digest() {
                    vec![(from, Message::AeEqual)]
                } else {
                    vec![(
                        from,
                        Message::AeRecent {
                            ids: self.recent_and_active_ids(),
                        },
                    )]
                }
            }
            Message::AeRecent { ids } => {
                let missing: Vec<RumorId> = ids
                    .iter()
                    .filter(|id| id.subject != self.id && !self.knows(**id))
                    .copied()
                    .collect();
                if missing.is_empty() {
                    Vec::new()
                } else {
                    vec![(from, Message::Pull { ids: missing })]
                }
            }
            Message::AeRequest { digest } => {
                if digest == self.dir.digest() {
                    vec![(from, Message::AeEqual)]
                } else {
                    vec![(
                        from,
                        Message::AeSummary {
                            entries: self.summaries(),
                        },
                    )]
                }
            }
            Message::AeEqual => {
                self.note_gossipless();
                Vec::new()
            }
            Message::AeSummary { entries } => {
                let needed = self.stale_subjects(&entries);
                if needed.is_empty() {
                    // Nothing to pull: only we are ahead; the rumor/push
                    // machinery will reach them.
                    Vec::new()
                } else {
                    vec![(from, Message::AePull { subjects: needed })]
                }
            }
            Message::AePull { subjects } => {
                let entries = self.states_for(subjects.into_iter());
                vec![(from, Message::AeReply { entries })]
            }
            Message::AeReply { entries } => {
                let learned = self.absorb(&entries, false);
                self.stats.rumors_learned_ae.add(learned);
                Vec::new()
            }
            Message::AePush { entries, digest } => {
                if digest == self.dir.digest() {
                    vec![(from, Message::AeEqual)]
                } else {
                    let needed = self.stale_subjects(&entries);
                    if needed.is_empty() {
                        Vec::new()
                    } else {
                        vec![(from, Message::AePull { subjects: needed })]
                    }
                }
            }
        };
        for (_, m) in &responses {
            self.stats.on_message_out(m);
        }
        responses
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn on_rumor(&mut self, from: PeerId, rumors: Vec<Rumor<P>>) -> Vec<(PeerId, Message<P>)> {
        // "Whenever x receives a rumor message ... it immediately resets
        // its gossiping interval to the default" (§3).
        self.reset_interval();
        let mut already_knew = Vec::with_capacity(rumors.len());
        // Delta rumors whose chain we could not apply: pull the full
        // state from the sender (it has it — it just rumored the news).
        let mut broken: Vec<RumorId> = Vec::new();
        for r in rumors {
            let knew = self.knows(r.id);
            already_knew.push(knew);
            if knew {
                continue;
            }
            if self.apply_news(&r) {
                self.stats.rumors_learned_push.inc();
            } else {
                self.stats.delta_chain_breaks.inc();
                broken.push(r.id);
            }
        }
        let recent_ids = if self.config.algorithm.partial_ae() {
            let m = self.config.partial_ae_ids;
            self.recent.iter().rev().take(m).copied().collect()
        } else {
            Vec::new()
        };
        // The ack and the fallback pull travel back in one batched
        // exchange (the live transport writes them as one frame).
        let mut out = vec![(
            from,
            Message::RumorAck {
                already_knew,
                recent_ids,
            },
        )];
        if !broken.is_empty() {
            out.push((from, Message::Pull { ids: broken }));
        }
        out
    }

    fn on_rumor_ack(
        &mut self,
        from: PeerId,
        already_knew: &[bool],
        recent_ids: &[RumorId],
    ) -> Vec<(PeerId, Message<P>)> {
        if let Some(sent) = self.pending_acks.remove(&from) {
            for (id, &knew) in sent.iter().zip(already_knew) {
                let Some(a) = self.active.get_mut(&id.subject) else {
                    continue;
                };
                if a.id != *id {
                    continue; // superseded since we sent it
                }
                if knew {
                    a.consecutive_known += 1;
                    if a.consecutive_known >= self.config.rumor_death_n {
                        self.retire(id.subject);
                    }
                } else {
                    a.consecutive_known = 0;
                }
            }
        }
        // Partial anti-entropy: pull anything the responder retired that
        // we have not heard.
        let missing: Vec<RumorId> = recent_ids
            .iter()
            .filter(|id| id.subject != self.id && !self.knows(**id))
            .copied()
            .collect();
        if missing.is_empty() {
            Vec::new()
        } else {
            vec![(from, Message::Pull { ids: missing })]
        }
    }

    /// Apply news carried by a rumor and start spreading it ourselves.
    ///
    /// Returns `false` — leaving the directory untouched — when the
    /// rumor carried a delta chain this peer cannot apply (missing
    /// base version, status mismatch, corrupt step): the caller pulls
    /// the full state instead. Every other form always applies.
    fn apply_news(&mut self, r: &Rumor<P>) -> bool {
        let payload = match &r.payload {
            None => None,
            Some(RumorPayload::Full(p)) => Some(p.clone()),
            Some(RumorPayload::Delta(chain)) => match self.apply_chain(r.id, chain) {
                Some(p) => Some(p),
                None => return false,
            },
        };
        self.update_entry(
            r.id.subject,
            r.id.status_version,
            r.id.bloom_version,
            payload,
        );
        if r.id.subject != self.id {
            self.activate(r.id, r.kind);
        }
        self.learned_news();
        true
    }

    /// Apply the suffix of `chain` that takes our directory entry for
    /// the subject from its current `bloom_version` to `id.bloom_version`.
    /// On success the received chain replaces our stored chain for the
    /// subject (so we can forward deltas too). `None` = cannot apply.
    fn apply_chain(&mut self, id: RumorId, chain: &DeltaChain<P>) -> Option<P> {
        // A chain is only meaningful within one incarnation and must
        // land exactly on the version the rumor announces.
        if chain.steps.is_empty()
            || chain.base_bloom_version + chain.steps.len() as u32 != id.bloom_version
        {
            return None;
        }
        let e = self.dir.get(id.subject)?;
        if e.status_version != id.status_version
            || e.bloom_version < chain.base_bloom_version
            || e.bloom_version >= id.bloom_version
        {
            return None;
        }
        let skip = (e.bloom_version - chain.base_bloom_version) as usize;
        let mut current = e.payload.clone()?;
        for step in &chain.steps[skip..] {
            current = current.apply_delta(step)?;
        }
        // Remember the chain for forwarding; update_entry validates it
        // against the entry's new versions and keeps it.
        self.chains.insert(
            id.subject,
            StoredChain {
                status_version: id.status_version,
                base_bloom_version: chain.base_bloom_version,
                steps: chain.steps.iter().cloned().collect(),
            },
        );
        self.trim_chain(id.subject);
        self.stats.delta_applied.inc();
        Some(current)
    }

    /// Absorb full peer states from a pull or anti-entropy reply.
    /// Returns how many taught us something. `respread`: whether to
    /// start rumoring what we learned (partial-AE pulls respread —
    /// they are recent, hot news; full AE does not — it is the cold
    /// path catching residue).
    fn absorb(&mut self, entries: &[PeerState<P>], respread: bool) -> u64 {
        let mut learned = 0;
        for s in entries {
            if !self
                .dir
                .is_news(s.subject, s.status_version, s.bloom_version)
            {
                continue;
            }
            self.update_entry(
                s.subject,
                s.status_version,
                s.bloom_version,
                s.payload.clone(),
            );
            if respread && s.subject != self.id {
                self.activate(
                    RumorId {
                        subject: s.subject,
                        status_version: s.status_version,
                        bloom_version: s.bloom_version,
                    },
                    RumorKind::BloomUpdate,
                );
            }
            learned += 1;
        }
        if learned > 0 {
            // "...or finds a new piece of information through
            // anti-entropy, it immediately resets its gossiping
            // interval" (§3).
            self.learned_news();
        }
        learned
    }

    /// Upgrade a directory entry to (sv, bv), keeping the old payload
    /// when the update carries none (e.g. a Rejoin rumor).
    fn update_entry(
        &mut self,
        subject: PeerId,
        status_version: u64,
        bloom_version: u32,
        payload: Option<P>,
    ) {
        match self.dir.get_mut(subject) {
            Some(e) => {
                e.status_version = status_version;
                e.bloom_version = bloom_version;
                if let Some(p) = payload {
                    e.payload = Some(p);
                }
                // Fresh news about a peer implies it is (or recently
                // was) online; clear any local offline mark.
                e.status = PeerStatus::Online;
            }
            None => {
                self.dir.insert(
                    subject,
                    DirEntry {
                        status_version,
                        bloom_version,
                        payload,
                        status: PeerStatus::Online,
                        // Speed is learned out of band; default Fast
                        // until the driver overrides.
                        speed: SpeedClass::Fast,
                    },
                );
            }
        }
        // A stored delta chain stays only if it still lands exactly on
        // the entry's new versions (the delta-apply path re-inserts the
        // received chain just before calling here; every other path —
        // full payloads, rejoins, anti-entropy — invalidates it).
        let stale = self.chains.get(&subject).is_some_and(|c| {
            c.status_version != status_version || c.end_version() != bloom_version
        });
        if stale {
            self.chains.remove(&subject);
        }
    }

    /// Start (or refresh) spreading news about a subject.
    fn activate(&mut self, id: RumorId, kind: RumorKind) {
        self.active.insert(
            id.subject,
            ActiveRumor {
                id,
                kind,
                consecutive_known: 0,
            },
        );
    }

    fn activate_self_rumor(&mut self, kind: RumorKind) {
        let e = self.dir.get(self.id).expect("self entry always present");
        let id = RumorId {
            subject: self.id,
            status_version: e.status_version,
            bloom_version: e.bloom_version,
        };
        self.activate(id, kind);
        self.stats.rumors_originated.inc();
    }

    /// Retire an active rumor (death counter reached n); remember its id
    /// for partial anti-entropy.
    fn retire(&mut self, subject: PeerId) {
        if let Some(a) = self.active.remove(&subject) {
            self.recent.push_back(a.id);
            let cap = self.config.partial_ae_ids.max(32);
            while self.recent.len() > cap {
                self.recent.pop_front();
            }
            self.stats.rumors_retired.inc();
        }
    }

    /// Build the rumor message entry for an active rumor from the
    /// *current* directory state (which may be fresher than when the
    /// rumor started). Bloom updates go out as a delta chain whenever a
    /// stored chain covers the rumor's version and is actually smaller
    /// than the full payload; joins (the receiver has no base) and
    /// chainless updates fall back to the full form.
    fn build_rumor(&self, a: &ActiveRumor) -> Rumor<P> {
        let e = self.dir.get(a.id.subject);
        let payload = match a.kind {
            RumorKind::Rejoin => None,
            RumorKind::Join => e.and_then(|e| e.payload.clone()).map(RumorPayload::Full),
            RumorKind::BloomUpdate => e.and_then(|e| {
                let full = e.payload.clone()?;
                if let Some(chain) = self.chain_for(a.id) {
                    let full_bytes = PEER_SUMMARY_BYTES + full.wire_bytes();
                    let delta_bytes = RUMOR_ID_BYTES + chain.wire_bytes();
                    if delta_bytes < full_bytes {
                        self.stats.delta_sent.inc();
                        self.stats
                            .delta_bytes_saved
                            .add((full_bytes - delta_bytes) as u64);
                        return Some(RumorPayload::Delta(chain));
                    }
                }
                if self.config.delta_updates {
                    self.stats.delta_full_fallbacks.inc();
                }
                Some(RumorPayload::Full(full))
            }),
        };
        Rumor {
            id: a.id,
            kind: a.kind,
            payload,
        }
    }

    /// The stored chain for a rumor, if it exactly covers the rumor's
    /// announced version within the same incarnation.
    fn chain_for(&self, id: RumorId) -> Option<DeltaChain<P>> {
        if !self.config.delta_updates {
            return None;
        }
        let c = self.chains.get(&id.subject)?;
        if c.steps.is_empty()
            || c.status_version != id.status_version
            || c.end_version() != id.bloom_version
        {
            return None;
        }
        Some(DeltaChain {
            base_bloom_version: c.base_bloom_version,
            steps: c.steps.iter().cloned().collect(),
        })
    }

    /// Append one delta step taking `(status_version, old_bv)` to
    /// `old_bv + 1` onto the subject's chain, starting a fresh chain if
    /// the stored one does not end at `old_bv`. Oldest steps fall off
    /// past `config.max_delta_chain`.
    fn push_chain_step(
        &mut self,
        subject: PeerId,
        status_version: u64,
        old_bv: u32,
        delta: P::Delta,
    ) {
        if !self.config.delta_updates {
            return;
        }
        let max = self.config.max_delta_chain.max(1);
        let c = self.chains.entry(subject).or_insert_with(|| StoredChain {
            status_version,
            base_bloom_version: old_bv,
            steps: VecDeque::new(),
        });
        if c.status_version != status_version || c.end_version() != old_bv {
            *c = StoredChain {
                status_version,
                base_bloom_version: old_bv,
                steps: VecDeque::new(),
            };
        }
        c.steps.push_back(delta);
        while c.steps.len() > max {
            c.steps.pop_front();
            c.base_bloom_version += 1;
        }
    }

    /// Drop oldest steps until the subject's chain fits
    /// `config.max_delta_chain`.
    fn trim_chain(&mut self, subject: PeerId) {
        let max = self.config.max_delta_chain.max(1);
        if let Some(c) = self.chains.get_mut(&subject) {
            while c.steps.len() > max {
                c.steps.pop_front();
                c.base_bloom_version += 1;
            }
        }
    }

    /// Ids this peer would advertise in a cheap anti-entropy exchange:
    /// its active rumors plus the last m retired ones.
    fn recent_and_active_ids(&self) -> Vec<RumorId> {
        let m = self.config.partial_ae_ids;
        let mut ids: Vec<RumorId> = self.active.values().map(|a| a.id).collect();
        ids.extend(self.recent.iter().rev().take(m));
        ids.truncate(m.max(ids.len().min(2 * m)));
        ids
    }

    fn summaries(&self) -> Vec<PeerSummary> {
        self.dir
            .iter()
            .map(|(id, e)| PeerSummary {
                subject: id,
                status_version: e.status_version,
                bloom_version: e.bloom_version,
            })
            .collect()
    }

    /// Subjects in `entries` that are newer than our directory.
    fn stale_subjects(&self, entries: &[PeerSummary]) -> Vec<PeerId> {
        entries
            .iter()
            .filter(|s| {
                self.dir
                    .is_news(s.subject, s.status_version, s.bloom_version)
            })
            .map(|s| s.subject)
            .collect()
    }

    fn states_for(&self, subjects: impl Iterator<Item = PeerId>) -> Vec<PeerState<P>> {
        subjects
            .filter_map(|s| {
                self.dir.get(s).map(|e| PeerState {
                    subject: s,
                    status_version: e.status_version,
                    bloom_version: e.bloom_version,
                    payload: e.payload.clone(),
                })
            })
            .collect()
    }

    /// Count a gossip-less contact; slow the interval after the
    /// threshold.
    fn note_gossipless(&mut self) {
        if !self.active.is_empty() {
            return;
        }
        self.gossipless += 1;
        if self.gossipless >= self.config.gossipless_threshold {
            self.interval_ms =
                (self.interval_ms + self.config.slowdown_ms).min(self.config.max_interval_ms);
            self.gossipless = 0;
            self.stats.slowdowns.inc();
        }
    }

    /// New information arrived: snap the interval back to base.
    fn learned_news(&mut self) {
        self.reset_interval();
        self.gossipless = 0;
    }

    fn reset_interval(&mut self) {
        if self.interval_ms != self.config.base_interval_ms {
            self.stats.interval_resets.inc();
        }
        self.interval_ms = self.config.base_interval_ms;
    }
}
