//! Gossip protocol configuration.

use crate::TimeMs;
use serde::{Deserialize, Serialize};

/// Which dissemination algorithm a peer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// PlanetP's combined algorithm: push rumoring + pull anti-entropy
    /// every `anti_entropy_every` rounds + partial anti-entropy
    /// piggybacked on rumor replies.
    PlanetP,
    /// PlanetP without the partial anti-entropy component — the paper's
    /// "LAN-NPA" ablation (Fig 4a).
    PlanetPNoPartialAE,
    /// Push anti-entropy every round — the paper's "LAN-AE" baseline
    /// (Fig 2), in the style of Name Dropper / Bayou / Deno.
    AntiEntropyOnly,
}

impl Algorithm {
    /// Does this algorithm piggyback partial anti-entropy ids?
    pub fn partial_ae(self) -> bool {
        matches!(self, Algorithm::PlanetP)
    }
}

/// Tunables for the gossip engine. Defaults are the paper's settings
/// (§3 and Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossipConfig {
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// Base gossiping interval T_g (paper: 30 s).
    pub base_interval_ms: TimeMs,
    /// Maximum interval the adaptive slow-down may reach (Table 2: 60 s;
    /// §3's prose mentions 2 minutes — both are reachable via config).
    pub max_interval_ms: TimeMs,
    /// Slow-down constant added to the interval (paper: 5 s).
    pub slowdown_ms: TimeMs,
    /// Gossip-less threshold: identical-directory contacts required
    /// before slowing down (paper: 2).
    pub gossipless_threshold: u32,
    /// Perform anti-entropy instead of rumoring every this many rounds
    /// (paper: every tenth round).
    pub anti_entropy_every: u32,
    /// Stop spreading a rumor after this many *consecutive* contacts
    /// that already knew it (Demers et al.'s counter variant; the paper
    /// leaves n unspecified — 2 reproduces their convergence times).
    pub rumor_death_n: u32,
    /// Number of recently-retired rumor ids piggybacked for partial
    /// anti-entropy ("a small number m", §3).
    pub partial_ae_ids: usize,
    /// Drop a peer from the directory after it has been continuously
    /// offline for this long (T_Dead, §3).
    pub t_dead_ms: TimeMs,
    /// Bandwidth-aware peer selection (§7.2 "Joining of new members"):
    /// fast peers gossip with fast peers, slow with slow.
    pub bandwidth_aware: bool,
    /// Probability that a fast peer rumors to a slow peer when
    /// bandwidth-aware (paper: 1%).
    pub fast_to_slow_prob: f64,
    /// Gossip Bloom filter *diffs* instead of full filters whenever a
    /// delta chain is available ("PlanetP sends diffs of the Bloom
    /// filters to save bandwidth", §7.2). Receivers that cannot apply a
    /// chain pull the full filter, so turning this off only changes
    /// wire cost, never convergence.
    pub delta_updates: bool,
    /// Longest delta chain kept per subject (and therefore sent in one
    /// rumor). A receiver more than this many versions behind falls
    /// back to the full filter — which is cheaper anyway once the
    /// summed steps approach the full size.
    pub max_delta_chain: usize,
}

impl Default for GossipConfig {
    fn default() -> Self {
        Self {
            algorithm: Algorithm::PlanetP,
            base_interval_ms: 30_000,
            max_interval_ms: 60_000,
            slowdown_ms: 5_000,
            gossipless_threshold: 2,
            anti_entropy_every: 10,
            rumor_death_n: 2,
            partial_ae_ids: 8,
            t_dead_ms: 7 * 24 * 3600 * 1000,
            bandwidth_aware: false,
            fast_to_slow_prob: 0.01,
            delta_updates: true,
            max_delta_chain: 8,
        }
    }
}

impl GossipConfig {
    /// Paper defaults with a different base gossip interval (the DSL-10 /
    /// DSL-30 / DSL-60 scenarios vary T_g).
    pub fn with_interval(interval_ms: TimeMs) -> Self {
        Self {
            base_interval_ms: interval_ms,
            max_interval_ms: interval_ms * 2,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GossipConfig::default();
        assert_eq!(c.base_interval_ms, 30_000);
        assert_eq!(c.slowdown_ms, 5_000);
        assert_eq!(c.gossipless_threshold, 2);
        assert_eq!(c.anti_entropy_every, 10);
        assert_eq!(c.algorithm, Algorithm::PlanetP);
        assert!(c.delta_updates, "diffs are the default wire form (§7.2)");
        assert_eq!(c.max_delta_chain, 8);
    }

    #[test]
    fn partial_ae_flag() {
        assert!(Algorithm::PlanetP.partial_ae());
        assert!(!Algorithm::PlanetPNoPartialAE.partial_ae());
        assert!(!Algorithm::AntiEntropyOnly.partial_ae());
    }

    #[test]
    fn with_interval_scales_max() {
        let c = GossipConfig::with_interval(10_000);
        assert_eq!(c.base_interval_ms, 10_000);
        assert_eq!(c.max_interval_ms, 20_000);
    }
}
