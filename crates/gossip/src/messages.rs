//! Gossip protocol messages and their wire-size model.
//!
//! Sizes follow Table 2 of the paper: 3-byte message header, 48-byte
//! peer summary, 6-byte Bloom filter summary, and payload sizes carried
//! by the rumors themselves. The discrete-event simulator charges these
//! sizes against link bandwidth; the live runtime serializes the real
//! thing.

use crate::rumor::{Payload, Rumor, RumorId};
use crate::PeerId;
use serde::{Deserialize, Serialize};

/// Per-message fixed header (Table 2: "Message header size 3 bytes").
pub const HEADER_BYTES: usize = 3;
/// Per-peer summary in anti-entropy summaries (Table 2: 48 bytes).
pub const PEER_SUMMARY_BYTES: usize = 48;
/// Per-peer Bloom filter summary in anti-entropy summaries (Table 2: 6 bytes).
pub const BF_SUMMARY_BYTES: usize = 6;
/// One rumor id in a partial anti-entropy piggyback (subject + versions).
pub const RUMOR_ID_BYTES: usize = 16;

/// Compact per-peer line of an anti-entropy summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerSummary {
    /// Which peer the line describes.
    pub subject: PeerId,
    /// Membership incarnation known to the sender.
    pub status_version: u64,
    /// Bloom filter version known to the sender.
    pub bloom_version: u32,
}

/// Full per-peer state sent when anti-entropy finds the requester stale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerState<P: Payload> {
    /// Which peer the state describes.
    pub subject: PeerId,
    /// Membership incarnation.
    pub status_version: u64,
    /// Bloom filter version.
    pub bloom_version: u32,
    /// The Bloom filter itself (absent if the subject never shared one).
    pub payload: Option<P>,
}

impl<P: Payload> PeerState<P> {
    fn wire_bytes(&self) -> usize {
        PEER_SUMMARY_BYTES + self.payload.as_ref().map_or(0, Payload::wire_bytes)
    }
}

/// A gossip protocol message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message<P: Payload> {
    /// Push rumoring: the sender's active rumors.
    Rumor {
        /// Rumors being spread.
        rumors: Vec<Rumor<P>>,
    },
    /// Reply to `Rumor`: which rumors the receiver already knew (for the
    /// sender's death counters), plus the receiver's recently-retired
    /// rumor ids (partial anti-entropy; empty when disabled).
    RumorAck {
        /// `already_knew[i]` corresponds to `rumors[i]` of the request.
        already_knew: Vec<bool>,
        /// Ids of the last `m` rumors the responder retired.
        recent_ids: Vec<RumorId>,
    },
    /// Partial anti-entropy pull: request full state for these subjects.
    Pull {
        /// Rumor ids (subjects + versions) the sender is missing.
        ids: Vec<RumorId>,
    },
    /// Reply to `Pull`.
    PullReply {
        /// Full state for the pulled subjects.
        entries: Vec<PeerState<P>>,
    },
    /// Cheap idle-round exchange: the sender's directory digest. An
    /// identical target answers `AeEqual`; a differing one answers
    /// `AeRecent` with its recent rumor ids so the sender can pull just
    /// the latest changes (the partial-anti-entropy mechanism applied to
    /// the idle path).
    AePing {
        /// Digest of the sender's directory content.
        digest: u64,
    },
    /// Reply to `AePing` when directories differ: recently active /
    /// retired rumor ids, tens of bytes.
    AeRecent {
        /// Recent rumor ids known to the responder.
        ids: Vec<RumorId>,
    },
    /// Pull anti-entropy request; carries the sender's directory digest
    /// so an identical target can answer with a tiny `AeEqual`.
    AeRequest {
        /// Digest of the sender's directory content.
        digest: u64,
    },
    /// Anti-entropy short-circuit: directories already match.
    AeEqual,
    /// Anti-entropy summary of the responder's entire directory — the
    /// expensive message whose size grows with community size.
    AeSummary {
        /// One line per known peer.
        entries: Vec<PeerSummary>,
    },
    /// Request full state for subjects the requester found stale.
    AePull {
        /// Subjects to fetch.
        subjects: Vec<PeerId>,
    },
    /// Reply with the requested full state.
    AeReply {
        /// Full entries for the pulled subjects.
        entries: Vec<PeerState<P>>,
    },
    /// Push anti-entropy (the `AntiEntropyOnly` baseline): the sender's
    /// whole directory summary, unsolicited.
    AePush {
        /// One line per peer the sender knows.
        entries: Vec<PeerSummary>,
        /// Digest so the receiver can skip the pull when identical.
        digest: u64,
    },
}

impl<P: Payload> Message<P> {
    /// Bytes this message occupies on the wire under the Table 2 model.
    pub fn wire_bytes(&self) -> usize {
        HEADER_BYTES
            + match self {
                Message::Rumor { rumors } => rumors.iter().map(Rumor::wire_bytes).sum(),
                Message::RumorAck {
                    already_knew,
                    recent_ids,
                } => {
                    // Known flags pack to a bit each, rounded up.
                    already_knew.len().div_ceil(8) + recent_ids.len() * RUMOR_ID_BYTES
                }
                Message::Pull { ids } => ids.len() * RUMOR_ID_BYTES,
                Message::PullReply { entries } => entries.iter().map(PeerState::wire_bytes).sum(),
                Message::AePing { .. } => 8,
                Message::AeRecent { ids } => ids.len() * RUMOR_ID_BYTES,
                Message::AeRequest { .. } => 8,
                Message::AeEqual => 0,
                Message::AeSummary { entries } | Message::AePush { entries, .. } => {
                    entries.len() * (PEER_SUMMARY_BYTES + BF_SUMMARY_BYTES)
                }
                Message::AePull { subjects } => subjects.len() * 4,
                Message::AeReply { entries } => entries.iter().map(PeerState::wire_bytes).sum(),
            }
    }

    /// Short tag for stats/tracing.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Message::Rumor { .. } => "rumor",
            Message::RumorAck { .. } => "rumor_ack",
            Message::Pull { .. } => "pull",
            Message::PullReply { .. } => "pull_reply",
            Message::AePing { .. } => "ae_ping",
            Message::AeRecent { .. } => "ae_recent",
            Message::AeRequest { .. } => "ae_request",
            Message::AeEqual => "ae_equal",
            Message::AeSummary { .. } => "ae_summary",
            Message::AePull { .. } => "ae_pull",
            Message::AeReply { .. } => "ae_reply",
            Message::AePush { .. } => "ae_push",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rumor::{RumorKind, RumorPayload, SizedPayload};

    fn rumor(bytes: usize) -> Rumor<SizedPayload> {
        Rumor {
            id: RumorId {
                subject: 1,
                status_version: 1,
                bloom_version: 1,
            },
            kind: RumorKind::BloomUpdate,
            payload: Some(RumorPayload::Full(SizedPayload {
                bytes: bytes as u32,
            })),
        }
    }

    #[test]
    fn rumor_message_size() {
        let m: Message<SizedPayload> = Message::Rumor {
            rumors: vec![rumor(3000)],
        };
        // header + peer summary + payload
        assert_eq!(m.wire_bytes(), 3 + 48 + 3000);
    }

    #[test]
    fn ae_summary_scales_with_community_size() {
        let entries: Vec<PeerSummary> = (0..1000)
            .map(|i| PeerSummary {
                subject: i,
                status_version: 1,
                bloom_version: 1,
            })
            .collect();
        let m: Message<SizedPayload> = Message::AeSummary { entries };
        assert_eq!(m.wire_bytes(), 3 + 1000 * 54);
    }

    #[test]
    fn partial_ae_piggyback_is_tens_of_bytes() {
        let m: Message<SizedPayload> = Message::RumorAck {
            already_knew: vec![true, false],
            recent_ids: (0..4)
                .map(|i| RumorId {
                    subject: i,
                    status_version: 1,
                    bloom_version: 0,
                })
                .collect(),
        };
        let b = m.wire_bytes();
        assert!(b < 100, "{b} bytes");
    }

    #[test]
    fn ae_equal_is_tiny() {
        let m: Message<SizedPayload> = Message::AeEqual;
        assert_eq!(m.wire_bytes(), 3);
    }
}
