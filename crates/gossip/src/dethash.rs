//! Deterministic hashing for protocol state.
//!
//! `std::collections::HashMap` seeds its hasher from OS entropy, so
//! iteration order differs between *runs* even with identical inputs.
//! Gossip target selection draws candidates from map iteration order, so
//! simulations would not be reproducible. All protocol maps therefore
//! use this fixed-seed FxHash-style hasher: same insertions, same
//! layout, same iteration order, every run.
//!
//! HashDoS is not a concern here: keys are internal peer ids, not
//! attacker-controlled strings.

use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiply-xor hasher with a fixed seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetHasher {
    state: u64,
}

const K: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state.rotate_left(5) ^ u64::from(b)).wrapping_mul(K);
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.state = (self.state.rotate_left(5) ^ u64::from(i)).wrapping_mul(K);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state.rotate_left(5) ^ i).wrapping_mul(K);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// Deterministic map state.
pub type DetState = BuildHasherDefault<DetHasher>;

/// A `HashMap` with run-to-run deterministic iteration order.
pub type DetHashMap<K, V> = std::collections::HashMap<K, V, DetState>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_insertions_same_iteration_order() {
        let build = || {
            let mut m: DetHashMap<u32, u32> = DetHashMap::default();
            for i in 0..1000 {
                m.insert(i * 7 % 991, i);
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn distributes_keys() {
        use std::hash::BuildHasher;
        let s = DetState::default();
        let h = |x: u32| s.hash_one(x);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u32 {
            seen.insert(h(i));
        }
        assert_eq!(seen.len(), 1000, "collisions in tiny key space");
    }
}
