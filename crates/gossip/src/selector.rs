//! Gossip target selection.
//!
//! Default PlanetP picks a uniformly random peer believed to be online.
//! The bandwidth-aware variant (§7.2) divides peers into Fast
//! (≥ 512 Kbps) and Slow (modem) classes:
//!
//! - a **fast** peer rumoring picks a slow target with probability 1%
//!   and a fast target otherwise;
//! - a **fast** peer doing anti-entropy always picks a fast target;
//! - a **slow** peer rumoring always picks a slow target — unless it is
//!   the *source* of the rumor, in which case it picks a fast initial
//!   target so the news escapes the slow pool quickly;
//! - a **slow** peer doing anti-entropy picks uniformly.

use crate::directory::{Directory, SpeedClass};
use crate::rumor::Payload;
use crate::PeerId;
use rand::rngs::SmallRng;
use rand::seq::IndexedRandom;
use rand::Rng;

/// Why a target is being selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionPurpose {
    /// Forwarding rumors this peer heard from elsewhere.
    RumorForward,
    /// Spreading a rumor this peer originated.
    RumorSource,
    /// Anti-entropy exchange.
    AntiEntropy,
}

/// Pick a gossip target from the peers believed online, excluding
/// `self_id`. Returns `None` when no candidate exists.
pub fn pick_target<P: Payload>(
    dir: &Directory<P>,
    self_id: PeerId,
    self_speed: SpeedClass,
    purpose: SelectionPurpose,
    bandwidth_aware: bool,
    fast_to_slow_prob: f64,
    rng: &mut SmallRng,
) -> Option<PeerId> {
    let mut fast: Vec<PeerId> = Vec::new();
    let mut slow: Vec<PeerId> = Vec::new();
    for id in dir.believed_online() {
        if id == self_id {
            continue;
        }
        match dir.get(id).map(|e| e.speed) {
            Some(SpeedClass::Fast) => fast.push(id),
            Some(SpeedClass::Slow) => slow.push(id),
            None => {}
        }
    }
    if fast.is_empty() && slow.is_empty() {
        return None;
    }
    if !bandwidth_aware {
        return uniform(&fast, &slow, rng);
    }
    match (self_speed, purpose) {
        // Fast rumoring: binary decision, slow pool with small probability.
        (SpeedClass::Fast, SelectionPurpose::RumorForward | SelectionPurpose::RumorSource) => {
            let want_slow = rng.random_bool(fast_to_slow_prob.clamp(0.0, 1.0));
            pick_preferring(
                if want_slow {
                    (&slow, &fast)
                } else {
                    (&fast, &slow)
                },
                rng,
            )
        }
        // Fast anti-entropy: always fast.
        (SpeedClass::Fast, SelectionPurpose::AntiEntropy) => pick_preferring((&fast, &slow), rng),
        // Slow forwarding: always slow (never stall a fast peer).
        (SpeedClass::Slow, SelectionPurpose::RumorForward) => pick_preferring((&slow, &fast), rng),
        // Slow *source*: initial target is fast so the rumor escapes.
        (SpeedClass::Slow, SelectionPurpose::RumorSource) => pick_preferring((&fast, &slow), rng),
        // Slow anti-entropy: uniform.
        (SpeedClass::Slow, SelectionPurpose::AntiEntropy) => uniform(&fast, &slow, rng),
    }
}

fn uniform(fast: &[PeerId], slow: &[PeerId], rng: &mut SmallRng) -> Option<PeerId> {
    let total = fast.len() + slow.len();
    if total == 0 {
        return None;
    }
    let i = rng.random_range(0..total);
    Some(if i < fast.len() {
        fast[i]
    } else {
        slow[i - fast.len()]
    })
}

/// Pick from the preferred pool, falling back to the other if empty.
fn pick_preferring(
    (preferred, fallback): (&[PeerId], &[PeerId]),
    rng: &mut SmallRng,
) -> Option<PeerId> {
    preferred
        .choose(rng)
        .or_else(|| fallback.choose(rng))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::{DirEntry, PeerStatus};
    use crate::rumor::SizedPayload;
    use rand::SeedableRng;

    fn dir(fast: &[PeerId], slow: &[PeerId]) -> Directory<SizedPayload> {
        let mut d = Directory::new();
        for &id in fast {
            d.insert(id, entry(SpeedClass::Fast));
        }
        for &id in slow {
            d.insert(id, entry(SpeedClass::Slow));
        }
        d
    }

    fn entry(speed: SpeedClass) -> DirEntry<SizedPayload> {
        DirEntry {
            status_version: 1,
            bloom_version: 0,
            payload: None,
            status: PeerStatus::Online,
            speed,
        }
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn excludes_self_and_offline() {
        let mut d = dir(&[1, 2], &[]);
        d.mark_offline(2, 0);
        let mut r = rng();
        for _ in 0..20 {
            let t = pick_target(
                &d,
                1,
                SpeedClass::Fast,
                SelectionPurpose::RumorForward,
                false,
                0.01,
                &mut r,
            );
            assert_eq!(t, None, "only self and an offline peer exist");
        }
    }

    #[test]
    fn uniform_reaches_everyone() {
        let d = dir(&[1, 2, 3], &[4, 5]);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(
                pick_target(
                    &d,
                    1,
                    SpeedClass::Fast,
                    SelectionPurpose::RumorForward,
                    false,
                    0.01,
                    &mut r,
                )
                .unwrap(),
            );
        }
        assert_eq!(seen.len(), 4, "{seen:?}");
    }

    #[test]
    fn bandwidth_aware_fast_rarely_picks_slow() {
        let d = dir(&[1, 2, 3], &[4, 5, 6]);
        let mut r = rng();
        let slow_picks = (0..2000)
            .filter(|_| {
                let t = pick_target(
                    &d,
                    1,
                    SpeedClass::Fast,
                    SelectionPurpose::RumorForward,
                    true,
                    0.01,
                    &mut r,
                )
                .unwrap();
                t >= 4
            })
            .count();
        // Expect ~1% = ~20 of 2000; allow generous slack.
        assert!(slow_picks < 100, "slow picked {slow_picks}/2000 times");
    }

    #[test]
    fn bandwidth_aware_fast_ae_never_slow() {
        let d = dir(&[1, 2], &[3, 4]);
        let mut r = rng();
        for _ in 0..200 {
            let t = pick_target(
                &d,
                1,
                SpeedClass::Fast,
                SelectionPurpose::AntiEntropy,
                true,
                0.01,
                &mut r,
            )
            .unwrap();
            assert!(t == 2, "fast AE must target fast, got {t}");
        }
    }

    #[test]
    fn slow_forward_targets_slow_but_source_targets_fast() {
        let d = dir(&[1, 2], &[3, 4]);
        let mut r = rng();
        for _ in 0..100 {
            let fwd = pick_target(
                &d,
                3,
                SpeedClass::Slow,
                SelectionPurpose::RumorForward,
                true,
                0.01,
                &mut r,
            )
            .unwrap();
            assert_eq!(fwd, 4, "slow forward stays slow");
            let src = pick_target(
                &d,
                3,
                SpeedClass::Slow,
                SelectionPurpose::RumorSource,
                true,
                0.01,
                &mut r,
            )
            .unwrap();
            assert!(src <= 2, "slow source goes fast, got {src}");
        }
    }

    #[test]
    fn falls_back_when_preferred_pool_empty() {
        let d = dir(&[], &[3, 4]);
        let mut r = rng();
        let t = pick_target(
            &d,
            3,
            SpeedClass::Slow,
            SelectionPurpose::RumorSource,
            true,
            0.01,
            &mut r,
        );
        assert_eq!(t, Some(4), "no fast peers: fall back to slow");
    }
}
