//! Per-engine protocol counters.

use serde::{Deserialize, Serialize};

/// Counters a gossip engine maintains about its own behaviour. Network
/// byte accounting lives in the simulator (which owns the link model);
/// these track protocol-level decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Gossip rounds executed (ticks that produced an action).
    pub rounds: u64,
    /// Rumor messages sent.
    pub rumor_msgs_sent: u64,
    /// Anti-entropy requests sent (pull AE) or pushes (baseline).
    pub ae_msgs_sent: u64,
    /// Rumors this peer originated (its own join/rejoin/update events).
    pub rumors_originated: u64,
    /// Rumors learned from other peers (via rumor push).
    pub rumors_learned_push: u64,
    /// Updates learned via partial anti-entropy pulls.
    pub rumors_learned_partial_ae: u64,
    /// Updates learned via full anti-entropy.
    pub rumors_learned_ae: u64,
    /// Rumors retired by the death counter.
    pub rumors_retired: u64,
    /// Times the interval was slowed down.
    pub slowdowns: u64,
    /// Times the interval snapped back to base.
    pub interval_resets: u64,
    /// Contact failures observed (target marked offline).
    pub contact_failures: u64,
    /// Contact failures that did not yet exhaust the caller's failure
    /// budget for the peer (suspect phase: counted, directory
    /// untouched).
    pub contact_suspects: u64,
    /// Suspect or offline peers that answered again and were marked
    /// back online.
    pub contact_recoveries: u64,
}
