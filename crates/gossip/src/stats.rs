//! Per-engine protocol counters.
//!
//! [`EngineCounters`] holds the live `planetp-obs` handles the engine
//! records into; [`EngineStats`] is the frozen, serde-friendly view that
//! existing callers (tests, the simulator's reports, the live node's
//! stats RPC) consume. Every engine starts with a private
//! [`planetp_obs::Registry`]; a driver that wants one registry across
//! subsystems (the live node, the simulator) re-homes the counters with
//! [`EngineCounters::attach`].

use planetp_obs::{names, Counter, CounterFamily, Registry};
use serde::{Deserialize, Serialize};

use crate::messages::Message;
use crate::rumor::Payload;

/// Counters a gossip engine maintains about its own behaviour. Network
/// byte accounting lives in the simulator (which owns the link model);
/// these track protocol-level decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Gossip rounds executed (ticks that produced an action).
    pub rounds: u64,
    /// Rumor messages sent.
    pub rumor_msgs_sent: u64,
    /// Anti-entropy requests sent (pull AE) or pushes (baseline).
    pub ae_msgs_sent: u64,
    /// Rumors this peer originated (its own join/rejoin/update events).
    pub rumors_originated: u64,
    /// Rumors learned from other peers (via rumor push).
    pub rumors_learned_push: u64,
    /// Updates learned via partial anti-entropy pulls.
    pub rumors_learned_partial_ae: u64,
    /// Updates learned via full anti-entropy.
    pub rumors_learned_ae: u64,
    /// Rumors retired by the death counter.
    pub rumors_retired: u64,
    /// Times the interval was slowed down.
    pub slowdowns: u64,
    /// Times the interval snapped back to base.
    pub interval_resets: u64,
    /// Contact failures observed (target marked offline).
    pub contact_failures: u64,
    /// Contact failures that did not yet exhaust the caller's failure
    /// budget for the peer (suspect phase: counted, directory
    /// untouched).
    pub contact_suspects: u64,
    /// Suspect or offline peers that answered again and were marked
    /// back online.
    pub contact_recoveries: u64,
    /// Bloom-update rumors sent as delta chains.
    pub deltas_sent: u64,
    /// Delta chains applied to this peer's directory.
    pub deltas_applied: u64,
    /// Delta chains that could not be applied (full filter pulled).
    pub delta_chain_breaks: u64,
    /// Bloom-update rumors sent full because no usable chain existed.
    pub delta_full_fallbacks: u64,
    /// Wire bytes saved by delta rumors versus their full form.
    pub delta_bytes_saved: u64,
}

/// Live metric handles the engine records into. Cloning shares the
/// underlying atomics (a cloned engine keeps contributing to the same
/// registry).
#[derive(Debug, Clone)]
pub struct EngineCounters {
    registry: Registry,
    pub(crate) rounds: Counter,
    pub(crate) rumor_msgs_sent: Counter,
    pub(crate) ae_msgs_sent: Counter,
    pub(crate) rumors_originated: Counter,
    pub(crate) rumors_learned_push: Counter,
    pub(crate) rumors_learned_partial_ae: Counter,
    pub(crate) rumors_learned_ae: Counter,
    pub(crate) rumors_retired: Counter,
    pub(crate) slowdowns: Counter,
    pub(crate) interval_resets: Counter,
    pub(crate) contact_failures: Counter,
    pub(crate) contact_suspects: Counter,
    pub(crate) contact_recoveries: Counter,
    pub(crate) delta_sent: Counter,
    pub(crate) delta_applied: Counter,
    pub(crate) delta_chain_breaks: Counter,
    pub(crate) delta_full_fallbacks: Counter,
    pub(crate) delta_bytes_saved: Counter,
    msgs_out: CounterFamily,
    msgs_in: CounterFamily,
    bytes_out: CounterFamily,
    bytes_in: CounterFamily,
}

impl Default for EngineCounters {
    fn default() -> Self {
        Self::in_registry(&Registry::new())
    }
}

impl EngineCounters {
    /// Build all handles inside `registry`.
    pub fn in_registry(registry: &Registry) -> Self {
        Self {
            registry: registry.clone(),
            rounds: registry.counter(names::GOSSIP_ROUNDS),
            rumor_msgs_sent: registry.counter("gossip.msgs_out.rumor"),
            ae_msgs_sent: registry.counter("gossip.ae_msgs_sent"),
            rumors_originated: registry.counter(names::GOSSIP_RUMORS_ORIGINATED),
            rumors_learned_push: registry.counter(names::GOSSIP_LEARNED_PUSH),
            rumors_learned_partial_ae: registry.counter(names::GOSSIP_LEARNED_PARTIAL_AE),
            rumors_learned_ae: registry.counter(names::GOSSIP_LEARNED_AE),
            rumors_retired: registry.counter(names::GOSSIP_RUMORS_RETIRED),
            slowdowns: registry.counter(names::GOSSIP_SLOWDOWNS),
            interval_resets: registry.counter(names::GOSSIP_INTERVAL_RESETS),
            contact_failures: registry.counter(names::GOSSIP_CONTACT_FAILURES),
            contact_suspects: registry.counter(names::GOSSIP_CONTACT_SUSPECTS),
            contact_recoveries: registry.counter(names::GOSSIP_CONTACT_RECOVERIES),
            delta_sent: registry.counter(names::GOSSIP_DELTA_SENT),
            delta_applied: registry.counter(names::GOSSIP_DELTA_APPLIED),
            delta_chain_breaks: registry.counter(names::GOSSIP_DELTA_CHAIN_BREAKS),
            delta_full_fallbacks: registry.counter(names::GOSSIP_DELTA_FULL_FALLBACKS),
            delta_bytes_saved: registry.counter(names::GOSSIP_DELTA_BYTES_SAVED),
            msgs_out: registry.counter_family(names::GOSSIP_MSGS_OUT),
            msgs_in: registry.counter_family(names::GOSSIP_MSGS_IN),
            bytes_out: registry.counter_family(names::GOSSIP_BYTES_OUT),
            bytes_in: registry.counter_family(names::GOSSIP_BYTES_IN),
        }
    }

    /// Re-home these counters into `registry`, carrying accumulated
    /// counts over (an engine bumps `rumors_originated` during
    /// construction, before any driver can attach a shared registry).
    pub fn attach(&mut self, registry: &Registry) {
        let mut fresh = Self::in_registry(registry);
        fresh.rounds.add(self.rounds.get());
        fresh.rumor_msgs_sent.add(self.rumor_msgs_sent.get());
        fresh.ae_msgs_sent.add(self.ae_msgs_sent.get());
        fresh.rumors_originated.add(self.rumors_originated.get());
        fresh
            .rumors_learned_push
            .add(self.rumors_learned_push.get());
        fresh
            .rumors_learned_partial_ae
            .add(self.rumors_learned_partial_ae.get());
        fresh.rumors_learned_ae.add(self.rumors_learned_ae.get());
        fresh.rumors_retired.add(self.rumors_retired.get());
        fresh.slowdowns.add(self.slowdowns.get());
        fresh.interval_resets.add(self.interval_resets.get());
        fresh.contact_failures.add(self.contact_failures.get());
        fresh.contact_suspects.add(self.contact_suspects.get());
        fresh.contact_recoveries.add(self.contact_recoveries.get());
        fresh.delta_sent.add(self.delta_sent.get());
        fresh.delta_applied.add(self.delta_applied.get());
        fresh.delta_chain_breaks.add(self.delta_chain_breaks.get());
        fresh
            .delta_full_fallbacks
            .add(self.delta_full_fallbacks.get());
        fresh.delta_bytes_saved.add(self.delta_bytes_saved.get());
        *self = fresh;
    }

    /// The registry these counters live in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Frozen view, field-compatible with the pre-obs `EngineStats`.
    pub fn view(&self) -> EngineStats {
        EngineStats {
            rounds: self.rounds.get(),
            rumor_msgs_sent: self.rumor_msgs_sent.get(),
            ae_msgs_sent: self.ae_msgs_sent.get(),
            rumors_originated: self.rumors_originated.get(),
            rumors_learned_push: self.rumors_learned_push.get(),
            rumors_learned_partial_ae: self.rumors_learned_partial_ae.get(),
            rumors_learned_ae: self.rumors_learned_ae.get(),
            rumors_retired: self.rumors_retired.get(),
            slowdowns: self.slowdowns.get(),
            interval_resets: self.interval_resets.get(),
            contact_failures: self.contact_failures.get(),
            contact_suspects: self.contact_suspects.get(),
            contact_recoveries: self.contact_recoveries.get(),
            deltas_sent: self.delta_sent.get(),
            deltas_applied: self.delta_applied.get(),
            delta_chain_breaks: self.delta_chain_breaks.get(),
            delta_full_fallbacks: self.delta_full_fallbacks.get(),
            delta_bytes_saved: self.delta_bytes_saved.get(),
        }
    }

    /// Record an outbound message: per-class count and Table 2 bytes.
    /// The `rumor` class counter doubles as `rumor_msgs_sent`, so rumor
    /// pushes are counted exactly once.
    pub fn on_message_out<P: Payload>(&self, msg: &Message<P>) {
        let kind = msg.kind_name();
        self.msgs_out.inc(kind);
        self.bytes_out.add(kind, msg.wire_bytes() as u64);
    }

    /// Record an inbound message: per-class count and Table 2 bytes.
    pub fn on_message_in<P: Payload>(&self, msg: &Message<P>) {
        let kind = msg.kind_name();
        self.msgs_in.inc(kind);
        self.bytes_in.add(kind, msg.wire_bytes() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rumor::SizedPayload;

    #[test]
    fn view_mirrors_handles() {
        let c = EngineCounters::default();
        c.rounds.add(3);
        c.rumors_retired.inc();
        let v = c.view();
        assert_eq!(v.rounds, 3);
        assert_eq!(v.rumors_retired, 1);
        assert_eq!(v.rumor_msgs_sent, 0);
    }

    #[test]
    fn attach_carries_counts_into_shared_registry() {
        let mut c = EngineCounters::default();
        c.rumors_originated.inc();
        let shared = Registry::new();
        c.attach(&shared);
        c.rumors_originated.inc();
        assert_eq!(
            shared.snapshot().counter(names::GOSSIP_RUMORS_ORIGINATED),
            2
        );
        assert_eq!(c.view().rumors_originated, 2);
    }

    #[test]
    fn message_recording_counts_class_and_bytes() {
        let c = EngineCounters::default();
        let m: Message<SizedPayload> = Message::AeEqual;
        c.on_message_out(&m);
        c.on_message_out(&m);
        c.on_message_in(&m);
        let snap = c.registry().snapshot();
        assert_eq!(snap.counter("gossip.msgs_out.ae_equal"), 2);
        assert_eq!(snap.counter("gossip.bytes_out.ae_equal"), 6); // 2 × header
        assert_eq!(snap.counter("gossip.msgs_in.ae_equal"), 1);
    }

    #[test]
    fn rumor_class_counter_is_rumor_msgs_sent() {
        let c = EngineCounters::default();
        let m: Message<SizedPayload> = Message::Rumor { rumors: Vec::new() };
        c.on_message_out(&m);
        assert_eq!(c.view().rumor_msgs_sent, 1);
    }
}
