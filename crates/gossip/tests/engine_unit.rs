//! Focused unit tests of `GossipEngine` message handling — exercising
//! the state machine one message at a time, without a driver loop.

use planetp_gossip::{
    Algorithm, DeltaChain, DirEntry, Directory, GossipConfig, GossipEngine, Message, PeerStatus,
    RumorId, RumorKind, RumorPayload, SizedDelta, SizedPayload, SpeedClass,
};

type Engine = GossipEngine<SizedPayload>;
type Msg = Message<SizedPayload>;

fn entry(sv: u64, bv: u32, bytes: u32) -> DirEntry<SizedPayload> {
    DirEntry {
        status_version: sv,
        bloom_version: bv,
        payload: Some(SizedPayload { bytes }),
        status: PeerStatus::Online,
        speed: SpeedClass::Fast,
    }
}

fn engine_of(n: u32, me: u32) -> Engine {
    let mut dir = Directory::new();
    for id in 0..n {
        dir.insert(id, entry(1, 1, 3000));
    }
    Engine::with_directory(me, SpeedClass::Fast, GossipConfig::default(), 7, dir)
}

fn rumor(subject: u32, sv: u64, bv: u32, bytes: u32) -> planetp_gossip::Rumor<SizedPayload> {
    planetp_gossip::Rumor {
        id: RumorId {
            subject,
            status_version: sv,
            bloom_version: bv,
        },
        kind: RumorKind::BloomUpdate,
        payload: Some(RumorPayload::Full(SizedPayload { bytes })),
    }
}

fn delta_rumor(
    subject: u32,
    sv: u64,
    base: u32,
    steps: Vec<SizedDelta>,
) -> planetp_gossip::Rumor<SizedPayload> {
    let end = base + steps.len() as u32;
    planetp_gossip::Rumor {
        id: RumorId {
            subject,
            status_version: sv,
            bloom_version: end,
        },
        kind: RumorKind::BloomUpdate,
        payload: Some(RumorPayload::Delta(DeltaChain {
            base_bloom_version: base,
            steps,
        })),
    }
}

fn tick_until_rumor(e: &mut Engine) -> Msg {
    for round in 1..100 {
        if let Some(out) = e.tick(round * 30_000) {
            if matches!(out.message, Msg::Rumor { .. }) {
                return out.message;
            }
        }
    }
    panic!("no rumor round within 100 ticks");
}

#[test]
fn fresh_rumor_is_applied_acked_and_respread() {
    let mut e = engine_of(5, 0);
    let responses = e.handle_message(
        1,
        Msg::Rumor {
            rumors: vec![rumor(2, 1, 2, 3100)],
        },
        0,
    );
    // Ack says "did not know".
    assert_eq!(responses.len(), 1);
    let (to, msg) = &responses[0];
    assert_eq!(*to, 1);
    match msg {
        Msg::RumorAck { already_knew, .. } => assert_eq!(already_knew, &[false]),
        other => panic!("expected ack, got {other:?}"),
    }
    // Directory updated and the rumor is now active here too.
    let entry = e.directory().get(2).expect("entry exists");
    assert_eq!(entry.bloom_version, 2);
    assert_eq!(entry.payload, Some(SizedPayload { bytes: 3100 }));
    assert_eq!(e.active_rumors(), 1);
}

#[test]
fn stale_rumor_acked_as_known_and_ignored() {
    let mut e = engine_of(5, 0);
    let responses = e.handle_message(
        1,
        Msg::Rumor {
            rumors: vec![rumor(2, 1, 1, 3000)],
        },
        0,
    );
    match &responses[0].1 {
        Msg::RumorAck { already_knew, .. } => assert_eq!(already_knew, &[true]),
        other => panic!("expected ack, got {other:?}"),
    }
    assert_eq!(e.active_rumors(), 0);
}

#[test]
fn rumor_about_unknown_peer_creates_entry() {
    let mut e = engine_of(3, 0);
    e.handle_message(
        1,
        Msg::Rumor {
            rumors: vec![rumor(99, 1, 1, 4000)],
        },
        0,
    );
    assert!(e.directory().get(99).is_some());
    assert_eq!(e.directory().len(), 4);
}

#[test]
fn ack_known_twice_retires_rumor() {
    let mut e = engine_of(6, 0);
    e.local_update(SizedPayload { bytes: 3000 });
    assert_eq!(e.active_rumors(), 1);
    let mut acked = 0;
    // Tick until two rumor pushes have been acked "already known".
    for round in 1..100 {
        let now = round * 30_000;
        let Some(out) = e.tick(now) else { continue };
        if let Msg::Rumor { rumors } = &out.message {
            let n = rumors.len();
            let _ = e.handle_message(
                out.target,
                Msg::RumorAck {
                    already_knew: vec![true; n],
                    recent_ids: vec![],
                },
                now,
            );
            acked += 1;
            if acked == 2 {
                break;
            }
        }
    }
    assert_eq!(
        e.active_rumors(),
        0,
        "rumor must die after {} consecutive known-acks",
        GossipConfig::default().rumor_death_n
    );
}

#[test]
fn fresh_ack_resets_death_counter() {
    let mut e = engine_of(6, 0);
    e.local_update(SizedPayload { bytes: 3000 });
    let mut pushes = 0;
    for round in 1..200 {
        let now = round * 30_000;
        let Some(out) = e.tick(now) else { continue };
        if let Msg::Rumor { rumors } = &out.message {
            let n = rumors.len();
            // Alternate known / not-known: counter must never reach 2.
            let knew = pushes % 2 == 0;
            let _ = e.handle_message(
                out.target,
                Msg::RumorAck {
                    already_knew: vec![knew; n],
                    recent_ids: vec![],
                },
                now,
            );
            pushes += 1;
            if pushes >= 10 {
                break;
            }
        }
    }
    assert_eq!(
        e.active_rumors(),
        1,
        "alternating acks must keep the rumor hot"
    );
}

#[test]
fn partial_ae_pull_fetches_missing_news() {
    let mut e = engine_of(5, 0);
    // Peer 1 tells us (via an ack's piggyback) that peer 3 reached v2.
    let missing = RumorId {
        subject: 3,
        status_version: 1,
        bloom_version: 2,
    };
    // First push something so the engine has a pending exchange; the
    // ack path accepts piggybacks regardless of pending state.
    let responses = e.handle_message(
        1,
        Msg::RumorAck {
            already_knew: vec![],
            recent_ids: vec![missing],
        },
        0,
    );
    assert_eq!(responses.len(), 1);
    match &responses[0].1 {
        Msg::Pull { ids } => assert_eq!(ids, &[missing]),
        other => panic!("expected pull, got {other:?}"),
    }
    // The pull reply teaches us the new state.
    let state = planetp_gossip::messages::PeerState {
        subject: 3,
        status_version: 1,
        bloom_version: 2,
        payload: Some(SizedPayload { bytes: 3333 }),
    };
    let out = e.handle_message(
        1,
        Msg::PullReply {
            entries: vec![state],
        },
        0,
    );
    assert!(out.is_empty());
    assert!(e.knows(missing));
}

#[test]
fn ae_request_equal_digest_answers_ae_equal() {
    let mut a = engine_of(4, 0);
    let digest = a.directory().digest();
    let responses = a.handle_message(1, Msg::AeRequest { digest }, 0);
    assert_eq!(responses[0].1, Msg::AeEqual);
}

#[test]
fn ae_request_different_digest_sends_summary() {
    let mut a = engine_of(4, 0);
    let responses = a.handle_message(1, Msg::AeRequest { digest: 0xdead }, 0);
    match &responses[0].1 {
        Msg::AeSummary { entries } => assert_eq!(entries.len(), 4),
        other => panic!("expected summary, got {other:?}"),
    }
}

#[test]
fn ae_summary_triggers_pull_of_stale_subjects_only() {
    let mut a = engine_of(4, 0);
    use planetp_gossip::messages::PeerSummary;
    let entries = vec![
        PeerSummary {
            subject: 1,
            status_version: 1,
            bloom_version: 1,
        }, // same
        PeerSummary {
            subject: 2,
            status_version: 1,
            bloom_version: 5,
        }, // newer
        PeerSummary {
            subject: 3,
            status_version: 1,
            bloom_version: 0,
        }, // older
    ];
    let responses = a.handle_message(1, Msg::AeSummary { entries }, 0);
    match &responses[0].1 {
        Msg::AePull { subjects } => assert_eq!(subjects, &[2]),
        other => panic!("expected pull, got {other:?}"),
    }
}

#[test]
fn ae_pull_returns_full_state() {
    let mut a = engine_of(4, 0);
    let responses = a.handle_message(
        2,
        Msg::AePull {
            subjects: vec![1, 3],
        },
        0,
    );
    match &responses[0].1 {
        Msg::AeReply { entries } => {
            assert_eq!(entries.len(), 2);
            assert!(entries.iter().all(|e| e.payload.is_some()));
        }
        other => panic!("expected reply, got {other:?}"),
    }
}

#[test]
fn suspect_counts_without_touching_directory_and_recovery_clears_offline() {
    let mut a = engine_of(4, 0);
    a.note_contact_suspect(2);
    assert_eq!(a.stats().contact_suspects, 1);
    assert_eq!(
        a.directory().get(2).map(|e| e.status),
        Some(PeerStatus::Online),
        "a suspect contact must not mark the peer offline"
    );
    a.on_contact_failed(2, 100);
    assert!(matches!(
        a.directory().get(2).map(|e| e.status),
        Some(PeerStatus::Offline { .. })
    ));
    a.on_contact_recovered(2);
    assert_eq!(
        a.directory().get(2).map(|e| e.status),
        Some(PeerStatus::Online)
    );
    assert_eq!(a.stats().contact_recoveries, 1);
}

#[test]
fn hearing_from_a_peer_marks_it_online() {
    let mut a = engine_of(4, 0);
    a.on_contact_failed(2, 100);
    assert!(matches!(
        a.directory().get(2).map(|e| e.status),
        Some(PeerStatus::Offline { .. })
    ));
    a.handle_message(2, Msg::AeEqual, 200);
    assert_eq!(
        a.directory().get(2).map(|e| e.status),
        Some(PeerStatus::Online)
    );
}

#[test]
fn interval_slows_after_threshold_equal_contacts() {
    let cfg = GossipConfig::default();
    let mut a = engine_of(4, 0);
    assert_eq!(a.current_interval(), cfg.base_interval_ms);
    for _ in 0..cfg.gossipless_threshold {
        a.handle_message(1, Msg::AeEqual, 0);
    }
    assert_eq!(a.current_interval(), cfg.base_interval_ms + cfg.slowdown_ms);
    // A rumor snaps it back.
    a.handle_message(
        1,
        Msg::Rumor {
            rumors: vec![rumor(2, 1, 9, 100)],
        },
        0,
    );
    assert_eq!(a.current_interval(), cfg.base_interval_ms);
}

#[test]
fn interval_never_exceeds_max() {
    let cfg = GossipConfig::default();
    let mut a = engine_of(4, 0);
    for _ in 0..1000 {
        a.handle_message(1, Msg::AeEqual, 0);
    }
    assert_eq!(a.current_interval(), cfg.max_interval_ms);
}

#[test]
fn anti_entropy_only_mode_pushes_summaries() {
    let cfg = GossipConfig {
        algorithm: Algorithm::AntiEntropyOnly,
        ..GossipConfig::default()
    };
    let mut dir = Directory::new();
    for id in 0..3 {
        dir.insert(id, entry(1, 1, 3000));
    }
    let mut a = Engine::with_directory(0, SpeedClass::Fast, cfg, 5, dir);
    let out = a.tick(30_000).expect("has peers");
    assert!(matches!(out.message, Msg::AePush { .. }));
}

#[test]
fn ping_equal_and_recent_paths() {
    let mut a = engine_of(4, 0);
    let digest = a.directory().digest();
    let r = a.handle_message(1, Msg::AePing { digest }, 0);
    assert_eq!(r[0].1, Msg::AeEqual);
    // Unequal digest: reply carries recent ids (possibly empty here,
    // since nothing was ever retired — engine replies AeRecent anyway).
    let r = a.handle_message(1, Msg::AePing { digest: digest ^ 1 }, 0);
    assert!(matches!(r[0].1, Msg::AeRecent { .. }));
}

#[test]
fn ae_recent_pulls_only_unknown_ids() {
    let mut a = engine_of(4, 0);
    let known = RumorId {
        subject: 1,
        status_version: 1,
        bloom_version: 1,
    };
    let unknown = RumorId {
        subject: 2,
        status_version: 1,
        bloom_version: 7,
    };
    let r = a.handle_message(
        1,
        Msg::AeRecent {
            ids: vec![known, unknown],
        },
        0,
    );
    match &r[0].1 {
        Msg::Pull { ids } => assert_eq!(ids, &[unknown]),
        other => panic!("expected pull, got {other:?}"),
    }
    // Nothing unknown -> no response at all.
    let r = a.handle_message(1, Msg::AeRecent { ids: vec![known] }, 0);
    assert!(r.is_empty());
}

#[test]
fn tick_with_no_known_peers_does_nothing() {
    let mut solo = Engine::new(
        0,
        SpeedClass::Fast,
        GossipConfig::default(),
        1,
        Some(SizedPayload { bytes: 100 }),
        None,
    );
    assert!(solo.tick(30_000).is_none());
}

#[test]
fn delta_rumor_applies_against_stored_base() {
    let mut e = engine_of(5, 0); // everyone at (sv 1, bv 1, 3000 bytes)
    let r = delta_rumor(
        2,
        1,
        1,
        vec![SizedDelta {
            bytes: 120,
            full_bytes: 3100,
        }],
    );
    let responses = e.handle_message(1, Msg::Rumor { rumors: vec![r] }, 0);
    assert_eq!(
        responses.len(),
        1,
        "no fallback pull for an applicable chain"
    );
    match &responses[0].1 {
        Msg::RumorAck { already_knew, .. } => assert_eq!(already_knew, &[false]),
        other => panic!("expected ack, got {other:?}"),
    }
    let entry = e.directory().get(2).expect("entry exists");
    assert_eq!(entry.bloom_version, 2);
    assert_eq!(entry.payload, Some(SizedPayload { bytes: 3100 }));
    assert_eq!(e.stats().deltas_applied, 1);
    // The applied chain is kept (for forwarding and for the live
    // runtime's in-place query-mirror updates).
    assert_eq!(
        e.delta_steps(2, 1, 1, 2),
        Some(vec![SizedDelta {
            bytes: 120,
            full_bytes: 3100
        }])
    );
}

#[test]
fn receiver_applies_matching_suffix_of_longer_chain() {
    let mut e = engine_of(5, 0); // entry at bv 1
                                 // Chain covers 0 -> 3; we sit at 1, so only steps 1->2 and 2->3 apply.
    let steps = vec![
        SizedDelta {
            bytes: 100,
            full_bytes: 3050,
        },
        SizedDelta {
            bytes: 110,
            full_bytes: 3150,
        },
        SizedDelta {
            bytes: 130,
            full_bytes: 3250,
        },
    ];
    e.handle_message(
        1,
        Msg::Rumor {
            rumors: vec![delta_rumor(2, 1, 0, steps)],
        },
        0,
    );
    let entry = e.directory().get(2).expect("entry exists");
    assert_eq!(entry.bloom_version, 3);
    assert_eq!(entry.payload, Some(SizedPayload { bytes: 3250 }));
}

#[test]
fn broken_delta_chain_pulls_full_state_and_leaves_directory_untouched() {
    let mut e = engine_of(5, 0); // entry at bv 1
                                 // Chain base 3 needs a bv-3 entry we do not have.
    let r = delta_rumor(
        2,
        1,
        3,
        vec![SizedDelta {
            bytes: 90,
            full_bytes: 3400,
        }],
    );
    let id = r.id;
    let responses = e.handle_message(1, Msg::Rumor { rumors: vec![r] }, 0);
    // Directory untouched...
    let entry = e.directory().get(2).expect("entry exists");
    assert_eq!(entry.bloom_version, 1);
    assert_eq!(entry.payload, Some(SizedPayload { bytes: 3000 }));
    assert_eq!(e.stats().delta_chain_breaks, 1);
    // ...ack says "did not know", and the same batched exchange pulls
    // the full state from the sender.
    assert_eq!(responses.len(), 2);
    match &responses[0].1 {
        Msg::RumorAck { already_knew, .. } => assert_eq!(already_knew, &[false]),
        other => panic!("expected ack, got {other:?}"),
    }
    match &responses[1].1 {
        Msg::Pull { ids } => assert_eq!(ids, &[id]),
        other => panic!("expected fallback pull, got {other:?}"),
    }
    // The sender's PullReply completes the recovery.
    let state = planetp_gossip::messages::PeerState {
        subject: 2,
        status_version: 1,
        bloom_version: 4,
        payload: Some(SizedPayload { bytes: 3400 }),
    };
    e.handle_message(
        1,
        Msg::PullReply {
            entries: vec![state],
        },
        0,
    );
    assert!(e.knows(id));
    assert_eq!(
        e.directory().get(2).expect("entry exists").payload,
        Some(SizedPayload { bytes: 3400 })
    );
}

#[test]
fn local_update_delta_rumors_the_diff_not_the_filter() {
    let mut e = engine_of(6, 0);
    e.local_update_delta(
        SizedPayload { bytes: 3100 },
        SizedDelta {
            bytes: 150,
            full_bytes: 3100,
        },
    );
    let Msg::Rumor { rumors } = tick_until_rumor(&mut e) else {
        unreachable!()
    };
    assert_eq!(rumors.len(), 1);
    match &rumors[0].payload {
        Some(RumorPayload::Delta(chain)) => {
            assert_eq!(chain.base_bloom_version, 1);
            assert_eq!(
                chain.steps,
                vec![SizedDelta {
                    bytes: 150,
                    full_bytes: 3100
                }]
            );
        }
        other => panic!("expected delta payload, got {other:?}"),
    }
    // rumor id + chain header + step, far below the 48 + 3100 full form.
    assert_eq!(rumors[0].wire_bytes(), 16 + 8 + 150);
    let s = e.stats();
    assert_eq!(s.deltas_sent, 1);
    assert_eq!(s.delta_full_fallbacks, 0);
    assert_eq!(s.delta_bytes_saved, (48 + 3100 - (16 + 8 + 150)) as u64);
}

#[test]
fn plain_local_update_falls_back_to_full_payload() {
    let mut e = engine_of(6, 0);
    e.local_update(SizedPayload { bytes: 3100 });
    let Msg::Rumor { rumors } = tick_until_rumor(&mut e) else {
        unreachable!()
    };
    assert!(matches!(
        rumors[0].payload,
        Some(RumorPayload::Full(SizedPayload { bytes: 3100 }))
    ));
    let s = e.stats();
    assert_eq!(s.deltas_sent, 0);
    assert_eq!(s.delta_full_fallbacks, 1);
}

#[test]
fn oversized_delta_chain_falls_back_to_full_form() {
    let mut e = engine_of(6, 0);
    // A "diff" bigger than the full filter: sending it would waste bytes.
    e.local_update_delta(
        SizedPayload { bytes: 3100 },
        SizedDelta {
            bytes: 50_000,
            full_bytes: 3100,
        },
    );
    let Msg::Rumor { rumors } = tick_until_rumor(&mut e) else {
        unreachable!()
    };
    assert!(matches!(rumors[0].payload, Some(RumorPayload::Full(_))));
    assert_eq!(e.stats().deltas_sent, 0);
    assert_eq!(e.stats().delta_full_fallbacks, 1);
}

#[test]
fn delta_updates_off_always_sends_full() {
    let cfg = GossipConfig {
        delta_updates: false,
        ..GossipConfig::default()
    };
    let mut dir = Directory::new();
    for id in 0..6 {
        dir.insert(id, entry(1, 1, 3000));
    }
    let mut e = Engine::with_directory(0, SpeedClass::Fast, cfg, 7, dir);
    e.local_update_delta(
        SizedPayload { bytes: 3100 },
        SizedDelta {
            bytes: 150,
            full_bytes: 3100,
        },
    );
    let Msg::Rumor { rumors } = tick_until_rumor(&mut e) else {
        unreachable!()
    };
    assert!(matches!(rumors[0].payload, Some(RumorPayload::Full(_))));
    let s = e.stats();
    assert_eq!(s.deltas_sent, 0);
    assert_eq!(
        s.delta_full_fallbacks, 0,
        "fallbacks are only counted when delta mode is on"
    );
}

#[test]
fn applied_chain_is_forwarded_as_a_delta() {
    let mut e = engine_of(6, 0);
    let r = delta_rumor(
        2,
        1,
        1,
        vec![SizedDelta {
            bytes: 120,
            full_bytes: 3100,
        }],
    );
    e.handle_message(1, Msg::Rumor { rumors: vec![r] }, 0);
    let Msg::Rumor { rumors } = tick_until_rumor(&mut e) else {
        unreachable!()
    };
    assert_eq!(rumors.len(), 1);
    assert!(
        matches!(
            &rumors[0].payload,
            Some(RumorPayload::Delta(c)) if c.base_bloom_version == 1
        ),
        "a receiver that applied a chain forwards the chain, not the full filter"
    );
}

#[test]
fn consecutive_local_deltas_chain_up_and_cover_stragglers() {
    let mut e = engine_of(5, 0);
    for i in 0..3u32 {
        e.local_update_delta(
            SizedPayload {
                bytes: 3000 + 100 * (i + 1),
            },
            SizedDelta {
                bytes: 100,
                full_bytes: 3000 + 100 * (i + 1),
            },
        );
    }
    // Chain now covers 1 -> 4; stragglers at any covered version are served.
    assert_eq!(e.delta_steps(0, 1, 1, 4).map(|s| s.len()), Some(3));
    assert_eq!(e.delta_steps(0, 1, 3, 4).map(|s| s.len()), Some(1));
    assert_eq!(e.delta_steps(0, 1, 0, 4), None, "below the chain base");
    let Msg::Rumor { rumors } = tick_until_rumor(&mut e) else {
        unreachable!()
    };
    match &rumors[0].payload {
        Some(RumorPayload::Delta(c)) => {
            assert_eq!(c.base_bloom_version, 1);
            assert_eq!(c.steps.len(), 3);
        }
        other => panic!("expected 3-step chain, got {other:?}"),
    }
}

#[test]
fn full_payload_news_invalidates_stored_chain() {
    let mut e = engine_of(5, 0);
    let r = delta_rumor(
        2,
        1,
        1,
        vec![SizedDelta {
            bytes: 120,
            full_bytes: 3100,
        }],
    );
    e.handle_message(1, Msg::Rumor { rumors: vec![r] }, 0);
    assert!(e.delta_steps(2, 1, 1, 2).is_some());
    // A full-payload rumor jumps the subject to bv 5: the chain no
    // longer ends at the entry's version and must be dropped.
    e.handle_message(
        1,
        Msg::Rumor {
            rumors: vec![rumor(2, 1, 5, 3500)],
        },
        0,
    );
    assert_eq!(e.delta_steps(2, 1, 1, 2), None);
}

#[test]
fn chain_length_is_capped_and_base_advances() {
    let cfg = GossipConfig {
        max_delta_chain: 2,
        ..GossipConfig::default()
    };
    let mut dir = Directory::new();
    for id in 0..4 {
        dir.insert(id, entry(1, 1, 3000));
    }
    let mut e = Engine::with_directory(0, SpeedClass::Fast, cfg, 7, dir);
    for _ in 0..5 {
        e.local_update_delta(
            SizedPayload { bytes: 3100 },
            SizedDelta {
                bytes: 100,
                full_bytes: 3100,
            },
        );
    }
    // bv is now 6; only the last two steps (4->5, 5->6) are kept.
    assert_eq!(e.delta_steps(0, 1, 4, 6).map(|s| s.len()), Some(2));
    assert_eq!(e.delta_steps(0, 1, 3, 6), None);
}

#[test]
fn joiner_first_action_is_anti_entropy_to_bootstrap() {
    let mut j = Engine::new(
        5,
        SpeedClass::Fast,
        GossipConfig::default(),
        1,
        Some(SizedPayload { bytes: 16_000 }),
        Some((0, SpeedClass::Fast)),
    );
    let out = j.tick(30_000).expect("bootstrap known");
    assert_eq!(out.target, 0);
    assert!(
        matches!(out.message, Msg::AeRequest { .. }),
        "joiner must immediately download the directory"
    );
    // Next tick spreads the Join rumor.
    let out = j.tick(60_000).expect("still has the bootstrap");
    assert!(matches!(out.message, Msg::Rumor { .. }));
}
