//! Focused unit tests of `GossipEngine` message handling — exercising
//! the state machine one message at a time, without a driver loop.

use planetp_gossip::{
    Algorithm, DirEntry, Directory, GossipConfig, GossipEngine, Message,
    PeerStatus, RumorId, RumorKind, SizedPayload, SpeedClass,
};

type Engine = GossipEngine<SizedPayload>;
type Msg = Message<SizedPayload>;

fn entry(sv: u64, bv: u32, bytes: u32) -> DirEntry<SizedPayload> {
    DirEntry {
        status_version: sv,
        bloom_version: bv,
        payload: Some(SizedPayload { bytes }),
        status: PeerStatus::Online,
        speed: SpeedClass::Fast,
    }
}

fn engine_of(n: u32, me: u32) -> Engine {
    let mut dir = Directory::new();
    for id in 0..n {
        dir.insert(id, entry(1, 1, 3000));
    }
    Engine::with_directory(me, SpeedClass::Fast, GossipConfig::default(), 7, dir)
}

fn rumor(subject: u32, sv: u64, bv: u32, bytes: u32) -> planetp_gossip::Rumor<SizedPayload> {
    planetp_gossip::Rumor {
        id: RumorId { subject, status_version: sv, bloom_version: bv },
        kind: RumorKind::BloomUpdate,
        payload: Some(SizedPayload { bytes }),
    }
}

#[test]
fn fresh_rumor_is_applied_acked_and_respread() {
    let mut e = engine_of(5, 0);
    let responses = e.handle_message(
        1,
        Msg::Rumor { rumors: vec![rumor(2, 1, 2, 3100)] },
        0,
    );
    // Ack says "did not know".
    assert_eq!(responses.len(), 1);
    let (to, msg) = &responses[0];
    assert_eq!(*to, 1);
    match msg {
        Msg::RumorAck { already_knew, .. } => assert_eq!(already_knew, &[false]),
        other => panic!("expected ack, got {other:?}"),
    }
    // Directory updated and the rumor is now active here too.
    let entry = e.directory().get(2).expect("entry exists");
    assert_eq!(entry.bloom_version, 2);
    assert_eq!(entry.payload, Some(SizedPayload { bytes: 3100 }));
    assert_eq!(e.active_rumors(), 1);
}

#[test]
fn stale_rumor_acked_as_known_and_ignored() {
    let mut e = engine_of(5, 0);
    let responses =
        e.handle_message(1, Msg::Rumor { rumors: vec![rumor(2, 1, 1, 3000)] }, 0);
    match &responses[0].1 {
        Msg::RumorAck { already_knew, .. } => assert_eq!(already_knew, &[true]),
        other => panic!("expected ack, got {other:?}"),
    }
    assert_eq!(e.active_rumors(), 0);
}

#[test]
fn rumor_about_unknown_peer_creates_entry() {
    let mut e = engine_of(3, 0);
    e.handle_message(1, Msg::Rumor { rumors: vec![rumor(99, 1, 1, 4000)] }, 0);
    assert!(e.directory().get(99).is_some());
    assert_eq!(e.directory().len(), 4);
}

#[test]
fn ack_known_twice_retires_rumor() {
    let mut e = engine_of(6, 0);
    e.local_update(SizedPayload { bytes: 3000 });
    assert_eq!(e.active_rumors(), 1);
    let mut acked = 0;
    // Tick until two rumor pushes have been acked "already known".
    for round in 1..100 {
        let now = round * 30_000;
        let Some(out) = e.tick(now) else { continue };
        if let Msg::Rumor { rumors } = &out.message {
            let n = rumors.len();
            let _ = e.handle_message(
                out.target,
                Msg::RumorAck { already_knew: vec![true; n], recent_ids: vec![] },
                now,
            );
            acked += 1;
            if acked == 2 {
                break;
            }
        }
    }
    assert_eq!(
        e.active_rumors(),
        0,
        "rumor must die after {} consecutive known-acks",
        GossipConfig::default().rumor_death_n
    );
}

#[test]
fn fresh_ack_resets_death_counter() {
    let mut e = engine_of(6, 0);
    e.local_update(SizedPayload { bytes: 3000 });
    let mut pushes = 0;
    for round in 1..200 {
        let now = round * 30_000;
        let Some(out) = e.tick(now) else { continue };
        if let Msg::Rumor { rumors } = &out.message {
            let n = rumors.len();
            // Alternate known / not-known: counter must never reach 2.
            let knew = pushes % 2 == 0;
            let _ = e.handle_message(
                out.target,
                Msg::RumorAck { already_knew: vec![knew; n], recent_ids: vec![] },
                now,
            );
            pushes += 1;
            if pushes >= 10 {
                break;
            }
        }
    }
    assert_eq!(e.active_rumors(), 1, "alternating acks must keep the rumor hot");
}

#[test]
fn partial_ae_pull_fetches_missing_news() {
    let mut e = engine_of(5, 0);
    // Peer 1 tells us (via an ack's piggyback) that peer 3 reached v2.
    let missing = RumorId { subject: 3, status_version: 1, bloom_version: 2 };
    // First push something so the engine has a pending exchange; the
    // ack path accepts piggybacks regardless of pending state.
    let responses = e.handle_message(
        1,
        Msg::RumorAck { already_knew: vec![], recent_ids: vec![missing] },
        0,
    );
    assert_eq!(responses.len(), 1);
    match &responses[0].1 {
        Msg::Pull { ids } => assert_eq!(ids, &[missing]),
        other => panic!("expected pull, got {other:?}"),
    }
    // The pull reply teaches us the new state.
    let state = planetp_gossip::messages::PeerState {
        subject: 3,
        status_version: 1,
        bloom_version: 2,
        payload: Some(SizedPayload { bytes: 3333 }),
    };
    let out = e.handle_message(1, Msg::PullReply { entries: vec![state] }, 0);
    assert!(out.is_empty());
    assert!(e.knows(missing));
}

#[test]
fn ae_request_equal_digest_answers_ae_equal() {
    let mut a = engine_of(4, 0);
    let digest = a.directory().digest();
    let responses = a.handle_message(1, Msg::AeRequest { digest }, 0);
    assert_eq!(responses[0].1, Msg::AeEqual);
}

#[test]
fn ae_request_different_digest_sends_summary() {
    let mut a = engine_of(4, 0);
    let responses = a.handle_message(1, Msg::AeRequest { digest: 0xdead }, 0);
    match &responses[0].1 {
        Msg::AeSummary { entries } => assert_eq!(entries.len(), 4),
        other => panic!("expected summary, got {other:?}"),
    }
}

#[test]
fn ae_summary_triggers_pull_of_stale_subjects_only() {
    let mut a = engine_of(4, 0);
    use planetp_gossip::messages::PeerSummary;
    let entries = vec![
        PeerSummary { subject: 1, status_version: 1, bloom_version: 1 }, // same
        PeerSummary { subject: 2, status_version: 1, bloom_version: 5 }, // newer
        PeerSummary { subject: 3, status_version: 1, bloom_version: 0 }, // older
    ];
    let responses = a.handle_message(1, Msg::AeSummary { entries }, 0);
    match &responses[0].1 {
        Msg::AePull { subjects } => assert_eq!(subjects, &[2]),
        other => panic!("expected pull, got {other:?}"),
    }
}

#[test]
fn ae_pull_returns_full_state() {
    let mut a = engine_of(4, 0);
    let responses = a.handle_message(2, Msg::AePull { subjects: vec![1, 3] }, 0);
    match &responses[0].1 {
        Msg::AeReply { entries } => {
            assert_eq!(entries.len(), 2);
            assert!(entries.iter().all(|e| e.payload.is_some()));
        }
        other => panic!("expected reply, got {other:?}"),
    }
}

#[test]
fn suspect_counts_without_touching_directory_and_recovery_clears_offline() {
    let mut a = engine_of(4, 0);
    a.note_contact_suspect(2);
    assert_eq!(a.stats().contact_suspects, 1);
    assert_eq!(
        a.directory().get(2).map(|e| e.status),
        Some(PeerStatus::Online),
        "a suspect contact must not mark the peer offline"
    );
    a.on_contact_failed(2, 100);
    assert!(matches!(
        a.directory().get(2).map(|e| e.status),
        Some(PeerStatus::Offline { .. })
    ));
    a.on_contact_recovered(2);
    assert_eq!(a.directory().get(2).map(|e| e.status), Some(PeerStatus::Online));
    assert_eq!(a.stats().contact_recoveries, 1);
}

#[test]
fn hearing_from_a_peer_marks_it_online() {
    let mut a = engine_of(4, 0);
    a.on_contact_failed(2, 100);
    assert!(matches!(
        a.directory().get(2).map(|e| e.status),
        Some(PeerStatus::Offline { .. })
    ));
    a.handle_message(2, Msg::AeEqual, 200);
    assert_eq!(a.directory().get(2).map(|e| e.status), Some(PeerStatus::Online));
}

#[test]
fn interval_slows_after_threshold_equal_contacts() {
    let cfg = GossipConfig::default();
    let mut a = engine_of(4, 0);
    assert_eq!(a.current_interval(), cfg.base_interval_ms);
    for _ in 0..cfg.gossipless_threshold {
        a.handle_message(1, Msg::AeEqual, 0);
    }
    assert_eq!(a.current_interval(), cfg.base_interval_ms + cfg.slowdown_ms);
    // A rumor snaps it back.
    a.handle_message(1, Msg::Rumor { rumors: vec![rumor(2, 1, 9, 100)] }, 0);
    assert_eq!(a.current_interval(), cfg.base_interval_ms);
}

#[test]
fn interval_never_exceeds_max() {
    let cfg = GossipConfig::default();
    let mut a = engine_of(4, 0);
    for _ in 0..1000 {
        a.handle_message(1, Msg::AeEqual, 0);
    }
    assert_eq!(a.current_interval(), cfg.max_interval_ms);
}

#[test]
fn anti_entropy_only_mode_pushes_summaries() {
    let cfg = GossipConfig {
        algorithm: Algorithm::AntiEntropyOnly,
        ..GossipConfig::default()
    };
    let mut dir = Directory::new();
    for id in 0..3 {
        dir.insert(id, entry(1, 1, 3000));
    }
    let mut a = Engine::with_directory(0, SpeedClass::Fast, cfg, 5, dir);
    let out = a.tick(30_000).expect("has peers");
    assert!(matches!(out.message, Msg::AePush { .. }));
}

#[test]
fn ping_equal_and_recent_paths() {
    let mut a = engine_of(4, 0);
    let digest = a.directory().digest();
    let r = a.handle_message(1, Msg::AePing { digest }, 0);
    assert_eq!(r[0].1, Msg::AeEqual);
    // Unequal digest: reply carries recent ids (possibly empty here,
    // since nothing was ever retired — engine replies AeRecent anyway).
    let r = a.handle_message(1, Msg::AePing { digest: digest ^ 1 }, 0);
    assert!(matches!(r[0].1, Msg::AeRecent { .. }));
}

#[test]
fn ae_recent_pulls_only_unknown_ids() {
    let mut a = engine_of(4, 0);
    let known = RumorId { subject: 1, status_version: 1, bloom_version: 1 };
    let unknown = RumorId { subject: 2, status_version: 1, bloom_version: 7 };
    let r = a.handle_message(1, Msg::AeRecent { ids: vec![known, unknown] }, 0);
    match &r[0].1 {
        Msg::Pull { ids } => assert_eq!(ids, &[unknown]),
        other => panic!("expected pull, got {other:?}"),
    }
    // Nothing unknown -> no response at all.
    let r = a.handle_message(1, Msg::AeRecent { ids: vec![known] }, 0);
    assert!(r.is_empty());
}

#[test]
fn tick_with_no_known_peers_does_nothing() {
    let mut solo = Engine::new(
        0,
        SpeedClass::Fast,
        GossipConfig::default(),
        1,
        Some(SizedPayload { bytes: 100 }),
        None,
    );
    assert!(solo.tick(30_000).is_none());
}

#[test]
fn joiner_first_action_is_anti_entropy_to_bootstrap() {
    let mut j = Engine::new(
        5,
        SpeedClass::Fast,
        GossipConfig::default(),
        1,
        Some(SizedPayload { bytes: 16_000 }),
        Some((0, SpeedClass::Fast)),
    );
    let out = j.tick(30_000).expect("bootstrap known");
    assert_eq!(out.target, 0);
    assert!(
        matches!(out.message, Msg::AeRequest { .. }),
        "joiner must immediately download the directory"
    );
    // Next tick spreads the Join rumor.
    let out = j.tick(60_000).expect("still has the bootstrap");
    assert!(matches!(out.message, Msg::Rumor { .. }));
}
