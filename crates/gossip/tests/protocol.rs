//! Protocol-level tests: a synchronous harness delivers messages
//! instantly (no bandwidth model), validating convergence logic of the
//! gossip state machine itself.

use planetp_gossip::{
    Algorithm, DirEntry, Directory, GossipConfig, GossipEngine, PeerId, PeerStatus, RumorId,
    SizedPayload, SpeedClass, TimeMs,
};
use std::collections::HashMap;

type Engine = GossipEngine<SizedPayload>;

/// Synchronous test harness: each round, every online peer ticks once
/// and all resulting message chains resolve immediately.
struct Harness {
    engines: HashMap<PeerId, Engine>,
    online: HashMap<PeerId, bool>,
    now: TimeMs,
}

impl Harness {
    /// A stable community of `n` peers with mutually consistent
    /// directories.
    fn stable(n: u32, config: GossipConfig) -> Self {
        let mut dir: Directory<SizedPayload> = Directory::new();
        for id in 0..n {
            dir.insert(
                id,
                DirEntry {
                    status_version: 1,
                    bloom_version: 1,
                    payload: Some(SizedPayload { bytes: 3000 }),
                    status: PeerStatus::Online,
                    speed: SpeedClass::Fast,
                },
            );
        }
        let engines = (0..n)
            .map(|id| {
                (
                    id,
                    Engine::with_directory(
                        id,
                        SpeedClass::Fast,
                        config,
                        0xfeed + u64::from(id),
                        dir.clone(),
                    ),
                )
            })
            .collect();
        Self {
            engines,
            online: (0..n).map(|i| (i, true)).collect(),
            now: 0,
        }
    }

    /// Run one gossip round: every online peer ticks; message chains
    /// resolve depth-first and instantly.
    fn round(&mut self) {
        self.now += 30_000;
        let ids: Vec<PeerId> = {
            let mut v: Vec<PeerId> = self.engines.keys().copied().collect();
            v.sort_unstable();
            v
        };
        for id in ids {
            if !self.online[&id] {
                continue;
            }
            let outcome = {
                let e = self.engines.get_mut(&id).expect("engine exists");
                e.tick(self.now)
            };
            let Some(out) = outcome else { continue };
            self.deliver(id, out.target, out.message);
        }
    }

    fn deliver(&mut self, from: PeerId, to: PeerId, msg: planetp_gossip::Message<SizedPayload>) {
        if !self.online.get(&to).copied().unwrap_or(false) {
            self.engines
                .get_mut(&from)
                .expect("engine exists")
                .on_contact_failed(to, self.now);
            return;
        }
        let responses = self
            .engines
            .get_mut(&to)
            .expect("engine exists")
            .handle_message(from, msg, self.now);
        for (next_to, next_msg) in responses {
            self.deliver(to, next_to, next_msg);
        }
    }

    /// Do all online peers cover the given news?
    fn all_know(&self, id: RumorId) -> bool {
        self.engines
            .iter()
            .filter(|(pid, _)| self.online[pid])
            .all(|(_, e)| e.knows(id))
    }

    fn rounds_until_all_know(&mut self, id: RumorId, max_rounds: u32) -> Option<u32> {
        for r in 0..max_rounds {
            if self.all_know(id) {
                return Some(r);
            }
            self.round();
        }
        self.all_know(id).then_some(max_rounds)
    }
}

fn update_rumor_id(engine: &Engine) -> RumorId {
    let e = engine.directory().get(engine.id()).expect("self entry");
    RumorId {
        subject: engine.id(),
        status_version: e.status_version,
        bloom_version: e.bloom_version,
    }
}

#[test]
fn single_update_reaches_everyone() {
    let mut h = Harness::stable(50, GossipConfig::default());
    h.engines
        .get_mut(&0)
        .unwrap()
        .local_update(SizedPayload { bytes: 3000 });
    let id = update_rumor_id(&h.engines[&0]);
    let rounds = h.rounds_until_all_know(id, 40).expect("must converge");
    assert!(rounds <= 15, "converged in {rounds} rounds");
}

#[test]
fn update_converges_in_logarithmic_rounds() {
    // Propagation time should grow roughly logarithmically with n.
    let mut rounds_by_n = Vec::new();
    for n in [20u32, 80, 320] {
        let mut h = Harness::stable(n, GossipConfig::default());
        h.engines
            .get_mut(&0)
            .unwrap()
            .local_update(SizedPayload { bytes: 3000 });
        let id = update_rumor_id(&h.engines[&0]);
        let rounds = h.rounds_until_all_know(id, 100).expect("must converge");
        rounds_by_n.push(rounds);
    }
    // 16x community growth should not cost anywhere near 16x rounds.
    assert!(
        rounds_by_n[2] <= rounds_by_n[0] * 4 + 6,
        "rounds {rounds_by_n:?} not logarithmic-ish"
    );
}

#[test]
fn anti_entropy_only_also_converges() {
    let cfg = GossipConfig {
        algorithm: Algorithm::AntiEntropyOnly,
        ..GossipConfig::default()
    };
    let mut h = Harness::stable(30, cfg);
    h.engines
        .get_mut(&0)
        .unwrap()
        .local_update(SizedPayload { bytes: 3000 });
    let id = update_rumor_id(&h.engines[&0]);
    assert!(h.rounds_until_all_know(id, 80).is_some());
}

#[test]
fn no_partial_ae_still_converges() {
    let cfg = GossipConfig {
        algorithm: Algorithm::PlanetPNoPartialAE,
        ..GossipConfig::default()
    };
    let mut h = Harness::stable(30, cfg);
    h.engines
        .get_mut(&0)
        .unwrap()
        .local_update(SizedPayload { bytes: 3000 });
    let id = update_rumor_id(&h.engines[&0]);
    assert!(h.rounds_until_all_know(id, 80).is_some());
}

#[test]
fn new_member_join_spreads_and_downloads_directory() {
    let mut h = Harness::stable(20, GossipConfig::default());
    // Peer 100 joins via bootstrap contact 0.
    let joiner = Engine::new(
        100,
        SpeedClass::Fast,
        GossipConfig::default(),
        7,
        Some(SizedPayload { bytes: 16_000 }),
        Some((0, SpeedClass::Fast)),
    );
    h.engines.insert(100, joiner);
    h.online.insert(100, true);
    let join_id = RumorId {
        subject: 100,
        status_version: 1,
        bloom_version: 1,
    };
    let rounds = h.rounds_until_all_know(join_id, 60).expect("join spreads");
    assert!(rounds <= 30, "join took {rounds} rounds");
    // The joiner must have downloaded the whole directory.
    let joiner = &h.engines[&100];
    assert_eq!(joiner.directory().len(), 21);
    // And captured everyone's payloads via anti-entropy.
    let with_payload = joiner
        .directory()
        .iter()
        .filter(|(_, e)| e.payload.is_some())
        .count();
    assert_eq!(with_payload, 21);
}

#[test]
fn offline_peer_marked_and_rejoin_clears_it() {
    let mut h = Harness::stable(10, GossipConfig::default());
    h.online.insert(3, false);
    // Run rounds so someone eventually contacts 3 and fails.
    for _ in 0..20 {
        h.round();
    }
    let who_noticed = h
        .engines
        .iter()
        .filter(|(id, _)| h.online[id])
        .filter(|(_, e)| {
            matches!(
                e.directory().get(3).map(|en| en.status),
                Some(PeerStatus::Offline { .. })
            )
        })
        .count();
    assert!(who_noticed > 0, "someone must notice 3 is gone");

    // 3 comes back with no new content: a Rejoin rumor.
    h.online.insert(3, true);
    h.engines.get_mut(&3).unwrap().local_rejoin(None);
    let rid = update_rumor_id(&h.engines[&3]);
    assert!(h.rounds_until_all_know(rid, 60).is_some());
    // Everyone believes 3 is online again.
    for (id, e) in &h.engines {
        if h.online[id] {
            assert_eq!(
                e.directory().get(3).map(|en| en.status),
                Some(PeerStatus::Online),
                "peer {id}"
            );
        }
    }
}

#[test]
fn interval_adapts_up_in_quiescence_and_resets_on_news() {
    let cfg = GossipConfig::default();
    let mut h = Harness::stable(10, cfg);
    for _ in 0..30 {
        h.round();
    }
    let slowed = h
        .engines
        .values()
        .filter(|e| e.current_interval() > cfg.base_interval_ms)
        .count();
    assert!(slowed >= 8, "most peers should slow down, got {slowed}");
    let max = h
        .engines
        .values()
        .map(|e| e.current_interval())
        .max()
        .unwrap();
    assert!(max <= cfg.max_interval_ms);

    // News resets intervals as it spreads.
    h.engines
        .get_mut(&0)
        .unwrap()
        .local_update(SizedPayload { bytes: 3000 });
    let id = update_rumor_id(&h.engines[&0]);
    h.rounds_until_all_know(id, 40).expect("converges");
    // Everyone that heard the rumor message snapped back at some point.
    let reset_count: u64 = h.engines.values().map(|e| e.stats().interval_resets).sum();
    assert!(reset_count > 0);
}

#[test]
fn rumors_die_out_after_convergence() {
    let mut h = Harness::stable(20, GossipConfig::default());
    h.engines
        .get_mut(&0)
        .unwrap()
        .local_update(SizedPayload { bytes: 3000 });
    let id = update_rumor_id(&h.engines[&0]);
    h.rounds_until_all_know(id, 60).expect("converges");
    // Keep gossiping; active rumors must drain to zero.
    for _ in 0..30 {
        h.round();
    }
    let still_active: usize = h.engines.values().map(|e| e.active_rumors()).sum();
    assert_eq!(still_active, 0, "rumors must die after everyone knows");
}

#[test]
fn t_dead_expires_departed_peers() {
    let cfg = GossipConfig {
        t_dead_ms: 10 * 30_000,
        ..GossipConfig::default()
    };
    let mut h = Harness::stable(8, cfg);
    h.online.insert(5, false);
    for _ in 0..40 {
        h.round();
    }
    // Every live peer should eventually have dropped 5 from its
    // directory entirely.
    let dropped = h
        .engines
        .iter()
        .filter(|(id, _)| h.online[id])
        .filter(|(_, e)| e.directory().get(5).is_none())
        .count();
    assert_eq!(dropped, 7, "all live peers drop the dead one");
}

#[test]
fn concurrent_updates_all_converge() {
    let mut h = Harness::stable(40, GossipConfig::default());
    let mut ids = Vec::new();
    for origin in [0u32, 7, 13, 22, 39] {
        h.engines
            .get_mut(&origin)
            .unwrap()
            .local_update(SizedPayload { bytes: 3000 });
        ids.push(update_rumor_id(&h.engines[&origin]));
    }
    for _ in 0..60 {
        h.round();
        if ids.iter().all(|id| h.all_know(*id)) {
            break;
        }
    }
    for id in ids {
        assert!(h.all_know(id), "update from {} lost", id.subject);
    }
}

#[test]
fn supersession_spreads_latest_version() {
    let mut h = Harness::stable(20, GossipConfig::default());
    // Two updates from the same origin in quick succession: only the
    // second (superseding) version matters.
    h.engines
        .get_mut(&0)
        .unwrap()
        .local_update(SizedPayload { bytes: 1000 });
    h.round();
    h.engines
        .get_mut(&0)
        .unwrap()
        .local_update(SizedPayload { bytes: 2000 });
    let latest = update_rumor_id(&h.engines[&0]);
    assert!(h.rounds_until_all_know(latest, 60).is_some());
    for e in h.engines.values() {
        let entry = e.directory().get(0).unwrap();
        assert_eq!(entry.payload, Some(SizedPayload { bytes: 2000 }));
    }
}

#[test]
fn digest_equal_communities_stay_quiet() {
    let mut h = Harness::stable(10, GossipConfig::default());
    for _ in 0..5 {
        h.round();
    }
    // No updates ever: nobody should have learned anything.
    for e in h.engines.values() {
        assert_eq!(e.stats().rumors_learned_push, 0);
        assert_eq!(e.stats().rumors_learned_ae, 0);
    }
}
