//! Property-based tests of the gossip protocol: under arbitrary
//! sequences of updates, churn, and lossy rounds, the community must
//! never violate its core invariants and must converge once quiet.

use planetp_gossip::{
    DirEntry, Directory, GossipConfig, GossipEngine, Message, PeerId, PeerStatus, SizedPayload,
    SpeedClass,
};
use proptest::prelude::*;
use std::collections::HashMap;

type Engine = GossipEngine<SizedPayload>;

/// Random driver operations.
#[derive(Debug, Clone)]
enum Op {
    /// Run one gossip round for everyone online.
    Round,
    /// Peer (index % n) publishes a filter update.
    Update(u8),
    /// Toggle peer (index % n) offline/online.
    Toggle(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Round),
        1 => any::<u8>().prop_map(Op::Update),
        1 => any::<u8>().prop_map(Op::Toggle),
    ]
}

struct Driver {
    engines: HashMap<PeerId, Engine>,
    online: HashMap<PeerId, bool>,
    now: u64,
}

impl Driver {
    fn new(n: u32) -> Self {
        let mut dir: Directory<SizedPayload> = Directory::new();
        for id in 0..n {
            dir.insert(
                id,
                DirEntry {
                    status_version: 1,
                    bloom_version: 1,
                    payload: Some(SizedPayload { bytes: 3000 }),
                    status: PeerStatus::Online,
                    speed: SpeedClass::Fast,
                },
            );
        }
        let engines = (0..n)
            .map(|id| {
                (
                    id,
                    Engine::with_directory(
                        id,
                        SpeedClass::Fast,
                        GossipConfig::default(),
                        0xfeed + u64::from(id),
                        dir.clone(),
                    ),
                )
            })
            .collect();
        Self {
            engines,
            online: (0..n).map(|i| (i, true)).collect(),
            now: 0,
        }
    }

    fn n(&self) -> u32 {
        self.engines.len() as u32
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Round => self.round(),
            Op::Update(i) => {
                let id = u32::from(*i) % self.n();
                if self.online[&id] {
                    self.engines
                        .get_mut(&id)
                        .expect("engine exists")
                        .local_update(SizedPayload { bytes: 3000 });
                }
            }
            Op::Toggle(i) => {
                let id = u32::from(*i) % self.n();
                let was = self.online[&id];
                self.online.insert(id, !was);
                if was {
                    // went offline; nothing else to do
                } else {
                    self.engines
                        .get_mut(&id)
                        .expect("engine exists")
                        .local_rejoin(None);
                }
            }
        }
    }

    fn round(&mut self) {
        self.now += 30_000;
        let mut ids: Vec<PeerId> = self.engines.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            if !self.online[&id] {
                continue;
            }
            let out = self.engines.get_mut(&id).expect("exists").tick(self.now);
            if let Some(o) = out {
                self.deliver(id, o.target, o.message);
            }
        }
    }

    fn deliver(&mut self, from: PeerId, to: PeerId, msg: Message<SizedPayload>) {
        if !self.online.get(&to).copied().unwrap_or(false) {
            self.engines
                .get_mut(&from)
                .expect("exists")
                .on_contact_failed(to, self.now);
            return;
        }
        let responses = self
            .engines
            .get_mut(&to)
            .expect("exists")
            .handle_message(from, msg, self.now);
        for (t, m) in responses {
            self.deliver(to, t, m);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Version monotonicity: no sequence of operations may ever move a
    /// directory entry's versions backwards on any peer.
    #[test]
    fn versions_never_regress(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut d = Driver::new(8);
        let mut high: HashMap<(PeerId, PeerId), (u64, u32)> = HashMap::new();
        for op in &ops {
            d.apply(op);
            for (&holder, engine) in &d.engines {
                for (subject, e) in engine.directory().iter() {
                    let cur = (e.status_version, e.bloom_version);
                    let prev = high.entry((holder, subject)).or_insert(cur);
                    prop_assert!(
                        cur >= *prev,
                        "peer {holder} regressed {subject}: {prev:?} -> {cur:?}"
                    );
                    *prev = cur;
                }
            }
        }
    }

    /// Quiescent convergence: after arbitrary churn/update activity,
    /// a burst of quiet rounds with everyone online equalizes all
    /// directory digests.
    #[test]
    fn quiet_rounds_converge(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut d = Driver::new(8);
        for op in &ops {
            d.apply(op);
        }
        // Bring everyone back online (rejoin bumps their incarnation).
        let ids: Vec<PeerId> = d.engines.keys().copied().collect();
        for id in ids {
            if !d.online[&id] {
                d.online.insert(id, true);
                d.engines.get_mut(&id).expect("exists").local_rejoin(None);
            }
        }
        for _ in 0..120 {
            d.round();
        }
        let digests: Vec<u64> = d
            .engines
            .values()
            .map(|e| e.directory().digest())
            .collect();
        prop_assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "digests diverged after quiet period: {digests:?}"
        );
        // And all rumors must have drained.
        let active: usize = d.engines.values().map(|e| e.active_rumors()).sum();
        prop_assert_eq!(active, 0, "rumors still active after convergence");
    }

    /// Self-entry integrity: a peer's own directory entry always exists,
    /// is always online, and its versions only the peer itself bumps.
    #[test]
    fn self_entry_integrity(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut d = Driver::new(6);
        for op in &ops {
            d.apply(op);
            for (&id, engine) in &d.engines {
                let e = engine.directory().get(id);
                prop_assert!(e.is_some(), "peer {id} lost its own entry");
                prop_assert_eq!(
                    e.expect("checked").status,
                    PeerStatus::Online,
                    "peer {} believes itself offline", id
                );
            }
        }
    }
}
