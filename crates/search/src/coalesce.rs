//! Filter coalescing: trading accuracy for directory storage.
//!
//! "Peers can independently trade-off accuracy for storage. For
//! example, a peer may choose to combine the filters of several peers
//! to save space; the trade-off is that \[it\] must now contact this set
//! of peers whenever a query hits on this combined filter. This ...
//! is particularly useful for peers running on memory-constrained
//! devices" (§2, advantage 3).
//!
//! A [`CoalescedDirectory`] groups peers and stores one *union* filter
//! per group. Peer ranking degrades gracefully: a hit on a group filter
//! ranks the whole group (every member must be contacted), so fewer
//! groups mean less memory and more wasted contacts.

use crate::ipf::IpfTable;
use crate::types::PeerNo;
use planetp_bloom::{BloomFilter, HashedKey, ParamMismatch};

/// A memory-reduced view of the community's filters.
#[derive(Debug, Clone)]
pub struct CoalescedDirectory {
    /// One union filter per group.
    groups: Vec<(Vec<PeerNo>, BloomFilter)>,
    num_peers: usize,
}

impl CoalescedDirectory {
    /// Coalesce `filters` into groups of at most `group_size` peers
    /// (consecutive assignment). `group_size = 1` is the full-fidelity
    /// directory.
    ///
    /// # Panics
    /// Panics if `group_size` is 0 or the filters' parameters differ.
    pub fn build(filters: &[BloomFilter], group_size: usize) -> Self {
        match Self::try_build(filters, group_size) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Self::build`]: directory filters arrive from remote
    /// peers, so mismatched parameters are an input condition, not a
    /// bug. Groups built before the offending filter are discarded.
    ///
    /// # Panics
    /// Panics if `group_size` is 0 (a local configuration error).
    pub fn try_build(filters: &[BloomFilter], group_size: usize) -> Result<Self, ParamMismatch> {
        assert!(group_size > 0, "group size must be positive");
        let mut groups = Vec::new();
        for (gi, chunk) in filters.chunks(group_size).enumerate() {
            let mut merged = chunk[0].clone();
            for f in &chunk[1..] {
                merged.try_union_with(f)?;
            }
            let members: Vec<PeerNo> = (gi * group_size..gi * group_size + chunk.len()).collect();
            groups.push((members, merged));
        }
        Ok(Self {
            groups,
            num_peers: filters.len(),
        })
    }

    /// Number of stored filters (memory proxy).
    pub fn num_filters(&self) -> usize {
        self.groups.len()
    }

    /// Number of peers represented.
    pub fn num_peers(&self) -> usize {
        self.num_peers
    }

    /// Memory held by the filters, bytes.
    pub fn memory_bytes(&self) -> usize {
        self.groups.iter().map(|(_, f)| f.num_bits() / 8).sum()
    }

    /// IPF over the coalesced view: `N_t` counts *groups* whose filter
    /// contains the term, scaled to peer counts by group size — the
    /// estimate a memory-constrained peer would compute.
    pub fn ipf(&self, query_terms: &[String]) -> IpfTable {
        let filters: Vec<&BloomFilter> = self.groups.iter().map(|(_, f)| f).collect();
        IpfTable::compute(query_terms, &filters)
    }

    /// Candidate peers for a query: every member of every group whose
    /// union filter contains all query terms (conjunctive candidacy, as
    /// for exhaustive search). More coalescing ⇒ more false candidates.
    pub fn candidates(&self, query_terms: &[String]) -> Vec<PeerNo> {
        if query_terms.is_empty() {
            return Vec::new();
        }
        let keys: Vec<HashedKey> = query_terms.iter().map(|t| HashedKey::new(t)).collect();
        let mut out = Vec::new();
        for (members, filter) in &self.groups {
            if filter.count_hits_hashed(&keys) == keys.len() {
                out.extend_from_slice(members);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planetp_bloom::BloomParams;

    fn filter_with(terms: &[&str]) -> BloomFilter {
        let mut f = BloomFilter::new(BloomParams::for_capacity(1000, 1e-6));
        for t in terms {
            f.insert(t);
        }
        f
    }

    fn community() -> Vec<BloomFilter> {
        vec![
            filter_with(&["gossip"]),
            filter_with(&["bloom"]),
            filter_with(&["chord"]),
            filter_with(&["pastry"]),
            filter_with(&["tapestry"]),
            filter_with(&["oceanstore"]),
        ]
    }

    #[test]
    fn group_size_one_is_exact() {
        let filters = community();
        let d = CoalescedDirectory::build(&filters, 1);
        assert_eq!(d.num_filters(), 6);
        assert_eq!(d.candidates(&["gossip".into()]), vec![0]);
    }

    #[test]
    fn coalescing_saves_memory_but_widens_candidates() {
        let filters = community();
        let exact = CoalescedDirectory::build(&filters, 1);
        let halved = CoalescedDirectory::build(&filters, 2);
        let coarse = CoalescedDirectory::build(&filters, 3);
        assert!(halved.memory_bytes() < exact.memory_bytes());
        assert!(coarse.memory_bytes() < halved.memory_bytes());
        // "must now contact this set of peers whenever a query hits on
        // this combined filter": group of 2 containing "gossip" means
        // peers {0, 1} are candidates.
        assert_eq!(halved.candidates(&["gossip".into()]), vec![0, 1]);
        assert_eq!(coarse.candidates(&["gossip".into()]), vec![0, 1, 2]);
    }

    #[test]
    fn no_false_negatives_under_coalescing() {
        let filters = community();
        for gs in 1..=6 {
            let d = CoalescedDirectory::build(&filters, gs);
            for (peer, term) in [
                "gossip",
                "bloom",
                "chord",
                "pastry",
                "tapestry",
                "oceanstore",
            ]
            .iter()
            .enumerate()
            {
                let c = d.candidates(&[term.to_string()]);
                assert!(
                    c.contains(&peer),
                    "group size {gs}: owner {peer} missing for {term}"
                );
            }
        }
    }

    #[test]
    fn uneven_final_group_handled() {
        let filters = community();
        let d = CoalescedDirectory::build(&filters, 4);
        assert_eq!(d.num_filters(), 2);
        assert_eq!(d.num_peers(), 6);
        assert_eq!(d.candidates(&["oceanstore".into()]), vec![4, 5]);
    }

    #[test]
    fn empty_query_no_candidates() {
        let d = CoalescedDirectory::build(&community(), 2);
        assert!(d.candidates(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "group size must be positive")]
    fn zero_group_size_rejected() {
        CoalescedDirectory::build(&community(), 0);
    }

    #[test]
    fn try_build_reports_mismatched_params() {
        let mut filters = community();
        filters.push(BloomFilter::new(BloomParams {
            num_bits: 128,
            num_hashes: 3,
        }));
        let err = CoalescedDirectory::try_build(&filters, 4)
            .expect_err("mismatched params must not merge");
        assert!(err.to_string().contains("different parameters"));
        // The matching prefix still coalesces fine.
        assert!(CoalescedDirectory::try_build(&filters[..6], 4).is_ok());
    }

    #[test]
    #[should_panic(expected = "different parameters")]
    fn build_panics_on_mismatched_params() {
        let mut filters = community();
        filters.push(BloomFilter::new(BloomParams {
            num_bits: 128,
            num_hashes: 3,
        }));
        CoalescedDirectory::build(&filters, 7);
    }
}
