//! The selection problem: how many peers to contact (§5.2).
//!
//! "Given a relevance ordering of peers, contact them one-by-one from
//! top to bottom. Maintain a relevance ordering of the documents
//! returned using equation 2 with IPF substituted for IDF. Stop
//! contacting peers when the documents returned by a sequence of `p`
//! peers fail to contribute to the top-k ranked documents", with
//!
//! ```text
//! p = floor(2 + N/300) + 2*floor(k/50)          (eq. 4)
//! ```

use serde::{Deserialize, Serialize};

/// Eq. 4: the adaptive patience parameter.
pub fn adaptive_p(community_size: usize, k: usize) -> usize {
    2 + community_size / 300 + 2 * (k / 50)
}

/// When to stop contacting ranked peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoppingRule {
    /// The paper's adaptive heuristic: stop after `p` consecutive
    /// non-contributing peers, `p` from eq. 4.
    Adaptive,
    /// Stop after a fixed number of consecutive non-contributing peers
    /// (ablation).
    FixedPatience(usize),
    /// Stop as soon as k documents have been retrieved — the "obvious
    /// approach \[that\] leads to terrible retrieval performance" (§5.2);
    /// used as an ablation baseline.
    FirstK,
    /// Contact every peer with a nonzero rank (exhaustive upper bound).
    AllRanked,
}

impl StoppingRule {
    /// Patience value for a community of `n` peers and result size `k`;
    /// `None` means the rule does not use patience.
    pub fn patience(&self, n: usize, k: usize) -> Option<usize> {
        match self {
            StoppingRule::Adaptive => Some(adaptive_p(n, k)),
            StoppingRule::FixedPatience(p) => Some(*p),
            StoppingRule::FirstK | StoppingRule::AllRanked => None,
        }
    }
}

/// Knobs for the distributed search driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionConfig {
    /// Number of documents the user wants.
    pub k: usize,
    /// Stopping rule.
    pub stopping: StoppingRule,
    /// Peers contacted per step ("contact peers in groups of m peers at
    /// a time ... trades off potentially contacting some peers
    /// unnecessarily for shorter response time", §5.2).
    pub group_size: usize,
}

impl SelectionConfig {
    /// The paper's configuration for a given k.
    pub fn paper(k: usize) -> Self {
        Self {
            k,
            stopping: StoppingRule::Adaptive,
            group_size: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq4_reference_values() {
        // p = floor(2 + N/300) + 2 floor(k/50)
        assert_eq!(adaptive_p(0, 0), 2);
        assert_eq!(adaptive_p(300, 0), 3);
        assert_eq!(adaptive_p(400, 20), 3);
        assert_eq!(adaptive_p(400, 50), 5);
        assert_eq!(adaptive_p(400, 150), 9);
        assert_eq!(adaptive_p(3000, 100), 16);
    }

    #[test]
    fn patience_by_rule() {
        assert_eq!(StoppingRule::Adaptive.patience(400, 20), Some(3));
        assert_eq!(StoppingRule::FixedPatience(7).patience(400, 20), Some(7));
        assert_eq!(StoppingRule::FirstK.patience(400, 20), None);
        assert_eq!(StoppingRule::AllRanked.patience(400, 20), None);
    }

    #[test]
    fn paper_config() {
        let c = SelectionConfig::paper(20);
        assert_eq!(c.k, 20);
        assert_eq!(c.group_size, 1);
        assert_eq!(c.stopping, StoppingRule::Adaptive);
    }
}
