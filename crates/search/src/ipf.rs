//! Inverse peer frequency (IPF).
//!
//! "For a term t, IPF_t is computed as log(1 + N/N_t), where N is the
//! number of peers in the community and N_t is the number of peers that
//! have one or more documents with term t in it. ... IPF can
//! conveniently be computed using the Bloom filters collected at each
//! peer: N is the number of Bloom filters, N_t is the number of hits for
//! term t against these Bloom filters." (§5.2)
//!
//! Bloom false positives inflate `N_t` slightly, deflating IPF — part of
//! the accuracy PlanetP trades for its compact summaries.

use planetp_bloom::{BloomFilter, HashedKey};
use std::borrow::Borrow;
use std::collections::HashMap;

/// IPF values for a query's terms, computed against a set of peer Bloom
/// filters.
#[derive(Debug, Clone, Default)]
pub struct IpfTable {
    values: HashMap<String, f64>,
    num_peers: usize,
}

impl IpfTable {
    /// Compute IPF for each query term against the community's filters.
    ///
    /// Filters are borrowed (`&[BloomFilter]` and `&[&BloomFilter]` both
    /// work) — callers holding a directory of filters should pass
    /// references rather than cloning. Each term is hashed once, not
    /// once per filter.
    pub fn compute<F: Borrow<BloomFilter>>(query_terms: &[String], filters: &[F]) -> Self {
        let n = filters.len();
        let mut values = HashMap::with_capacity(query_terms.len());
        for t in query_terms {
            if values.contains_key(t) {
                continue;
            }
            let key = HashedKey::new(t);
            let n_t = filters
                .iter()
                .filter(|f| f.borrow().contains_hashed(&key))
                .count();
            values.insert(t.clone(), ipf(n, n_t));
        }
        Self {
            values,
            num_peers: n,
        }
    }

    /// Rebuild a table from `(term, ipf)` pairs (e.g. received over the
    /// wire so every contacted peer scores with the initiator's view).
    pub fn from_pairs(pairs: Vec<(String, f64)>, num_peers: usize) -> Self {
        Self {
            values: pairs.into_iter().collect(),
            num_peers,
        }
    }

    /// Export as `(term, ipf)` pairs (wire form).
    pub fn to_pairs(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self.values.iter().map(|(t, &x)| (t.clone(), x)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// IPF of a term; 0 for terms not in the query set.
    pub fn get(&self, term: &str) -> f64 {
        self.values.get(term).copied().unwrap_or(0.0)
    }

    /// Community size the table was computed for.
    pub fn num_peers(&self) -> usize {
        self.num_peers
    }

    /// Iterate `(term, ipf)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(t, &v)| (t.as_str(), v))
    }
}

/// `IPF_t = ln(1 + N / N_t)`. A term on no peer gets the maximum
/// possible weight for the community size (it cannot contribute hits
/// anyway, but the value stays finite).
pub fn ipf(num_peers: usize, peers_with_term: usize) -> f64 {
    let n = num_peers as f64;
    if peers_with_term == 0 {
        return (1.0 + n / 1.0).ln().max(0.0);
    }
    (1.0 + n / peers_with_term as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use planetp_bloom::BloomParams;

    fn filter_with(terms: &[&str]) -> BloomFilter {
        let mut f = BloomFilter::new(BloomParams::for_capacity(1000, 0.001));
        for t in terms {
            f.insert(t);
        }
        f
    }

    #[test]
    fn rare_terms_weigh_more() {
        let filters = vec![
            filter_with(&["common", "rare"]),
            filter_with(&["common"]),
            filter_with(&["common"]),
            filter_with(&["common"]),
        ];
        let t = IpfTable::compute(&["common".into(), "rare".into()], &filters);
        assert!(t.get("rare") > t.get("common"));
        // Ubiquitous term: ln(1 + 4/4) = ln 2.
        assert!((t.get("common") - 2.0f64.ln()).abs() < 1e-9);
        // Rare term: ln(1 + 4/1) = ln 5.
        assert!((t.get("rare") - 5.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn absent_term_gets_max_weight() {
        let filters = vec![filter_with(&["x"]); 3];
        let t = IpfTable::compute(&["zebra-unseen".into()], &filters);
        assert!((t.get("zebra-unseen") - 4.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn unknown_term_reads_zero() {
        let filters: Vec<BloomFilter> = Vec::new();
        let t = IpfTable::compute(&[], &filters);
        assert_eq!(t.get("anything"), 0.0);
    }

    #[test]
    fn borrowed_filters_compute_identically() {
        let filters = vec![
            filter_with(&["a", "b"]),
            filter_with(&["b"]),
            filter_with(&["c"]),
        ];
        let refs: Vec<&BloomFilter> = filters.iter().collect();
        let q: Vec<String> = vec!["a".into(), "b".into(), "missing".into()];
        let owned = IpfTable::compute(&q, &filters);
        let borrowed = IpfTable::compute(&q, &refs);
        assert_eq!(owned.to_pairs(), borrowed.to_pairs());
    }

    #[test]
    fn ipf_monotone_in_rarity() {
        let mut prev = f64::INFINITY;
        for n_t in 1..=10 {
            let v = ipf(10, n_t);
            assert!(v < prev, "ipf not strictly decreasing at {n_t}");
            prev = v;
        }
    }

    #[test]
    fn duplicate_query_terms_computed_once() {
        let filters = vec![filter_with(&["a"])];
        let t = IpfTable::compute(&["a".into(), "a".into()], &filters);
        assert_eq!(t.iter().count(), 1);
    }
}
