//! The centralized TFxIDF baseline (§5.2, eq. 2).
//!
//! The paper's comparison point: "each peer in the community has the
//! full inverted index and word count needed to run TFxIDF using ranking
//! equation 2. For each query, TFxIDF would compute the top k ranking
//! documents and then contact the exact peers required to retrieve these
//! documents" (§7.3). Per Witten et al., `IDF_t = ln(1 + N/f_t)` with
//! `f_t` the number of documents containing `t`, `w_{D,t} = 1 +
//! ln(f_{D,t})`, and `Sim(Q,D) = Σ_t w_{D,t}·IDF_t / sqrt(|D|)`.

use crate::types::{sort_ranked, DocRef, PeerNo, ScoredDoc};
use planetp_index::InvertedIndex;
use std::collections::HashMap;

/// A global view over every peer's inverted index — what a centralized
/// search engine (or an omniscient peer) would hold.
#[derive(Debug, Default)]
pub struct CentralizedIndex {
    /// term -> (document, term frequency) over all peers.
    postings: HashMap<String, Vec<(DocRef, u32)>>,
    /// |D| per document.
    doc_len: HashMap<DocRef, u32>,
}

impl CentralizedIndex {
    /// Build from per-peer indexes (peer number = position).
    pub fn build(peer_indexes: &[InvertedIndex]) -> Self {
        let mut g = Self::default();
        for (peer, idx) in peer_indexes.iter().enumerate() {
            g.add_peer(peer, idx);
        }
        g
    }

    /// Merge one peer's index into the global view.
    pub fn add_peer(&mut self, peer: PeerNo, idx: &InvertedIndex) {
        for term in idx.vocabulary() {
            let entry = self.postings.entry(term.to_string()).or_default();
            for p in idx.postings(term) {
                entry.push((DocRef { peer, doc: p.doc }, p.tf));
            }
        }
        for (doc, len) in idx.documents() {
            self.doc_len.insert(DocRef { peer, doc }, len);
        }
    }

    /// Total number of documents.
    pub fn num_documents(&self) -> usize {
        self.doc_len.len()
    }

    /// Vocabulary size.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// `IDF_t = ln(1 + N / f_t)`, `f_t` = number of documents containing
    /// the term. Zero for unseen terms (they cannot score any document).
    pub fn idf(&self, term: &str) -> f64 {
        let n = self.num_documents() as f64;
        match self.postings.get(term) {
            None => 0.0,
            Some(p) if p.is_empty() => 0.0,
            Some(p) => (1.0 + n / p.len() as f64).ln(),
        }
    }

    /// Rank all matching documents for the query (eq. 2), best first.
    pub fn rank(&self, query_terms: &[String]) -> Vec<ScoredDoc> {
        let mut scores: HashMap<DocRef, f64> = HashMap::new();
        // Each distinct query term contributes once (the query weight
        // w_{Q,t} = IDF_t is per-term; duplicates in the query do not
        // multiply).
        let mut seen: Vec<&str> = Vec::new();
        for t in query_terms {
            if seen.contains(&t.as_str()) {
                continue;
            }
            seen.push(t);
            let idf = self.idf(t);
            if idf == 0.0 {
                continue;
            }
            if let Some(postings) = self.postings.get(t) {
                for &(doc, tf) in postings {
                    let w_dt = 1.0 + f64::from(tf).ln();
                    *scores.entry(doc).or_insert(0.0) += w_dt * idf;
                }
            }
        }
        let mut ranked: Vec<ScoredDoc> = scores
            .into_iter()
            .map(|(doc, s)| {
                let len = f64::from(self.doc_len[&doc]).max(1.0);
                ScoredDoc {
                    doc,
                    score: s / len.sqrt(),
                }
            })
            .collect();
        sort_ranked(&mut ranked);
        ranked
    }

    /// Top-k documents.
    pub fn top_k(&self, query_terms: &[String], k: usize) -> Vec<ScoredDoc> {
        let mut r = self.rank(query_terms);
        r.truncate(k);
        r
    }

    /// The minimum set of peers that must be contacted to retrieve the
    /// given documents — the paper's "Best" line in Fig 6(c).
    pub fn peers_required(docs: &[ScoredDoc]) -> usize {
        let mut peers: Vec<PeerNo> = docs.iter().map(|d| d.doc.peer).collect();
        peers.sort_unstable();
        peers.dedup();
        peers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(docs: &[(u64, &[&str])]) -> InvertedIndex {
        let mut i = InvertedIndex::new();
        for (id, words) in docs {
            let terms: Vec<String> = words.iter().map(|s| s.to_string()).collect();
            i.add_document(*id, &terms);
        }
        i
    }

    fn q(terms: &[&str]) -> Vec<String> {
        terms.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn document_with_query_term_ranks() {
        let g =
            CentralizedIndex::build(&[idx(&[(1, &["gossip", "protocol"]), (2, &["database"])])]);
        let r = g.rank(&q(&["gossip"]));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].doc, DocRef { peer: 0, doc: 1 });
    }

    #[test]
    fn matching_more_rare_terms_scores_higher() {
        let g = CentralizedIndex::build(&[idx(&[
            (1, &["gossip", "bloom"]),
            (2, &["gossip", "filler"]),
            (3, &["filler2", "common", "x"]),
            (4, &["common", "y", "z"]),
        ])]);
        let r = g.rank(&q(&["gossip", "bloom"]));
        assert_eq!(r[0].doc.doc, 1, "two-term match must win");
    }

    #[test]
    fn term_frequency_raises_score_sublinearly() {
        let g = CentralizedIndex::build(&[idx(&[
            (1, &["t", "t", "t", "t", "pad1", "pad2", "pad3"]),
            (2, &["t", "pad1", "pad2", "pad3", "pad4", "pad5", "pad6"]),
        ])]);
        let r = g.rank(&q(&["t"]));
        assert_eq!(r[0].doc.doc, 1);
        // w = 1 + ln(4) vs 1: ratio < 4 (sublinear).
        assert!(r[0].score / r[1].score < 4.0);
    }

    #[test]
    fn longer_documents_are_penalized() {
        let g = CentralizedIndex::build(&[idx(&[
            (1, &["t", "a"]),
            (2, &["t", "a", "b", "c", "d", "e", "f", "g"]),
        ])]);
        let r = g.rank(&q(&["t"]));
        assert_eq!(r[0].doc.doc, 1, "short doc wins at equal tf");
    }

    #[test]
    fn idf_zero_for_unseen_terms() {
        let g = CentralizedIndex::build(&[idx(&[(1, &["a"])])]);
        assert_eq!(g.idf("zzz"), 0.0);
        assert!(g.rank(&q(&["zzz"])).is_empty());
    }

    #[test]
    fn duplicate_query_terms_count_once() {
        let g = CentralizedIndex::build(&[idx(&[(1, &["t", "u"])])]);
        let once = g.rank(&q(&["t"]))[0].score;
        let twice = g.rank(&q(&["t", "t"]))[0].score;
        assert!((once - twice).abs() < 1e-12);
    }

    #[test]
    fn spans_multiple_peers() {
        let g =
            CentralizedIndex::build(&[idx(&[(1, &["gossip"])]), idx(&[(1, &["gossip", "bloom"])])]);
        let r = g.rank(&q(&["gossip", "bloom"]));
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].doc, DocRef { peer: 1, doc: 1 });
        assert_eq!(CentralizedIndex::peers_required(&r), 2);
    }

    #[test]
    fn top_k_truncates() {
        let g = CentralizedIndex::build(&[idx(&[(1, &["t"]), (2, &["t"]), (3, &["t"])])]);
        assert_eq!(g.top_k(&q(&["t"]), 2).len(), 2);
    }
}
