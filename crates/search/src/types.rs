//! Shared search types.

use planetp_index::DocId;
use serde::{Deserialize, Serialize};

/// Index of a peer within a search community (dense, 0-based).
pub type PeerNo = usize;

/// A document identified globally: which peer stores it, and its id in
/// that peer's local data store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocRef {
    /// Owning peer.
    pub peer: PeerNo,
    /// Document id within the peer's store.
    pub doc: DocId,
}

/// A document with its relevance score for some query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoredDoc {
    /// The document.
    pub doc: DocRef,
    /// Similarity score (eq. 2); higher is more relevant.
    pub score: f64,
}

impl ScoredDoc {
    /// Total order: score descending, then `DocRef` ascending for
    /// deterministic ties.
    pub fn ranking_cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .score
            .partial_cmp(&self.score)
            .expect("scores are never NaN")
            .then_with(|| self.doc.cmp(&other.doc))
    }
}

/// Sort scored documents into ranking order (best first, deterministic).
pub fn sort_ranked(docs: &mut [ScoredDoc]) {
    docs.sort_by(ScoredDoc::ranking_cmp);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_sorts_by_score_then_docref() {
        let d = |peer, doc, score| ScoredDoc {
            doc: DocRef { peer, doc },
            score,
        };
        let mut v = vec![d(1, 1, 0.5), d(0, 2, 0.9), d(0, 1, 0.5)];
        sort_ranked(&mut v);
        assert_eq!(v[0].doc, DocRef { peer: 0, doc: 2 });
        assert_eq!(v[1].doc, DocRef { peer: 0, doc: 1 });
        assert_eq!(v[2].doc, DocRef { peer: 1, doc: 1 });
    }
}
