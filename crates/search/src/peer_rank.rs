//! Peer ranking (eq. 3).
//!
//! `R_i(Q) = Σ_{t ∈ Q ∧ t ∈ BF_i} IPF_t`: a peer scores the sum of the
//! IPF weights of the query terms its Bloom filter claims to contain.
//! "Peers that contain all terms in a query \[get\] the highest ranking;
//! peers that contain different subsets of terms are ranked according to
//! the power of these terms for differentiating between peers" (§5.2).

use crate::ipf::IpfTable;
use crate::types::PeerNo;
use planetp_bloom::{BloomFilter, HashedKey};
use std::borrow::Borrow;

/// A peer with its relevance to a query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedPeer {
    /// Peer index within the community.
    pub peer: PeerNo,
    /// `R_i(Q)` (eq. 3).
    pub score: f64,
}

/// Rank all peers for a query. Peers whose filters contain none of the
/// query terms are omitted (they cannot contribute documents). Returns
/// peers sorted best-first, ties broken by peer number for determinism.
///
/// Filters are borrowed (owned slices and slices of references both
/// work); each query term is hashed once up front rather than once per
/// peer filter.
pub fn rank_peers<F: Borrow<BloomFilter>>(
    query_terms: &[String],
    filters: &[F],
    ipf: &IpfTable,
) -> Vec<RankedPeer> {
    // Hash every term occurrence once; duplicates keep their duplicate
    // weight (eq. 3 sums over the query term sequence as given).
    let weighted: Vec<(HashedKey, f64)> = query_terms
        .iter()
        .map(|t| (HashedKey::new(t), ipf.get(t)))
        .collect();
    let mut ranked: Vec<RankedPeer> = filters
        .iter()
        .enumerate()
        .filter_map(|(peer, f)| {
            let f = f.borrow();
            let score: f64 = weighted
                .iter()
                .filter(|(key, _)| f.contains_hashed(key))
                .map(|(_, w)| w)
                .sum();
            (score > 0.0).then_some(RankedPeer { peer, score })
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are never NaN")
            .then_with(|| a.peer.cmp(&b.peer))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use planetp_bloom::BloomParams;

    fn filter_with(terms: &[&str]) -> BloomFilter {
        let mut f = BloomFilter::new(BloomParams::for_capacity(1000, 0.0001));
        for t in terms {
            f.insert(t);
        }
        f
    }

    fn query(terms: &[&str]) -> Vec<String> {
        terms.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn peer_with_all_terms_ranks_first() {
        let filters = vec![
            filter_with(&["gossip"]),
            filter_with(&["gossip", "bloom"]),
            filter_with(&["bloom"]),
            filter_with(&["unrelated"]),
        ];
        let q = query(&["gossip", "bloom"]);
        let ipf = IpfTable::compute(&q, &filters);
        let ranked = rank_peers(&q, &filters, &ipf);
        assert_eq!(ranked[0].peer, 1);
        assert_eq!(ranked.len(), 3, "no-term peer omitted");
    }

    #[test]
    fn rarer_term_outranks_common_term() {
        // "rare" on 1 peer, "common" on 3: holder of only "rare" should
        // outrank a holder of only "common".
        let filters = vec![
            filter_with(&["rare"]),
            filter_with(&["common"]),
            filter_with(&["common"]),
            filter_with(&["common"]),
        ];
        let q = query(&["rare", "common"]);
        let ipf = IpfTable::compute(&q, &filters);
        let ranked = rank_peers(&q, &filters, &ipf);
        assert_eq!(ranked[0].peer, 0);
    }

    #[test]
    fn empty_query_ranks_nobody() {
        let filters = vec![filter_with(&["a"])];
        let q = query(&[]);
        let ipf = IpfTable::compute(&q, &filters);
        assert!(rank_peers(&q, &filters, &ipf).is_empty());
    }

    #[test]
    fn deterministic_tie_break_by_peer_number() {
        let filters = vec![filter_with(&["t"]), filter_with(&["t"])];
        let q = query(&["t"]);
        let ipf = IpfTable::compute(&q, &filters);
        let ranked = rank_peers(&q, &filters, &ipf);
        assert_eq!(ranked[0].peer, 0);
        assert_eq!(ranked[1].peer, 1);
    }
}
