//! Directory-versioned query planning cache.
//!
//! Computing a query plan — the IPF table (eq. 3's term weights) plus
//! the ranked candidate list — costs one Bloom probe per (term, peer)
//! pair. The gossip directory those probes read is versioned and
//! changes slowly relative to query rates, so [`QueryCache`] memoizes
//! the per-term *presence row*: a bitset over the community recording
//! which peers' filters claim the term, plus its popcount (`N_t`).
//! Repeated and overlapping queries then skip IPF recomputation
//! entirely; filters are only re-probed for terms never seen before.
//!
//! Invalidation follows the directory, not the clock:
//!
//! - a peer republishing (its gossiped version advances) re-probes
//!   exactly that peer's column of every cached row — other peers'
//!   cached bits are untouched;
//! - a membership change (join, leave, or reordering) rebuilds the
//!   cache from scratch, since presence rows are positional.
//!
//! Plans produced through the cache are bit-for-bit identical to
//! [`IpfTable::compute`] + [`rank_peers`](crate::rank_peers) over the
//! same view: same hash path, same float-addition order, same sort.
//!
//! # Tree-pruned probing
//!
//! With [`QueryCache::with_tree`], a cache miss no longer probes every
//! peer's filter: a [`BloomTree`] (Bloofi) over the view is walked
//! first, and only the surviving candidate columns are probed. Peers
//! whose filters share the tree's parameters become bit-copy leaves, so
//! probing the leaf *is* probing the peer's filter and the candidate
//! set restricted to them equals the flat scan's answer exactly; peers
//! with other parameters stay on the tree's fallback list and are
//! probed unconditionally. Either way the presence row — and therefore
//! the plan — is bit-identical to the flat path's. The tree follows the
//! same invalidation rules as the rows: membership change rebuilds it,
//! a version bump updates exactly that peer's leaf.

use std::collections::{HashMap, VecDeque};

use planetp_bloom::{probe_row, BloomFilter, HashedKey};
use planetp_bloomtree::{BloomTree, PeerEntry, TreeConfig, TreeMetrics};
use planetp_obs::{names, Counter, Registry};

use crate::ipf::{ipf, IpfTable};
use crate::peer_rank::RankedPeer;

/// Default cap on distinct cached terms before FIFO eviction.
pub const DEFAULT_MAX_TERMS: usize = 4096;

/// Two-part version of one peer's published summary. The live runtime
/// passes `(status_version, bloom_version)` straight from the gossip
/// directory; the cache only ever compares versions for equality, so
/// no information is folded away.
pub type PeerVersion = (u64, u32);

/// A borrowed view of one peer's gossiped summary, as the cache sees it
/// for one query.
#[derive(Debug, Clone, Copy)]
pub struct PeerFilterRef<'a> {
    /// Stable peer identity (the live runtime passes the gossip peer
    /// id). Identity changes are membership changes.
    pub id: u64,
    /// Version of this peer's published summary; any change means the
    /// filter may differ from what the cache probed.
    pub version: PeerVersion,
    /// The peer's (decompressed) Bloom filter, borrowed for the query.
    pub filter: &'a BloomFilter,
}

/// The cached plan for one query: term weights plus ranked candidates,
/// with peer numbers indexing the view slice the plan was built from.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// IPF weight per unique query term.
    pub ipf: IpfTable,
    /// Candidate peers sorted best-first (zero-scoring peers omitted).
    pub ranked: Vec<RankedPeer>,
}

/// Counter handles for the cache; attach to a node's [`Registry`] so
/// snapshots expose hit rates, or leave detached for standalone use.
#[derive(Debug, Clone)]
pub struct QueryCacheMetrics {
    hits: Counter,
    misses: Counter,
    peer_refreshes: Counter,
    rebuilds: Counter,
}

impl QueryCacheMetrics {
    /// Handles registered under the shared `search.cache.*` names.
    pub fn in_registry(registry: &Registry) -> Self {
        Self {
            hits: registry.counter(names::SEARCH_CACHE_HITS),
            misses: registry.counter(names::SEARCH_CACHE_MISSES),
            peer_refreshes: registry.counter(names::SEARCH_CACHE_PEER_REFRESHES),
            rebuilds: registry.counter(names::SEARCH_CACHE_REBUILDS),
        }
    }

    /// Handles not visible in any snapshot.
    pub fn detached() -> Self {
        Self {
            hits: Counter::detached(),
            misses: Counter::detached(),
            peer_refreshes: Counter::detached(),
            rebuilds: Counter::detached(),
        }
    }
}

/// Point-in-time counter values, for tests and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Term lookups served from the cache.
    pub hits: u64,
    /// Term lookups that probed the filters.
    pub misses: u64,
    /// Peer columns re-probed after a version bump.
    pub peer_refreshes: u64,
    /// Full rebuilds after a membership change.
    pub rebuilds: u64,
}

/// One cached term: its hash (so refreshes never re-hash), the presence
/// bitset over the current peer slots, and the popcount (`N_t`).
#[derive(Debug, Clone)]
struct TermEntry {
    key: HashedKey,
    presence: Vec<u64>,
    count: usize,
}

/// The Bloofi front end: the tree plus the rank → view-slot map that
/// translates its ascending-id candidate bits back into the view's
/// positional presence layout.
#[derive(Debug)]
struct TreeIndex {
    tree: BloomTree,
    /// `view_pos[rank]` = index into the synced view of the peer at
    /// that rank of [`BloomTree::members`].
    view_pos: Vec<u32>,
    /// True when the view's ids were not unique, so ranks cannot map
    /// one-to-one onto view slots. The cache then bypasses the tree
    /// (flat probes) until a membership change restores uniqueness.
    degraded: bool,
}

impl TreeIndex {
    /// Rebuild the tree and the rank map from a freshly-synced view.
    fn rebuild(&mut self, view: &[PeerFilterRef<'_>]) {
        let entries: Vec<PeerEntry<'_>> = view
            .iter()
            .map(|p| PeerEntry {
                id: p.id,
                version: p.version,
                filter: p.filter,
            })
            .collect();
        self.tree.rebuild(&entries);
        self.degraded = self.tree.len() != view.len();
        self.view_pos = vec![0; self.tree.len()];
        if !self.degraded {
            for (i, p) in view.iter().enumerate() {
                let rank = self.tree.rank_of(p.id).expect("view peer is tracked");
                self.view_pos[rank] = i as u32;
            }
        }
    }

    /// Tree-pruned equivalent of [`probe_row`] over the view's filters:
    /// same bits, same count, fewer filters touched.
    fn probe(&self, key: &HashedKey, filters: &[&BloomFilter]) -> (Vec<u64>, usize) {
        let candidates = self.tree.candidates(key);
        let mut presence = vec![0u64; filters.len().div_ceil(64)];
        let mut count = 0usize;
        for rank in candidates.iter_ones() {
            let i = self.view_pos[rank] as usize;
            if filters[i].contains_hashed(key) {
                presence[i / 64] |= 1u64 << (i % 64);
                count += 1;
            }
        }
        (presence, count)
    }
}

/// See the [module docs](self) for the invalidation rules.
#[derive(Debug)]
pub struct QueryCache {
    /// `(id, version)` per slot, in the order of the last synced view.
    peers: Vec<(u64, PeerVersion)>,
    terms: HashMap<String, TermEntry>,
    /// Insertion order of `terms`, for FIFO eviction.
    order: VecDeque<String>,
    max_terms: usize,
    metrics: QueryCacheMetrics,
    /// Optional Bloofi front end pruning the miss path's probes.
    tree: Option<TreeIndex>,
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryCache {
    /// Empty cache with detached metrics and the default term cap.
    pub fn new() -> Self {
        Self {
            peers: Vec::new(),
            terms: HashMap::new(),
            order: VecDeque::new(),
            max_terms: DEFAULT_MAX_TERMS,
            metrics: QueryCacheMetrics::detached(),
            tree: None,
        }
    }

    /// Record cache activity through `metrics`.
    pub fn with_metrics(mut self, metrics: QueryCacheMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Prune cache-miss probes through a [`BloomTree`] built over each
    /// synced view. Peers gossiping filters with exactly
    /// `config.params` become bit-copy leaves; others are probed flat
    /// via the tree's fallback list — plans stay bit-identical either
    /// way (see the [module docs](self)). Any previously cached state
    /// is dropped, so configure at construction time.
    pub fn with_tree(mut self, config: TreeConfig, metrics: TreeMetrics) -> Self {
        self.peers.clear();
        self.terms.clear();
        self.order.clear();
        self.tree = Some(TreeIndex {
            tree: BloomTree::new(config).with_metrics(metrics),
            view_pos: Vec::new(),
            degraded: false,
        });
        self
    }

    /// True when a usable tree front end is pruning miss-path probes.
    pub fn tree_enabled(&self) -> bool {
        self.tree.as_ref().is_some_and(|idx| !idx.degraded)
    }

    /// Cap the number of distinct cached terms (FIFO eviction beyond).
    ///
    /// # Panics
    /// Panics if `max_terms` is 0.
    pub fn with_max_terms(mut self, max_terms: usize) -> Self {
        assert!(max_terms > 0, "term cap must be positive");
        self.max_terms = max_terms;
        self
    }

    /// Current counter values.
    pub fn stats(&self) -> QueryCacheStats {
        QueryCacheStats {
            hits: self.metrics.hits.get(),
            misses: self.metrics.misses.get(),
            peer_refreshes: self.metrics.peer_refreshes.get(),
            rebuilds: self.metrics.rebuilds.get(),
        }
    }

    /// Number of distinct terms currently cached.
    pub fn cached_terms(&self) -> usize {
        self.terms.len()
    }

    /// Plan a query against the current directory view: sync the cache
    /// with `view`, then produce the IPF table and ranked candidate
    /// list, probing filters only for terms not already cached.
    ///
    /// `view` must present peers in a stable order between calls —
    /// presence rows are positional. The live runtime sorts by peer id.
    pub fn plan(&mut self, query_terms: &[String], view: &[PeerFilterRef<'_>]) -> QueryPlan {
        self.sync(view);
        let n = view.len();
        let filters: Vec<&BloomFilter> = view.iter().map(|p| p.filter).collect();

        // IPF per unique term (duplicates computed once, as in
        // `IpfTable::compute`).
        let mut values: HashMap<String, f64> = HashMap::with_capacity(query_terms.len());
        for t in query_terms {
            if values.contains_key(t) {
                continue;
            }
            let count = self.ensure_term(t, &filters);
            values.insert(t.clone(), ipf(n, count));
        }
        let table = IpfTable::from_pairs(values.into_iter().collect(), n);

        // Rank from the presence rows, replicating `rank_peers`: sum
        // per term *occurrence* in query order, omit zero scores, sort
        // best-first with peer-number tie-break.
        let mut scores = vec![0.0f64; n];
        for t in query_terms {
            let entry = self.terms.get(t).expect("ensured above");
            let weight = table.get(t);
            for (w, &word) in entry.presence.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    scores[w * 64 + b] += weight;
                    bits &= bits - 1;
                }
            }
        }
        let mut ranked: Vec<RankedPeer> = scores
            .iter()
            .enumerate()
            .filter_map(|(peer, &score)| (score > 0.0).then_some(RankedPeer { peer, score }))
            .collect();
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are never NaN")
                .then_with(|| a.peer.cmp(&b.peer))
        });
        // Evict only now that the plan no longer needs its rows: a
        // query with more unique terms than the cap may overfill the
        // cache for the duration of this call, but never loses a row
        // it is still scoring against.
        self.enforce_cap();
        QueryPlan { ipf: table, ranked }
    }

    /// Bring the cache in line with `view`. Membership change (ids,
    /// count, or order) ⇒ full rebuild. Version bump ⇒ re-probe only
    /// that peer's column in every cached row.
    fn sync(&mut self, view: &[PeerFilterRef<'_>]) {
        let same_membership = self.peers.len() == view.len()
            && self.peers.iter().zip(view).all(|(&(id, _), p)| id == p.id);
        if !same_membership {
            self.metrics.rebuilds.inc();
            self.terms.clear();
            self.order.clear();
            self.peers = view.iter().map(|p| (p.id, p.version)).collect();
            if let Some(idx) = &mut self.tree {
                idx.rebuild(view);
            }
            return;
        }
        for (i, p) in view.iter().enumerate() {
            if self.peers[i].1 == p.version {
                continue;
            }
            self.metrics.peer_refreshes.inc();
            // Keep the tree's leaf in step: a stale leaf could prune a
            // peer whose republished filter now matches.
            if let Some(idx) = &mut self.tree {
                if !idx.degraded {
                    idx.tree.update_peer(p.id, p.version, p.filter);
                }
            }
            let (w, mask) = (i / 64, 1u64 << (i % 64));
            for entry in self.terms.values_mut() {
                let was = entry.presence[w] & mask != 0;
                let now = p.filter.contains_hashed(&entry.key);
                if was == now {
                    continue;
                }
                if now {
                    entry.presence[w] |= mask;
                    entry.count += 1;
                } else {
                    entry.presence[w] &= !mask;
                    entry.count -= 1;
                }
            }
            self.peers[i].1 = p.version;
        }
    }

    /// Presence count for `t`, probing the filters only on a miss.
    ///
    /// Never evicts: FIFO eviction here could drop a row probed
    /// earlier in the same in-flight query (any query with more
    /// unique terms than `max_terms`, e.g. from a remote proxy-search
    /// peer), which the plan's scoring loop still needs. [`Self::plan`]
    /// calls [`Self::enforce_cap`] once the plan is complete.
    fn ensure_term(&mut self, t: &str, filters: &[&BloomFilter]) -> usize {
        if let Some(e) = self.terms.get(t) {
            self.metrics.hits.inc();
            return e.count;
        }
        self.metrics.misses.inc();
        let key = HashedKey::new(t);
        let (presence, count) = match &self.tree {
            Some(idx) if !idx.degraded => idx.probe(&key, filters),
            _ => probe_row(&key, filters),
        };
        self.terms.insert(
            t.to_string(),
            TermEntry {
                key,
                presence,
                count,
            },
        );
        self.order.push_back(t.to_string());
        count
    }

    /// FIFO-evict down to the term cap.
    fn enforce_cap(&mut self) {
        while self.terms.len() > self.max_terms {
            match self.order.pop_front() {
                Some(old) => {
                    self.terms.remove(&old);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer_rank::rank_peers;
    use planetp_bloom::BloomParams;

    fn filter_with(terms: &[&str]) -> BloomFilter {
        let mut f = BloomFilter::new(BloomParams::for_capacity(1000, 1e-6));
        for t in terms {
            f.insert(t);
        }
        f
    }

    fn query(terms: &[&str]) -> Vec<String> {
        terms.iter().map(|s| s.to_string()).collect()
    }

    fn view<'a>(peers: &'a [(u64, PeerVersion, BloomFilter)]) -> Vec<PeerFilterRef<'a>> {
        peers
            .iter()
            .map(|(id, version, filter)| PeerFilterRef {
                id: *id,
                version: *version,
                filter,
            })
            .collect()
    }

    /// Oracle: the uncached plan over the same view.
    fn oracle(q: &[String], v: &[PeerFilterRef<'_>]) -> QueryPlan {
        let filters: Vec<&BloomFilter> = v.iter().map(|p| p.filter).collect();
        let ipf = IpfTable::compute(q, &filters);
        let ranked = rank_peers(q, &filters, &ipf);
        QueryPlan { ipf, ranked }
    }

    fn assert_plan_eq(a: &QueryPlan, b: &QueryPlan) {
        assert_eq!(a.ipf.to_pairs(), b.ipf.to_pairs());
        assert_eq!(a.ipf.num_peers(), b.ipf.num_peers());
        assert_eq!(a.ranked, b.ranked);
    }

    #[test]
    fn warm_query_matches_oracle_and_hits_cache() {
        let peers = vec![
            (1, (0, 0), filter_with(&["gossip", "bloom"])),
            (2, (0, 0), filter_with(&["gossip"])),
            (3, (0, 0), filter_with(&["chord"])),
        ];
        let v = view(&peers);
        let q = query(&["gossip", "bloom", "gossip"]);
        let mut cache = QueryCache::new();
        let cold = cache.plan(&q, &v);
        assert_plan_eq(&cold, &oracle(&q, &v));
        let s1 = cache.stats();
        assert_eq!(s1.misses, 2, "two unique terms probed");
        let warm = cache.plan(&q, &v);
        assert_plan_eq(&warm, &cold);
        let s2 = cache.stats();
        assert_eq!(s2.misses, s1.misses, "warm query probes nothing");
        assert_eq!(s2.hits, s1.hits + 2);
    }

    #[test]
    fn version_bump_refreshes_exactly_that_peer() {
        let mut peers = vec![
            (1, (0, 0), filter_with(&["alpha"])),
            (2, (0, 0), filter_with(&["beta"])),
        ];
        let q = query(&["alpha", "beta"]);
        let mut cache = QueryCache::new();
        let before = cache.plan(&q, &view(&peers));
        assert_plan_eq(&before, &oracle(&q, &view(&peers)));

        // Peer 2 republishes: now also holds "alpha".
        peers[1].1 = (0, 1);
        peers[1].2 = filter_with(&["beta", "alpha"]);
        let after = cache.plan(&q, &view(&peers));
        assert_plan_eq(&after, &oracle(&q, &view(&peers)));
        let s = cache.stats();
        assert_eq!(s.peer_refreshes, 1, "only the bumped peer re-probed");
        assert_eq!(s.rebuilds, 1, "only the initial population rebuild");
        assert_eq!(s.misses, 2, "terms stayed cached across the bump");
        // The new presence really landed: alpha is on both peers now.
        assert!(after.ipf.get("alpha") < before.ipf.get("alpha"));
    }

    #[test]
    fn membership_change_rebuilds() {
        let peers = vec![
            (1, (0, 0), filter_with(&["x"])),
            (2, (0, 0), filter_with(&["y"])),
        ];
        let q = query(&["x", "y"]);
        let mut cache = QueryCache::new();
        cache.plan(&q, &view(&peers));
        let joined = vec![
            (1, (0, 0), filter_with(&["x"])),
            (2, (0, 0), filter_with(&["y"])),
            (3, (0, 0), filter_with(&["x", "y"])),
        ];
        let v = view(&joined);
        let plan = cache.plan(&q, &v);
        assert_plan_eq(&plan, &oracle(&q, &v));
        let s = cache.stats();
        assert_eq!(s.rebuilds, 2, "initial population + join");
        assert_eq!(s.misses, 4, "terms re-probed after the rebuild");
    }

    #[test]
    fn eviction_honors_term_cap() {
        let peers = vec![(1, (0, 0), filter_with(&["a", "b", "c"]))];
        let v = view(&peers);
        let mut cache = QueryCache::new().with_max_terms(2);
        cache.plan(&query(&["a"]), &v);
        cache.plan(&query(&["b"]), &v);
        cache.plan(&query(&["c"]), &v);
        assert_eq!(cache.cached_terms(), 2);
        // "a" (oldest) was evicted; re-querying it probes again.
        let misses_before = cache.stats().misses;
        let plan = cache.plan(&query(&["a"]), &v);
        assert_plan_eq(&plan, &oracle(&query(&["a"]), &v));
        assert_eq!(cache.stats().misses, misses_before + 1);
    }

    #[test]
    fn query_with_more_unique_terms_than_cap_plans_without_panic() {
        // Regression: mid-plan FIFO eviction used to drop a term probed
        // earlier in the same query, and the scoring loop then panicked
        // on the missing row. A remote proxy-search peer controls the
        // query, so this must degrade (overfill then trim), not panic.
        let all: Vec<String> = (0..8).map(|i| format!("term-{i}")).collect();
        let strs: Vec<&str> = all.iter().map(String::as_str).collect();
        let peers = vec![
            (1, (0, 0), filter_with(&strs)),
            (2, (0, 0), filter_with(&strs[..3])),
        ];
        let v = view(&peers);
        let mut cache = QueryCache::new().with_max_terms(3);
        let plan = cache.plan(&all, &v);
        assert_plan_eq(&plan, &oracle(&all, &v));
        assert_eq!(
            cache.cached_terms(),
            3,
            "cache trimmed back to the cap after the plan"
        );
        // The survivors are the FIFO tail; the evicted head re-probes.
        let misses_before = cache.stats().misses;
        cache.plan(&query(&["term-7"]), &v);
        assert_eq!(cache.stats().misses, misses_before, "tail term cached");
        cache.plan(&query(&["term-0"]), &v);
        assert_eq!(cache.stats().misses, misses_before + 1, "head term evicted");
    }

    #[test]
    fn status_version_high_bits_invalidate() {
        // Versions differing only above bit 32 of status_version must
        // still read as a change (the old single-u64 folding truncated
        // them away and served a stale filter).
        let mut peers = vec![(1, (0, 0), filter_with(&["old"]))];
        let q = query(&["old", "new"]);
        let mut cache = QueryCache::new();
        cache.plan(&q, &view(&peers));
        peers[0].1 = (1u64 << 32, 0);
        peers[0].2 = filter_with(&["new"]);
        let plan = cache.plan(&q, &view(&peers));
        assert_plan_eq(&plan, &oracle(&q, &view(&peers)));
        assert_eq!(cache.stats().peer_refreshes, 1);
    }

    #[test]
    fn empty_view_and_empty_query() {
        let mut cache = QueryCache::new();
        let plan = cache.plan(&[], &[]);
        assert!(plan.ranked.is_empty());
        assert_eq!(plan.ipf.num_peers(), 0);
        let peers = vec![(7, (0, 0), filter_with(&["t"]))];
        let v = view(&peers);
        let plan = cache.plan(&[], &v);
        assert!(plan.ranked.is_empty());
    }

    /// Cache whose tree bit space matches `filter_with`, so every test
    /// peer becomes a bit-copy leaf.
    fn tree_cache() -> QueryCache {
        QueryCache::new().with_tree(
            TreeConfig::new(4, BloomParams::for_capacity(1000, 1e-6)),
            TreeMetrics::detached(),
        )
    }

    #[test]
    fn tree_front_end_is_bit_identical_across_lifecycle() {
        // Twin caches over the same schedule: the tree must never
        // change a plan or a counter.
        let mut flat = QueryCache::new();
        let mut tree = tree_cache();
        let q = query(&["gossip", "bloom", "chord"]);

        let mut peers = vec![
            (1, (0, 0), filter_with(&["gossip", "bloom"])),
            (2, (0, 0), filter_with(&["gossip"])),
            (5, (0, 0), filter_with(&["chord"])),
        ];
        for _ in 0..2 {
            let v = view(&peers);
            assert_plan_eq(&tree.plan(&q, &v), &flat.plan(&q, &v));
        }
        // Version bump.
        peers[1].1 = (0, 1);
        peers[1].2 = filter_with(&["gossip", "chord"]);
        let v = view(&peers);
        assert_plan_eq(&tree.plan(&q, &v), &flat.plan(&q, &v));
        // Join (out of id order in the middle of the range).
        peers.push((3, (0, 0), filter_with(&["bloom"])));
        peers.sort_by_key(|p| p.0);
        let v = view(&peers);
        assert_plan_eq(&tree.plan(&q, &v), &flat.plan(&q, &v));
        // Leave.
        peers.remove(0);
        let v = view(&peers);
        assert_plan_eq(&tree.plan(&q, &v), &flat.plan(&q, &v));
        assert_plan_eq(&tree.plan(&q, &v), &oracle(&q, &v));
        assert_eq!(
            tree.stats(),
            flat.stats(),
            "identical hit/miss/refresh path"
        );
        assert!(tree.tree_enabled());
    }

    #[test]
    fn tree_front_end_handles_mismatched_params_via_fallback() {
        let foreign = {
            let mut f = BloomFilter::new(BloomParams::for_capacity(50, 1e-3));
            f.insert("gossip");
            f
        };
        let peers = vec![
            (1, (0, 0), filter_with(&["gossip"])),
            (2, (0, 0), foreign),
            (3, (0, 0), filter_with(&["bloom"])),
        ];
        let v = view(&peers);
        let q = query(&["gossip", "bloom", "absent"]);
        let mut cache = tree_cache();
        assert_plan_eq(&cache.plan(&q, &v), &oracle(&q, &v));
        assert!(
            cache.tree_enabled(),
            "fallback peers don't disable the tree"
        );
    }

    #[test]
    fn duplicate_view_ids_degrade_to_flat_probing() {
        // The tree dedups ids; the positional cache does not. Ranks
        // then can't map onto view slots, so the cache must bypass the
        // tree rather than drop a column.
        let peers = vec![
            (1, (0, 0), filter_with(&["x"])),
            (1, (0, 0), filter_with(&["y"])),
        ];
        let v = view(&peers);
        let q = query(&["x", "y"]);
        let mut cache = tree_cache();
        assert_plan_eq(&cache.plan(&q, &v), &oracle(&q, &v));
        assert!(!cache.tree_enabled());
        // A later unique view re-enables pruning.
        let unique = vec![
            (1, (0, 0), filter_with(&["x"])),
            (2, (0, 0), filter_with(&["y"])),
        ];
        let v = view(&unique);
        assert_plan_eq(&cache.plan(&q, &v), &oracle(&q, &v));
        assert!(cache.tree_enabled());
    }
}
