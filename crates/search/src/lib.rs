//! Content search and retrieval for PlanetP (§5 of the paper).
//!
//! PlanetP cannot run the vector-space TFxIDF ranking directly — no peer
//! holds the global inverted index. Instead it approximates it in two
//! stages using only the gossiped Bloom filters:
//!
//! 1. **Peer ranking** ([`peer_rank`]): peers are ranked by
//!    `R_i(Q) = Σ_{t ∈ Q ∧ t ∈ BF_i} IPF_t`, where the *inverse peer
//!    frequency* `IPF_t = log(1 + N/N_t)` plays the role IDF plays for
//!    documents (eq. 3). `N_t` — the number of peers whose filters
//!    contain `t` — is computable locally from the directory.
//! 2. **Selection** ([`selection`]): peers are contacted in rank order;
//!    returned documents are ranked by eq. 2 with IPF substituted for
//!    IDF; contacting stops when `p` consecutive peers contribute
//!    nothing to the top-k (eq. 4's adaptive stopping heuristic).
//!
//! [`tfidf`] implements the centralized TFxIDF baseline the paper
//! compares against (a hypothetical peer holding the full inverted
//! index), and [`eval`] the recall/precision metrics of §7.3.

pub mod coalesce;
pub mod distributed;
pub mod eval;
pub mod ipf;
pub mod peer_rank;
pub mod query_cache;
pub mod selection;
pub mod tfidf;
pub mod types;

pub use coalesce::CoalescedDirectory;
pub use distributed::{
    score_index, DistributedSearch, IndexedPeer, PeerStore, SearchMetrics, SearchOutcome,
};
pub use eval::{average_recall_precision, recall_precision, RecallPrecision};
pub use ipf::IpfTable;
pub use peer_rank::{rank_peers, RankedPeer};
pub use query_cache::{
    PeerFilterRef, PeerVersion, QueryCache, QueryCacheMetrics, QueryCacheStats, QueryPlan,
};
pub use selection::{adaptive_p, SelectionConfig, StoppingRule};
pub use tfidf::CentralizedIndex;
pub use types::{DocRef, PeerNo, ScoredDoc};
