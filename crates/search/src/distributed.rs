//! The distributed TFxIPF search driver.
//!
//! Orchestrates a full PlanetP query (§5.2): compute IPF from the
//! gossiped Bloom filters, rank peers (eq. 3), contact them in rank
//! order, score returned documents with eq. 2 (IPF substituted for
//! IDF), and stop per the adaptive heuristic (eq. 4).

use crate::ipf::IpfTable;
use crate::peer_rank::rank_peers;
use crate::selection::{SelectionConfig, StoppingRule};
use crate::types::{sort_ranked, DocRef, ScoredDoc};
use planetp_bloom::BloomFilter;
use planetp_index::InvertedIndex;
use planetp_obs::{names, Counter, Histogram, Registry, LATENCY_MS_BUCKETS};
use std::time::Instant;

/// One peer's searchable state: its inverted index plus the Bloom filter
/// it gossips. In a live deployment the index lives remotely and only
/// the filter is local; this trait is what the query initiator can ask
/// of a *contacted* peer.
pub trait PeerStore {
    /// The peer's gossiped Bloom filter.
    fn bloom(&self) -> &BloomFilter;

    /// Evaluate the query locally: score every document containing at
    /// least one query term with eq. 2, using the supplied IPF weights
    /// in place of IDF. (Peers can compute IPF themselves from their
    /// own directory copy; passing the initiator's table keeps one
    /// consistent view per query.)
    fn local_search(&self, query_terms: &[String], ipf: &IpfTable) -> Vec<(u64, f64)>;
}

/// The default in-memory peer store.
#[derive(Debug)]
pub struct IndexedPeer {
    /// Local inverted index.
    pub index: InvertedIndex,
    /// Bloom filter over the index's vocabulary.
    pub bloom: BloomFilter,
}

impl IndexedPeer {
    /// Build a peer store from an index, summarizing its vocabulary in a
    /// filter with the given parameters.
    pub fn new(index: InvertedIndex, params: planetp_bloom::BloomParams) -> Self {
        let mut bloom = BloomFilter::new(params);
        for t in index.vocabulary() {
            bloom.insert(t);
        }
        Self { index, bloom }
    }
}

impl PeerStore for IndexedPeer {
    fn bloom(&self) -> &BloomFilter {
        &self.bloom
    }

    fn local_search(&self, query_terms: &[String], ipf: &IpfTable) -> Vec<(u64, f64)> {
        score_index(&self.index, query_terms, ipf)
    }
}

/// Score every document of `index` containing at least one query term
/// with eq. 2, using IPF weights in place of IDF. This is what a
/// *contacted* peer computes locally for the query initiator.
pub fn score_index(
    index: &InvertedIndex,
    query_terms: &[String],
    ipf: &IpfTable,
) -> Vec<(u64, f64)> {
    let mut seen: Vec<&str> = Vec::new();
    let mut scores: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for t in query_terms {
        if seen.contains(&t.as_str()) {
            continue;
        }
        seen.push(t);
        let w_q = ipf.get(t);
        if w_q == 0.0 {
            continue;
        }
        for p in index.postings(t) {
            let w_dt = 1.0 + f64::from(p.tf).ln();
            *scores.entry(p.doc).or_insert(0.0) += w_dt * w_q;
        }
    }
    scores
        .into_iter()
        .map(|(doc, s)| {
            let len = index.doc_len(doc).unwrap_or(1).max(1);
            (doc, s / f64::from(len).sqrt())
        })
        .collect()
}

/// Metrics recorder for the distributed search driver. Handles into a
/// [`Registry`], under the same `search.*` names the live runtime uses,
/// so in-process and live searches are interrogated identically.
#[derive(Debug, Clone)]
pub struct SearchMetrics {
    queries: Counter,
    peers_contacted: Counter,
    groups: Counter,
    group_ms: Histogram,
    stopped_early: Counter,
    exhausted: Counter,
}

impl SearchMetrics {
    /// A recorder whose counters live in `registry`.
    pub fn in_registry(registry: &Registry) -> Self {
        Self {
            queries: registry.counter(names::SEARCH_QUERIES),
            peers_contacted: registry.counter(names::SEARCH_PEERS_CONTACTED),
            groups: registry.counter(names::SEARCH_GROUPS),
            group_ms: registry.histogram(names::SEARCH_GROUP_MS, LATENCY_MS_BUCKETS),
            stopped_early: registry.counter(names::SEARCH_STOPPED_EARLY),
            exhausted: registry.counter(names::SEARCH_EXHAUSTED),
        }
    }
}

/// Result of one distributed query.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Final top-k (at most k) documents, best first.
    pub results: Vec<ScoredDoc>,
    /// How many peers were contacted.
    pub peers_contacted: usize,
    /// How many peers had a nonzero rank for this query.
    pub peers_ranked: usize,
}

/// The distributed search engine: owns nothing, borrows the community.
pub struct DistributedSearch<'a, S: PeerStore> {
    peers: &'a [S],
    metrics: Option<SearchMetrics>,
}

impl<'a, S: PeerStore> DistributedSearch<'a, S> {
    /// Create a search engine over a community of peers.
    pub fn new(peers: &'a [S]) -> Self {
        Self {
            peers,
            metrics: None,
        }
    }

    /// Record per-query metrics (queries, peers contacted, group
    /// timings, stopping decisions) through `metrics`.
    pub fn with_metrics(mut self, metrics: SearchMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Run a query: TFxIPF ranking with the configured stopping rule.
    pub fn search(&self, query_terms: &[String], cfg: SelectionConfig) -> SearchOutcome {
        if let Some(m) = &self.metrics {
            m.queries.inc();
        }
        // Borrow every filter — ranking N peers must not copy N×50 KB.
        let filters: Vec<&BloomFilter> = self.peers.iter().map(|p| p.bloom()).collect();
        let ipf = IpfTable::compute(query_terms, &filters);
        let ranked = rank_peers(query_terms, &filters, &ipf);
        let n = self.peers.len();
        let patience = cfg.stopping.patience(n, cfg.k);

        let mut top: Vec<ScoredDoc> = Vec::new();
        let mut contacted = 0usize;
        let mut since_last_contribution = 0usize;
        let mut stopped_early = false;

        for group in ranked.chunks(cfg.group_size.max(1)) {
            // Evaluate the whole group (models parallel contact).
            let group_started = Instant::now();
            let mut group_contributed = vec![false; group.len()];
            for (gi, rp) in group.iter().enumerate() {
                contacted += 1;
                let local = self.peers[rp.peer].local_search(query_terms, &ipf);
                for (doc, score) in local {
                    let sd = ScoredDoc {
                        doc: DocRef { peer: rp.peer, doc },
                        score,
                    };
                    if Self::offer(&mut top, sd, cfg.k) {
                        group_contributed[gi] = true;
                    }
                }
            }
            if let Some(m) = &self.metrics {
                m.groups.inc();
                m.group_ms
                    .observe(group_started.elapsed().as_millis() as u64);
            }
            match cfg.stopping {
                StoppingRule::FirstK => {
                    if top.len() >= cfg.k {
                        stopped_early = true;
                        break;
                    }
                }
                StoppingRule::AllRanked => {}
                StoppingRule::Adaptive | StoppingRule::FixedPatience(_) => {
                    let p = patience.expect("patience rules have patience");
                    // Count consecutive non-contributors in arrival order.
                    for &c in &group_contributed {
                        if c {
                            since_last_contribution = 0;
                        } else {
                            since_last_contribution += 1;
                        }
                    }
                    // Only stop once an initial top-k exists: "the idea
                    // is to get an initial set of k documents and then
                    // keep contacting nodes only if ..." (§5.2).
                    if top.len() >= cfg.k && since_last_contribution >= p {
                        stopped_early = true;
                        break;
                    }
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.peers_contacted.add(contacted as u64);
            if stopped_early {
                m.stopped_early.inc();
            } else {
                m.exhausted.inc();
            }
        }
        sort_ranked(&mut top);
        SearchOutcome {
            results: top,
            peers_contacted: contacted,
            peers_ranked: ranked.len(),
        }
    }

    /// Insert into a bounded top-k; returns whether the doc made the cut.
    fn offer(top: &mut Vec<ScoredDoc>, sd: ScoredDoc, k: usize) -> bool {
        if top.len() < k {
            top.push(sd);
            return true;
        }
        // Find the current worst.
        let (worst_i, worst) = top
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| b.ranking_cmp(a))
            .expect("top is non-empty here");
        if sd.ranking_cmp(worst) == std::cmp::Ordering::Less {
            top[worst_i] = sd;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planetp_bloom::BloomParams;

    fn peer(docs: &[(u64, &[&str])]) -> IndexedPeer {
        let mut idx = InvertedIndex::new();
        for (id, words) in docs {
            let terms: Vec<String> = words.iter().map(|s| s.to_string()).collect();
            idx.add_document(*id, &terms);
        }
        IndexedPeer::new(idx, BloomParams::for_capacity(10_000, 0.001))
    }

    fn q(terms: &[&str]) -> Vec<String> {
        terms.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn finds_documents_across_peers() {
        let peers = vec![
            peer(&[(1, &["gossip", "protocol"])]),
            peer(&[(1, &["bloom", "filter"])]),
            peer(&[(1, &["unrelated", "stuff"])]),
        ];
        let s = DistributedSearch::new(&peers);
        let out = s.search(&q(&["gossip", "bloom"]), SelectionConfig::paper(10));
        let found: Vec<usize> = out.results.iter().map(|r| r.doc.peer).collect();
        assert!(found.contains(&0) && found.contains(&1));
        assert!(!found.contains(&2));
    }

    #[test]
    fn respects_k() {
        let peers: Vec<IndexedPeer> = (0..10)
            .map(|i| peer(&[(i, &["term", "x"]), (i + 100, &["term", "y"])]))
            .collect();
        let s = DistributedSearch::new(&peers);
        let out = s.search(&q(&["term"]), SelectionConfig::paper(5));
        assert_eq!(out.results.len(), 5);
    }

    #[test]
    fn first_k_contacts_fewer_peers_than_adaptive() {
        let peers: Vec<IndexedPeer> = (0..30).map(|i| peer(&[(i, &["term", "pad"])])).collect();
        let s = DistributedSearch::new(&peers);
        let adaptive = s.search(&q(&["term"]), SelectionConfig::paper(5));
        let first_k = s.search(
            &q(&["term"]),
            SelectionConfig {
                k: 5,
                stopping: StoppingRule::FirstK,
                group_size: 1,
            },
        );
        assert!(first_k.peers_contacted <= adaptive.peers_contacted);
        assert!(adaptive.peers_contacted < 30, "adaptive must stop early");
    }

    #[test]
    fn all_ranked_contacts_everyone_with_the_term() {
        let peers: Vec<IndexedPeer> = (0..8).map(|i| peer(&[(i, &["term"])])).collect();
        let s = DistributedSearch::new(&peers);
        let out = s.search(
            &q(&["term"]),
            SelectionConfig {
                k: 3,
                stopping: StoppingRule::AllRanked,
                group_size: 1,
            },
        );
        assert_eq!(out.peers_contacted, out.peers_ranked);
    }

    #[test]
    fn group_contact_retrieves_same_top_k() {
        let peers: Vec<IndexedPeer> = (0..20)
            .map(|i| peer(&[(i, &["term", if i % 2 == 0 { "even" } else { "odd" }])]))
            .collect();
        let s = DistributedSearch::new(&peers);
        let single = s.search(&q(&["term", "even"]), SelectionConfig::paper(4));
        let grouped = s.search(
            &q(&["term", "even"]),
            SelectionConfig {
                k: 4,
                stopping: StoppingRule::Adaptive,
                group_size: 5,
            },
        );
        let docs = |o: &SearchOutcome| {
            let mut v: Vec<DocRef> = o.results.iter().map(|r| r.doc).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(docs(&single), docs(&grouped));
        assert!(grouped.peers_contacted >= single.peers_contacted);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let peers = vec![peer(&[(1, &["a"])])];
        let s = DistributedSearch::new(&peers);
        let out = s.search(&q(&[]), SelectionConfig::paper(5));
        assert!(out.results.is_empty());
        assert_eq!(out.peers_contacted, 0);
    }

    #[test]
    fn metrics_record_stopping_decisions() {
        let registry = Registry::new();
        let peers: Vec<IndexedPeer> = (0..30).map(|i| peer(&[(i, &["term", "pad"])])).collect();
        let s = DistributedSearch::new(&peers).with_metrics(SearchMetrics::in_registry(&registry));
        let adaptive = s.search(&q(&["term"]), SelectionConfig::paper(5));
        let _ = s.search(
            &q(&["term"]),
            SelectionConfig {
                k: 3,
                stopping: StoppingRule::AllRanked,
                group_size: 1,
            },
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::SEARCH_QUERIES), 2);
        assert_eq!(snap.counter(names::SEARCH_STOPPED_EARLY), 1);
        assert_eq!(snap.counter(names::SEARCH_EXHAUSTED), 1);
        assert!(snap.counter(names::SEARCH_PEERS_CONTACTED) >= adaptive.peers_contacted as u64);
        assert!(snap.counter(names::SEARCH_GROUPS) >= adaptive.peers_contacted as u64);
        let h = snap.histogram(names::SEARCH_GROUP_MS).expect("registered");
        assert_eq!(h.count, snap.counter(names::SEARCH_GROUPS));
    }

    #[test]
    fn results_sorted_best_first() {
        let peers = vec![peer(&[(1, &["term"]), (2, &["term", "term", "term"])])];
        let s = DistributedSearch::new(&peers);
        let out = s.search(&q(&["term"]), SelectionConfig::paper(5));
        assert!(out.results.windows(2).all(|w| w[0].score >= w[1].score));
    }
}
