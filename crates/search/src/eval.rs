//! Retrieval evaluation: recall and precision (§7.3, eqs. 5-6).

use crate::types::DocRef;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Recall and precision of one query's result list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecallPrecision {
    /// Fraction of relevant documents retrieved (eq. 5).
    pub recall: f64,
    /// Fraction of retrieved documents that are relevant (eq. 6).
    pub precision: f64,
}

/// Score a result list against a relevance set.
///
/// Empty edge cases: with no relevant documents recall is defined as 1
/// (nothing to find); with no results precision is defined as 0.
pub fn recall_precision(presented: &[DocRef], relevant: &HashSet<DocRef>) -> RecallPrecision {
    let hits = presented.iter().filter(|d| relevant.contains(d)).count() as f64;
    let recall = if relevant.is_empty() {
        1.0
    } else {
        hits / relevant.len() as f64
    };
    let precision = if presented.is_empty() {
        0.0
    } else {
        hits / presented.len() as f64
    };
    RecallPrecision { recall, precision }
}

/// Average recall/precision over queries ("average recall and precision
/// over all provided queries", §7.3). Queries with empty relevance sets
/// are skipped, matching standard IR evaluation practice.
pub fn average_recall_precision(per_query: &[RecallPrecision]) -> RecallPrecision {
    if per_query.is_empty() {
        return RecallPrecision {
            recall: 0.0,
            precision: 0.0,
        };
    }
    let n = per_query.len() as f64;
    RecallPrecision {
        recall: per_query.iter().map(|r| r.recall).sum::<f64>() / n,
        precision: per_query.iter().map(|r| r.precision).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(peer: usize, doc: u64) -> DocRef {
        DocRef { peer, doc }
    }

    #[test]
    fn perfect_retrieval() {
        let relevant: HashSet<DocRef> = [d(0, 1), d(0, 2)].into();
        let rp = recall_precision(&[d(0, 1), d(0, 2)], &relevant);
        assert_eq!(rp.recall, 1.0);
        assert_eq!(rp.precision, 1.0);
    }

    #[test]
    fn partial_retrieval() {
        let relevant: HashSet<DocRef> = [d(0, 1), d(0, 2), d(0, 3), d(0, 4)].into();
        // 2 relevant of 4 presented; 2 of 4 relevant found.
        let rp = recall_precision(&[d(0, 1), d(0, 2), d(1, 9), d(1, 8)], &relevant);
        assert_eq!(rp.recall, 0.5);
        assert_eq!(rp.precision, 0.5);
    }

    #[test]
    fn empty_edge_cases() {
        let none: HashSet<DocRef> = HashSet::new();
        let rp = recall_precision(&[], &none);
        assert_eq!(rp.recall, 1.0);
        assert_eq!(rp.precision, 0.0);
        let some: HashSet<DocRef> = [d(0, 1)].into();
        let rp = recall_precision(&[], &some);
        assert_eq!(rp.recall, 0.0);
    }

    #[test]
    fn averaging() {
        let avg = average_recall_precision(&[
            RecallPrecision {
                recall: 1.0,
                precision: 0.5,
            },
            RecallPrecision {
                recall: 0.0,
                precision: 1.0,
            },
        ]);
        assert_eq!(avg.recall, 0.5);
        assert_eq!(avg.precision, 0.75);
        let empty = average_recall_precision(&[]);
        assert_eq!(empty.recall, 0.0);
    }
}
