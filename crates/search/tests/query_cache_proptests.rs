//! Property-based tests of the directory-versioned `QueryCache`:
//! arbitrary interleavings of queries, republishes (version bumps),
//! joins, and leaves must always produce plans identical to an uncached
//! recomputation, and the hit/miss/refresh/rebuild counters must track
//! a simple reference model exactly — in particular, a republish must
//! invalidate only that peer's column (terms stay cached), while any
//! membership change must rebuild from scratch (a stale cache never
//! survives a directory change).
//!
//! The Bloofi front end (`QueryCache::with_tree`) is held to the same
//! standard by running every schedule through a flat cache and a
//! tree-fronted cache in lockstep: plans and counters must be
//! bit-identical, including for peers whose filter parameters don't
//! match the tree's (the fallback path).

use std::collections::HashSet;

use planetp_bloom::{BloomDiff, BloomFilter, BloomParams, CompressedBloom};
use planetp_bloomtree::{TreeConfig, TreeMetrics};
use planetp_search::{rank_peers, IpfTable, PeerFilterRef, QueryCache, QueryCacheStats};
use proptest::prelude::*;

/// One step of a generated schedule over a small community.
#[derive(Debug, Clone)]
enum Op {
    /// Query these vocabulary indices (duplicates allowed).
    Query(Vec<u8>),
    /// (peer selector, new term set): bump the peer's version and
    /// replace its filter.
    Republish(u8, Vec<u8>),
    /// A new peer joins with this term set.
    Join(Vec<u8>),
    /// A new peer joins gossiping a filter with *different* Bloom
    /// parameters — exercising the per-filter probe fallback (and the
    /// tree front end's fallback list).
    JoinForeign(Vec<u8>),
    /// (peer selector): a peer leaves.
    Leave(u8),
}

fn termset() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..8, 0..5)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => prop::collection::vec(0u8..8, 1..4).prop_map(Op::Query),
        2 => (any::<u8>(), termset()).prop_map(|(p, t)| Op::Republish(p, t)),
        1 => termset().prop_map(Op::Join),
        1 => termset().prop_map(Op::JoinForeign),
        1 => any::<u8>().prop_map(Op::Leave),
    ]
}

fn term(i: u8) -> String {
    format!("term-{i}")
}

fn filter_of(terms: &[u8]) -> BloomFilter {
    let mut f = BloomFilter::new(BloomParams::for_capacity(64, 1e-9));
    for &t in terms {
        f.insert(&term(t));
    }
    f
}

/// Same vocabulary, deliberately incompatible Bloom parameters.
fn foreign_filter_of(terms: &[u8]) -> BloomFilter {
    let mut f = BloomFilter::new(BloomParams::for_capacity(50, 1e-3));
    for &t in terms {
        f.insert(&term(t));
    }
    f
}

struct ModelPeer {
    id: u64,
    version: u64,
    filter: BloomFilter,
}

proptest! {
    /// Replay arbitrary schedules; after every query the cached plan
    /// must equal the oracle (`IpfTable::compute` + `rank_peers` over
    /// the same borrowed filters) and the counters must equal the
    /// reference model's prediction.
    #[test]
    fn cached_plans_match_oracle(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut peers: Vec<ModelPeer> = (0..3u64)
            .map(|i| ModelPeer {
                id: i + 1,
                version: 0,
                filter: filter_of(&[i as u8, (i as u8 + 1) % 8]),
            })
            .collect();
        let mut next_id = 4u64;
        let mut cache = QueryCache::new();
        // Reference model: which terms the cache should still hold, and
        // the (id, version) list it last synced against.
        let mut cached: HashSet<String> = HashSet::new();
        let mut synced: Vec<(u64, u64)> = Vec::new();
        let mut expect = QueryCacheStats::default();

        for op in &ops {
            match op {
                Op::Republish(p, terms) => {
                    if peers.is_empty() {
                        continue;
                    }
                    let i = *p as usize % peers.len();
                    peers[i].version += 1;
                    peers[i].filter = filter_of(terms);
                }
                Op::Join(terms) | Op::JoinForeign(terms) => {
                    let filter = if matches!(op, Op::Join(_)) {
                        filter_of(terms)
                    } else {
                        foreign_filter_of(terms)
                    };
                    peers.push(ModelPeer { id: next_id, version: 0, filter });
                    next_id += 1;
                }
                Op::Leave(p) => {
                    if peers.is_empty() {
                        continue;
                    }
                    let i = *p as usize % peers.len();
                    peers.remove(i);
                }
                Op::Query(idxs) => {
                    let q: Vec<String> =
                        idxs.iter().map(|&i| term(i)).collect();
                    let cur: Vec<(u64, u64)> =
                        peers.iter().map(|m| (m.id, m.version)).collect();
                    // Predict the counter movement for this query.
                    let same_membership = synced.len() == cur.len()
                        && synced.iter().zip(&cur).all(|(a, b)| a.0 == b.0);
                    if same_membership {
                        expect.peer_refreshes += synced
                            .iter()
                            .zip(&cur)
                            .filter(|(a, b)| a.1 != b.1)
                            .count() as u64;
                    } else {
                        expect.rebuilds += 1;
                        cached.clear();
                    }
                    synced = cur;
                    let mut seen = HashSet::new();
                    for t in &q {
                        if !seen.insert(t.clone()) {
                            continue; // duplicate within one query
                        }
                        if cached.insert(t.clone()) {
                            expect.misses += 1;
                        } else {
                            expect.hits += 1;
                        }
                    }

                    // Run through the cache and against the oracle.
                    let view: Vec<PeerFilterRef<'_>> = peers
                        .iter()
                        .map(|m| PeerFilterRef {
                            id: m.id,
                            version: (m.version, 0),
                            filter: &m.filter,
                        })
                        .collect();
                    let plan = cache.plan(&q, &view);
                    let filters: Vec<&BloomFilter> =
                        peers.iter().map(|m| &m.filter).collect();
                    let ipf = IpfTable::compute(&q, &filters);
                    let ranked = rank_peers(&q, &filters, &ipf);
                    prop_assert_eq!(plan.ipf.to_pairs(), ipf.to_pairs());
                    prop_assert_eq!(plan.ipf.num_peers(), peers.len());
                    prop_assert_eq!(plan.ranked, ranked);
                    prop_assert_eq!(cache.stats(), expect);
                }
            }
        }
    }

    /// A republish alone never costs a re-probe of unrelated peers or
    /// any cached-term miss: misses stay flat across version bumps.
    #[test]
    fn republish_keeps_terms_cached(
        bumps in prop::collection::vec((0u8..4, termset()), 1..6),
    ) {
        let mut peers: Vec<ModelPeer> = (0..4u64)
            .map(|i| ModelPeer {
                id: i + 1,
                version: 0,
                filter: filter_of(&[i as u8]),
            })
            .collect();
        let q: Vec<String> = (0..4u8).map(term).collect();
        let mut cache = QueryCache::new();
        let view: Vec<PeerFilterRef<'_>> = peers
            .iter()
            .map(|m| PeerFilterRef { id: m.id, version: (m.version, 0), filter: &m.filter })
            .collect();
        cache.plan(&q, &view);
        drop(view);
        let misses_after_cold = cache.stats().misses;
        for (p, terms) in &bumps {
            let i = *p as usize;
            peers[i].version += 1;
            peers[i].filter = filter_of(terms);
            let view: Vec<PeerFilterRef<'_>> = peers
                .iter()
                .map(|m| PeerFilterRef { id: m.id, version: (m.version, 0), filter: &m.filter })
                .collect();
            let plan = cache.plan(&q, &view);
            let filters: Vec<&BloomFilter> =
                peers.iter().map(|m| &m.filter).collect();
            let ipf = IpfTable::compute(&q, &filters);
            prop_assert_eq!(plan.ipf.to_pairs(), ipf.to_pairs());
            prop_assert_eq!(plan.ranked, rank_peers(&q, &filters, &ipf));
        }
        let s = cache.stats();
        prop_assert_eq!(s.misses, misses_after_cold, "bumps caused probes");
        prop_assert_eq!(s.rebuilds, 1, "no membership change happened");
        prop_assert_eq!(s.peer_refreshes, bumps.len() as u64);
    }

    /// Delta gossip is invisible to search: one twin maintains its peer
    /// mirrors the full-filter way (decompress the gossiped filter on
    /// every republish), the other the delta way (toggle the diff's
    /// bits into the existing mirror, as `synced_query_state` does).
    /// Replaying the same schedule, the mirrors must stay bit-identical
    /// and both caches must produce bit-identical plans and counters.
    #[test]
    fn delta_applied_mirrors_match_full_replacement(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let seed = |i: u64| ModelPeer {
            id: i + 1,
            version: 0,
            filter: filter_of(&[i as u8, (i as u8 + 1) % 8]),
        };
        let mut full: Vec<ModelPeer> = (0..3u64).map(seed).collect();
        let mut delta: Vec<ModelPeer> = (0..3u64).map(seed).collect();
        let mut next_id = 4u64;
        let mut full_cache = QueryCache::new();
        let mut delta_cache = QueryCache::new();

        for op in &ops {
            match op {
                Op::Republish(p, terms) => {
                    if full.is_empty() {
                        continue;
                    }
                    let i = *p as usize % full.len();
                    let new = filter_of(terms);
                    // Full twin: the wire carried the whole compressed
                    // filter; the mirror is replaced by a decompression.
                    full[i].version += 1;
                    full[i].filter =
                        CompressedBloom::compress(&new).decompress().unwrap();
                    // Delta twin: the wire carried a diff against the
                    // previous gossiped version; the mirror is patched
                    // in place.
                    let d = BloomDiff::between(&delta[i].filter, &new);
                    prop_assert!(d.apply_in_place(&mut delta[i].filter));
                    delta[i].version += 1;
                }
                Op::Join(terms) | Op::JoinForeign(terms) => {
                    // Joins always gossip the full filter.
                    for peers in [&mut full, &mut delta] {
                        let filter = if matches!(op, Op::Join(_)) {
                            filter_of(terms)
                        } else {
                            foreign_filter_of(terms)
                        };
                        peers.push(ModelPeer { id: next_id, version: 0, filter });
                    }
                    next_id += 1;
                }
                Op::Leave(p) => {
                    if full.is_empty() {
                        continue;
                    }
                    let i = *p as usize % full.len();
                    full.remove(i);
                    delta.remove(i);
                }
                Op::Query(idxs) => {
                    let q: Vec<String> =
                        idxs.iter().map(|&i| term(i)).collect();
                    // The mirrors themselves must be bit-identical…
                    for (a, b) in full.iter().zip(&delta) {
                        prop_assert_eq!(a.id, b.id);
                        prop_assert_eq!(&a.filter, &b.filter);
                        prop_assert_eq!(
                            a.filter.keys_inserted(),
                            b.filter.keys_inserted()
                        );
                    }
                    // …and so must everything computed from them.
                    let view_a: Vec<PeerFilterRef<'_>> = full
                        .iter()
                        .map(|m| PeerFilterRef {
                            id: m.id,
                            version: (m.version, 0),
                            filter: &m.filter,
                        })
                        .collect();
                    let view_b: Vec<PeerFilterRef<'_>> = delta
                        .iter()
                        .map(|m| PeerFilterRef {
                            id: m.id,
                            version: (m.version, 0),
                            filter: &m.filter,
                        })
                        .collect();
                    let a = full_cache.plan(&q, &view_a);
                    let b = delta_cache.plan(&q, &view_b);
                    prop_assert_eq!(a.ipf.to_pairs(), b.ipf.to_pairs());
                    prop_assert_eq!(a.ranked, b.ranked);
                    prop_assert_eq!(full_cache.stats(), delta_cache.stats());
                }
            }
        }
    }

    /// The Bloofi front end is an invisible optimization: a flat cache
    /// and a tree-fronted cache replaying the same schedule produce
    /// bit-identical plans and identical counters on every query, even
    /// with foreign-parameter peers riding the fallback path.
    #[test]
    fn tree_front_end_is_bit_identical_to_flat_cache(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut peers: Vec<ModelPeer> = (0..3u64)
            .map(|i| ModelPeer {
                id: i + 1,
                version: 0,
                filter: filter_of(&[i as u8, (i as u8 + 1) % 8]),
            })
            .collect();
        let mut next_id = 4u64;
        let mut flat = QueryCache::new();
        // Same bit space as filter_of, so resident peers are bit-copy
        // leaves; fan-out 3 keeps the tree deep at this community size.
        let mut tree = QueryCache::new().with_tree(
            TreeConfig::new(3, BloomParams::for_capacity(64, 1e-9)),
            TreeMetrics::detached(),
        );

        for op in &ops {
            match op {
                Op::Republish(p, terms) => {
                    if peers.is_empty() {
                        continue;
                    }
                    let i = *p as usize % peers.len();
                    peers[i].version += 1;
                    peers[i].filter = filter_of(terms);
                }
                Op::Join(terms) | Op::JoinForeign(terms) => {
                    let filter = if matches!(op, Op::Join(_)) {
                        filter_of(terms)
                    } else {
                        foreign_filter_of(terms)
                    };
                    peers.push(ModelPeer { id: next_id, version: 0, filter });
                    next_id += 1;
                }
                Op::Leave(p) => {
                    if peers.is_empty() {
                        continue;
                    }
                    let i = *p as usize % peers.len();
                    peers.remove(i);
                }
                Op::Query(idxs) => {
                    let q: Vec<String> =
                        idxs.iter().map(|&i| term(i)).collect();
                    let view: Vec<PeerFilterRef<'_>> = peers
                        .iter()
                        .map(|m| PeerFilterRef {
                            id: m.id,
                            version: (m.version, 0),
                            filter: &m.filter,
                        })
                        .collect();
                    let a = flat.plan(&q, &view);
                    let b = tree.plan(&q, &view);
                    prop_assert_eq!(a.ipf.to_pairs(), b.ipf.to_pairs());
                    prop_assert_eq!(a.ranked, b.ranked);
                    prop_assert_eq!(flat.stats(), tree.stats());
                    prop_assert!(
                        tree.tree_enabled(),
                        "unique view ids must never degrade the tree"
                    );
                }
            }
        }
    }
}
