//! Property-based tests for the ranking engines.

use planetp_bloom::BloomParams;
use planetp_index::InvertedIndex;
use planetp_search::{
    adaptive_p, CentralizedIndex, DistributedSearch, IndexedPeer, IpfTable, SelectionConfig,
    StoppingRule,
};
use proptest::prelude::*;

fn docs_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    prop::collection::vec(prop::collection::vec("[a-e]{1,3}", 1..12), 1..10)
}

fn peers_from(doc_sets: &[Vec<Vec<String>>]) -> Vec<IndexedPeer> {
    doc_sets
        .iter()
        .map(|docs| {
            let mut idx = InvertedIndex::new();
            for (i, terms) in docs.iter().enumerate() {
                idx.add_document(i as u64, terms);
            }
            IndexedPeer::new(idx, BloomParams::for_capacity(10_000, 1e-6))
        })
        .collect()
}

proptest! {
    /// Centralized ranking is sound: every returned document contains
    /// at least one query term, scores are positive and sorted.
    #[test]
    fn tfidf_ranking_sound(docs in docs_strategy(), query in prop::collection::vec("[a-e]{1,3}", 1..4)) {
        let mut idx = InvertedIndex::new();
        for (i, terms) in docs.iter().enumerate() {
            idx.add_document(i as u64, terms);
        }
        let central = CentralizedIndex::build(&[idx]);
        let ranked = central.rank(&query);
        prop_assert!(ranked.windows(2).all(|w| w[0].score >= w[1].score));
        for sd in &ranked {
            prop_assert!(sd.score > 0.0);
            let doc_terms = &docs[sd.doc.doc as usize];
            prop_assert!(
                query.iter().any(|q| doc_terms.contains(q)),
                "ranked doc without any query term"
            );
        }
    }

    /// Distributed search with AllRanked equals the centralized oracle's
    /// candidate set: same documents, same relative order of scores (the
    /// scoring function is the same eq. 2 with IPF weights).
    #[test]
    fn distributed_allranked_finds_all_matching_docs(
        peer_docs in prop::collection::vec(docs_strategy(), 1..4),
        query in prop::collection::vec("[a-e]{1,3}", 1..3),
    ) {
        let peers = peers_from(&peer_docs);
        let search = DistributedSearch::new(&peers);
        let big_k = 10_000;
        let out = search.search(
            &query,
            SelectionConfig { k: big_k, stopping: StoppingRule::AllRanked, group_size: 1 },
        );
        // Count matching docs by brute force (near-zero-FPR filters make
        // bloom candidacy exact here).
        let mut expected = 0usize;
        for docs in &peer_docs {
            for terms in docs {
                if query.iter().any(|q| terms.contains(q)) {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(out.results.len(), expected);
    }

    /// Stopping rules only shrink the contact set: adaptive never
    /// contacts more peers than AllRanked, and results are always a
    /// subset-by-score of the exhaustive ranking's top k.
    #[test]
    fn adaptive_contacts_bounded_by_allranked(
        peer_docs in prop::collection::vec(docs_strategy(), 1..4),
        query in prop::collection::vec("[a-e]{1,3}", 1..3),
        k in 1usize..20,
    ) {
        let peers = peers_from(&peer_docs);
        let search = DistributedSearch::new(&peers);
        let adaptive = search.search(&query, SelectionConfig::paper(k));
        let all = search.search(
            &query,
            SelectionConfig { k, stopping: StoppingRule::AllRanked, group_size: 1 },
        );
        prop_assert!(adaptive.peers_contacted <= all.peers_contacted);
        prop_assert!(adaptive.results.len() <= k);
    }

    /// IPF is monotone: terms on fewer peers never weigh less.
    #[test]
    fn ipf_monotone(n_peers in 1usize..50, a in 0usize..50, b in 0usize..50) {
        let a = a.min(n_peers);
        let b = b.min(n_peers);
        let va = planetp_search::ipf::ipf(n_peers, a);
        let vb = planetp_search::ipf::ipf(n_peers, b);
        if a <= b {
            prop_assert!(va >= vb, "ipf({n_peers},{a})={va} < ipf({n_peers},{b})={vb}");
        }
    }

    /// Eq. 4 is monotone in both community size and k.
    #[test]
    fn adaptive_p_monotone(n in 0usize..10_000, k in 0usize..500) {
        prop_assert!(adaptive_p(n + 300, k) >= adaptive_p(n, k));
        prop_assert!(adaptive_p(n, k + 50) >= adaptive_p(n, k));
    }

    /// IPF wire roundtrip: to_pairs/from_pairs preserves lookups.
    #[test]
    fn ipf_pairs_roundtrip(terms in prop::collection::vec("[a-z]{1,6}", 0..10)) {
        let filters: Vec<planetp_bloom::BloomFilter> = (0..3)
            .map(|i| {
                let mut f = planetp_bloom::BloomFilter::new(
                    BloomParams::for_capacity(100, 0.001),
                );
                if i == 0 {
                    for t in &terms {
                        f.insert(t);
                    }
                }
                f
            })
            .collect();
        let t1 = IpfTable::compute(&terms, &filters);
        let t2 = IpfTable::from_pairs(t1.to_pairs(), t1.num_peers());
        for t in &terms {
            prop_assert!((t1.get(t) - t2.get(t)).abs() < 1e-12);
        }
    }
}
