//! The Bloofi B-tree itself.

use std::collections::HashMap;

use planetp_bloom::{BloomFilter, BloomParams, HashedKey};

use crate::bitset::PeerBitset;
use crate::metrics::TreeMetrics;

/// Two-part `(status_version, bloom_version)` of one peer's gossiped
/// summary — structurally identical to `planetp_search::PeerVersion`,
/// redeclared here so the tree does not depend on the search crate.
pub type PeerVersion = (u64, u32);

/// Default maximum children per interior node.
pub const DEFAULT_FANOUT: usize = 16;

/// Shape and bit-space parameters of a [`BloomTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum children per interior node (≥ 2). Interior nodes other
    /// than the root keep at least `ceil(fanout / 2)` children.
    pub fanout: usize,
    /// Bit space of every tree node. Peers gossiping filters with
    /// exactly these parameters become leaves by bit-copy; others fall
    /// back to flat probing (or re-hash their key sets).
    pub params: BloomParams,
}

impl TreeConfig {
    /// Config with an explicit fan-out.
    ///
    /// # Panics
    /// Panics if `fanout < 2`.
    pub fn new(fanout: usize, params: BloomParams) -> Self {
        assert!(fanout >= 2, "tree fan-out must be at least 2");
        Self { fanout, params }
    }

    /// Default fan-out over the given bit space.
    pub fn for_params(params: BloomParams) -> Self {
        Self::new(DEFAULT_FANOUT, params)
    }
}

impl Default for TreeConfig {
    /// Default fan-out over the paper's 50 KB / 2-hash bit space (the
    /// parameters every live community filter uses).
    fn default() -> Self {
        Self::for_params(BloomParams::paper())
    }
}

/// One peer's summary as handed to [`BloomTree::bulk_build`] /
/// [`BloomTree::rebuild`].
#[derive(Debug, Clone, Copy)]
pub struct PeerEntry<'a> {
    /// Stable peer identity (gossip peer id).
    pub id: u64,
    /// Version of the published summary.
    pub version: PeerVersion,
    /// The peer's (decompressed) Bloom filter.
    pub filter: &'a BloomFilter,
}

/// Structural snapshot from [`BloomTree::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeStats {
    /// Peers tracked (leaves + fallback list).
    pub peers: usize,
    /// Peers on the flat-probed fallback list (mismatched params).
    pub fallback_peers: usize,
    /// Levels including the leaf level (0 = empty).
    pub height: usize,
    /// Live arena nodes (interior + leaf).
    pub nodes: usize,
    /// Interior nodes only.
    pub interior_nodes: usize,
    /// Mean fill ratio of interior union filters.
    pub avg_interior_fill: f64,
    /// Highest fill ratio among interior union filters.
    pub max_interior_fill: f64,
    /// Mean estimated FPR of interior union filters
    /// (`fill ^ num_hashes`).
    pub avg_interior_fpr: f64,
}

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf { id: u64, version: PeerVersion },
    Interior { children: Vec<u32> },
}

#[derive(Debug, Clone)]
struct Node {
    filter: BloomFilter,
    parent: Option<u32>,
    /// Largest peer id in this subtree (== the peer id for leaves);
    /// interior children are kept sorted by it, so descent is a scan
    /// for the first child with `max_id >= id`.
    max_id: u64,
    kind: NodeKind,
}

/// A Bloofi tree over the directory's per-peer Bloom filters. See the
/// [crate docs](crate) for the structure and its invariants.
#[derive(Debug)]
pub struct BloomTree {
    config: TreeConfig,
    nodes: Vec<Option<Node>>,
    free: Vec<u32>,
    root: Option<u32>,
    /// Peer id → leaf arena index (arena indices are stable across
    /// rebalancing; only parent links move).
    leaf_of: HashMap<u64, u32>,
    /// Peers whose filters don't fit the tree bit space: always
    /// candidates, probed through the flat `probe_row` path.
    fallback: HashMap<u64, PeerVersion>,
    /// Every tracked peer id, ascending — the positional universe of
    /// [`Self::candidates`].
    members: Vec<u64>,
    metrics: TreeMetrics,
}

impl BloomTree {
    /// Empty tree with detached metrics.
    pub fn new(config: TreeConfig) -> Self {
        Self {
            config,
            nodes: Vec::new(),
            free: Vec::new(),
            root: None,
            leaf_of: HashMap::new(),
            fallback: HashMap::new(),
            members: Vec::new(),
            metrics: TreeMetrics::detached(),
        }
    }

    /// Record tree activity through `metrics`.
    pub fn with_metrics(mut self, metrics: TreeMetrics) -> Self {
        self.metrics = metrics;
        self.metrics.height.set(self.height() as i64);
        self
    }

    /// Bulk-load a tree from a set of peers (ids deduplicated, first
    /// occurrence wins). Equivalent to `new` + [`Self::rebuild`].
    pub fn bulk_build(config: TreeConfig, peers: &[PeerEntry<'_>]) -> Self {
        let mut t = Self::new(config);
        t.rebuild(peers);
        t
    }

    /// The tree's configuration.
    pub fn config(&self) -> TreeConfig {
        self.config
    }

    /// Tracked peer ids, ascending. Bit `i` of a [`Self::candidates`]
    /// answer refers to `members()[i]`.
    pub fn members(&self) -> &[u64] {
        &self.members
    }

    /// Number of tracked peers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if no peers are tracked.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True if `id` is tracked (as a leaf or on the fallback list).
    pub fn contains_peer(&self, id: u64) -> bool {
        self.leaf_of.contains_key(&id) || self.fallback.contains_key(&id)
    }

    /// Position of `id` in [`Self::members`], if tracked.
    pub fn rank_of(&self, id: u64) -> Option<usize> {
        self.members.binary_search(&id).ok()
    }

    /// Last version recorded for `id`, if tracked.
    pub fn version_of(&self, id: u64) -> Option<PeerVersion> {
        if let Some(&leaf) = self.leaf_of.get(&id) {
            match self.node(leaf).kind {
                NodeKind::Leaf { version, .. } => return Some(version),
                NodeKind::Interior { .. } => unreachable!("leaf_of points at a leaf"),
            }
        }
        self.fallback.get(&id).copied()
    }

    /// Levels including the leaf level (0 = empty tree; fallback-only
    /// populations have height 0).
    pub fn height(&self) -> usize {
        let mut h = 0;
        let mut cur = self.root;
        while let Some(i) = cur {
            h += 1;
            cur = match &self.node(i).kind {
                NodeKind::Interior { children } => Some(children[0]),
                NodeKind::Leaf { .. } => None,
            };
        }
        h
    }

    /// Throw away the structure and bulk-load `peers` bottom-up:
    /// leaves in ascending id order are packed into maximal interior
    /// nodes level by level (the last two nodes of a level share
    /// children evenly when the tail would underflow). Counts as one
    /// `bloomtree.rebuilds`.
    pub fn rebuild(&mut self, peers: &[PeerEntry<'_>]) {
        self.nodes.clear();
        self.free.clear();
        self.root = None;
        self.leaf_of.clear();
        self.fallback.clear();
        self.members.clear();

        let mut sorted: Vec<PeerEntry<'_>> = peers.to_vec();
        sorted.sort_by_key(|p| p.id);
        sorted.dedup_by_key(|p| p.id);
        self.members = sorted.iter().map(|p| p.id).collect();

        let mut level: Vec<u32> = Vec::new();
        for p in &sorted {
            if p.filter.params() == self.config.params {
                let leaf = self.alloc(Node {
                    filter: p.filter.clone(),
                    parent: None,
                    max_id: p.id,
                    kind: NodeKind::Leaf {
                        id: p.id,
                        version: p.version,
                    },
                });
                self.leaf_of.insert(p.id, leaf);
                level.push(leaf);
            } else {
                self.fallback.insert(p.id, p.version);
            }
        }
        while level.len() > 1 {
            level = self.build_level(level);
        }
        self.root = level.pop();
        self.metrics.rebuilds.inc();
        self.metrics.height.set(self.height() as i64);
    }

    /// Track a new peer (or replace an existing one wholesale). The
    /// filter becomes a leaf iff its parameters match the tree's;
    /// otherwise the peer joins the fallback list.
    pub fn insert_peer(&mut self, id: u64, version: PeerVersion, filter: &BloomFilter) {
        if self.contains_peer(id) {
            self.remove_peer(id);
        }
        let rank = self.members.binary_search(&id).unwrap_err();
        self.members.insert(rank, id);
        if filter.params() == self.config.params {
            self.attach_leaf(id, version, filter.clone());
        } else {
            self.fallback.insert(id, version);
        }
        self.metrics.height.set(self.height() as i64);
    }

    /// Track a peer by re-hashing its key set into the tree bit space.
    /// The resulting leaf is exact with respect to `keys` (no false
    /// negatives for any inserted key) regardless of what parameters
    /// the peer's own gossiped filter uses — but it cannot reproduce
    /// that filter's false positives, so candidate sets built this way
    /// match *key* membership, not the remote filter's answers.
    pub fn insert_peer_keys<I, S>(&mut self, id: u64, version: PeerVersion, keys: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        if self.contains_peer(id) {
            self.remove_peer(id);
        }
        let rank = self.members.binary_search(&id).unwrap_err();
        self.members.insert(rank, id);
        let mut filter = BloomFilter::new(self.config.params);
        for k in keys {
            filter.insert(k.as_ref());
        }
        self.attach_leaf(id, version, filter);
        self.metrics.height.set(self.height() as i64);
    }

    /// Stop tracking `id`. Returns false if it was never tracked.
    pub fn remove_peer(&mut self, id: u64) -> bool {
        let present = if let Some(leaf) = self.leaf_of.remove(&id) {
            self.remove_leaf_structural(leaf);
            true
        } else {
            self.fallback.remove(&id).is_some()
        };
        if present {
            let rank = self
                .members
                .binary_search(&id)
                .expect("tracked peer in members");
            self.members.remove(rank);
            self.metrics.height.set(self.height() as i64);
        }
        present
    }

    /// Replace the summary of an already-tracked peer after a gossiped
    /// version bump; ancestors are recomputed exactly. A peer may
    /// migrate between the tree and the fallback list if its filter
    /// parameters changed. Returns false (and does nothing) if `id` is
    /// not tracked.
    pub fn update_peer(&mut self, id: u64, version: PeerVersion, filter: &BloomFilter) -> bool {
        if let Some(&leaf) = self.leaf_of.get(&id) {
            if filter.params() == self.config.params {
                let node = self.node_mut(leaf);
                node.filter = filter.clone();
                node.kind = NodeKind::Leaf { id, version };
                if let Some(p) = self.node(leaf).parent {
                    self.recompute_path(p);
                }
            } else {
                self.leaf_of.remove(&id);
                self.remove_leaf_structural(leaf);
                self.fallback.insert(id, version);
            }
            self.metrics.height.set(self.height() as i64);
            true
        } else if self.fallback.contains_key(&id) {
            if filter.params() == self.config.params {
                self.fallback.remove(&id);
                self.attach_leaf(id, version, filter.clone());
            } else {
                self.fallback.insert(id, version);
            }
            self.metrics.height.set(self.height() as i64);
            true
        } else {
            false
        }
    }

    /// Which tracked peers may contain `key`: walks the tree pruning
    /// subtrees whose union filter rejects the key, then adds every
    /// fallback peer unconditionally. Bit `i` of the answer refers to
    /// `members()[i]`.
    ///
    /// Guarantee: a superset of the flat per-peer probe — if a leaf
    /// peer's *tree* filter reports the key present, the peer is in
    /// the set (leaves that are bit-copies make this exactly the flat
    /// scan's answer for those peers).
    pub fn candidates(&self, key: &HashedKey) -> PeerBitset {
        let mut set = PeerBitset::with_len(self.members.len());
        for &id in self.fallback.keys() {
            let rank = self
                .members
                .binary_search(&id)
                .expect("fallback peer in members");
            set.set(rank);
        }
        let mut visited = 0u64;
        if let Some(root) = self.root {
            let mut stack = vec![root];
            while let Some(i) = stack.pop() {
                visited += 1;
                let node = self.node(i);
                if !node.filter.contains_hashed(key) {
                    continue;
                }
                match &node.kind {
                    NodeKind::Leaf { id, .. } => {
                        let rank = self
                            .members
                            .binary_search(id)
                            .expect("leaf peer in members");
                        set.set(rank);
                    }
                    NodeKind::Interior { children } => stack.extend_from_slice(children),
                }
            }
        }
        self.metrics.lookups.inc();
        self.metrics.nodes_visited.add(visited);
        self.metrics.candidates.add(set.count() as u64);
        self.metrics
            .probes_saved
            .add((self.members.len() - set.count()) as u64);
        set
    }

    /// Structural snapshot (height, node count, interior fill/FPR).
    pub fn stats(&self) -> TreeStats {
        let mut nodes = 0usize;
        let mut interior = 0usize;
        let mut fill_sum = 0.0;
        let mut fill_max = 0.0f64;
        let mut fpr_sum = 0.0;
        for node in self.nodes.iter().flatten() {
            nodes += 1;
            if let NodeKind::Interior { .. } = node.kind {
                interior += 1;
                let fill = node.filter.fill_ratio();
                fill_sum += fill;
                fill_max = fill_max.max(fill);
                fpr_sum += node.filter.estimated_fpr();
            }
        }
        TreeStats {
            peers: self.members.len(),
            fallback_peers: self.fallback.len(),
            height: self.height(),
            nodes,
            interior_nodes: interior,
            avg_interior_fill: if interior > 0 {
                fill_sum / interior as f64
            } else {
                0.0
            },
            max_interior_fill: fill_max,
            avg_interior_fpr: if interior > 0 {
                fpr_sum / interior as f64
            } else {
                0.0
            },
        }
    }

    /// Check every structural invariant, panicking on violation. Test
    /// support; not part of the stable API.
    #[doc(hidden)]
    pub fn validate(&self) {
        let live: usize = self.nodes.iter().flatten().count();
        assert_eq!(
            live + self.free.len(),
            self.nodes.len(),
            "arena slots are either live or on the free list"
        );
        for w in self.members.windows(2) {
            assert!(w[0] < w[1], "members sorted strictly ascending");
        }
        assert_eq!(
            self.members.len(),
            self.leaf_of.len() + self.fallback.len(),
            "members = leaves + fallback"
        );
        for id in self.fallback.keys() {
            assert!(
                self.members.binary_search(id).is_ok(),
                "fallback id {id} in members"
            );
        }
        let Some(root) = self.root else {
            assert!(self.leaf_of.is_empty(), "no root but leaves exist");
            assert_eq!(live, 0, "no root but live arena nodes exist");
            return;
        };
        assert!(self.node(root).parent.is_none(), "root has no parent");
        // Walk the whole tree, collecting leaves in order.
        let mut leaf_ids = Vec::new();
        let mut seen = 0usize;
        let mut depths = Vec::new();
        self.validate_node(root, true, 0, &mut leaf_ids, &mut depths, &mut seen);
        assert_eq!(seen, live, "every live node reachable from the root");
        let first_depth = depths[0];
        assert!(
            depths.iter().all(|&d| d == first_depth),
            "uniform leaf depth"
        );
        for w in leaf_ids.windows(2) {
            assert!(w[0] < w[1], "in-order leaf ids strictly ascending");
        }
        let mut expect: Vec<u64> = self.leaf_of.keys().copied().collect();
        expect.sort_unstable();
        assert_eq!(leaf_ids, expect, "in-order leaves = leaf_of keys");
    }

    fn validate_node(
        &self,
        idx: u32,
        is_root: bool,
        depth: usize,
        leaf_ids: &mut Vec<u64>,
        depths: &mut Vec<usize>,
        seen: &mut usize,
    ) {
        *seen += 1;
        let node = self.node(idx);
        assert_eq!(
            node.filter.params(),
            self.config.params,
            "every tree node lives in the tree bit space"
        );
        match &node.kind {
            NodeKind::Leaf { id, .. } => {
                assert_eq!(node.max_id, *id, "leaf max_id is its peer id");
                assert_eq!(
                    self.leaf_of.get(id),
                    Some(&idx),
                    "leaf_of points back at leaf"
                );
                leaf_ids.push(*id);
                depths.push(depth);
            }
            NodeKind::Interior { children } => {
                assert!(!children.is_empty(), "interior node has children");
                assert!(children.len() <= self.config.fanout, "fan-out bound");
                if !is_root {
                    assert!(
                        children.len() >= self.min_children(),
                        "non-root interior at least half full: {} < {}",
                        children.len(),
                        self.min_children()
                    );
                }
                let mut union = BloomFilter::new(self.config.params);
                let mut prev_max = None;
                for &c in children {
                    let child = self.node(c);
                    assert_eq!(child.parent, Some(idx), "child parent link");
                    if let Some(p) = prev_max {
                        assert!(p < child.max_id, "children sorted by max_id");
                    }
                    prev_max = Some(child.max_id);
                    union
                        .try_union_with(&child.filter)
                        .expect("tree nodes share parameters");
                    self.validate_node(c, false, depth + 1, leaf_ids, depths, seen);
                }
                assert_eq!(
                    node.max_id,
                    prev_max.unwrap(),
                    "interior max_id = last child's"
                );
                assert_eq!(
                    node.filter.words(),
                    union.words(),
                    "interior filter is the exact union of its children"
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // internals

    fn min_children(&self) -> usize {
        self.config.fanout.div_ceil(2)
    }

    fn node(&self, idx: u32) -> &Node {
        self.nodes[idx as usize].as_ref().expect("live node")
    }

    fn node_mut(&mut self, idx: u32) -> &mut Node {
        self.nodes[idx as usize].as_mut().expect("live node")
    }

    fn alloc(&mut self, node: Node) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Some(node);
                i
            }
            None => {
                self.nodes.push(Some(node));
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn free_node(&mut self, idx: u32) {
        self.nodes[idx as usize] = None;
        self.free.push(idx);
    }

    fn children(&self, idx: u32) -> &[u32] {
        match &self.node(idx).kind {
            NodeKind::Interior { children } => children,
            NodeKind::Leaf { .. } => unreachable!("interior expected"),
        }
    }

    fn children_mut(&mut self, idx: u32) -> &mut Vec<u32> {
        match &mut self.node_mut(idx).kind {
            NodeKind::Interior { children } => children,
            NodeKind::Leaf { .. } => unreachable!("interior expected"),
        }
    }

    /// Exact union of the given nodes' filters.
    fn union_of(&self, nodes: &[u32]) -> BloomFilter {
        let mut f = BloomFilter::new(self.config.params);
        for &c in nodes {
            f.try_union_with(&self.node(c).filter)
                .expect("tree nodes share parameters");
        }
        f
    }

    /// Group one finished level under fresh parents, returning the new
    /// level. The tail group is rebalanced with its left neighbor when
    /// it would fall below `min_children`.
    fn build_level(&mut self, level: Vec<u32>) -> Vec<u32> {
        let fanout = self.config.fanout;
        let mut groups: Vec<Vec<u32>> = level.chunks(fanout).map(|c| c.to_vec()).collect();
        if groups.len() > 1 {
            let last = groups.len() - 1;
            if groups[last].len() < self.min_children() {
                let mut combined = groups.remove(last - 1);
                combined.extend(groups.pop().expect("tail group"));
                let split = combined.len().div_ceil(2);
                let right = combined.split_off(split);
                groups.push(combined);
                groups.push(right);
            }
        }
        let mut parents = Vec::with_capacity(groups.len());
        for group in groups {
            let filter = self.union_of(&group);
            let max_id = self.node(*group.last().expect("non-empty group")).max_id;
            let kids = group.clone();
            let parent = self.alloc(Node {
                filter,
                parent: None,
                max_id,
                kind: NodeKind::Interior { children: group },
            });
            for &c in &kids {
                self.node_mut(c).parent = Some(parent);
            }
            parents.push(parent);
        }
        parents
    }

    /// Allocate a leaf for `(id, version, filter)` and hook it into the
    /// structure (members must already contain `id`).
    fn attach_leaf(&mut self, id: u64, version: PeerVersion, filter: BloomFilter) {
        let leaf = self.alloc(Node {
            filter,
            parent: None,
            max_id: id,
            kind: NodeKind::Leaf { id, version },
        });
        self.leaf_of.insert(id, leaf);
        match self.root {
            None => self.root = Some(leaf),
            Some(root) if matches!(self.node(root).kind, NodeKind::Leaf { .. }) => {
                let mut kids = vec![root, leaf];
                kids.sort_by_key(|&c| self.node(c).max_id);
                let filter = self.union_of(&kids);
                let max_id = self.node(kids[1]).max_id;
                let new_root = self.alloc(Node {
                    filter,
                    parent: None,
                    max_id,
                    kind: NodeKind::Interior {
                        children: kids.clone(),
                    },
                });
                for &c in &kids {
                    self.node_mut(c).parent = Some(new_root);
                }
                self.root = Some(new_root);
            }
            Some(_) => {
                let parent = self.leaf_parent_for(id);
                let pos = self
                    .children(parent)
                    .partition_point(|&c| self.node(c).max_id < id);
                self.children_mut(parent).insert(pos, leaf);
                self.node_mut(leaf).parent = Some(parent);
                // OR the new leaf into every ancestor (exact: ancestors
                // were exact unions and only gained this leaf).
                let leaf_filter = self.node(leaf).filter.clone();
                let mut cur = Some(parent);
                while let Some(i) = cur {
                    let node = self.node_mut(i);
                    node.max_id = node.max_id.max(id);
                    cur = node.parent;
                    self.node_mut(i)
                        .filter
                        .try_union_with(&leaf_filter)
                        .expect("tree nodes share parameters");
                }
                self.split_up(parent);
            }
        }
    }

    /// The interior node whose children are leaves and whose id range
    /// should receive `id`. Only valid when the root is interior.
    fn leaf_parent_for(&self, id: u64) -> u32 {
        let mut cur = self.root.expect("non-empty tree");
        loop {
            let children = self.children(cur);
            if matches!(self.node(children[0]).kind, NodeKind::Leaf { .. }) {
                return cur;
            }
            cur = children
                .iter()
                .copied()
                .find(|&c| self.node(c).max_id >= id)
                .unwrap_or(*children.last().expect("interior has children"));
        }
    }

    /// Split overfull nodes from `v` upward, growing the root if needed.
    fn split_up(&mut self, mut v: u32) {
        loop {
            let count = match &self.node(v).kind {
                NodeKind::Interior { children } => children.len(),
                NodeKind::Leaf { .. } => return,
            };
            if count <= self.config.fanout {
                return;
            }
            let split = count.div_ceil(2);
            let right: Vec<u32> = self.children_mut(v).split_off(split);
            let right_filter = self.union_of(&right);
            let right_max = self.node(*right.last().expect("right half")).max_id;
            let parent = self.node(v).parent;
            let w = self.alloc(Node {
                filter: right_filter,
                parent,
                max_id: right_max,
                kind: NodeKind::Interior {
                    children: right.clone(),
                },
            });
            for &c in &right {
                self.node_mut(c).parent = Some(w);
            }
            let left = self.children(v).to_vec();
            let left_filter = self.union_of(&left);
            let left_max = self.node(*left.last().expect("left half")).max_id;
            {
                let node = self.node_mut(v);
                node.filter = left_filter;
                node.max_id = left_max;
            }
            match parent {
                None => {
                    let filter = self.union_of(&[v, w]);
                    let new_root = self.alloc(Node {
                        filter,
                        parent: None,
                        max_id: right_max,
                        kind: NodeKind::Interior {
                            children: vec![v, w],
                        },
                    });
                    self.node_mut(v).parent = Some(new_root);
                    self.node_mut(w).parent = Some(new_root);
                    self.root = Some(new_root);
                    return;
                }
                Some(p) => {
                    let pos = self
                        .children(p)
                        .iter()
                        .position(|&c| c == v)
                        .expect("v under its parent");
                    self.children_mut(p).insert(pos + 1, w);
                    v = p;
                }
            }
        }
    }

    /// Unhook a leaf node (leaf_of already updated by the caller) and
    /// repair ancestors: exact recompute, then underflow rebalancing.
    fn remove_leaf_structural(&mut self, leaf: u32) {
        let parent = self.node(leaf).parent;
        self.free_node(leaf);
        match parent {
            None => self.root = None,
            Some(p) => {
                self.children_mut(p).retain(|&c| c != leaf);
                self.recompute_path(p);
                self.underflow_up(p);
            }
        }
    }

    /// Recompute filters and max_ids exactly from `from` to the root.
    fn recompute_path(&mut self, from: u32) {
        let mut cur = Some(from);
        while let Some(i) = cur {
            let kids = self.children(i).to_vec();
            let filter = self.union_of(&kids);
            let max_id = kids.last().map(|&c| self.node(c).max_id).unwrap_or(0);
            let node = self.node_mut(i);
            node.filter = filter;
            node.max_id = max_id;
            cur = node.parent;
        }
    }

    /// Repair underfull interior nodes from `v` upward: borrow an edge
    /// child from an adjacent sibling when it can spare one, else merge
    /// with it (which may cascade the underflow to the parent). The
    /// root instead collapses when it is an interior node with a single
    /// child.
    fn underflow_up(&mut self, mut v: u32) {
        loop {
            let count = match &self.node(v).kind {
                NodeKind::Interior { children } => children.len(),
                NodeKind::Leaf { .. } => return,
            };
            let Some(p) = self.node(v).parent else {
                // v is the root.
                if count == 1 {
                    let only = self.children(v)[0];
                    self.node_mut(only).parent = None;
                    self.free_node(v);
                    self.root = Some(only);
                } else if count == 0 {
                    self.free_node(v);
                    self.root = None;
                }
                return;
            };
            if count >= self.min_children() {
                return;
            }
            let pos = self
                .children(p)
                .iter()
                .position(|&c| c == v)
                .expect("v under its parent");
            let siblings = self.children(p);
            let left = (pos > 0).then(|| siblings[pos - 1]);
            let right = siblings.get(pos + 1).copied();
            let can_spare =
                |t: &Self, s: Option<u32>| s.filter(|&s| t.children(s).len() > t.min_children());
            if let Some(s) = can_spare(self, left) {
                // Borrow the left sibling's last child onto v's front.
                let moved = self.children_mut(s).pop().expect("sibling child");
                self.children_mut(v).insert(0, moved);
                self.node_mut(moved).parent = Some(v);
                self.rebuild_node(s);
                self.rebuild_node(v);
                return;
            }
            if let Some(s) = can_spare(self, right) {
                // Borrow the right sibling's first child onto v's back.
                let moved = self.children_mut(s).remove(0);
                self.children_mut(v).push(moved);
                self.node_mut(moved).parent = Some(v);
                self.rebuild_node(s);
                self.rebuild_node(v);
                return;
            }
            // Merge with a neighbor: append the right node of the pair
            // into the left to preserve id order.
            let (target, source) = match left {
                Some(l) => (l, v),
                None => (v, right.expect("non-root node has a sibling")),
            };
            let moved = std::mem::take(self.children_mut(source));
            for &c in &moved {
                self.node_mut(c).parent = Some(target);
            }
            self.children_mut(target).extend_from_slice(&moved);
            self.free_node(source);
            self.children_mut(p).retain(|&c| c != source);
            self.rebuild_node(target);
            v = p;
        }
    }

    /// Exact single-node recompute (filter + max_id) after its child
    /// list changed in a way that left the subtree's leaf set intact
    /// for every *ancestor* (borrow/merge between siblings).
    fn rebuild_node(&mut self, idx: u32) {
        let kids = self.children(idx).to_vec();
        let filter = self.union_of(&kids);
        let max_id = kids.last().map(|&c| self.node(c).max_id).unwrap_or(0);
        let node = self.node_mut(idx);
        node.filter = filter;
        node.max_id = max_id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planetp_bloom::probe_row;

    /// Roomy test bit space: negative assertions below rely on sparse
    /// single-key leaves not colliding, so keep the FPR far below any
    /// plausible flake threshold.
    fn params() -> BloomParams {
        BloomParams {
            num_bits: 4096,
            num_hashes: 2,
        }
    }

    fn filter_with(terms: &[&str]) -> BloomFilter {
        let mut f = BloomFilter::new(params());
        for t in terms {
            f.insert(t);
        }
        f
    }

    fn cfg(fanout: usize) -> TreeConfig {
        TreeConfig::new(fanout, params())
    }

    /// Flat oracle: ranks (members order) whose filter reports `key`.
    fn flat_hits(tree: &BloomTree, filters: &[(u64, BloomFilter)], key: &HashedKey) -> Vec<usize> {
        let mut by_id: Vec<&(u64, BloomFilter)> = filters.iter().collect();
        by_id.sort_by_key(|(id, _)| *id);
        let refs: Vec<&BloomFilter> = by_id.iter().map(|(_, f)| f).collect();
        let (presence, _) = probe_row(key, &refs);
        (0..refs.len())
            .filter(|&i| presence[i / 64] & (1u64 << (i % 64)) != 0)
            .inspect(|&i| assert_eq!(tree.members()[i], by_id[i].0))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = BloomTree::new(cfg(4));
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        let c = t.candidates(&HashedKey::new("x"));
        assert_eq!(c.count(), 0);
        t.validate();
    }

    #[test]
    fn single_leaf_root() {
        let mut t = BloomTree::new(cfg(4));
        t.insert_peer(7, (1, 0), &filter_with(&["alpha"]));
        assert_eq!(t.height(), 1);
        t.validate();
        assert!(t.candidates(&HashedKey::new("alpha")).contains(0));
        assert!(t.remove_peer(7));
        assert!(t.is_empty());
        t.validate();
    }

    #[test]
    fn inserts_grow_and_match_flat_scan() {
        let mut t = BloomTree::new(cfg(4));
        let mut flat: Vec<(u64, BloomFilter)> = Vec::new();
        // Out-of-order ids force mid-node inserts and splits.
        for i in [
            5u64, 50, 25, 1, 99, 42, 66, 13, 77, 30, 8, 61, 2, 88, 17, 54, 70, 3,
        ] {
            let f = filter_with(&[&format!("only-{i}"), "shared"]);
            t.insert_peer(i, (i, 0), &f);
            flat.push((i, f));
            t.validate();
        }
        assert!(t.height() >= 3, "height {}", t.height());
        for term in ["shared", "only-42", "only-3", "absent"] {
            let key = HashedKey::new(term);
            let cands = t.candidates(&key);
            let hits = flat_hits(&t, &flat, &key);
            // Bit-copy leaves: candidates == flat answer exactly.
            assert_eq!(cands.iter_ones().collect::<Vec<_>>(), hits, "term {term}");
        }
    }

    #[test]
    fn removals_rebalance_down_to_empty() {
        let mut t = BloomTree::new(cfg(4));
        let ids: Vec<u64> = (0..40).collect();
        for &i in &ids {
            t.insert_peer(i, (0, 0), &filter_with(&[&format!("k{i}")]));
        }
        t.validate();
        // Remove in an order that exercises borrows and merges.
        for &i in ids.iter().step_by(2).chain(ids.iter().skip(1).step_by(2)) {
            assert!(t.remove_peer(i));
            t.validate();
            let key = HashedKey::new(&format!("k{i}"));
            let c = t.candidates(&key);
            assert!(
                t.rank_of(i).is_none() && c.len() == t.len(),
                "removed peer no longer tracked"
            );
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn update_changes_answers_and_stays_exact() {
        let mut t = BloomTree::new(cfg(4));
        for i in 0..20u64 {
            t.insert_peer(i, (0, 0), &filter_with(&[&format!("k{i}")]));
        }
        let old = HashedKey::new("k7");
        let new = HashedKey::new("fresh");
        assert!(t.candidates(&old).contains(7));
        assert!(!t.candidates(&new).contains(7));
        assert!(t.update_peer(7, (1, 1), &filter_with(&["fresh"])));
        t.validate();
        assert!(t.candidates(&new).contains(7));
        // Exact maintenance: ancestors forgot "k7" unless another leaf
        // coincidentally sets the same bits (none does here).
        assert!(!t.candidates(&old).contains(7));
        assert_eq!(t.version_of(7), Some((1, 1)));
        assert!(
            !t.update_peer(999, (0, 0), &filter_with(&["x"])),
            "unknown id"
        );
    }

    #[test]
    fn mismatched_params_go_to_fallback_and_back() {
        let mut t = BloomTree::new(cfg(4));
        let foreign = {
            let mut f = BloomFilter::new(BloomParams {
                num_bits: 128,
                num_hashes: 3,
            });
            f.insert("theirs");
            f
        };
        for i in 0..10u64 {
            t.insert_peer(i, (0, 0), &filter_with(&[&format!("k{i}")]));
        }
        t.insert_peer(100, (0, 0), &foreign);
        t.validate();
        assert_eq!(t.stats().fallback_peers, 1);
        // Fallback peers are unconditional candidates.
        let c = t.candidates(&HashedKey::new("absent"));
        assert!(c.contains(t.rank_of(100).unwrap()));
        assert_eq!(c.count(), 1);
        // A republish with conforming params migrates it into the tree.
        assert!(t.update_peer(100, (1, 1), &filter_with(&["theirs"])));
        t.validate();
        assert_eq!(t.stats().fallback_peers, 0);
        assert!(!t
            .candidates(&HashedKey::new("absent"))
            .contains(t.rank_of(100).unwrap()));
        assert!(t
            .candidates(&HashedKey::new("theirs"))
            .contains(t.rank_of(100).unwrap()));
        // And a mismatched republish migrates it back out.
        assert!(t.update_peer(100, (2, 2), &foreign));
        t.validate();
        assert_eq!(t.stats().fallback_peers, 1);
    }

    #[test]
    fn keys_mode_has_no_false_negatives_for_keys() {
        let mut t = BloomTree::new(cfg(4));
        t.insert_peer_keys(3, (0, 0), ["apple", "pear"]);
        t.insert_peer_keys(9, (0, 0), ["plum"]);
        t.validate();
        assert!(t.candidates(&HashedKey::new("pear")).contains(0));
        assert!(t.candidates(&HashedKey::new("plum")).contains(1));
        assert!(!t.candidates(&HashedKey::new("pear")).contains(1));
    }

    #[test]
    fn bulk_build_equals_incremental_answers() {
        let flat: Vec<(u64, BloomFilter)> = (0..100u64)
            .map(|i| (i * 3 % 101, filter_with(&[&format!("t{i}"), "common"])))
            .collect();
        let entries: Vec<PeerEntry<'_>> = flat
            .iter()
            .map(|(id, f)| PeerEntry {
                id: *id,
                version: (0, 0),
                filter: f,
            })
            .collect();
        let bulk = BloomTree::bulk_build(cfg(8), &entries);
        bulk.validate();
        let mut incr = BloomTree::new(cfg(8));
        for e in &entries {
            incr.insert_peer(e.id, e.version, e.filter);
        }
        incr.validate();
        assert_eq!(bulk.members(), incr.members());
        for term in ["common", "t5", "t77", "none"] {
            let key = HashedKey::new(term);
            assert_eq!(
                bulk.candidates(&key).iter_ones().collect::<Vec<_>>(),
                incr.candidates(&key).iter_ones().collect::<Vec<_>>(),
                "term {term}"
            );
        }
    }

    #[test]
    fn insert_is_upsert() {
        let mut t = BloomTree::new(cfg(4));
        t.insert_peer(1, (0, 0), &filter_with(&["old"]));
        t.insert_peer(1, (1, 0), &filter_with(&["new"]));
        t.validate();
        assert_eq!(t.len(), 1);
        assert_eq!(t.version_of(1), Some((1, 0)));
        assert!(!t.candidates(&HashedKey::new("old")).contains(0));
        assert!(t.candidates(&HashedKey::new("new")).contains(0));
    }

    #[test]
    fn stats_and_metrics_track_lookups() {
        let mut t = BloomTree::new(cfg(4));
        for i in 0..50u64 {
            t.insert_peer(i, (0, 0), &filter_with(&[&format!("k{i}")]));
        }
        let s = t.stats();
        assert_eq!(s.peers, 50);
        assert!(s.height >= 3);
        assert!(s.interior_nodes > 0);
        assert!(s.nodes > 50);
        assert!(s.avg_interior_fill > 0.0 && s.max_interior_fill <= 1.0);

        let m = TreeMetrics::detached();
        let t = {
            let mut rebuilt = BloomTree::new(cfg(4)).with_metrics(m.clone());
            let flat: Vec<(u64, BloomFilter)> = (0..50u64)
                .map(|i| (i, filter_with(&[&format!("k{i}")])))
                .collect();
            let entries: Vec<PeerEntry<'_>> = flat
                .iter()
                .map(|(id, f)| PeerEntry {
                    id: *id,
                    version: (0, 0),
                    filter: f,
                })
                .collect();
            rebuilt.rebuild(&entries);
            rebuilt
        };
        assert_eq!(m.rebuilds(), 1);
        let c = t.candidates(&HashedKey::new("k10"));
        assert_eq!(m.lookups(), 1);
        assert!(m.nodes_visited() > 0);
        assert_eq!(m.candidates(), c.count() as u64);
        assert_eq!(m.probes_saved(), (50 - c.count()) as u64);
        // A term on one peer must prune: strictly fewer than N nodes
        // probed at the leaf level.
        assert!(c.count() < 50);
    }
}
