//! Hierarchical Bloom index over the gossiped directory (Bloofi).
//!
//! PlanetP answers "which peers' filters contain term `t`?" by probing
//! every filter in the global directory — O(N) probes per cold term,
//! which caps the community size the query path can sustain. Bloofi
//! (Crainiceanu & Lemire, "Bloofi: Multidimensional Bloom filters")
//! arranges the N filters as the leaves of a B-tree whose interior
//! nodes store the *union* of their children: a query key absent from
//! an interior filter is absent from every leaf below it, so whole
//! subtrees are pruned and a lookup costs O(fanout · height) probes
//! when the key is rare.
//!
//! [`BloomTree`] is that structure, keyed by peer id:
//!
//! - **bulk-loadable**: [`BloomTree::bulk_build`] packs sorted leaves
//!   bottom-up in one pass (the shape a membership-change rebuild
//!   takes);
//! - **incrementally maintained**: [`BloomTree::insert_peer`],
//!   [`BloomTree::remove_peer`] and [`BloomTree::update_peer`] keep the
//!   tree consistent with gossiped `(status_version, bloom_version)`
//!   bumps, with B-tree split/merge rebalancing and *exact* interior
//!   unions (ancestors are recomputed, never left stale-superset);
//! - **no false negatives**: [`BloomTree::candidates`] returns a
//!   [`PeerBitset`] that is always a superset of the flat
//!   [`probe_row`](planetp_bloom::probe_row) answer over the same
//!   filters.
//!
//! Peers may gossip filters with heterogeneous [`BloomParams`]; the
//! tree stores every node in one fixed bit space
//! ([`TreeConfig::params`]). A peer whose filter matches those params
//! becomes a leaf by bit-copy — probing the leaf *is* probing the
//! peer's filter, so pruning is exact at the leaf level. A mismatched
//! peer either re-hashes its key set into tree space
//! ([`BloomTree::insert_peer_keys`]) or is kept on a *fallback list*
//! that is unconditionally included in every candidate set and probed
//! through the existing `probe_row` path. Mismatched filters are never
//! forced into all-ones leaves: that would saturate every ancestor
//! union and destroy pruning for the whole tree.
//!
//! [`BloomParams`]: planetp_bloom::BloomParams

pub mod bitset;
pub mod metrics;
pub mod tree;

pub use bitset::PeerBitset;
pub use metrics::TreeMetrics;
pub use tree::{BloomTree, PeerEntry, PeerVersion, TreeConfig, TreeStats};
