//! Positional bitset over the tree's tracked peers.

/// A fixed-width bitset whose bit `i` refers to the `i`-th tracked
/// peer in ascending-id order (the tree's [`members`] order). This is
/// the answer shape of [`BloomTree::candidates`]: the same
/// `(words, popcount)` layout [`probe_row`] produces, so callers can
/// intersect or iterate either interchangeably.
///
/// [`members`]: crate::BloomTree::members
/// [`BloomTree::candidates`]: crate::BloomTree::candidates
/// [`probe_row`]: planetp_bloom::probe_row
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerBitset {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl PeerBitset {
    /// All-zero bitset over `len` positions.
    pub fn with_len(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// Number of addressable positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no positions exist (not "no bits set").
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.ones
    }

    /// Set bit `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    pub fn set(&mut self, idx: usize) {
        assert!(idx < self.len, "bit {idx} out of range {}", self.len);
        let (w, mask) = (idx / 64, 1u64 << (idx % 64));
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.ones += 1;
        }
    }

    /// True if bit `idx` is set (out-of-range reads as unset).
    pub fn contains(&self, idx: usize) -> bool {
        idx < self.len && self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Raw little-endian words, `probe_row`-compatible.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Indices of set bits, ascending.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over set-bit positions of a [`PeerBitset`].
#[derive(Debug)]
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let b = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_contains_count() {
        let mut s = PeerBitset::with_len(130);
        assert_eq!(s.count(), 0);
        for i in [0, 63, 64, 129] {
            s.set(i);
        }
        s.set(64); // idempotent
        assert_eq!(s.count(), 4);
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(500));
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
    }

    #[test]
    fn empty_bitset() {
        let s = PeerBitset::with_len(0);
        assert!(s.is_empty());
        assert_eq!(s.iter_ones().count(), 0);
        assert!(s.words().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        PeerBitset::with_len(10).set(10);
    }
}
