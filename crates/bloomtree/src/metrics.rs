//! `bloomtree.*` instrumentation handles.

use planetp_obs::{names, Counter, Gauge, Registry};

/// Metric handles for one [`BloomTree`](crate::BloomTree); attach to a
/// node's [`Registry`] so snapshots expose pruning effectiveness, or
/// leave detached for standalone use.
#[derive(Debug, Clone)]
pub struct TreeMetrics {
    pub(crate) probes_saved: Counter,
    pub(crate) nodes_visited: Counter,
    pub(crate) rebuilds: Counter,
    pub(crate) lookups: Counter,
    pub(crate) candidates: Counter,
    pub(crate) height: Gauge,
}

impl TreeMetrics {
    /// Handles registered under the shared `bloomtree.*` names.
    pub fn in_registry(registry: &Registry) -> Self {
        Self {
            probes_saved: registry.counter(names::BLOOMTREE_PROBES_SAVED),
            nodes_visited: registry.counter(names::BLOOMTREE_NODES_VISITED),
            rebuilds: registry.counter(names::BLOOMTREE_REBUILDS),
            lookups: registry.counter(names::BLOOMTREE_LOOKUPS),
            candidates: registry.counter(names::BLOOMTREE_CANDIDATES),
            height: registry.gauge(names::BLOOMTREE_HEIGHT),
        }
    }

    /// Handles not visible in any snapshot.
    pub fn detached() -> Self {
        Self {
            probes_saved: Counter::detached(),
            nodes_visited: Counter::detached(),
            rebuilds: Counter::detached(),
            lookups: Counter::detached(),
            candidates: Counter::detached(),
            height: Gauge::detached(),
        }
    }

    /// Per-peer filter probes avoided by pruning, cumulative.
    pub fn probes_saved(&self) -> u64 {
        self.probes_saved.get()
    }

    /// Tree nodes probed during candidate lookups, cumulative.
    pub fn nodes_visited(&self) -> u64 {
        self.nodes_visited.get()
    }

    /// Full bulk rebuilds.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.get()
    }

    /// Candidate lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups.get()
    }

    /// Candidate peers that survived pruning, cumulative.
    pub fn candidates(&self) -> u64 {
        self.candidates.get()
    }
}
