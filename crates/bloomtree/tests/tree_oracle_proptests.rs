//! Property tests pitting [`BloomTree`] against the flat probe oracle.
//!
//! The tree exists to *prune* the O(N) per-peer probe, never to change
//! its answer. These tests generate insert/update/remove/query
//! schedules (up to ~500 peers) and check, after every query, that
//! [`BloomTree::candidates`] is
//!
//! - a **superset** of the flat per-filter probe (zero false
//!   negatives), always — including for fallback peers whose filter
//!   parameters don't match the tree's; and
//! - **exactly equal** to the flat probe for every peer stored as a
//!   bit-copy leaf: probing the leaf *is* probing the peer's filter,
//!   so interior-node false positives cost node visits, not wrong
//!   candidates.
//!
//! Structural invariants ([`BloomTree::validate`]) are re-checked after
//! every mutation, so any schedule that corrupts fill factors, parent
//! links, or interior unions shrinks to a minimal repro.

use planetp_bloom::{BloomFilter, BloomParams, HashedKey};
use planetp_bloomtree::{BloomTree, PeerEntry, PeerVersion, TreeConfig};
use proptest::collection::vec;
use proptest::prelude::*;

/// Tree bit space: roomy enough that leaf filters stay sparse, small
/// enough that unions climb toward saturation and exercise pruning
/// failure modes on interior nodes.
fn tree_params() -> BloomParams {
    BloomParams {
        num_bits: 4096,
        num_hashes: 2,
    }
}

/// Deliberately incompatible parameters: peers gossiping these land on
/// the fallback list instead of becoming leaves.
fn foreign_params() -> BloomParams {
    BloomParams {
        num_bits: 1024,
        num_hashes: 3,
    }
}

/// Shared 16-word vocabulary so queries hit overlapping peer subsets.
fn term(n: u8) -> String {
    format!("w{n}")
}

fn filter_of(params: BloomParams, terms: &[u8]) -> BloomFilter {
    let mut f = BloomFilter::new(params);
    for &t in terms {
        f.insert(&term(t));
    }
    f
}

/// One tracked peer mirrored outside the tree: the oracle probes
/// `filter` directly, exactly as the flat directory scan would.
#[derive(Debug, Clone)]
struct ModelPeer {
    id: u64,
    version: PeerVersion,
    filter: BloomFilter,
    foreign: bool,
}

#[derive(Debug, Clone)]
enum Op {
    /// Join with a tree-compatible filter (becomes a leaf).
    Insert(Vec<u8>),
    /// Join with mismatched filter parameters (fallback list).
    InsertForeign(Vec<u8>),
    /// Republish with tree-compatible parameters — a foreign peer
    /// picked here migrates fallback → leaf.
    Update(u16, Vec<u8>),
    /// Republish with mismatched parameters — a leaf peer picked here
    /// migrates leaf → fallback.
    UpdateForeign(u16, Vec<u8>),
    /// Leave the community.
    Remove(u16),
    /// Probe one vocabulary word and diff against the oracle.
    Query(u8),
}

fn termset() -> impl Strategy<Value = Vec<u8>> {
    vec(0u8..16, 0..6)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => termset().prop_map(Op::Insert),
        1 => termset().prop_map(Op::InsertForeign),
        2 => (any::<u16>(), termset()).prop_map(|(s, t)| Op::Update(s, t)),
        1 => (any::<u16>(), termset()).prop_map(|(s, t)| Op::UpdateForeign(s, t)),
        2 => any::<u16>().prop_map(Op::Remove),
        4 => (0u8..16).prop_map(Op::Query),
    ]
}

/// Check one query against the flat oracle. Every flat hit must be a
/// candidate (no false negatives); leaf-backed peers must match the
/// flat probe exactly; fallback peers are unconditional candidates.
fn check_query(tree: &BloomTree, model: &[ModelPeer], t: u8) {
    let key = HashedKey::new(&term(t));
    let candidates = tree.candidates(&key);
    assert_eq!(candidates.len(), model.len());
    for peer in model {
        let rank = tree.rank_of(peer.id).expect("model peer is tracked");
        let flat = peer.filter.contains_hashed(&key);
        let candidate = candidates.contains(rank);
        if peer.foreign {
            assert!(
                candidate,
                "fallback peer {} must always be a candidate",
                peer.id
            );
        } else {
            // Bit-copy leaf: the tree's answer for this peer IS the
            // flat probe of its filter.
            assert_eq!(
                candidate,
                flat,
                "leaf peer {} diverged from flat probe for {:?}",
                peer.id,
                term(t)
            );
        }
        if flat {
            assert!(candidate, "false negative for peer {}", peer.id);
        }
    }
}

/// Mutations must leave the tree structurally sound and in agreement
/// with the model about membership and versions.
fn check_consistency(tree: &BloomTree, model: &[ModelPeer]) {
    tree.validate();
    assert_eq!(tree.len(), model.len());
    for peer in model {
        assert_eq!(
            tree.version_of(peer.id),
            Some(peer.version),
            "version drift for peer {}",
            peer.id
        );
    }
}

fn apply_ops(tree: &mut BloomTree, model: &mut Vec<ModelPeer>, next_id: &mut u64, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Insert(terms) | Op::InsertForeign(terms) => {
                let foreign = matches!(op, Op::InsertForeign(_));
                let params = if foreign {
                    foreign_params()
                } else {
                    tree_params()
                };
                let id = *next_id;
                *next_id += 1;
                let filter = filter_of(params, terms);
                tree.insert_peer(id, (1, 1), &filter);
                model.push(ModelPeer {
                    id,
                    version: (1, 1),
                    filter,
                    foreign,
                });
                check_consistency(tree, model);
            }
            Op::Update(sel, terms) | Op::UpdateForeign(sel, terms) => {
                if model.is_empty() {
                    continue;
                }
                let foreign = matches!(op, Op::UpdateForeign(..));
                let params = if foreign {
                    foreign_params()
                } else {
                    tree_params()
                };
                let peer = &mut model[*sel as usize % model.len()];
                peer.version = (peer.version.0, peer.version.1 + 1);
                peer.filter = filter_of(params, terms);
                peer.foreign = foreign;
                assert!(tree.update_peer(peer.id, peer.version, &peer.filter));
                check_consistency(tree, model);
            }
            Op::Remove(sel) => {
                if model.is_empty() {
                    continue;
                }
                let peer = model.remove(*sel as usize % model.len());
                assert!(tree.remove_peer(peer.id));
                assert!(tree.rank_of(peer.id).is_none());
                check_consistency(tree, model);
            }
            Op::Query(t) => check_query(tree, model, *t),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mixed-parameter schedules over a small community with fan-out 3
    /// (deep trees, frequent split/merge): candidates() never loses a
    /// flat hit and stays exact for every bit-copy leaf.
    #[test]
    fn mixed_schedules_match_flat_oracle(ops in vec(op_strategy(), 1..60)) {
        let mut tree = BloomTree::new(TreeConfig::new(3, tree_params()));
        let mut model: Vec<ModelPeer> = Vec::new();
        let mut next_id = 0u64;

        // Seed a few leaves so early Update/Remove selectors bite.
        apply_ops(
            &mut tree,
            &mut model,
            &mut next_id,
            &[Op::Insert(vec![0, 1]), Op::Insert(vec![2]), Op::Insert(vec![3, 4, 5])],
        );
        apply_ops(&mut tree, &mut model, &mut next_id, &ops);

        // Sweep the whole vocabulary once at the end.
        for t in 0..16 {
            check_query(&tree, &model, t);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A ~500-peer homogeneous community built with bulk_build, then
    /// churned: with every peer a bit-copy leaf, the candidate set is
    /// *identical* to the flat scan's presence row on every query.
    #[test]
    fn bulk_built_500_peer_community_is_exact_under_churn(
        churn in vec(
            prop_oneof![
                2 => (any::<u16>(), termset())
                    .prop_map(|(s, t)| Op::Update(s, t)),
                2 => any::<u16>().prop_map(Op::Remove),
                1 => termset().prop_map(Op::Insert),
                3 => (0u8..16).prop_map(Op::Query),
            ],
            0..40,
        ),
    ) {
        // Peer i announces 4 words from the shared vocabulary, strided
        // so every word has ~125 publishers.
        let filters: Vec<BloomFilter> = (0..500u64)
            .map(|i| {
                let terms: Vec<u8> =
                    (0..4).map(|j| ((i + 3 * j) % 16) as u8).collect();
                filter_of(tree_params(), &terms)
            })
            .collect();
        let entries: Vec<PeerEntry<'_>> = filters
            .iter()
            .enumerate()
            .map(|(i, f)| PeerEntry { id: i as u64, version: (1, 1), filter: f })
            .collect();
        let mut tree = BloomTree::bulk_build(TreeConfig::new(8, tree_params()), &entries);
        let mut model: Vec<ModelPeer> = filters
            .iter()
            .enumerate()
            .map(|(i, f)| ModelPeer {
                id: i as u64,
                version: (1, 1),
                filter: f.clone(),
                foreign: false,
            })
            .collect();
        let mut next_id = 500u64;
        check_consistency(&tree, &model);
        assert!(tree.height() >= 3, "500 leaves at fan-out 8 must stack levels");

        apply_ops(&mut tree, &mut model, &mut next_id, &churn);

        for t in 0..16 {
            check_query(&tree, &model, t);
        }
    }
}
