//! Property-based tests of the discrete-event simulator: determinism,
//! conservation of accounting, and convergence under random workloads.

use planetp_simnet::{LinkClass, SimConfig, Simulator};
use proptest::prelude::*;

fn links_strategy() -> impl Strategy<Value = Vec<LinkClass>> {
    prop::collection::vec(
        prop::sample::select(vec![
            LinkClass::Modem56k,
            LinkClass::Dsl512k,
            LinkClass::Cable5M,
            LinkClass::Eth10M,
            LinkClass::Lan45M,
        ]),
        5..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Identical configuration + seed => identical run, byte for byte.
    #[test]
    fn runs_are_deterministic(links in links_strategy(), seed in any::<u64>(), updater in any::<prop::sample::Index>()) {
        let run = || {
            let cfg = SimConfig { seed, ..SimConfig::default() };
            let mut sim = Simulator::new(cfg);
            sim.add_stable_community(&links, 16_000);
            let origin = updater.index(links.len()) as u32;
            let rumor = sim.local_update(origin, 3000);
            sim.track(rumor);
            sim.run_until(1_800_000);
            (
                sim.metrics.total_bytes,
                sim.metrics.total_messages,
                sim.metrics.tracked[0].latency_ms(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Accounting conservation: per-node bytes sum to the total, and
    /// the bandwidth series sums to the total too.
    #[test]
    fn byte_accounting_consistent(links in links_strategy(), seed in any::<u64>()) {
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let mut sim = Simulator::new(cfg);
        sim.add_stable_community(&links, 16_000);
        let rumor = sim.local_update(0, 3000);
        sim.track(rumor);
        sim.run_until(900_000);
        let per_node: u64 = sim.metrics.bytes_per_node.iter().sum();
        prop_assert_eq!(per_node, sim.metrics.total_bytes);
        prop_assert_eq!(sim.metrics.bandwidth.total(), sim.metrics.total_bytes);
        let by_kind: u64 = sim.metrics.bytes_by_kind.values().sum();
        prop_assert_eq!(by_kind, sim.metrics.total_bytes);
    }

    /// Any update in an all-online community of any link mix converges
    /// well before an hour of simulated time.
    #[test]
    fn updates_always_converge(links in links_strategy(), seed in any::<u64>(), updater in any::<prop::sample::Index>()) {
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let mut sim = Simulator::new(cfg);
        sim.add_stable_community(&links, 16_000);
        let origin = updater.index(links.len()) as u32;
        let rumor = sim.local_update(origin, 3000);
        sim.track(rumor);
        sim.run_until(3_600_000);
        prop_assert!(
            sim.metrics.tracked[0].latency_ms().is_some(),
            "update from {origin} never converged in {:?}",
            links
        );
        prop_assert!(sim.converged(), "digests still differ after convergence");
    }

    /// Churned-off nodes never send or receive after going offline
    /// (their byte counters freeze).
    #[test]
    fn offline_nodes_stay_silent(seed in any::<u64>()) {
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let mut sim = Simulator::new(cfg);
        sim.add_stable_community(&[LinkClass::Lan45M; 12], 16_000);
        sim.run_until(120_000);
        sim.set_offline(3);
        // Message already in flight may still be charged to 3's uplink
        // before the offline flag is seen at the send site; snapshot
        // after a grace period.
        sim.run_until(200_000);
        let frozen = sim.metrics.bytes_per_node[3];
        let rumor = sim.local_update(0, 3000);
        sim.track(rumor);
        sim.run_until(1_200_000);
        prop_assert_eq!(sim.metrics.bytes_per_node[3], frozen);
    }
}
