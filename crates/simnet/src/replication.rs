//! Availability model for autonomous replication (DESIGN.md §15).
//!
//! The live runtime drives `planetp_replica`'s placement math from its
//! gossip tick; this module drives the *same* math — [`SpaceSaving`]
//! hotness, EWMA [`AvailabilityTracker`], [`pick_targets`],
//! [`eviction_weight`] — against the paper's §7 churn schedule (40% of
//! members always online, the rest cycling with exponential
//! online/offline dwell times started in steady state). Queries over a
//! Zipf popularity curve probe whether each requested document is
//! reachable (home online, or any replica holder online), so one run
//! yields the hit rate a community would see with replication on or
//! off, plus the storage it paid for the difference.

use planetp_replica::{
    estimated_availability, eviction_weight, pick_targets, AvailabilityTracker, Candidate,
    ReplicaConfig, SpaceSaving,
};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Configuration of one replication availability run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicaSimConfig {
    /// Community size.
    pub peers: usize,
    /// Fraction of members online all the time (paper §7: 0.4).
    pub always_online_frac: f64,
    /// Mean online period of cycling members, seconds (paper: 3600).
    pub mean_online_s: f64,
    /// Mean offline period of cycling members, seconds (paper: 8400).
    pub mean_offline_s: f64,
    /// Documents homed on each peer.
    pub docs_per_peer: usize,
    /// Size of every document, bytes.
    pub doc_bytes: u64,
    /// Simulated duration, seconds.
    pub duration_s: u64,
    /// Seconds between ticks (directory sample + replication pass).
    pub tick_s: u64,
    /// Queries sampled per tick across the whole community.
    pub queries_per_tick: usize,
    /// Zipf exponent of the query popularity curve.
    pub zipf_exponent: f64,
    /// Replication policy; `None` turns replication off (the control
    /// run — queries succeed only while the home peer is online).
    pub replication: Option<ReplicaConfig>,
    /// RNG seed; identical seeds replay identical churn and queries.
    pub seed: u64,
}

impl Default for ReplicaSimConfig {
    fn default() -> Self {
        Self {
            peers: 40,
            always_online_frac: 0.4,
            mean_online_s: 3600.0,
            mean_offline_s: 8400.0,
            docs_per_peer: 8,
            doc_bytes: 16 << 10,
            duration_s: 12 * 3600,
            tick_s: 60,
            queries_per_tick: 8,
            zipf_exponent: 1.0,
            replication: Some(ReplicaConfig::enabled()),
            seed: 0xCAFE,
        }
    }
}

/// What one replication run measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicaSimReport {
    /// Fraction of sampled queries whose document was reachable.
    pub hit_rate: f64,
    /// Worst per-window hit rate (windows of `duration_s / 8`).
    pub min_hit_rate: f64,
    /// Total stored bytes over original corpus bytes (1.0 = no copies).
    pub storage_overhead: f64,
    /// Replica copies placed over the run.
    pub replicas_placed: u64,
    /// Replica copies evicted under capacity pressure.
    pub evictions: u64,
    /// Queries sampled.
    pub samples: u64,
}

/// Per-peer state: churn plus hosted-replica accounting. Stable
/// members never transition (`next_flip_s` stays at infinity).
struct PeerState {
    online: bool,
    next_flip_s: f64,
    used_bytes: u64,
    hosted: BTreeSet<u64>,
}

/// Run the model and report availability vs storage.
pub fn run_replica_sim(cfg: &ReplicaSimConfig) -> ReplicaSimReport {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.peers.max(2);
    let n_stable = (n as f64 * cfg.always_online_frac).round() as usize;
    let exp_on = Exp::new(1.0 / cfg.mean_online_s).expect("positive rate");
    let exp_off = Exp::new(1.0 / cfg.mean_offline_s).expect("positive rate");
    let p_online = cfg.mean_online_s / (cfg.mean_online_s + cfg.mean_offline_s);

    let mut peers: Vec<PeerState> = (0..n)
        .map(|i| {
            // Steady-state start for cyclers, as in `dynamic_community`.
            let (online, next_flip_s) = if i < n_stable {
                (true, f64::INFINITY)
            } else {
                let online = rng.random_bool(p_online);
                let dwell = if online {
                    exp_on.sample(&mut rng)
                } else {
                    exp_off.sample(&mut rng)
                };
                (online, dwell)
            };
            PeerState {
                online,
                next_flip_s,
                used_bytes: 0,
                hosted: BTreeSet::new(),
            }
        })
        .collect();

    // Documents: id -> home peer, round-robin so every peer serves the
    // same share. Popularity ranks are a random permutation so hot
    // documents are uncorrelated with how stable their home is.
    let n_docs = n * cfg.docs_per_peer.max(1);
    let home_of = |doc: u64| (doc as usize % n) as u32;
    let mut by_rank: Vec<u64> = (0..n_docs as u64).collect();
    by_rank.shuffle(&mut rng);
    // Inverse-CDF sampler over 1/rank^s weights.
    let mut cum = Vec::with_capacity(n_docs);
    let mut total = 0.0f64;
    for rank in 0..n_docs {
        total += 1.0 / ((rank + 1) as f64).powf(cfg.zipf_exponent);
        cum.push(total);
    }

    // Replica holder sets (home excluded) and shared decision state.
    let mut holders: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n_docs];
    let rep = cfg.replication.clone().filter(|r| r.enabled);
    let mut tracker = rep
        .as_ref()
        .map(|r| AvailabilityTracker::new(r.availability_alpha, r.availability_prior));
    let mut sketch = rep.as_ref().map(|r| SpaceSaving::new(r.sketch_capacity));

    let mut hits = 0u64;
    let mut samples = 0u64;
    let mut replicas_placed = 0u64;
    let mut evictions = 0u64;
    // Spare capacity as gossiped: sampled once per tick, so within a
    // pass several homes can target the same peer on a stale ad and
    // exercise the eviction/reject admission path, as live nodes do.
    let mut adv_spare: Vec<u64> = vec![0; n];
    let tick_s = cfg.tick_s.max(1);
    let window_s = (cfg.duration_s / 8).max(tick_s);
    let mut windows: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut next_decay_s = rep
        .as_ref()
        .map_or(u64::MAX, |r| (r.decay_interval_ms / 1000).max(tick_s));

    let mut t_s = 0u64;
    while t_s < cfg.duration_s {
        // Advance churn to `t_s`.
        for p in peers.iter_mut() {
            while (p.next_flip_s as u64) <= t_s {
                p.online = !p.online;
                p.next_flip_s += if p.online {
                    exp_on.sample(&mut rng)
                } else {
                    exp_off.sample(&mut rng)
                };
            }
        }

        // Directory sample: the converged gossip view of who is up.
        if let Some(tr) = tracker.as_mut() {
            for (i, p) in peers.iter().enumerate() {
                tr.observe(i as u32, p.online);
            }
        }

        // Queries: reachable iff the home or any replica holder is up.
        let window = t_s / window_s;
        for _ in 0..cfg.queries_per_tick {
            let x: f64 = rng.random::<f64>() * total;
            let rank = cum.partition_point(|&c| c < x).min(n_docs - 1);
            let doc = by_rank[rank];
            let home = home_of(doc);
            let up = peers[home as usize].online
                || holders[doc as usize]
                    .iter()
                    .any(|&h| peers[h as usize].online);
            samples += 1;
            let w = windows.entry(window).or_insert((0, 0));
            w.1 += 1;
            if up {
                hits += 1;
                w.0 += 1;
                if let Some(s) = sketch.as_mut() {
                    s.observe(doc);
                }
            }
        }

        // Replication pass: online homes push under-replicated hot
        // documents to the best-available peers with spare capacity.
        if let Some(r) = rep.as_ref() {
            if t_s >= next_decay_s {
                next_decay_s += (r.decay_interval_ms / 1000).max(tick_s);
                if let Some(s) = sketch.as_mut() {
                    s.decay();
                }
            }
            for (i, p) in peers.iter().enumerate() {
                adv_spare[i] = r.capacity_bytes.saturating_sub(p.used_bytes);
            }
            if let (Some(tr), Some(sk)) = (tracker.as_ref(), sketch.as_ref()) {
                replication_pass(
                    r,
                    tr,
                    sk,
                    cfg.doc_bytes,
                    home_of,
                    &adv_spare,
                    &mut peers,
                    &mut holders,
                    &mut replicas_placed,
                    &mut evictions,
                );
            }
        }

        t_s += tick_s;
    }

    let corpus_bytes = n_docs as u64 * cfg.doc_bytes;
    let replica_bytes: u64 = peers.iter().map(|p| p.used_bytes).sum();
    let min_hit_rate = windows
        .values()
        .filter(|&&(_, s)| s > 0)
        .map(|&(h, s)| h as f64 / s as f64)
        .fold(f64::INFINITY, f64::min);
    ReplicaSimReport {
        hit_rate: if samples == 0 {
            0.0
        } else {
            hits as f64 / samples as f64
        },
        min_hit_rate: if min_hit_rate.is_finite() {
            min_hit_rate
        } else {
            0.0
        },
        storage_overhead: (corpus_bytes + replica_bytes) as f64 / corpus_bytes as f64,
        replicas_placed,
        evictions,
        samples,
    }
}

/// One replication tick: every online home walks its documents in
/// hotness order, computes `1 − Π(1 − a_i)` over the current holders,
/// and pushes copies to [`pick_targets`]' choices within its per-tick
/// budget. Admission at the target mirrors the live engine: spare
/// capacity accepts outright; a full peer evicts hosted replicas whose
/// [`eviction_weight`] is below the incoming document's until it fits,
/// or rejects the push.
#[allow(clippy::too_many_arguments)]
fn replication_pass(
    r: &ReplicaConfig,
    tracker: &AvailabilityTracker,
    sketch: &SpaceSaving,
    doc_bytes: u64,
    home_of: impl Fn(u64) -> u32,
    adv_spare: &[u64],
    peers: &mut [PeerState],
    holders: &mut [BTreeSet<u32>],
    replicas_placed: &mut u64,
    evictions: &mut u64,
) {
    let n_docs = holders.len();
    let mut order: Vec<u64> = (0..n_docs as u64).collect();
    order.sort_by_key(|&d| (std::cmp::Reverse(sketch.estimate(d)), d));
    let mut budget: HashMap<u32, usize> = HashMap::new();
    let weight_of = |d: u64| eviction_weight(sketch.estimate(d), tracker.estimate(home_of(d)));
    for doc in order {
        let home = home_of(doc);
        if !peers[home as usize].online {
            continue;
        }
        let spent = budget.entry(home).or_insert(r.push_budget_per_tick);
        if *spent == 0 || holders[doc as usize].len() >= r.max_replicas_per_doc {
            continue;
        }
        // As in `ReplicaEngine::plan_pushes`: the home counts for its
        // *claimed* availability, and candidates for the lower of the
        // local EWMA and their claim.
        let current = estimated_availability(
            std::iter::once(r.advertised_availability)
                .chain(holders[doc as usize].iter().map(|&p| tracker.estimate(p))),
        );
        if current >= r.target_availability {
            continue;
        }
        let candidates: Vec<Candidate> = (0..peers.len() as u32)
            .filter(|&p| {
                p != home && !holders[doc as usize].contains(&p) && peers[p as usize].online
            })
            .map(|p| Candidate {
                peer: p,
                availability: tracker.estimate(p).min(r.advertised_availability),
                spare_bytes: adv_spare[p as usize],
            })
            .collect();
        let max_new = (r.max_replicas_per_doc - holders[doc as usize].len()).min(*spent);
        let targets = pick_targets(
            current,
            r.target_availability,
            doc_bytes,
            &candidates,
            max_new,
        );
        for target in targets {
            // Admission: evict strictly lighter replicas to make room.
            let incoming = weight_of(doc);
            loop {
                let t = &peers[target as usize];
                if t.used_bytes + doc_bytes <= r.capacity_bytes {
                    break;
                }
                let victim = t
                    .hosted
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        weight_of(a)
                            .partial_cmp(&weight_of(b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.cmp(&b))
                    })
                    .filter(|&v| weight_of(v) < incoming);
                let Some(victim) = victim else { break };
                let t = &mut peers[target as usize];
                t.hosted.remove(&victim);
                t.used_bytes -= doc_bytes;
                holders[victim as usize].remove(&target);
                *evictions += 1;
            }
            let t = &mut peers[target as usize];
            if t.used_bytes + doc_bytes > r.capacity_bytes {
                continue;
            }
            t.hosted.insert(doc);
            t.used_bytes += doc_bytes;
            holders[doc as usize].insert(target);
            *replicas_placed += 1;
            *spent -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_off_places_nothing() {
        let cfg = ReplicaSimConfig {
            replication: None,
            duration_s: 2 * 3600,
            ..ReplicaSimConfig::default()
        };
        let report = run_replica_sim(&cfg);
        assert_eq!(report.replicas_placed, 0);
        assert_eq!(report.evictions, 0);
        assert!((report.storage_overhead - 1.0).abs() < 1e-12);
        assert!(report.samples > 0);
        // §7 steady state: 40% stable + 60% at 3600/12000 duty cycle
        // puts the no-replication hit rate well under 0.8.
        assert!(report.hit_rate < 0.85, "hit rate {}", report.hit_rate);
    }

    #[test]
    fn replication_lifts_hit_rate_within_storage_budget() {
        let off = run_replica_sim(&ReplicaSimConfig {
            replication: None,
            ..ReplicaSimConfig::default()
        });
        let on = run_replica_sim(&ReplicaSimConfig::default());
        assert!(
            on.hit_rate > off.hit_rate + 0.05,
            "on {} vs off {}",
            on.hit_rate,
            off.hit_rate
        );
        assert!(on.replicas_placed > 0);
        assert!(
            on.storage_overhead < 3.0,
            "overhead {}",
            on.storage_overhead
        );
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let a = run_replica_sim(&ReplicaSimConfig {
            duration_s: 3600,
            ..ReplicaSimConfig::default()
        });
        let b = run_replica_sim(&ReplicaSimConfig {
            duration_s: 3600,
            ..ReplicaSimConfig::default()
        });
        assert_eq!(a.hit_rate, b.hit_rate);
        assert_eq!(a.replicas_placed, b.replicas_placed);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn capacity_pressure_triggers_evictions() {
        // One document's worth of replica space per peer forces churn
        // in what each peer hosts.
        let mut rep = ReplicaConfig::enabled();
        rep.capacity_bytes = 16 << 10;
        let report = run_replica_sim(&ReplicaSimConfig {
            replication: Some(rep),
            duration_s: 6 * 3600,
            ..ReplicaSimConfig::default()
        });
        assert!(report.replicas_placed > 0);
        assert!(report.evictions > 0, "expected capacity evictions");
        assert!(report.storage_overhead < 2.0);
    }
}
