//! Discrete-event simulation of PlanetP communities.
//!
//! The paper evaluates gossiping with "a simulator ... parameterized by
//! measurements of our prototype" (§7.2, Table 2). This crate is that
//! simulator: a deterministic event-driven kernel that runs one real
//! [`planetp_gossip::GossipEngine`] per simulated peer over a bandwidth
//! model.
//!
//! - [`params`]: the Table 2 constants, link-speed classes (56 Kbps
//!   modem through 45 Mbps LAN), and the Saroiu-measurement "MIX"
//!   distribution.
//! - [`sim`]: the event loop — per-peer uplink/downlink bandwidth
//!   queues, store-and-forward transfer times, the 5 ms CPU cost per
//!   gossip operation, contact-failure detection, and churn.
//! - [`metrics`]: byte accounting, per-rumor convergence tracking, and
//!   aggregate bandwidth time series.
//! - [`experiments`]: drivers for the paper's gossiping experiments
//!   (Figs 2-5), shared by the bench binaries and the integration tests.
//! - [`dirindex`]: a Bloofi [`planetp_bloomtree::BloomTree`] kept in
//!   step with a simulated peer's directory, driving the same
//!   insert/update/remove state machine the live query cache drives.
//! - [`replication`]: availability model for autonomous replication —
//!   `planetp_replica`'s placement math against the §7 churn schedule,
//!   measuring query hit rate vs storage overhead (DESIGN.md §15).

pub mod dirindex;
pub mod experiments;
pub mod metrics;
pub mod params;
pub mod replication;
pub mod sim;

pub use dirindex::{DirectoryIndexModel, SyncDelta};
pub use metrics::{BandwidthSeries, Metrics, TrackedRumor};
pub use params::{LinkClass, LinkScenario, Table2};
pub use replication::{run_replica_sim, ReplicaSimConfig, ReplicaSimReport};
pub use sim::{ChurnError, NodeId, SimConfig, Simulator};
