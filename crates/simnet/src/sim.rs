//! The discrete-event simulation kernel.
//!
//! One real [`GossipEngine`] runs per simulated peer; the kernel models
//! the network between them:
//!
//! - every transfer occupies the sender's uplink and the receiver's
//!   downlink for `size / min(up, down)` (store-and-forward queues, FIFO
//!   per link), plus a fixed propagation latency;
//! - every gossip operation is charged the Table 2 CPU cost (5 ms);
//! - contacting an offline peer costs a detection timeout, after which
//!   the sender marks the target offline (never gossiped);
//! - all randomness comes from seeded RNGs: identical configs produce
//!   identical runs, event for event.

use planetp_gossip::{
    DirEntry, Directory, GossipConfig, GossipEngine, Message, PeerStatus, RumorId, SizedPayload,
    TimeMs,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::metrics::Metrics;
use crate::params::{LinkClass, Table2, LINK_LATENCY_MS};

/// Node identifier (same space as `planetp_gossip::PeerId`).
pub type NodeId = u32;

/// A churn operation was asked of a node in the wrong state.
///
/// Churn schedules are often generated (dwell-time samplers, replayed
/// traces) and can legitimately produce back-to-back transitions for
/// one node; drivers should get an error they can skip or surface, not
/// a panic that kills the whole experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnError {
    /// `rejoin` was called on a node that is already online.
    AlreadyOnline(NodeId),
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::AlreadyOnline(id) => {
                write!(f, "node {id} is already online; rejoin requires it offline")
            }
        }
    }
}

impl std::error::Error for ChurnError {}

type Engine = GossipEngine<SizedPayload>;
type Msg = Message<SizedPayload>;

/// Simulation-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Gossip protocol settings shared by all peers.
    pub gossip: GossipConfig,
    /// Table 2 constants.
    pub table2: Table2,
    /// One-way propagation latency per transfer, ms.
    pub latency_ms: TimeMs,
    /// Time to detect that a contact is offline, ms.
    pub contact_fail_ms: TimeMs,
    /// Master seed; node seeds derive from it.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            gossip: GossipConfig::default(),
            table2: Table2::paper(),
            latency_ms: LINK_LATENCY_MS,
            contact_fail_ms: 1_000,
            seed: 0x9a7e_57ab,
        }
    }
}

struct Node {
    engine: Engine,
    link: LinkClass,
    online: bool,
    /// When the uplink finishes its current queue.
    up_free_at: TimeMs,
    /// When the downlink finishes its current queue.
    down_free_at: TimeMs,
    /// Bumped on every offline/online transition to cancel stale ticks.
    tick_seq: u64,
}

enum EventKind {
    /// Scheduled gossip round for a node.
    Tick { node: NodeId, seq: u64 },
    /// Message arrival.
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: Box<Msg>,
    },
    /// The sender's contact attempt to an offline peer timed out.
    ContactFailed { node: NodeId, target: NodeId },
}

struct Event {
    at: TimeMs,
    /// FIFO tie-break for identical times; keeps runs deterministic.
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulator: a community of gossiping peers over a modeled network.
pub struct Simulator {
    config: SimConfig,
    nodes: Vec<Node>,
    events: BinaryHeap<Reverse<Event>>,
    event_seq: u64,
    now: TimeMs,
    online_count: usize,
    /// Indices into `metrics.tracked` still awaiting full convergence.
    active_trackers: Vec<usize>,
    /// Online peers in the Fast speed class.
    online_fast_count: usize,
    /// Shared RNG for link sampling and tick staggering.
    rng: SmallRng,
    /// Collected measurements.
    pub metrics: Metrics,
}

impl Simulator {
    /// New, empty simulation.
    pub fn new(config: SimConfig) -> Self {
        Self {
            config,
            nodes: Vec::new(),
            events: BinaryHeap::new(),
            event_seq: 0,
            now: 0,
            online_count: 0,
            active_trackers: Vec::new(),
            online_fast_count: 0,
            rng: SmallRng::seed_from_u64(config.seed),
            metrics: Metrics::default(),
        }
    }

    /// Current simulated time, ms.
    pub fn now(&self) -> TimeMs {
        self.now
    }

    /// Number of nodes (online or not).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the simulation has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of currently online nodes.
    pub fn online_count(&self) -> usize {
        self.online_count
    }

    /// Shared RNG (experiments sample churn processes from it so a run
    /// is fully determined by the master seed).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Immutable engine access.
    pub fn engine(&self, id: NodeId) -> &Engine {
        &self.nodes[id as usize].engine
    }

    /// Is the node currently online?
    pub fn is_online(&self, id: NodeId) -> bool {
        self.nodes[id as usize].online
    }

    /// Link class of a node.
    pub fn link(&self, id: NodeId) -> LinkClass {
        self.nodes[id as usize].link
    }

    // ------------------------------------------------------------------
    // Topology construction
    // ------------------------------------------------------------------

    /// Create a stable community of `n` peers with mutually consistent
    /// directories (everyone already knows everyone, as after a long
    /// quiet period). `links[i]` gives each peer's connectivity;
    /// `payload_bytes` the wire size of each peer's current Bloom
    /// filter.
    pub fn add_stable_community(&mut self, links: &[LinkClass], payload_bytes: u32) {
        assert!(self.nodes.is_empty(), "stable community must come first");
        let n = links.len() as u32;
        let mut dir: Directory<SizedPayload> = Directory::new();
        for (i, &link) in links.iter().enumerate() {
            dir.insert(
                i as u32,
                DirEntry {
                    status_version: 1,
                    bloom_version: 1,
                    payload: Some(SizedPayload {
                        bytes: payload_bytes,
                    }),
                    status: PeerStatus::Online,
                    speed: link.speed_class(),
                },
            );
        }
        for (i, &link) in links.iter().enumerate() {
            let engine = Engine::with_directory(
                i as u32,
                link.speed_class(),
                self.config.gossip,
                self.config.seed ^ (0xabcd_0000 + i as u64),
                dir.clone(),
            );
            self.nodes.push(Node {
                engine,
                link,
                online: true,
                up_free_at: 0,
                down_free_at: 0,
                tick_seq: 0,
            });
            self.online_count += 1;
            if link.speed_class() == planetp_gossip::SpeedClass::Fast {
                self.online_fast_count += 1;
            }
        }
        self.metrics = Metrics::with_nodes(n as usize);
        // Stagger initial ticks uniformly over one interval, as unsynced
        // real peers would be.
        for i in 0..n {
            let stagger = self
                .rng
                .random_range(0..self.config.gossip.base_interval_ms.max(1));
            self.schedule_tick(i, stagger);
        }
    }

    /// Add a brand-new member that joins through `bootstrap`, sharing a
    /// Bloom filter of `payload_bytes`. Returns its id and the Join
    /// rumor to track.
    pub fn add_joining_node(
        &mut self,
        link: LinkClass,
        payload_bytes: u32,
        bootstrap: NodeId,
    ) -> (NodeId, RumorId) {
        let id = self.nodes.len() as u32;
        let engine = Engine::new(
            id,
            link.speed_class(),
            self.config.gossip,
            self.config.seed ^ (0xbeef_0000 + u64::from(id)),
            Some(SizedPayload {
                bytes: payload_bytes,
            }),
            Some((bootstrap, self.nodes[bootstrap as usize].link.speed_class())),
        );
        self.nodes.push(Node {
            engine,
            link,
            online: true,
            up_free_at: self.now,
            down_free_at: self.now,
            tick_seq: 0,
        });
        self.online_count += 1;
        if link.speed_class() == planetp_gossip::SpeedClass::Fast {
            self.online_fast_count += 1;
        }
        self.metrics.bytes_per_node.push(0);
        for t in &mut self.metrics.tracked {
            t.known.push(false);
        }
        // Joiners act promptly (they have news and a download to do).
        let jitter = self.rng.random_range(0..1_000);
        self.schedule_tick(id, jitter);
        let rumor = RumorId {
            subject: id,
            status_version: 1,
            bloom_version: 1,
        };
        self.mark_known(id, id);
        (id, rumor)
    }

    // ------------------------------------------------------------------
    // Churn and local events
    // ------------------------------------------------------------------

    /// Take a node offline (crash/leave: no goodbye messages).
    pub fn set_offline(&mut self, id: NodeId) {
        let node = &mut self.nodes[id as usize];
        if !node.online {
            return;
        }
        node.online = false;
        node.tick_seq += 1;
        self.online_count -= 1;
        if node.link.speed_class() == planetp_gossip::SpeedClass::Fast {
            self.online_fast_count -= 1;
        }
        // A departure can complete convergence of tracked rumors (the
        // holdouts may have just left).
        self.recheck_all_tracked();
    }

    /// Bring a node back online. `new_payload_bytes` carries a changed
    /// Bloom filter (the paper's "Join" event in Fig 4); `None` is a
    /// pure "Rejoin". Returns the rumor id announcing the return, or
    /// [`ChurnError::AlreadyOnline`] if the node never went down.
    pub fn rejoin(
        &mut self,
        id: NodeId,
        new_payload_bytes: Option<u32>,
    ) -> Result<RumorId, ChurnError> {
        let node = &mut self.nodes[id as usize];
        if node.online {
            return Err(ChurnError::AlreadyOnline(id));
        }
        node.online = true;
        node.tick_seq += 1;
        node.up_free_at = self.now;
        node.down_free_at = self.now;
        node.engine
            .local_rejoin(new_payload_bytes.map(|b| SizedPayload { bytes: b }));
        self.online_count += 1;
        if node.link.speed_class() == planetp_gossip::SpeedClass::Fast {
            self.online_fast_count += 1;
        }
        let e = node
            .engine
            .directory()
            .get(id)
            .expect("self entry always present");
        let rumor = RumorId {
            subject: id,
            status_version: e.status_version,
            bloom_version: e.bloom_version,
        };
        let seq = node.tick_seq;
        let jitter = self.rng.random_range(0..1_000);
        self.schedule_tick_seq(id, jitter, seq);
        self.mark_known(id, id);
        Ok(rumor)
    }

    /// A node's Bloom filter changes (e.g. 1000 new keys published).
    /// Returns the rumor id of the update.
    pub fn local_update(&mut self, id: NodeId, payload_bytes: u32) -> RumorId {
        let node = &mut self.nodes[id as usize];
        assert!(node.online, "offline nodes cannot publish");
        node.engine.local_update(SizedPayload {
            bytes: payload_bytes,
        });
        let e = node
            .engine
            .directory()
            .get(id)
            .expect("self entry always present");
        let rumor = RumorId {
            subject: id,
            status_version: e.status_version,
            bloom_version: e.bloom_version,
        };
        self.mark_known(id, id);
        rumor
    }

    /// A node's Bloom filter changes *and the diff is known*: the update
    /// gossips as a delta of `delta_bytes` while the full filter (what
    /// anti-entropy and chain-break fallbacks ship) weighs
    /// `payload_bytes` (§7.2's "diffs of the Bloom filters"). Returns
    /// the rumor id of the update.
    pub fn local_update_delta(
        &mut self,
        id: NodeId,
        payload_bytes: u32,
        delta_bytes: u32,
    ) -> RumorId {
        let node = &mut self.nodes[id as usize];
        assert!(node.online, "offline nodes cannot publish");
        node.engine.local_update_delta(
            SizedPayload {
                bytes: payload_bytes,
            },
            planetp_gossip::SizedDelta {
                bytes: delta_bytes,
                full_bytes: payload_bytes,
            },
        );
        let e = node
            .engine
            .directory()
            .get(id)
            .expect("self entry always present");
        let rumor = RumorId {
            subject: id,
            status_version: e.status_version,
            bloom_version: e.bloom_version,
        };
        self.mark_known(id, id);
        rumor
    }

    /// Start timing a rumor; marks peers that already know it.
    pub fn track(&mut self, id: RumorId) -> usize {
        let idx = self.metrics.track(id, self.now, self.nodes.len());
        self.active_trackers.push(idx);
        for n in 0..self.nodes.len() as u32 {
            if self.nodes[n as usize].engine.knows(id) {
                self.mark_known_idx(idx, n);
            }
        }
        idx
    }

    // ------------------------------------------------------------------
    // Running
    // ------------------------------------------------------------------

    /// Process events until simulated time `t` (inclusive of events at
    /// `t`). The clock ends at `t`.
    pub fn run_until(&mut self, t: TimeMs) {
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.at > t {
                break;
            }
            let Reverse(ev) = self.events.pop().expect("peeked");
            self.now = ev.at;
            self.dispatch(ev);
        }
        self.now = t;
    }

    /// Run for `dt` more milliseconds.
    pub fn run_for(&mut self, dt: TimeMs) {
        self.run_until(self.now + dt);
    }

    /// Community-wide unified metrics: the run's own accounting
    /// (`net.*`, `sim.*`) merged with every engine's protocol counters
    /// (`gossip.*`), under the same names a live node reports — so
    /// tests and reports can ask a simulation the questions they would
    /// ask a scraped deployment.
    pub fn snapshot(&self) -> planetp_obs::MetricsSnapshot {
        let mut snap = self.metrics.registry().snapshot();
        for node in &self.nodes {
            snap = snap.merge(&node.engine.metrics().snapshot());
        }
        snap
    }

    /// Are the directory digests of all *online* nodes identical?
    pub fn converged(&self) -> bool {
        let mut digest = None;
        for n in &self.nodes {
            if !n.online {
                continue;
            }
            let d = n.engine.directory().digest();
            match digest {
                None => digest = Some(d),
                Some(prev) if prev != d => return false,
                Some(_) => {}
            }
        }
        true
    }

    /// Run until all online digests match, checking every `poll_ms`;
    /// gives up at `deadline`. Returns the convergence time if reached.
    pub fn run_until_converged(&mut self, poll_ms: TimeMs, deadline: TimeMs) -> Option<TimeMs> {
        loop {
            if self.converged() {
                return Some(self.now);
            }
            if self.now >= deadline {
                return None;
            }
            let next = (self.now + poll_ms).min(deadline);
            self.run_until(next);
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn schedule(&mut self, at: TimeMs, kind: EventKind) {
        self.event_seq += 1;
        self.events.push(Reverse(Event {
            at,
            seq: self.event_seq,
            kind,
        }));
    }

    fn schedule_tick(&mut self, node: NodeId, delay: TimeMs) {
        let seq = self.nodes[node as usize].tick_seq;
        self.schedule_tick_seq(node, delay, seq);
    }

    fn schedule_tick_seq(&mut self, node: NodeId, delay: TimeMs, seq: u64) {
        self.schedule(self.now + delay, EventKind::Tick { node, seq });
    }

    fn dispatch(&mut self, ev: Event) {
        match ev.kind {
            EventKind::Tick { node, seq } => self.on_tick(node, seq),
            EventKind::Deliver { from, to, msg } => self.on_deliver(from, to, *msg),
            EventKind::ContactFailed { node, target } => {
                self.nodes[node as usize]
                    .engine
                    .on_contact_failed(target, self.now);
            }
        }
    }

    fn on_tick(&mut self, id: NodeId, seq: u64) {
        let node = &mut self.nodes[id as usize];
        if !node.online || node.tick_seq != seq {
            return;
        }
        let outcome = node.engine.tick(self.now);
        let interval = node.engine.current_interval();
        if let Some(out) = outcome {
            self.send(id, out.target, out.message);
        }
        self.schedule_tick(id, interval.max(1));
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: Msg) {
        debug_assert_ne!(from, to, "engines never self-send");
        if !self.nodes[to as usize].online {
            // Connection attempt fails after a timeout.
            let at = self.now + self.config.contact_fail_ms;
            self.schedule(
                at,
                EventKind::ContactFailed {
                    node: from,
                    target: to,
                },
            );
            return;
        }
        let size = msg.wire_bytes();
        let kind = msg.kind_name();
        // CPU cost to produce the message.
        let ready = self.now + self.config.table2.cpu_gossip_ms;
        let sender = &self.nodes[from as usize];
        let receiver = &self.nodes[to as usize];
        let bw = sender.link.bits_per_sec().min(receiver.link.bits_per_sec());
        let start = ready.max(sender.up_free_at).max(receiver.down_free_at);
        let transfer = (size as u64 * 8).saturating_mul(1000).div_ceil(bw);
        let end = start + transfer;
        self.nodes[from as usize].up_free_at = end;
        self.nodes[to as usize].down_free_at = end;
        self.metrics.on_send(from as usize, kind, size, start);
        let arrive = end + self.config.latency_ms;
        self.schedule(
            arrive,
            EventKind::Deliver {
                from,
                to,
                msg: Box::new(msg),
            },
        );
    }

    fn on_deliver(&mut self, from: NodeId, to: NodeId, msg: Msg) {
        if !self.nodes[to as usize].online {
            // Receiver died mid-transfer; sender notices.
            if self.nodes[from as usize].online {
                let at = self.now + self.config.contact_fail_ms;
                self.schedule(
                    at,
                    EventKind::ContactFailed {
                        node: from,
                        target: to,
                    },
                );
            }
            return;
        }
        let responses = {
            let node = &mut self.nodes[to as usize];
            node.engine.handle_message(from, msg, self.now)
        };
        self.mark_known_all(to);
        for (target, m) in responses {
            if self.nodes[to as usize].online {
                self.send(to, target, m);
            }
        }
    }

    /// Update all still-active tracked rumors for a node whose engine
    /// just changed.
    fn mark_known_all(&mut self, node: NodeId) {
        let mut i = 0;
        while i < self.active_trackers.len() {
            let idx = self.active_trackers[i];
            if !self.metrics.tracked[idx].known[node as usize]
                && self.nodes[node as usize]
                    .engine
                    .knows(self.metrics.tracked[idx].id)
            {
                self.mark_known_idx(idx, node);
            }
            // mark_known_idx may swap-remove index i; only advance when
            // the slot still holds the same tracker.
            if self.active_trackers.get(i) == Some(&idx) {
                i += 1;
            }
        }
    }

    /// Mark that `node` knows the rumor about `subject`'s latest state
    /// (used for origins, which know their own news).
    fn mark_known(&mut self, node: NodeId, subject: NodeId) {
        let mut i = 0;
        while i < self.active_trackers.len() {
            let idx = self.active_trackers[i];
            if self.metrics.tracked[idx].id.subject == subject
                && !self.metrics.tracked[idx].known[node as usize]
                && self.nodes[node as usize]
                    .engine
                    .knows(self.metrics.tracked[idx].id)
            {
                self.mark_known_idx(idx, node);
            }
            if self.active_trackers.get(i) == Some(&idx) {
                i += 1;
            }
        }
    }

    fn mark_known_idx(&mut self, idx: usize, node: NodeId) {
        let t = &mut self.metrics.tracked[idx];
        if !t.known[node as usize] {
            t.known[node as usize] = true;
            t.known_count += 1;
            self.metrics.on_tracker_mark();
        }
        self.check_convergence(idx);
    }

    fn recheck_all_tracked(&mut self) {
        let mut i = 0;
        while i < self.active_trackers.len() {
            let idx = self.active_trackers[i];
            self.check_convergence(idx);
            if self.active_trackers.get(i) == Some(&idx) {
                i += 1;
            }
        }
    }

    /// A tracked rumor fully converges when every *online* peer knows
    /// it; it "fast-converges" when every online Fast-class peer knows
    /// it (the Fig 5 MIX-F/MIX-S condition).
    fn check_convergence(&mut self, idx: usize) {
        let t = &self.metrics.tracked[idx];
        if t.converged_at.is_some() {
            return;
        }
        let (known_count, fast_pending) = (t.known_count, t.converged_fast_at.is_none());
        if fast_pending && known_count >= self.online_fast_count {
            let t = &self.metrics.tracked[idx];
            let all_fast_know = self.nodes.iter().zip(&t.known).all(|(n, &k)| {
                !n.online || n.link.speed_class() != planetp_gossip::SpeedClass::Fast || k
            });
            if all_fast_know {
                self.metrics.tracked[idx].converged_fast_at = Some(self.now);
            }
        }
        // Cheap bound: known_count >= (online peers that know), so fewer
        // knowers than online peers means someone online is missing it.
        if known_count < self.online_count {
            return;
        }
        let t = &self.metrics.tracked[idx];
        let all_online_know = self
            .nodes
            .iter()
            .zip(&t.known)
            .all(|(n, &k)| !n.online || k);
        if all_online_know {
            let born_at = {
                let t = &mut self.metrics.tracked[idx];
                t.converged_at = Some(self.now);
                if t.converged_fast_at.is_none() {
                    t.converged_fast_at = Some(self.now);
                }
                t.born_at
            };
            self.metrics.on_converged(self.now.saturating_sub(born_at));
            if let Some(pos) = self.active_trackers.iter().position(|&i| i == idx) {
                self.active_trackers.swap_remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LinkClass;

    fn lan_sim(n: usize) -> Simulator {
        let mut sim = Simulator::new(SimConfig::default());
        sim.add_stable_community(&vec![LinkClass::Lan45M; n], 3000);
        sim
    }

    #[test]
    fn quiescent_community_stays_converged_and_quiet() {
        let mut sim = lan_sim(20);
        sim.run_until(600_000);
        assert!(sim.converged());
        // Only cheap AE traffic: no summaries, no rumors.
        assert_eq!(
            sim.metrics.bytes_by_kind.get("rumor").copied().unwrap_or(0),
            0
        );
        assert_eq!(
            sim.metrics
                .bytes_by_kind
                .get("ae_summary")
                .copied()
                .unwrap_or(0),
            0
        );
        // Adaptive interval bounds quiescent traffic: strictly fewer
        // message pairs than ticking at the base interval forever, and
        // every engine should have slowed to the max interval.
        let base_pairs = 20.0 * 600.0 / 30.0;
        let msgs = sim.metrics.total_messages as f64;
        assert!(msgs < base_pairs * 2.0, "{msgs} messages in quiescence");
        for i in 0..20u32 {
            assert_eq!(
                sim.engine(i).current_interval(),
                SimConfig::default().gossip.max_interval_ms,
                "peer {i} never slowed down"
            );
        }
    }

    #[test]
    fn single_update_propagates_everywhere() {
        let mut sim = lan_sim(50);
        let rumor = sim.local_update(0, 3000);
        sim.track(rumor);
        sim.run_until(1_000_000);
        let lat = sim.metrics.tracked[0].latency_ms();
        assert!(lat.is_some(), "did not converge");
        let secs = lat.unwrap() as f64 / 1000.0;
        // ~Tg * ln N plus tail; generous bound.
        assert!(secs < 400.0, "took {secs}s");
    }

    #[test]
    fn propagation_time_grows_slowly_with_size() {
        let mut t_small = 0.0;
        let mut t_large = 0.0;
        for (n, out) in [(30usize, &mut t_small), (300, &mut t_large)] {
            let mut sim = lan_sim(n);
            let rumor = sim.local_update(0, 3000);
            sim.track(rumor);
            sim.run_until(2_000_000);
            *out = sim.metrics.tracked[0].latency_ms().expect("converges") as f64;
        }
        assert!(
            t_large < t_small * 4.0,
            "10x nodes cost {t_small} -> {t_large} ms (not log-ish)"
        );
    }

    #[test]
    fn joiner_downloads_directory_and_is_learned() {
        let mut sim = lan_sim(30);
        let (id, rumor) = sim.add_joining_node(LinkClass::Lan45M, 16_000, 0);
        sim.track(rumor);
        sim.run_until(2_000_000);
        assert!(
            sim.metrics.tracked[0].latency_ms().is_some(),
            "join never converged"
        );
        assert_eq!(sim.engine(id).directory().len(), 31);
    }

    #[test]
    fn offline_rejoin_cycle_converges() {
        let mut sim = lan_sim(20);
        sim.run_until(120_000);
        sim.set_offline(5);
        sim.run_until(400_000);
        let rumor = sim
            .rejoin(5, Some(3000))
            .expect("node 5 went offline above");
        sim.track(rumor);
        sim.run_until(1_500_000);
        assert!(
            sim.metrics.tracked[0].latency_ms().is_some(),
            "rejoin never spread"
        );
    }

    #[test]
    fn rejoining_an_online_node_is_an_error_not_a_panic() {
        let mut sim = lan_sim(4);
        sim.run_until(60_000);
        assert_eq!(sim.rejoin(2, None), Err(ChurnError::AlreadyOnline(2)));
        // The refused rejoin changed nothing: the node keeps gossiping
        // and a real offline/rejoin cycle still works.
        sim.set_offline(2);
        sim.run_until(120_000);
        let rumor = sim.rejoin(2, None).expect("offline now");
        sim.track(rumor);
        sim.run_until(1_000_000);
        assert!(sim.metrics.tracked[0].latency_ms().is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = lan_sim(25);
            let rumor = sim.local_update(3, 3000);
            sim.track(rumor);
            sim.run_until(500_000);
            (
                sim.metrics.total_bytes,
                sim.metrics.total_messages,
                sim.metrics.tracked[0].latency_ms(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn slow_links_slow_the_spread() {
        let mut fast_t = 0;
        let mut slow_t = 0;
        for (link, out) in [
            (LinkClass::Lan45M, &mut fast_t),
            (LinkClass::Modem56k, &mut slow_t),
        ] {
            let mut sim = Simulator::new(SimConfig::default());
            sim.add_stable_community(&[link; 40], 3000);
            let rumor = sim.local_update(0, 3000);
            sim.track(rumor);
            sim.run_until(3_000_000);
            *out = sim.metrics.tracked[0].latency_ms().expect("converges");
        }
        assert!(slow_t > fast_t, "modem {slow_t} !> lan {fast_t}");
    }

    #[test]
    fn contact_failure_marks_offline() {
        let mut sim = lan_sim(10);
        sim.set_offline(3);
        sim.run_until(600_000);
        let noticed = (0..10u32)
            .filter(|&i| i != 3)
            .filter(|&i| {
                matches!(
                    sim.engine(i).directory().get(3).map(|e| e.status),
                    Some(PeerStatus::Offline { .. })
                )
            })
            .count();
        assert!(noticed >= 5, "only {noticed} noticed the departure");
    }

    #[test]
    fn unified_snapshot_merges_engines_and_network() {
        use planetp_obs::names;
        let mut sim = lan_sim(10);
        let rumor = sim.local_update(0, 3000);
        sim.track(rumor);
        sim.run_until(600_000);
        let snap = sim.snapshot();
        assert_eq!(
            snap.counter(names::NET_BYTES_OUT),
            sim.metrics.total_bytes,
            "unified net bytes must equal the legacy accumulator"
        );
        assert!(
            snap.counter(names::GOSSIP_ROUNDS) > 0,
            "engine counters merged"
        );
        assert_eq!(snap.counter(names::SIM_RUMORS_CONVERGED), 1);
        assert!(
            snap.histogram(names::SIM_CONVERGENCE_MS)
                .expect("registered")
                .count
                == 1
        );
    }

    #[test]
    fn delta_update_converges_like_full_but_cheaper() {
        use planetp_obs::names;
        // Table 2: a 1000-key diff ≈ 3000 bytes; the full 20k-key
        // filter ≈ 16000 bytes.
        let run = |delta: bool| {
            let mut sim = lan_sim(40);
            let rumor = if delta {
                sim.local_update_delta(0, 16_000, 3_000)
            } else {
                sim.local_update(0, 16_000)
            };
            sim.track(rumor);
            sim.run_until(2_000_000);
            (
                sim.metrics.tracked[0].latency_ms().expect("converges"),
                sim.metrics.bytes_by_kind.get("rumor").copied().unwrap_or(0),
                sim.snapshot().counter(names::GOSSIP_DELTA_APPLIED),
            )
        };
        let (_full_t, full_bytes, full_applied) = run(false);
        let (_delta_t, delta_bytes, delta_applied) = run(true);
        assert_eq!(full_applied, 0);
        assert!(delta_applied > 0, "no peer applied a delta chain");
        assert!(
            delta_bytes * 3 < full_bytes,
            "delta rumor bytes {delta_bytes} not <1/3 of full {full_bytes}"
        );
    }

    #[test]
    fn bandwidth_series_nonzero_during_propagation() {
        let mut sim = lan_sim(40);
        let rumor = sim.local_update(0, 3000);
        sim.track(rumor);
        sim.run_until(600_000);
        assert!(sim.metrics.bandwidth.total() > 0);
        assert!(sim.metrics.total_bytes >= sim.metrics.bandwidth.total());
    }
}
