//! Bloofi index over a simulated peer's gossip directory.
//!
//! The live runtime drives a [`BloomTree`] from gossiped
//! `(status_version, bloom_version)` bumps (the query cache's tree
//! front end); this model drives the *same* state machine from the
//! simulator's directory, so churn experiments exercise the tree's
//! insert/update/remove paths at community scale. The simulator only
//! gossips sized stubs ([`SizedPayload`](planetp_gossip::SizedPayload)),
//! so the model synthesizes each peer's filter deterministically from
//! `(id, bloom_version)` — exactly the pair invalidation keys on.
//! Two models synced from converged directories therefore agree bit
//! for bit, which tests use as a convergence check on the index layer.

use std::collections::HashSet;

use planetp_bloom::BloomFilter;
use planetp_bloomtree::{BloomTree, TreeConfig, TreeMetrics};
use planetp_gossip::{Directory, Payload, PeerStatus};

use crate::sim::{NodeId, Simulator};

/// Synthetic vocabulary size per simulated peer.
pub const DEFAULT_TERMS_PER_PEER: usize = 32;

/// What one [`DirectoryIndexModel::sync`] changed in the tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncDelta {
    /// Peers newly tracked (joined, or first sync).
    pub inserted: usize,
    /// Peers whose version advanced and whose leaf was replaced.
    pub updated: usize,
    /// Peers dropped (marked offline or expired from the directory).
    pub removed: usize,
}

impl SyncDelta {
    /// Did this sync change the tree at all?
    pub fn is_noop(&self) -> bool {
        self.inserted == 0 && self.updated == 0 && self.removed == 0
    }
}

/// A [`BloomTree`] kept in step with one peer's directory view.
#[derive(Debug)]
pub struct DirectoryIndexModel {
    tree: BloomTree,
    terms_per_peer: usize,
}

impl DirectoryIndexModel {
    /// Empty model over the given tree shape.
    pub fn new(config: TreeConfig) -> Self {
        Self {
            tree: BloomTree::new(config),
            terms_per_peer: DEFAULT_TERMS_PER_PEER,
        }
    }

    /// Record tree activity through `metrics`.
    pub fn with_metrics(mut self, metrics: TreeMetrics) -> Self {
        self.tree = self.tree.with_metrics(metrics);
        self
    }

    /// Override the synthetic vocabulary size.
    pub fn with_terms_per_peer(mut self, terms: usize) -> Self {
        self.terms_per_peer = terms;
        self
    }

    /// The maintained tree (query it with
    /// [`candidates`](BloomTree::candidates), check it with
    /// [`stats`](BloomTree::stats)).
    pub fn tree(&self) -> &BloomTree {
        &self.tree
    }

    /// The `j`-th synthetic term of peer `id` at `bloom_version` —
    /// shared with tests so they can probe for terms a peer "has".
    pub fn synthetic_term(id: u64, bloom_version: u32, j: usize) -> String {
        format!("p{id}.v{bloom_version}.t{j}")
    }

    fn synthetic_filter(&self, id: u64, bloom_version: u32) -> BloomFilter {
        let mut f = BloomFilter::new(self.tree.config().params);
        for j in 0..self.terms_per_peer {
            f.insert(&Self::synthetic_term(id, bloom_version, j));
        }
        f
    }

    /// Bring the tree in line with `directory`: online peers carrying a
    /// payload are tracked, version bumps replace that peer's leaf, and
    /// everyone else is dropped — the same transitions the live query
    /// cache feeds its tree.
    pub fn sync<P: Payload>(&mut self, directory: &Directory<P>) -> SyncDelta {
        let mut delta = SyncDelta::default();
        let mut desired: HashSet<u64> = HashSet::new();
        for (pid, e) in directory.iter() {
            if !matches!(e.status, PeerStatus::Online) || e.payload.is_none() {
                continue;
            }
            let id = u64::from(pid);
            desired.insert(id);
            let version = (e.status_version, e.bloom_version);
            match self.tree.version_of(id) {
                None => {
                    let f = self.synthetic_filter(id, e.bloom_version);
                    self.tree.insert_peer(id, version, &f);
                    delta.inserted += 1;
                }
                Some(v) if v != version => {
                    let f = self.synthetic_filter(id, e.bloom_version);
                    self.tree.update_peer(id, version, &f);
                    delta.updated += 1;
                }
                Some(_) => {}
            }
        }
        let stale: Vec<u64> = self
            .tree
            .members()
            .iter()
            .copied()
            .filter(|id| !desired.contains(id))
            .collect();
        for id in stale {
            self.tree.remove_peer(id);
            delta.removed += 1;
        }
        delta
    }
}

impl Simulator {
    /// Sync `model` against node `id`'s current directory view.
    pub fn sync_directory_index(&self, id: NodeId, model: &mut DirectoryIndexModel) -> SyncDelta {
        model.sync(self.engine(id).directory())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LinkClass;
    use crate::sim::SimConfig;
    use planetp_bloom::{BloomParams, HashedKey};
    use planetp_gossip::{DirEntry, SizedPayload, SpeedClass};

    fn config() -> TreeConfig {
        TreeConfig::new(
            4,
            BloomParams {
                num_bits: 4096,
                num_hashes: 2,
            },
        )
    }

    fn entry(sv: u64, bv: u32) -> DirEntry<SizedPayload> {
        DirEntry {
            status_version: sv,
            bloom_version: bv,
            payload: Some(SizedPayload { bytes: 100 }),
            status: PeerStatus::Online,
            speed: SpeedClass::Fast,
        }
    }

    #[test]
    fn sync_tracks_directory_lifecycle() {
        let mut dir: Directory<SizedPayload> = Directory::new();
        for i in 0..20u32 {
            dir.insert(i, entry(1, 1));
        }
        let mut model = DirectoryIndexModel::new(config()).with_terms_per_peer(4);
        let d = model.sync(&dir);
        assert_eq!(
            d,
            SyncDelta {
                inserted: 20,
                updated: 0,
                removed: 0
            }
        );
        model.tree().validate();
        assert!(
            model.sync(&dir).is_noop(),
            "converged view syncs to a no-op"
        );

        // The tree answers for synthetic vocabulary.
        let term = DirectoryIndexModel::synthetic_term(5, 1, 0);
        let c = model.tree().candidates(&HashedKey::new(&term));
        assert!(c.contains(model.tree().rank_of(5).unwrap()));

        // A republish bumps the bloom version: exactly one update, and
        // the old vocabulary stops answering.
        dir.get_mut(5).unwrap().bloom_version = 2;
        let d = model.sync(&dir);
        assert_eq!(
            d,
            SyncDelta {
                inserted: 0,
                updated: 1,
                removed: 0
            }
        );
        model.tree().validate();
        let rank5 = model.tree().rank_of(5).unwrap();
        assert!(!model
            .tree()
            .candidates(&HashedKey::new(&term))
            .contains(rank5));
        let new_term = DirectoryIndexModel::synthetic_term(5, 2, 0);
        assert!(model
            .tree()
            .candidates(&HashedKey::new(&new_term))
            .contains(rank5));

        // Offline marking and outright expiry both drop the peer.
        dir.get_mut(7).unwrap().status = PeerStatus::Offline { since: 0 };
        dir.remove(11);
        let d = model.sync(&dir);
        assert_eq!(
            d,
            SyncDelta {
                inserted: 0,
                updated: 0,
                removed: 2
            }
        );
        model.tree().validate();
        assert_eq!(model.tree().len(), 18);
        assert!(model.tree().rank_of(7).is_none());
    }

    #[test]
    fn models_from_converged_directories_agree() {
        let mut sim = Simulator::new(SimConfig::default());
        sim.add_stable_community(&[LinkClass::Lan45M; 10], 100);
        let mut a = DirectoryIndexModel::new(config()).with_terms_per_peer(4);
        let mut b = DirectoryIndexModel::new(config()).with_terms_per_peer(4);
        assert_eq!(sim.sync_directory_index(0, &mut a).inserted, 10);
        assert_eq!(sim.sync_directory_index(9, &mut b).inserted, 10);
        a.tree().validate();
        assert_eq!(a.tree().members(), b.tree().members());
        for peer in 0..10u64 {
            let term = DirectoryIndexModel::synthetic_term(peer, 1, 1);
            let key = HashedKey::new(&term);
            assert_eq!(
                a.tree().candidates(&key).iter_ones().collect::<Vec<_>>(),
                b.tree().candidates(&key).iter_ones().collect::<Vec<_>>(),
                "converged models answer identically for peer {peer}"
            );
        }

        // A local publish bumps the publisher's own directory entry;
        // the model synced from that node sees exactly one update.
        sim.local_update(3, 120);
        let d = sim.sync_directory_index(3, &mut a);
        assert_eq!(
            d,
            SyncDelta {
                inserted: 0,
                updated: 1,
                removed: 0
            }
        );
        a.tree().validate();
    }
}
