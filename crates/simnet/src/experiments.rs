//! Drivers for the paper's gossiping experiments (§7.2, Figs 2-5).
//!
//! Each driver builds a community, injects the paper's workload, and
//! returns the measurements the corresponding figure plots. The bench
//! binaries in `planetp-bench` print the figures from these results;
//! integration tests run scaled-down versions.

use planetp_gossip::{Algorithm, GossipConfig, SpeedClass, TimeMs};
use rand::Rng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};

use crate::metrics::BandwidthSeries;
use crate::params::{LinkClass, LinkScenario, Table2};
use crate::sim::{NodeId, SimConfig, Simulator};

/// A named gossip scenario of Fig 2: link assignment + gossip interval +
/// algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Label used in the paper ("LAN", "DSL-30", "MIX", ...).
    pub name: &'static str,
    /// Link assignment.
    pub links: LinkScenario,
    /// Base gossip interval, ms.
    pub interval_ms: TimeMs,
    /// Dissemination algorithm.
    pub algorithm: Algorithm,
    /// Bandwidth-aware peer selection?
    pub bandwidth_aware: bool,
}

impl Scenario {
    /// The six Fig 2 scenarios.
    pub fn fig2_all() -> Vec<Scenario> {
        vec![
            Scenario {
                name: "LAN",
                links: LinkScenario::LAN,
                interval_ms: 30_000,
                algorithm: Algorithm::PlanetP,
                bandwidth_aware: false,
            },
            Scenario {
                name: "LAN-AE",
                links: LinkScenario::LAN,
                interval_ms: 30_000,
                algorithm: Algorithm::AntiEntropyOnly,
                bandwidth_aware: false,
            },
            Scenario {
                name: "DSL-10",
                links: LinkScenario::DSL,
                interval_ms: 10_000,
                algorithm: Algorithm::PlanetP,
                bandwidth_aware: false,
            },
            Scenario {
                name: "DSL-30",
                links: LinkScenario::DSL,
                interval_ms: 30_000,
                algorithm: Algorithm::PlanetP,
                bandwidth_aware: false,
            },
            Scenario {
                name: "DSL-60",
                links: LinkScenario::DSL,
                interval_ms: 60_000,
                algorithm: Algorithm::PlanetP,
                bandwidth_aware: false,
            },
            Scenario {
                name: "MIX",
                links: LinkScenario::Mix,
                interval_ms: 30_000,
                algorithm: Algorithm::PlanetP,
                bandwidth_aware: false,
            },
        ]
    }

    fn sim_config(&self, seed: u64) -> SimConfig {
        let mut gossip = GossipConfig::with_interval(self.interval_ms);
        gossip.algorithm = self.algorithm;
        gossip.bandwidth_aware = self.bandwidth_aware;
        SimConfig {
            gossip,
            seed,
            ..SimConfig::default()
        }
    }

    fn sample_links(&self, n: usize, sim: &mut Simulator) -> Vec<LinkClass> {
        let s = self.links;
        (0..n).map(|_| s.sample(sim.rng())).collect()
    }
}

/// Result of one Fig 2 propagation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PropagationResult {
    /// Community size.
    pub n: usize,
    /// Scenario label.
    pub scenario: &'static str,
    /// Seconds until every peer knew the new Bloom filter (None =
    /// deadline hit).
    pub time_s: Option<f64>,
    /// Bytes sent during the propagation window.
    pub total_bytes: u64,
    /// Average per-peer bandwidth during propagation, bytes/second.
    pub per_peer_bw_bps: f64,
}

/// Fig 2: propagate one 1000-key Bloom filter diff through a stable
/// community of `n` peers.
pub fn propagation(scenario: Scenario, n: usize, seed: u64, deadline_s: u64) -> PropagationResult {
    let table2 = Table2::paper();
    let mut sim = Simulator::new(scenario.sim_config(seed));
    let links = scenario.sample_links(n, &mut sim);
    sim.add_stable_community(&links, table2.bf_20000_keys_bytes as u32);
    // Let tick phases spread out, then inject the update.
    sim.run_until(5_000);
    let bytes_at_start = sim.metrics.total_bytes;
    let rumor = sim.local_update(0, table2.bf_1000_keys_bytes as u32);
    let tracker = sim.track(rumor);
    let deadline = sim.now() + deadline_s * 1000;
    let mut bytes_at_convergence = None;
    while sim.now() < deadline {
        sim.run_for(1_000);
        if sim.metrics.tracked[tracker].converged_at.is_some() {
            bytes_at_convergence = Some(sim.metrics.total_bytes);
            break;
        }
    }
    let time_s = sim.metrics.tracked[tracker]
        .latency_ms()
        .map(|ms| ms as f64 / 1000.0);
    let total = bytes_at_convergence.unwrap_or(sim.metrics.total_bytes) - bytes_at_start;
    let per_peer = match time_s {
        Some(t) if t > 0.0 => total as f64 / n as f64 / t,
        _ => 0.0,
    };
    PropagationResult {
        n,
        scenario: scenario.name,
        time_s,
        total_bytes: total,
        per_peer_bw_bps: per_peer,
    }
}

/// Result of one Fig 3 join run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinResult {
    /// Stable community size before the join wave.
    pub n_stable: usize,
    /// Number of simultaneous joiners.
    pub m_joiners: usize,
    /// Scenario label.
    pub scenario: &'static str,
    /// Seconds until all directories (old and new members) agree.
    pub time_s: Option<f64>,
    /// Bytes sent during the join storm.
    pub total_bytes: u64,
}

/// Fig 3: `m` peers join a stable community of `n` peers
/// simultaneously, each sharing a 20,000-key Bloom filter.
pub fn join_storm(
    scenario: Scenario,
    n_stable: usize,
    m_joiners: usize,
    seed: u64,
    deadline_s: u64,
) -> JoinResult {
    let table2 = Table2::paper();
    let mut sim = Simulator::new(scenario.sim_config(seed));
    let links = scenario.sample_links(n_stable, &mut sim);
    sim.add_stable_community(&links, table2.bf_20000_keys_bytes as u32);
    sim.run_until(5_000);
    let start = sim.now();
    let bytes_at_start = sim.metrics.total_bytes;
    for _ in 0..m_joiners {
        let link = scenario.links.sample(sim.rng());
        let bootstrap = sim.rng().random_range(0..n_stable as NodeId);
        sim.add_joining_node(link, table2.bf_20000_keys_bytes as u32, bootstrap);
    }
    let deadline = start + deadline_s * 1000;
    let converged_at = sim.run_until_converged(5_000, deadline);
    JoinResult {
        n_stable,
        m_joiners,
        scenario: scenario.name,
        time_s: converged_at.map(|t| (t - start) as f64 / 1000.0),
        total_bytes: sim.metrics.total_bytes - bytes_at_start,
    }
}

/// Result of the Fig 4(a) interference experiment: per-event
/// convergence latencies in seconds (unconverged events are reported in
/// `unconverged`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterferenceResult {
    /// Scenario label.
    pub scenario: &'static str,
    /// Whether partial anti-entropy was enabled.
    pub partial_ae: bool,
    /// Converged event latencies, seconds.
    pub latencies_s: Vec<f64>,
    /// Events that missed the deadline.
    pub unconverged: usize,
}

/// Fig 4(a): 100 peers join a stable 1000-peer community as a Poisson
/// process (mean interarrival 90 s); measures per-event convergence,
/// with or without partial anti-entropy.
pub fn poisson_join_interference(
    n_stable: usize,
    n_joins: usize,
    mean_interarrival_s: f64,
    partial_ae: bool,
    seed: u64,
    settle_s: u64,
) -> InterferenceResult {
    let scenario = Scenario {
        name: if partial_ae { "LAN" } else { "LAN-NPA" },
        links: LinkScenario::LAN,
        interval_ms: 30_000,
        algorithm: if partial_ae {
            Algorithm::PlanetP
        } else {
            Algorithm::PlanetPNoPartialAE
        },
        bandwidth_aware: false,
    };
    let table2 = Table2::paper();
    let mut sim = Simulator::new(scenario.sim_config(seed));
    let links = scenario.sample_links(n_stable, &mut sim);
    sim.add_stable_community(&links, table2.bf_20000_keys_bytes as u32);
    sim.run_until(5_000);
    let exp = Exp::new(1.0 / mean_interarrival_s).expect("positive rate");
    let mut trackers = Vec::with_capacity(n_joins);
    for _ in 0..n_joins {
        let dt_s: f64 = exp.sample(sim.rng());
        sim.run_for((dt_s * 1000.0) as TimeMs);
        let bootstrap = sim.rng().random_range(0..n_stable as NodeId);
        let (_, rumor) = sim.add_joining_node(
            LinkClass::Lan45M,
            table2.bf_1000_keys_bytes as u32,
            bootstrap,
        );
        trackers.push(sim.track(rumor));
    }
    sim.run_for(settle_s * 1000);
    let mut latencies = Vec::new();
    let mut unconverged = 0;
    for &t in &trackers {
        match sim.metrics.tracked[t].latency_ms() {
            Some(ms) => latencies.push(ms as f64 / 1000.0),
            None => unconverged += 1,
        }
    }
    InterferenceResult {
        scenario: scenario.name,
        partial_ae,
        latencies_s: latencies,
        unconverged,
    }
}

/// Configuration of the dynamic-community experiments (Figs 4b, 4c, 5).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DynamicConfig {
    /// Total community membership (1000 for Fig 4, 2000 for Fig 5).
    pub total_members: usize,
    /// Fraction of members online all the time (paper: 0.4).
    pub always_online_frac: f64,
    /// Mean online period of cycling members, seconds (paper: 3600).
    pub mean_online_s: f64,
    /// Mean offline period of cycling members, seconds (paper: 8400).
    pub mean_offline_s: f64,
    /// Probability a rejoin carries 1000 new keys (paper: 0.05).
    pub new_keys_prob: f64,
    /// Measurement window, seconds.
    pub duration_s: u64,
    /// Extra settling time after the last measured event, seconds.
    pub tail_s: u64,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self {
            total_members: 1000,
            always_online_frac: 0.4,
            mean_online_s: 3600.0,
            mean_offline_s: 8400.0,
            new_keys_prob: 0.05,
            duration_s: 4 * 3600,
            tail_s: 1800,
        }
    }
}

/// One measured rejoin event in a dynamic community.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DynamicEvent {
    /// Which member rejoined.
    pub subject: NodeId,
    /// Whether the member is Fast-class.
    pub fast_origin: bool,
    /// Whether the rejoin carried new keys.
    pub with_new_keys: bool,
    /// Seconds until all online peers knew (None = never in window).
    pub latency_s: Option<f64>,
    /// Seconds until all online *fast* peers knew.
    pub latency_fast_s: Option<f64>,
}

/// Result of a dynamic-community run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicResult {
    /// Scenario label.
    pub scenario: &'static str,
    /// Measured events.
    pub events: Vec<DynamicEvent>,
    /// Aggregate bandwidth series over the run.
    pub bandwidth: BandwidthSeries,
}

/// Figs 4(b,c) and 5: a community where 40% of members are always
/// online and 60% cycle (Exp online/offline periods), 5% of rejoins
/// carrying 1000 new keys.
pub fn dynamic_community(scenario: Scenario, cfg: DynamicConfig, seed: u64) -> DynamicResult {
    let table2 = Table2::paper();
    let mut sim = Simulator::new(scenario.sim_config(seed));
    let n = cfg.total_members;
    let links = scenario.sample_links(n, &mut sim);
    sim.add_stable_community(&links, table2.bf_20000_keys_bytes as u32);

    let n_stable_members = (n as f64 * cfg.always_online_frac).round() as usize;
    let exp_on = Exp::new(1.0 / cfg.mean_online_s).expect("positive rate");
    let exp_off = Exp::new(1.0 / cfg.mean_offline_s).expect("positive rate");

    // Cycler transition schedule: (time_ms, node, goes_online).
    let mut transitions: Vec<(TimeMs, NodeId, bool)> = Vec::new();
    for id in n_stable_members..n {
        // Start each cycler in steady state: online with probability
        // mean_on / (mean_on + mean_off).
        let p_online = cfg.mean_online_s / (cfg.mean_online_s + cfg.mean_offline_s);
        let mut online = sim.rng().random_bool(p_online);
        if !online {
            sim.set_offline(id as NodeId);
        }
        let mut t = 0.0f64;
        let horizon = (cfg.duration_s + cfg.tail_s) as f64;
        while t < horizon {
            let dwell = if online {
                exp_on.sample(sim.rng())
            } else {
                exp_off.sample(sim.rng())
            };
            t += dwell;
            if t >= horizon {
                break;
            }
            online = !online;
            transitions.push(((t * 1000.0) as TimeMs, id as NodeId, online));
        }
    }
    transitions.sort_unstable();

    let mut events = Vec::new();
    let mut trackers = Vec::new();
    for (at, id, goes_online) in transitions {
        sim.run_until(at);
        if goes_online {
            if sim.is_online(id) {
                continue;
            }
            let with_new_keys = sim.rng().random_bool(cfg.new_keys_prob);
            let Ok(rumor) = sim.rejoin(
                id,
                with_new_keys.then_some(table2.bf_1000_keys_bytes as u32),
            ) else {
                // A generated schedule can double-book a node; skip it.
                continue;
            };
            // Only measure events inside the window.
            if at <= cfg.duration_s * 1000 {
                let t = sim.track(rumor);
                trackers.push((t, id, with_new_keys));
            }
        } else if sim.is_online(id) {
            sim.set_offline(id);
        }
    }
    sim.run_until((cfg.duration_s + cfg.tail_s) * 1000);

    for (t, id, with_new_keys) in trackers {
        let tr = &sim.metrics.tracked[t];
        events.push(DynamicEvent {
            subject: id,
            fast_origin: sim.link(id).speed_class() == SpeedClass::Fast,
            with_new_keys,
            latency_s: tr.latency_ms().map(|ms| ms as f64 / 1000.0),
            latency_fast_s: tr.latency_fast_ms().map(|ms| ms as f64 / 1000.0),
        });
    }
    DynamicResult {
        scenario: scenario.name,
        events,
        bandwidth: sim.metrics.bandwidth.clone(),
    }
}

/// The LAN and MIX scenarios for the dynamic experiments; MIX uses the
/// bandwidth-aware algorithm as the paper does for Figs 4-5.
pub fn dynamic_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "LAN",
            links: LinkScenario::LAN,
            interval_ms: 30_000,
            algorithm: Algorithm::PlanetP,
            bandwidth_aware: false,
        },
        Scenario {
            name: "MIX",
            links: LinkScenario::Mix,
            interval_ms: 30_000,
            algorithm: Algorithm::PlanetP,
            bandwidth_aware: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_small_lan() {
        let s = Scenario::fig2_all()[0];
        let r = propagation(s, 60, 42, 1200);
        assert!(r.time_s.is_some(), "no convergence");
        assert!(r.time_s.unwrap() < 400.0);
        assert!(r.total_bytes > 0);
    }

    #[test]
    fn planetp_beats_anti_entropy_only_on_volume() {
        let all = Scenario::fig2_all();
        let planetp = propagation(all[0], 50, 7, 2400);
        let ae_only = propagation(all[1], 50, 7, 2400);
        assert!(planetp.time_s.is_some() && ae_only.time_s.is_some());
        assert!(
            ae_only.total_bytes > planetp.total_bytes,
            "AE-only {} !> PlanetP {}",
            ae_only.total_bytes,
            planetp.total_bytes
        );
    }

    #[test]
    fn join_storm_converges_small() {
        let s = Scenario::fig2_all()[0]; // LAN
        let r = join_storm(s, 40, 10, 11, 3600);
        assert!(r.time_s.is_some(), "join storm never converged");
    }

    #[test]
    fn interference_latencies_collected() {
        let r = poisson_join_interference(50, 5, 30.0, true, 3, 1800);
        assert_eq!(r.latencies_s.len() + r.unconverged, 5);
        assert!(r.latencies_s.len() >= 4, "unconverged {}", r.unconverged);
    }

    #[test]
    fn dynamic_community_produces_events() {
        let cfg = DynamicConfig {
            total_members: 40,
            duration_s: 3600,
            tail_s: 1200,
            mean_online_s: 600.0,
            mean_offline_s: 1400.0,
            ..DynamicConfig::default()
        };
        let r = dynamic_community(dynamic_scenarios()[0], cfg, 5);
        assert!(!r.events.is_empty(), "no rejoin events in an hour");
        let converged = r.events.iter().filter(|e| e.latency_s.is_some()).count();
        assert!(
            converged * 10 >= r.events.len() * 7,
            "{converged}/{} converged",
            r.events.len()
        );
        assert!(r.bandwidth.total() > 0);
    }
}
