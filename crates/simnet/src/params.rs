//! Simulation constants (Table 2) and link-speed scenarios.

use planetp_gossip::SpeedClass;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The constants of Table 2, verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// CPU time charged per gossip operation (send or receive), ms.
    pub cpu_gossip_ms: u64,
    /// Base gossiping interval, ms.
    pub base_gossip_interval_ms: u64,
    /// Maximum gossiping interval, ms.
    pub max_gossip_interval_ms: u64,
    /// Message header size, bytes.
    pub message_header_bytes: usize,
    /// Compressed Bloom filter carrying 1000 keys, bytes.
    pub bf_1000_keys_bytes: usize,
    /// Compressed Bloom filter carrying 20,000 keys, bytes.
    pub bf_20000_keys_bytes: usize,
    /// Bloom filter summary line in anti-entropy, bytes.
    pub bf_summary_bytes: usize,
    /// Peer summary line in anti-entropy, bytes.
    pub peer_summary_bytes: usize,
}

impl Table2 {
    /// The paper's values.
    pub const fn paper() -> Self {
        Self {
            cpu_gossip_ms: 5,
            base_gossip_interval_ms: 30_000,
            max_gossip_interval_ms: 60_000,
            message_header_bytes: 3,
            bf_1000_keys_bytes: 3000,
            bf_20000_keys_bytes: 16_000,
            bf_summary_bytes: 6,
            peer_summary_bytes: 48,
        }
    }
}

impl Default for Table2 {
    fn default() -> Self {
        Self::paper()
    }
}

/// A link speed class. The paper's network bandwidths span "56Kb/s to
/// 45Mb/s" (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// 56 Kbps modem.
    Modem56k,
    /// 512 Kbps DSL.
    Dsl512k,
    /// 5 Mbps cable.
    Cable5M,
    /// 10 Mbps.
    Eth10M,
    /// 45 Mbps LAN / T3.
    Lan45M,
}

impl LinkClass {
    /// Link bandwidth in bits per second.
    pub fn bits_per_sec(self) -> u64 {
        match self {
            LinkClass::Modem56k => 56_000,
            LinkClass::Dsl512k => 512_000,
            LinkClass::Cable5M => 5_000_000,
            LinkClass::Eth10M => 10_000_000,
            LinkClass::Lan45M => 45_000_000,
        }
    }

    /// Gossip speed class: "Fast includes peers with 512 Kb/s
    /// connectivity or better. Slow includes peers connected by modems"
    /// (§7.2).
    pub fn speed_class(self) -> SpeedClass {
        match self {
            LinkClass::Modem56k => SpeedClass::Slow,
            _ => SpeedClass::Fast,
        }
    }

    /// Milliseconds to transfer `bytes` over this link (ceiling).
    pub fn transfer_ms(self, bytes: usize) -> u64 {
        let bits = bytes as u64 * 8;
        // ceil(bits * 1000 / bps)
        bits.saturating_mul(1000).div_ceil(self.bits_per_sec())
    }
}

/// How link speeds are assigned across a community.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkScenario {
    /// Every peer on the same link class.
    Uniform(LinkClass),
    /// The Gnutella/Napster mixture measured by Saroiu et al. and used
    /// by the paper: 9% 56 Kbps, 21% 512 Kbps, 50% 5 Mbps, 16% 10 Mbps,
    /// 4% 45 Mbps.
    Mix,
}

impl LinkScenario {
    /// All peers on 45 Mbps links (the paper's "LAN").
    pub const LAN: LinkScenario = LinkScenario::Uniform(LinkClass::Lan45M);
    /// All peers on 512 Kbps links (the paper's "DSL").
    pub const DSL: LinkScenario = LinkScenario::Uniform(LinkClass::Dsl512k);

    /// Sample the link class for one peer.
    pub fn sample(self, rng: &mut SmallRng) -> LinkClass {
        match self {
            LinkScenario::Uniform(c) => c,
            LinkScenario::Mix => {
                let x: f64 = rng.random();
                if x < 0.09 {
                    LinkClass::Modem56k
                } else if x < 0.30 {
                    LinkClass::Dsl512k
                } else if x < 0.80 {
                    LinkClass::Cable5M
                } else if x < 0.96 {
                    LinkClass::Eth10M
                } else {
                    LinkClass::Lan45M
                }
            }
        }
    }
}

/// One-way propagation latency added to every transfer, ms.
pub const LINK_LATENCY_MS: u64 = 50;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn transfer_times_match_arithmetic() {
        // 16 MB over a modem ~ 40 minutes (paper §7.2).
        let ms = LinkClass::Modem56k.transfer_ms(16_000_000);
        let minutes = ms as f64 / 60_000.0;
        assert!((35.0..45.0).contains(&minutes), "{minutes} min");
    }

    #[test]
    fn classes_are_ordered_by_speed() {
        let mut prev = 0;
        for c in [
            LinkClass::Modem56k,
            LinkClass::Dsl512k,
            LinkClass::Cable5M,
            LinkClass::Eth10M,
            LinkClass::Lan45M,
        ] {
            assert!(c.bits_per_sec() > prev);
            prev = c.bits_per_sec();
        }
    }

    #[test]
    fn only_modem_is_slow_class() {
        assert_eq!(LinkClass::Modem56k.speed_class(), SpeedClass::Slow);
        assert_eq!(LinkClass::Dsl512k.speed_class(), SpeedClass::Fast);
        assert_eq!(LinkClass::Lan45M.speed_class(), SpeedClass::Fast);
    }

    #[test]
    fn mix_proportions_approximate_saroiu() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts
                .entry(LinkScenario::Mix.sample(&mut rng))
                .or_insert(0u32) += 1;
        }
        let frac = |c: LinkClass| f64::from(counts[&c]) / n as f64;
        assert!((frac(LinkClass::Modem56k) - 0.09).abs() < 0.02);
        assert!((frac(LinkClass::Dsl512k) - 0.21).abs() < 0.02);
        assert!((frac(LinkClass::Cable5M) - 0.50).abs() < 0.02);
        assert!((frac(LinkClass::Eth10M) - 0.16).abs() < 0.02);
        assert!((frac(LinkClass::Lan45M) - 0.04).abs() < 0.02);
    }

    #[test]
    fn table2_paper_values() {
        let t = Table2::paper();
        assert_eq!(t.cpu_gossip_ms, 5);
        assert_eq!(t.bf_1000_keys_bytes, 3000);
        assert_eq!(t.bf_20000_keys_bytes, 16_000);
        assert_eq!(t.peer_summary_bytes, 48);
    }
}
