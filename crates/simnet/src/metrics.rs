//! Measurement machinery: byte accounting, convergence tracking, and
//! bandwidth time series.

use planetp_gossip::{RumorId, TimeMs};
use planetp_obs::{names, Counter, Histogram, Registry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A rumor whose spread the simulation is timing.
#[derive(Debug, Clone)]
pub struct TrackedRumor {
    /// The news being timed.
    pub id: RumorId,
    /// When the event happened.
    pub born_at: TimeMs,
    /// When every online peer knew it (set once).
    pub converged_at: Option<TimeMs>,
    /// When every online *fast* peer knew it (Fig 5's MIX-F/MIX-S
    /// convergence condition).
    pub converged_fast_at: Option<TimeMs>,
    /// Which peers know it (index = node id).
    pub known: Vec<bool>,
    /// Count of set flags in `known`.
    pub known_count: usize,
}

impl TrackedRumor {
    /// Convergence latency, if reached.
    pub fn latency_ms(&self) -> Option<TimeMs> {
        self.converged_at.map(|t| t - self.born_at)
    }

    /// Latency until all online fast peers knew it, if reached.
    pub fn latency_fast_ms(&self) -> Option<TimeMs> {
        self.converged_fast_at.map(|t| t - self.born_at)
    }
}

/// Aggregate bandwidth over time, bucketed per simulated second.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BandwidthSeries {
    buckets: HashMap<u64, u64>,
}

impl BandwidthSeries {
    /// Charge `bytes` at time `at`.
    pub fn add(&mut self, at: TimeMs, bytes: usize) {
        *self.buckets.entry(at / 1000).or_insert(0) += bytes as u64;
    }

    /// Sorted `(second, bytes)` samples.
    pub fn samples(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.buckets.iter().map(|(&s, &b)| (s, b)).collect();
        v.sort_unstable();
        v
    }

    /// Total bytes across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// Mean bytes/second over the closed interval `[from_s, to_s]`
    /// (zero-filled).
    pub fn mean_bps(&self, from_s: u64, to_s: u64) -> f64 {
        if to_s < from_s {
            return 0.0;
        }
        let total: u64 = self
            .buckets
            .iter()
            .filter(|(&s, _)| s >= from_s && s <= to_s)
            .map(|(_, &b)| b)
            .sum();
        total as f64 / (to_s - from_s + 1) as f64
    }
}

/// All measurements a simulation run collects.
///
/// The public fields are the original ad-hoc accumulators (kept so
/// experiment drivers and reports compile unchanged); every recording
/// path *also* feeds a `planetp-obs` [`Registry`] under the same names
/// the live runtime uses, so a simulated run can be interrogated with
/// the same [`planetp_obs::MetricsSnapshot`] queries as a scraped live
/// node.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Total bytes put on the wire (all messages, all peers).
    pub total_bytes: u64,
    /// Total messages sent.
    pub total_messages: u64,
    /// Bytes sent per node (indexed by node id).
    pub bytes_per_node: Vec<u64>,
    /// Aggregate bandwidth series.
    pub bandwidth: BandwidthSeries,
    /// Bytes by message kind, for diagnosis.
    pub bytes_by_kind: HashMap<&'static str, u64>,
    /// Rumors being timed.
    pub tracked: Vec<TrackedRumor>,
    registry: Registry,
    bytes_out: Counter,
    frames_out: Counter,
    tracked_known: Counter,
    rumors_converged: Counter,
    convergence_ms: Histogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::in_registry(&Registry::new())
    }
}

impl Metrics {
    /// Accounting whose unified metrics land in `registry`.
    pub fn in_registry(registry: &Registry) -> Self {
        Self {
            total_bytes: 0,
            total_messages: 0,
            bytes_per_node: Vec::new(),
            bandwidth: BandwidthSeries::default(),
            bytes_by_kind: HashMap::new(),
            tracked: Vec::new(),
            registry: registry.clone(),
            bytes_out: registry.counter(names::NET_BYTES_OUT),
            frames_out: registry.counter(names::NET_FRAMES_OUT),
            tracked_known: registry.counter(names::SIM_TRACKED_KNOWN),
            rumors_converged: registry.counter(names::SIM_RUMORS_CONVERGED),
            convergence_ms: registry.histogram(
                names::SIM_CONVERGENCE_MS,
                &[
                    1_000, 5_000, 15_000, 30_000, 60_000, 120_000, 300_000, 600_000, 1_800_000,
                ],
            ),
        }
    }

    /// Set up per-node accounting for `n` nodes.
    pub fn with_nodes(n: usize) -> Self {
        Self {
            bytes_per_node: vec![0; n],
            ..Self::default()
        }
    }

    /// The unified registry this run records into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Record a message of `bytes` sent by `from` at `at`.
    pub fn on_send(&mut self, from: usize, kind: &'static str, bytes: usize, at: TimeMs) {
        self.total_bytes += bytes as u64;
        self.total_messages += 1;
        if from < self.bytes_per_node.len() {
            self.bytes_per_node[from] += bytes as u64;
        }
        self.bandwidth.add(at, bytes);
        *self.bytes_by_kind.entry(kind).or_insert(0) += bytes as u64;
        self.bytes_out.add(bytes as u64);
        self.frames_out.inc();
    }

    /// A peer was newly marked as knowing a tracked rumor.
    pub fn on_tracker_mark(&self) {
        self.tracked_known.inc();
    }

    /// A tracked rumor reached every online peer after `latency_ms`.
    pub fn on_converged(&self, latency_ms: TimeMs) {
        self.rumors_converged.inc();
        self.convergence_ms.observe(latency_ms);
    }

    /// Start timing a rumor across `n` nodes. Returns its tracker index.
    pub fn track(&mut self, id: RumorId, born_at: TimeMs, n: usize) -> usize {
        self.tracked.push(TrackedRumor {
            id,
            born_at,
            converged_at: None,
            converged_fast_at: None,
            known: vec![false; n],
            known_count: 0,
        });
        self.tracked.len() - 1
    }

    /// Convergence latencies of all tracked rumors that converged, ms.
    pub fn latencies(&self) -> Vec<TimeMs> {
        self.tracked
            .iter()
            .filter_map(TrackedRumor::latency_ms)
            .collect()
    }
}

/// An empirical CDF helper for reporting convergence distributions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    /// Sorted sample values.
    pub sorted: Vec<f64>,
}

impl Cdf {
    /// Build from unsorted samples.
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Self { sorted: samples }
    }

    /// The q-quantile (0 ≤ q ≤ 1) by nearest-rank; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[idx - 1])
    }

    /// Fraction of samples ≤ x.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_series_buckets_by_second() {
        let mut b = BandwidthSeries::default();
        b.add(500, 100);
        b.add(999, 50);
        b.add(1000, 25);
        assert_eq!(b.samples(), vec![(0, 150), (1, 25)]);
        assert_eq!(b.total(), 175);
        assert!((b.mean_bps(0, 1) - 87.5).abs() < 1e-9);
    }

    #[test]
    fn metrics_accumulate() {
        let mut m = Metrics::with_nodes(3);
        m.on_send(0, "rumor", 100, 0);
        m.on_send(1, "rumor", 50, 1500);
        m.on_send(0, "ae_summary", 10, 2000);
        assert_eq!(m.total_bytes, 160);
        assert_eq!(m.total_messages, 3);
        assert_eq!(m.bytes_per_node, vec![110, 50, 0]);
        assert_eq!(m.bytes_by_kind["rumor"], 150);
    }

    #[test]
    fn recording_mirrors_into_unified_registry() {
        let mut m = Metrics::with_nodes(2);
        m.on_send(0, "rumor", 100, 0);
        m.on_send(1, "ae_equal", 3, 10);
        m.on_tracker_mark();
        m.on_converged(12_000);
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter(names::NET_BYTES_OUT), 103);
        assert_eq!(snap.counter(names::NET_FRAMES_OUT), 2);
        assert_eq!(snap.counter(names::SIM_TRACKED_KNOWN), 1);
        assert_eq!(snap.counter(names::SIM_RUMORS_CONVERGED), 1);
        let h = snap
            .histogram(names::SIM_CONVERGENCE_MS)
            .expect("registered");
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 12_000);
    }

    #[test]
    fn cdf_quantiles() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(c.quantile(0.5), Some(2.0));
        assert_eq!(c.quantile(1.0), Some(4.0));
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert!((c.at(2.5) - 0.5).abs() < 1e-9);
        assert_eq!(c.at(100.0), 1.0);
    }

    #[test]
    fn cdf_empty() {
        let c = Cdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.at(1.0), 0.0);
    }

    #[test]
    fn tracked_rumor_latency() {
        let mut m = Metrics::with_nodes(2);
        let id = RumorId {
            subject: 0,
            status_version: 1,
            bloom_version: 1,
        };
        let t = m.track(id, 1000, 2);
        assert_eq!(m.tracked[t].latency_ms(), None);
        m.tracked[t].converged_at = Some(4000);
        assert_eq!(m.tracked[t].latency_ms(), Some(3000));
    }
}
