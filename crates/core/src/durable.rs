//! Crash-safe persistence for the live node.
//!
//! The paper's model assumes peers cycle offline/online constantly
//! (§3: offline marking, T_Dead expiry, rejoin rumors), but the live
//! TCP runtime kept everything in memory — a process crash destroyed
//! the node's identity, documents, version pair, and learned
//! directory, forcing a cold re-join and (worse) letting a restarted
//! peer re-announce versions *below* what the community had already
//! gossiped, breaking the versioned-record invariant. This module is
//! the durability layer: an atomic, checksummed **snapshot +
//! append-only WAL** store under a data directory.
//!
//! ## On-disk layout
//!
//! - `snapshot.db` — one CRC frame ([`crate::wire::write_crc_frame`])
//!   holding the full [`NodeState`]. Written atomically: serialize →
//!   write to `snapshot.tmp` → fsync → rename → fsync the directory.
//! - `wal.log` — a sequence of CRC frames, one [`WalRecord`] each,
//!   fsynced per append. Replayed over the snapshot on recovery.
//!
//! ## Recovery
//!
//! Recovery is corruption-tolerant: the WAL is replayed until the
//! first frame that is torn, fails its checksum, or will not decode,
//! and the log is **truncated there** instead of erroring out — a torn
//! tail is exactly what a crash mid-append leaves, and everything
//! before it is intact by construction (each frame carries its own
//! CRC). A corrupt or half-written `snapshot.tmp` (crash before the
//! rename) is discarded; a corrupt `snapshot.db` falls back to WAL-only
//! recovery. Replay is idempotent, so a crash *after* the snapshot
//! rename but *before* the WAL truncate (records folded into the
//! snapshot still present in the log) reapplies harmlessly.
//!
//! ## Crash injection
//!
//! Every step of the write path passes a named
//! [`CrashPoint`](crate::faults::CrashPoint) check on the node's
//! [`FaultInjector`]. An injected crash aborts the operation exactly
//! there — leaving the same torn on-disk state a real kill would — and
//! **poisons** the store: further writes are refused, as they would be
//! from a dead process. The crash-loop harness
//! (`crates/core/tests/live_recovery.rs`) drives the full matrix.

use planetp_obs::{names, Counter, Registry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::faults::{CrashPoint, FaultInjector};
use crate::live::LivePayload;
use crate::wire::{crc_frame_bytes, read_crc_frame, CrcFrame};
use planetp_gossip::PeerId;

/// Configuration of the durable store.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Data directory (created if missing). One node per directory.
    pub dir: PathBuf,
    /// WAL records accumulated since the last snapshot before the log
    /// is compacted (snapshot written, WAL truncated).
    pub compact_after_records: u64,
}

impl DurableConfig {
    /// Store state under `dir` with the default compaction threshold.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            compact_after_records: 256,
        }
    }
}

/// Store counters, registered next to the node's other metrics so
/// `planetp stats` surfaces them.
#[derive(Debug)]
pub struct StoreMetrics {
    wal_records: Counter,
    wal_replays: Counter,
    truncated_tails: Counter,
    snapshots: Counter,
    compactions: Counter,
    wal_bytes: Counter,
    poisoned_writes: Counter,
}

impl StoreMetrics {
    /// Handles into `registry` under the `store.*` names.
    pub fn in_registry(registry: &Registry) -> Self {
        Self {
            wal_records: registry.counter(names::STORE_WAL_RECORDS),
            wal_replays: registry.counter(names::STORE_WAL_REPLAYS),
            truncated_tails: registry.counter(names::STORE_TRUNCATED_TAILS),
            snapshots: registry.counter(names::STORE_SNAPSHOTS),
            compactions: registry.counter(names::STORE_COMPACTIONS),
            wal_bytes: registry.counter(names::STORE_WAL_BYTES),
            poisoned_writes: registry.counter(names::STORE_POISONED_WRITES),
        }
    }

    /// Counters not attached to any registry (unit tests).
    pub fn detached() -> Self {
        Self::in_registry(&Registry::new())
    }
}

/// One peer's persisted directory entry: the versions we had learned
/// plus its payload (address + compressed filter), enough to rebuild
/// the query-side mirror and to know whom to contact for catch-up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistedPeer {
    /// Membership incarnation at persist time.
    pub status_version: u64,
    /// Filter version at persist time.
    pub bloom_version: u32,
    /// Address + compressed Bloom filter, if learned.
    pub payload: Option<LivePayload>,
}

/// Everything the store materializes: the snapshot content, kept
/// up to date by applying every WAL record as it is appended.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeState {
    /// The node's peer id; `None` until the identity record lands.
    pub id: Option<PeerId>,
    /// High-water mark of the node's own announced status version.
    pub status_version: u64,
    /// High-water mark of the node's own announced bloom version.
    pub bloom_version: u32,
    /// Next document id (ids are never reused across restarts).
    pub next_doc_id: u64,
    /// Published documents by id (raw XML; the index and filter are
    /// rebuilt from these on recovery).
    pub docs: BTreeMap<u64, String>,
    /// The learned global directory (never includes the node itself).
    pub peers: BTreeMap<PeerId, PersistedPeer>,
    /// Replicas hosted for other peers, keyed by *local* doc id. The
    /// XML itself lives in `docs` like any published document; this map
    /// carries the replication metadata so a restarted node resumes
    /// hosting (and advertising) exactly what it held before the crash.
    /// Absent in pre-replication stores (serde default keeps old
    /// snapshots readable).
    #[serde(default)]
    pub replicas: BTreeMap<u64, PersistedReplica>,
}

/// Replication metadata for one hosted replica ([`NodeState::replicas`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PersistedReplica {
    /// The document's home peer.
    pub home: PeerId,
    /// The document's id at the home peer.
    pub home_doc: u64,
    /// Content hash, identical across every copy.
    pub hash: u64,
}

impl NodeState {
    /// Apply one WAL record. Idempotent: replaying a record already
    /// folded into the state (snapshot-rename/WAL-truncate crash
    /// window) changes nothing.
    fn apply(&mut self, rec: &WalRecord) {
        match rec {
            WalRecord::Identity { id } => {
                self.id = Some(*id);
            }
            WalRecord::OwnVersions {
                status_version,
                bloom_version,
            } => {
                self.status_version = self.status_version.max(*status_version);
                self.bloom_version = self.bloom_version.max(*bloom_version);
            }
            WalRecord::Publish { doc, xml } => {
                self.docs.insert(*doc, xml.clone());
                self.next_doc_id = self.next_doc_id.max(doc + 1);
            }
            WalRecord::Unpublish { doc } => {
                self.docs.remove(doc);
                self.replicas.remove(doc);
            }
            WalRecord::ReplicaStored {
                doc,
                home,
                home_doc,
                hash,
                xml,
            } => {
                self.docs.insert(*doc, xml.clone());
                self.next_doc_id = self.next_doc_id.max(doc + 1);
                self.replicas.insert(
                    *doc,
                    PersistedReplica {
                        home: *home,
                        home_doc: *home_doc,
                        hash: *hash,
                    },
                );
            }
            WalRecord::ReplicaDropped { doc } => {
                self.docs.remove(doc);
                self.replicas.remove(doc);
            }
            WalRecord::PeerLearned {
                peer,
                status_version,
                bloom_version,
                payload,
            } => {
                if Some(*peer) == self.id {
                    return;
                }
                let newer = match self.peers.get(peer) {
                    Some(p) => {
                        (*status_version, *bloom_version) >= (p.status_version, p.bloom_version)
                    }
                    None => true,
                };
                if newer {
                    let entry = self.peers.entry(*peer).or_insert(PersistedPeer {
                        status_version: 0,
                        bloom_version: 0,
                        payload: None,
                    });
                    entry.status_version = *status_version;
                    entry.bloom_version = *bloom_version;
                    if payload.is_some() {
                        entry.payload = payload.clone();
                    }
                }
            }
            WalRecord::PeerDropped { peer } => {
                self.peers.remove(peer);
            }
        }
    }

    /// Internal-consistency check; the crash-loop harness requires
    /// every recovered state to pass it.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(&max_doc) = self.docs.keys().next_back() {
            if max_doc >= self.next_doc_id {
                return Err(format!(
                    "doc id {max_doc} >= next_doc_id {}",
                    self.next_doc_id
                ));
            }
        }
        if let Some(id) = self.id {
            if self.peers.contains_key(&id) {
                return Err(format!("directory contains the node itself ({id})"));
            }
        }
        for (peer, p) in &self.peers {
            if p.status_version == 0 && p.bloom_version == 0 && p.payload.is_none() {
                return Err(format!("peer {peer} entry carries no information"));
            }
        }
        for doc in self.replicas.keys() {
            if !self.docs.contains_key(doc) {
                return Err(format!("replica {doc} has no stored document"));
            }
        }
        Ok(())
    }
}

/// One append-only log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// The node's identity (first record of a fresh store).
    Identity {
        /// The node's peer id.
        id: PeerId,
    },
    /// The node's own announced version pair advanced.
    OwnVersions {
        /// Membership incarnation.
        status_version: u64,
        /// Filter version.
        bloom_version: u32,
    },
    /// A document was published locally.
    Publish {
        /// Store-assigned document id.
        doc: u64,
        /// The raw XML.
        xml: String,
    },
    /// A document was removed locally.
    Unpublish {
        /// The removed document id.
        doc: u64,
    },
    /// The gossip directory learned fresher state about a peer.
    PeerLearned {
        /// The subject peer.
        peer: PeerId,
        /// Its membership incarnation.
        status_version: u64,
        /// Its filter version.
        bloom_version: u32,
        /// Address + compressed filter, when known.
        payload: Option<LivePayload>,
    },
    /// A peer was dropped from the directory (T_Dead expiry).
    PeerDropped {
        /// The dropped peer.
        peer: PeerId,
    },
    /// A replica pushed by another peer was admitted and ingested.
    ReplicaStored {
        /// Local store-assigned document id.
        doc: u64,
        /// The document's home peer.
        home: PeerId,
        /// Its document id at the home peer.
        home_doc: u64,
        /// Content hash, identical across every copy.
        hash: u64,
        /// The raw XML.
        xml: String,
    },
    /// A hosted replica was evicted (capacity pressure).
    ReplicaDropped {
        /// The local document id of the evicted replica.
        doc: u64,
    },
}

/// What recovery found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Was any prior state found (snapshot or WAL records)?
    pub recovered: bool,
    /// Did a valid snapshot load?
    pub snapshot_loaded: bool,
    /// WAL records replayed over the snapshot.
    pub wal_replays: u64,
    /// Was a corrupt/torn tail truncated off the WAL?
    pub truncated_tail: bool,
}

/// The snapshot + WAL store. Not thread-safe on its own; the live
/// runtime wraps it in a mutex.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    compact_after_records: u64,
    metrics: StoreMetrics,
    faults: Option<Arc<FaultInjector>>,
    /// WAL handle, open for append. `None` only mid-compaction.
    wal: Option<File>,
    state: NodeState,
    records_since_snapshot: u64,
    poisoned: bool,
    recovery: RecoveryInfo,
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.db")
}

fn snapshot_tmp_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.tmp")
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

/// fsync the directory so a rename/create survives a crash (no-op on
/// platforms where directories cannot be opened).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

impl DurableStore {
    /// Open (or create) the store under `config.dir`, running recovery:
    /// load the snapshot if valid, replay the WAL truncating at the
    /// first bad frame, and leave the log open for appends.
    pub fn open(
        config: DurableConfig,
        metrics: StoreMetrics,
        faults: Option<Arc<FaultInjector>>,
    ) -> io::Result<Self> {
        std::fs::create_dir_all(&config.dir)?;
        let mut recovery = RecoveryInfo::default();
        let mut state = NodeState::default();

        // A leftover temp snapshot is a crash between write and rename:
        // the old snapshot (or WAL-only state) is authoritative.
        let tmp = snapshot_tmp_path(&config.dir);
        if tmp.exists() {
            let _ = std::fs::remove_file(&tmp);
        }

        let snap = snapshot_path(&config.dir);
        if snap.exists() {
            let mut r = BufReader::new(File::open(&snap)?);
            match read_crc_frame::<NodeState>(&mut r)? {
                CrcFrame::Ok(s, _) => {
                    state = s;
                    recovery.snapshot_loaded = true;
                    recovery.recovered = true;
                }
                CrcFrame::Eof => {}
                CrcFrame::Corrupt(_) => {
                    // Corrupt snapshot: fall back to WAL-only recovery
                    // rather than refusing to start.
                    metrics.truncated_tails.inc();
                    recovery.truncated_tail = true;
                }
            }
        }

        let wal = wal_path(&config.dir);
        if wal.exists() {
            let mut good_bytes: u64 = 0;
            let mut corrupt = false;
            {
                let mut r = BufReader::new(File::open(&wal)?);
                loop {
                    match read_crc_frame::<WalRecord>(&mut r)? {
                        CrcFrame::Ok(rec, size) => {
                            state.apply(&rec);
                            good_bytes += size as u64;
                            recovery.wal_replays += 1;
                            metrics.wal_replays.inc();
                            recovery.recovered = true;
                        }
                        CrcFrame::Eof => break,
                        CrcFrame::Corrupt(_) => {
                            corrupt = true;
                            break;
                        }
                    }
                }
            }
            if corrupt {
                // Truncate at the first bad frame: everything before it
                // carried a valid checksum, everything after it is the
                // debris of a torn write or bit rot.
                let f = OpenOptions::new().write(true).open(&wal)?;
                f.set_len(good_bytes)?;
                f.sync_all()?;
                metrics.truncated_tails.inc();
                recovery.truncated_tail = true;
            }
        }

        let wal_file = OpenOptions::new().create(true).append(true).open(&wal)?;
        sync_dir(&config.dir);
        Ok(Self {
            records_since_snapshot: recovery.wal_replays,
            dir: config.dir,
            compact_after_records: config.compact_after_records.max(1),
            metrics,
            faults,
            wal: Some(wal_file),
            state,
            poisoned: false,
            recovery,
        })
    }

    /// The materialized state (snapshot + applied WAL).
    pub fn state(&self) -> &NodeState {
        &self.state
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> RecoveryInfo {
        self.recovery
    }

    /// Has an (injected or real) crash poisoned this store? A poisoned
    /// store refuses writes, like the dead process it is simulating.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Validate the materialized state.
    pub fn validate(&self) -> Result<(), String> {
        self.state.validate()
    }

    fn crash_check(&mut self, point: CrashPoint) -> io::Result<()> {
        if let Some(f) = &self.faults {
            if let Err(e) = f.crash_check(point) {
                self.poisoned = true;
                return Err(e);
            }
        }
        Ok(())
    }

    fn poisoned_err(&self) -> io::Error {
        io::Error::other("durable store poisoned by an earlier crash")
    }

    /// Append one record: CRC-frame it, write, fsync, apply to the
    /// materialized state, and compact if the log passed the threshold.
    pub fn append(&mut self, rec: WalRecord) -> io::Result<()> {
        if self.poisoned {
            self.metrics.poisoned_writes.inc();
            return Err(self.poisoned_err());
        }
        self.crash_check(CrashPoint::WalBeforeWrite)?;
        let frame = crc_frame_bytes(&rec)?;
        let mid = self.crash_check(CrashPoint::WalMidWrite);
        let wal = self.wal.as_mut().expect("wal open outside compaction");
        if let Err(e) = mid {
            // Torn write: half the frame reaches the disk, then the
            // process dies. Recovery must truncate this tail.
            let _ = wal.write_all(&frame[..frame.len() / 2]);
            let _ = wal.sync_data();
            return Err(e);
        }
        wal.write_all(&frame)?;
        self.crash_check(CrashPoint::WalBeforeSync)?;
        self.wal.as_mut().unwrap().sync_data()?;
        self.state.apply(&rec);
        self.metrics.wal_records.inc();
        self.metrics.wal_bytes.add(frame.len() as u64);
        self.records_since_snapshot += 1;
        if self.records_since_snapshot >= self.compact_after_records {
            self.metrics.compactions.inc();
            self.write_snapshot()?;
        }
        Ok(())
    }

    /// Write the current state as an atomic snapshot and truncate the
    /// WAL. Called automatically past the compaction threshold and
    /// explicitly at recovered startup (to fold the replayed log and
    /// persist the bumped version pair immediately).
    pub fn write_snapshot(&mut self) -> io::Result<()> {
        if self.poisoned {
            self.metrics.poisoned_writes.inc();
            return Err(self.poisoned_err());
        }
        self.crash_check(CrashPoint::SnapshotBeforeWrite)?;
        let frame = crc_frame_bytes(&self.state)?;
        let tmp = snapshot_tmp_path(&self.dir);
        let mut f = File::create(&tmp)?;
        let mid = self.crash_check(CrashPoint::SnapshotMidWrite);
        if let Err(e) = mid {
            let _ = f.write_all(&frame[..frame.len() / 2]);
            let _ = f.sync_all();
            return Err(e);
        }
        f.write_all(&frame)?;
        self.crash_check(CrashPoint::SnapshotBeforeSync)?;
        f.sync_all()?;
        drop(f);
        self.crash_check(CrashPoint::SnapshotBeforeRename)?;
        std::fs::rename(&tmp, snapshot_path(&self.dir))?;
        sync_dir(&self.dir);
        self.crash_check(CrashPoint::WalBeforeTruncate)?;
        let wal = self.wal.as_mut().expect("wal open outside compaction");
        wal.set_len(0)?;
        wal.sync_all()?;
        self.records_since_snapshot = 0;
        self.metrics.snapshots.inc();
        Ok(())
    }

    /// Persist directory deltas: entries in `directory` whose versions
    /// advanced past the persisted copy are appended as
    /// [`WalRecord::PeerLearned`]; persisted peers missing from
    /// `directory` are appended as [`WalRecord::PeerDropped`]. The
    /// node's own entry is skipped (its versions travel via
    /// [`WalRecord::OwnVersions`]). Returns records appended.
    pub fn sync_directory(
        &mut self,
        directory: &[(PeerId, u64, u32, Option<LivePayload>)],
    ) -> io::Result<usize> {
        let own = self.state.id;
        let mut records: Vec<WalRecord> = Vec::new();
        for (peer, sv, bv, payload) in directory {
            if Some(*peer) == own {
                continue;
            }
            let stale = match self.state.peers.get(peer) {
                Some(p) => (*sv, *bv) > (p.status_version, p.bloom_version),
                None => true,
            };
            if stale {
                records.push(WalRecord::PeerLearned {
                    peer: *peer,
                    status_version: *sv,
                    bloom_version: *bv,
                    payload: payload.clone(),
                });
            }
        }
        for peer in self.state.peers.keys() {
            if !directory.iter().any(|(p, _, _, _)| p == peer) {
                records.push(WalRecord::PeerDropped { peer: *peer });
            }
        }
        let n = records.len();
        for rec in records {
            self.append(rec)?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, StoreFaultRules};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "planetp-durable-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn open(dir: &Path) -> DurableStore {
        DurableStore::open(DurableConfig::at(dir), StoreMetrics::detached(), None).expect("open")
    }

    fn seed_records(s: &mut DurableStore) {
        s.append(WalRecord::Identity { id: 3 }).unwrap();
        s.append(WalRecord::OwnVersions {
            status_version: 1,
            bloom_version: 1,
        })
        .unwrap();
        s.append(WalRecord::Publish {
            doc: 1,
            xml: "<a>alpha</a>".into(),
        })
        .unwrap();
        s.append(WalRecord::Publish {
            doc: 2,
            xml: "<b>beta</b>".into(),
        })
        .unwrap();
        s.append(WalRecord::PeerLearned {
            peer: 9,
            status_version: 2,
            bloom_version: 4,
            payload: None,
        })
        .unwrap();
    }

    #[test]
    fn fresh_store_roundtrips_through_restart() {
        let dir = tmpdir("roundtrip");
        let mut s = open(&dir);
        assert!(!s.recovery().recovered);
        seed_records(&mut s);
        let state = s.state().clone();
        drop(s);

        let s2 = open(&dir);
        assert!(s2.recovery().recovered);
        assert_eq!(s2.recovery().wal_replays, 5);
        assert!(!s2.recovery().truncated_tail);
        assert_eq!(*s2.state(), state);
        assert_eq!(s2.state().id, Some(3));
        assert_eq!(s2.state().next_doc_id, 3);
        s2.validate().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replica_records_roundtrip_and_validate() {
        let dir = tmpdir("replica");
        let mut s = open(&dir);
        seed_records(&mut s);
        s.append(WalRecord::ReplicaStored {
            doc: 5,
            home: 9,
            home_doc: 2,
            hash: 0xFEED,
            xml: "<r>replicated</r>".into(),
        })
        .unwrap();
        s.append(WalRecord::ReplicaStored {
            doc: 6,
            home: 9,
            home_doc: 3,
            hash: 0xF00D,
            xml: "<r>evicted later</r>".into(),
        })
        .unwrap();
        s.append(WalRecord::ReplicaDropped { doc: 6 }).unwrap();
        let state = s.state().clone();
        drop(s);

        let s2 = open(&dir);
        assert_eq!(*s2.state(), state);
        // The surviving replica is both a stored doc and replica meta;
        // the dropped one is fully gone. next_doc_id cleared both ids.
        assert!(s2.state().docs.contains_key(&5));
        assert_eq!(
            s2.state().replicas.get(&5),
            Some(&PersistedReplica {
                home: 9,
                home_doc: 2,
                hash: 0xFEED
            })
        );
        assert!(!s2.state().docs.contains_key(&6));
        assert!(!s2.state().replicas.contains_key(&6));
        assert_eq!(s2.state().next_doc_id, 7);
        s2.validate().unwrap();

        // A replica without its document fails validation.
        let mut bad = s2.state().clone();
        bad.docs.remove(&5);
        assert!(bad.validate().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_folds_wal_into_snapshot() {
        let dir = tmpdir("compact");
        let mut s = DurableStore::open(
            DurableConfig {
                dir: dir.clone(),
                compact_after_records: 4,
            },
            StoreMetrics::detached(),
            None,
        )
        .unwrap();
        seed_records(&mut s); // 5 records: compaction fires at 4
        assert!(snapshot_path(&dir).exists());
        let wal_len = std::fs::metadata(wal_path(&dir)).unwrap().len();
        // One record appended after the threshold compaction.
        assert!(
            wal_len > 0 && wal_len < 200,
            "wal holds one record: {wal_len}"
        );
        let state = s.state().clone();
        drop(s);

        let s2 = open(&dir);
        assert!(s2.recovery().snapshot_loaded);
        assert_eq!(s2.recovery().wal_replays, 1);
        assert_eq!(*s2.state(), state);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = tmpdir("torn");
        let mut s = open(&dir);
        seed_records(&mut s);
        drop(s);
        // Tear the last record: cut 5 bytes off the log tail.
        crate::faults::truncate_tail(&wal_path(&dir), 5).unwrap();

        let s2 = open(&dir);
        assert!(s2.recovery().truncated_tail);
        assert_eq!(s2.recovery().wal_replays, 4, "prefix replays");
        assert!(s2.state().peers.is_empty(), "torn record lost");
        assert_eq!(s2.state().docs.len(), 2, "intact records kept");
        s2.validate().unwrap();
        drop(s2);

        // The log was physically truncated: appending after recovery
        // yields a clean log again.
        let mut s3 = open(&dir);
        assert!(!s3.recovery().truncated_tail);
        s3.append(WalRecord::Unpublish { doc: 1 }).unwrap();
        drop(s3);
        let s4 = open(&dir);
        assert_eq!(s4.state().docs.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_log_middle_keeps_only_prefix() {
        let dir = tmpdir("flip");
        let mut s = open(&dir);
        seed_records(&mut s);
        let len = std::fs::metadata(wal_path(&dir)).unwrap().len();
        drop(s);
        crate::faults::flip_tail_bit(&wal_path(&dir), len / 2).unwrap();

        let s2 = open(&dir);
        assert!(s2.recovery().truncated_tail);
        assert!(s2.recovery().wal_replays < 5);
        s2.validate().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_wal() {
        let dir = tmpdir("badsnap");
        let mut s = DurableStore::open(
            DurableConfig {
                dir: dir.clone(),
                compact_after_records: 4,
            },
            StoreMetrics::detached(),
            None,
        )
        .unwrap();
        seed_records(&mut s);
        drop(s);
        crate::faults::flip_tail_bit(&snapshot_path(&dir), 10).unwrap();

        let s2 = open(&dir);
        assert!(!s2.recovery().snapshot_loaded);
        assert!(s2.recovery().truncated_tail);
        // Only the post-compaction WAL record survives; the state is
        // partial but *valid* — the community re-teaches the rest.
        s2.validate().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The full crash matrix: for every [`CrashPoint`], arm a one-shot
    /// crash, drive an operation into it, and assert (a) the operation
    /// errors and poisons the store, (b) reopening the directory
    /// recovers to a validated state that is either the pre-op or the
    /// post-op state — never something in between or corrupt.
    #[test]
    fn crash_matrix_every_point_recovers_validated() {
        for point in CrashPoint::ALL {
            let dir = tmpdir("matrix");
            let inj = Arc::new(FaultInjector::new(1, FaultPlan::default()));
            let mut s = DurableStore::open(
                // Threshold 3 so the 4th record triggers compaction and
                // walks the snapshot crash points too.
                DurableConfig {
                    dir: dir.clone(),
                    compact_after_records: 3,
                },
                StoreMetrics::detached(),
                Some(Arc::clone(&inj)),
            )
            .unwrap();
            s.append(WalRecord::Identity { id: 3 }).unwrap();
            s.append(WalRecord::Publish {
                doc: 1,
                xml: "<a>one</a>".into(),
            })
            .unwrap();
            let pre = s.state().clone();

            inj.arm_crash(point);
            // Two more records: the first completes or dies at a WAL
            // point; the second crosses the compaction threshold and
            // walks the snapshot path.
            let mut post = pre.clone();
            let r1 = s
                .append(WalRecord::Publish {
                    doc: 2,
                    xml: "<b>two</b>".into(),
                })
                .and_then(|()| {
                    post.apply(&WalRecord::Publish {
                        doc: 2,
                        xml: "<b>two</b>".into(),
                    });
                    s.append(WalRecord::OwnVersions {
                        status_version: 1,
                        bloom_version: 3,
                    })
                });
            if r1.is_ok() {
                post.apply(&WalRecord::OwnVersions {
                    status_version: 1,
                    bloom_version: 3,
                });
            }
            assert!(r1.is_err(), "{point:?}: armed crash must surface");
            assert!(s.poisoned(), "{point:?}: store must poison");
            assert!(
                s.append(WalRecord::Unpublish { doc: 1 }).is_err(),
                "{point:?}: poisoned store refuses writes"
            );
            drop(s);

            let s2 = open(&dir);
            s2.validate()
                .unwrap_or_else(|e| panic!("{point:?}: invalid recovery: {e}"));
            let got = s2.state();
            // All prefixes of [pre, pre+doc2, pre+doc2+versions] are
            // legal recovery targets depending on where the crash and
            // fsync landed; anything else is corruption.
            let mut mid = pre.clone();
            mid.apply(&WalRecord::Publish {
                doc: 2,
                xml: "<b>two</b>".into(),
            });
            assert!(
                *got == pre || *got == mid || *got == post,
                "{point:?}: recovered state matches no write boundary:\n{got:?}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// Probabilistic chaos: hammer a store with random crash rolls;
    /// every reopen must validate and versions must never regress.
    #[test]
    fn random_crash_loop_never_regresses_versions() {
        let dir = tmpdir("chaos");
        let mut last_versions = (0u64, 0u32);
        let mut doc = 0u64;
        for round in 0..30u64 {
            let inj = Arc::new(
                FaultInjector::new(round, FaultPlan::default())
                    .with_store_rules(StoreFaultRules { crash: 0.08 }),
            );
            let mut s = DurableStore::open(
                DurableConfig {
                    dir: dir.clone(),
                    compact_after_records: 6,
                },
                StoreMetrics::detached(),
                Some(inj),
            )
            .unwrap();
            s.validate()
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
            let st = s.state();
            assert!(
                (st.status_version, st.bloom_version) >= last_versions,
                "round {round}: versions regressed"
            );
            // The recovery contract: bump past the persisted high-water.
            let bumped = (st.status_version + 1, st.bloom_version + 1);
            let _ = s.append(WalRecord::Identity { id: 1 });
            if s.append(WalRecord::OwnVersions {
                status_version: bumped.0,
                bloom_version: bumped.1,
            })
            .is_ok()
            {
                // Only a *persisted* bump raises the floor the next
                // incarnation must clear (an append that died before
                // its fsync may or may not survive — either satisfies
                // the monotone check above).
                last_versions = bumped;
            }
            for _ in 0..5 {
                doc += 1;
                if s.append(WalRecord::Publish {
                    doc,
                    xml: format!("<d>doc {doc}</d>"),
                })
                .is_err()
                {
                    break;
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_directory_appends_only_deltas() {
        let dir = tmpdir("dirsync");
        let mut s = open(&dir);
        s.append(WalRecord::Identity { id: 0 }).unwrap();
        let dir_v1 = vec![(1u32, 1u64, 1u32, None), (2, 1, 0, None), (0, 5, 5, None)];
        assert_eq!(s.sync_directory(&dir_v1).unwrap(), 2, "self skipped");
        assert_eq!(
            s.sync_directory(&dir_v1).unwrap(),
            0,
            "no change, no records"
        );
        // Peer 1 advances, peer 2 departs.
        let dir_v2 = vec![(1u32, 2u64, 3u32, None)];
        assert_eq!(s.sync_directory(&dir_v2).unwrap(), 2);
        assert_eq!(s.state().peers.len(), 1);
        assert_eq!(s.state().peers[&1].status_version, 2);
        drop(s);
        let s2 = open(&dir);
        assert_eq!(s2.state().peers.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
