//! Persistent, health-aware connections for the live runtime.
//!
//! Every gossip round and every search-group contact used to pay a
//! fresh `TcpStream::connect`; at the community sizes the paper's §6
//! evaluation targets (and the million-user north star beyond it) the
//! wire setup cost dominates the per-query budget once Bloofi pruning
//! has cut the probe cost. This module keeps connections alive instead:
//!
//! * **Exclusive keep-alive streams** ([`ConnPool::checkout`] /
//!   [`ConnPool::check_in`]) for conversational exchanges — gossip
//!   alternates whole batches in strict order, and a conversation ends
//!   at a clean frame boundary, so the stream can be returned to the
//!   pool and reused by the next round. At most
//!   [`ConnConfig::max_idle_per_peer`] idle streams are kept per peer;
//!   older ones are dropped on check-in and idle ones are reaped after
//!   [`ConnConfig::idle_timeout`].
//! * **One multiplexed stream per peer** ([`ConnPool::rpc`]) for
//!   request/reply RPCs. Requests carry correlation ids
//!   ([`crate::wire::write_correlated_frame`]) so the concurrent
//!   fan-out RPCs of a grouped search share a single stream and replies
//!   may arrive in any order. There is no dedicated reader thread:
//!   whichever waiter gets there first takes a short *reader lease*,
//!   polls the socket, and delivers whatever frame arrives — to itself
//!   or to whichever other waiter it belongs to.
//!
//! **Staleness.** A keep-alive stream can die while idle (the peer
//! restarted, reaped its end, or a middlebox dropped the mapping). That
//! says nothing about the peer's liveness, so a connection-level
//! failure ([`is_connection_level`]) on a stream that worked before is
//! absorbed *inside* the pool: one transparent reconnect, counted in
//! `conn.stale_reconnects`, never charged against the caller's retry
//! budget or the peer's health state. Failures on fresh connections and
//! genuine timeouts propagate unchanged.

use parking_lot::{Condvar, Mutex};
use planetp_obs::{names, Counter, Gauge, Registry};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::faults::{Direction, FaultInjector};
use crate::wire::{self, Frame, FrameMeta};

/// How long a reader lease polls the socket before handing the lease
/// back (and how long non-readers wait between checks of their slot).
const MUX_POLL: Duration = Duration::from_millis(10);

/// Knobs for the persistent connection layer.
#[derive(Debug, Clone, Copy)]
pub struct ConnConfig {
    /// Pool connections at all. `false` restores the original
    /// connect-per-contact behaviour (every RPC and gossip exchange
    /// opens and drops its own stream) — the bench baseline.
    pub enabled: bool,
    /// Idle exclusive (gossip) streams kept per peer; surplus check-ins
    /// are dropped.
    pub max_idle_per_peer: usize,
    /// Idle exclusive streams older than this are reaped.
    pub idle_timeout: Duration,
    /// Concurrent correlated RPCs allowed on one multiplexed stream;
    /// callers beyond the cap fail fast (`WouldBlock`) instead of
    /// queueing unboundedly behind a slow peer.
    pub max_inflight_per_conn: usize,
    /// Set `TCP_NODELAY` on pooled streams (small frames must not eat
    /// Nagle delay).
    pub nodelay: bool,
    /// Worker threads serving accepted connections (the bounded server
    /// model replacing thread-per-connection; clamped to at least 1).
    pub server_threads: usize,
}

impl Default for ConnConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            max_idle_per_peer: 2,
            idle_timeout: Duration::from_secs(30),
            max_inflight_per_conn: 64,
            nodelay: true,
            server_threads: 4,
        }
    }
}

/// Handles for the `conn.*` metrics family. Cloning shares the
/// underlying storage (same counters), like all registry handles.
#[derive(Debug, Clone)]
pub struct ConnMetrics {
    /// Real TCP connects performed.
    pub opened: Counter,
    /// Contacts served off an established stream.
    pub reused: Counter,
    /// Idle streams retired by the reaper.
    pub reaped: Counter,
    /// Stale streams transparently replaced.
    pub stale_reconnects: Counter,
    /// Correlated replies with no waiting request.
    pub unknown_corr: Counter,
    /// Gauge: correlated RPCs currently in flight.
    pub inflight: Gauge,
}

impl ConnMetrics {
    /// Handles recording into `registry` under the shared `conn.*`
    /// names.
    pub fn in_registry(registry: &Registry) -> Self {
        Self {
            opened: registry.counter(names::CONN_OPENED),
            reused: registry.counter(names::CONN_REUSED),
            reaped: registry.counter(names::CONN_REAPED),
            stale_reconnects: registry.counter(names::CONN_STALE_RECONNECTS),
            unknown_corr: registry.counter(names::CONN_UNKNOWN_CORR),
            inflight: registry.gauge(names::CONN_INFLIGHT),
        }
    }

    /// Detached handles (counted but invisible) for standalone pools.
    pub fn detached() -> Self {
        Self {
            opened: Counter::detached(),
            reused: Counter::detached(),
            reaped: Counter::detached(),
            stale_reconnects: Counter::detached(),
            unknown_corr: Counter::detached(),
            inflight: Gauge::detached(),
        }
    }
}

/// How a pooled RPC travelled, for the caller's accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct RpcConnInfo {
    /// The request went out on an already-established stream.
    pub reused: bool,
    /// A stale pooled stream was detected and transparently replaced;
    /// the caller must not charge this against retries or health.
    pub stale_reconnect: bool,
    /// Wire bytes written for the request frame.
    pub bytes_out: u64,
    /// Wire bytes read for the reply frame.
    pub bytes_in: u64,
}

/// Is this error the *connection* failing (as an idle keep-alive stream
/// does when the far end quietly went away), as opposed to the peer
/// refusing, timing out, or talking garbage?
pub fn is_connection_level(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
    )
}

/// State shared by every waiter on one multiplexed stream.
struct MuxState<T> {
    /// Waiting (`None`) or delivered-but-not-collected (`Some`) RPC
    /// slots, keyed by correlation id. A delivered slot holds the reply
    /// value plus its wire size.
    pending: HashMap<u64, Option<io::Result<(T, usize)>>>,
    /// Someone currently holds the reader lease.
    reader_active: bool,
}

/// One multiplexed stream shared by concurrent correlated RPCs.
struct MuxConn<T> {
    /// Socket for reads (`Read` is implemented for `&TcpStream`) and
    /// lifecycle control.
    stream: TcpStream,
    /// `try_clone` of the same socket for writes, under its own lock so
    /// a blocked reader never delays a sender.
    writer: Mutex<TcpStream>,
    state: Mutex<MuxState<T>>,
    reply_ready: Condvar,
    /// Once set, the stream is unusable; the pool replaces it.
    broken: AtomicBool,
    /// Did any RPC ever complete on this stream? A failure can only be
    /// blamed on *staleness* if the stream demonstrably worked before.
    used: AtomicBool,
    next_corr: AtomicU64,
    io_timeout: Duration,
    faults: Option<Arc<FaultInjector>>,
    metrics: ConnMetrics,
}

impl<T: Serialize + DeserializeOwned> MuxConn<T> {
    fn new(
        stream: TcpStream,
        writer: TcpStream,
        io_timeout: Duration,
        faults: Option<Arc<FaultInjector>>,
        metrics: ConnMetrics,
    ) -> Self {
        Self {
            stream,
            writer: Mutex::new(writer),
            state: Mutex::new(MuxState {
                pending: HashMap::new(),
                reader_active: false,
            }),
            reply_ready: Condvar::new(),
            broken: AtomicBool::new(false),
            used: AtomicBool::new(false),
            next_corr: AtomicU64::new(1),
            io_timeout,
            faults,
            metrics,
        }
    }

    fn is_broken(&self) -> bool {
        self.broken.load(Ordering::SeqCst)
    }

    fn was_used(&self) -> bool {
        self.used.load(Ordering::SeqCst)
    }

    /// Mark the stream dead: fail every undelivered slot, unblock any
    /// reader stuck in the socket, wake all waiters. Idempotent.
    fn poison(&self, kind: io::ErrorKind, msg: &str) {
        self.broken.store(true, Ordering::SeqCst);
        {
            let mut st = self.state.lock();
            for slot in st.pending.values_mut() {
                if slot.is_none() {
                    *slot = Some(Err(io::Error::new(kind, msg.to_string())));
                }
            }
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        self.reply_ready.notify_all();
    }

    /// One correlated RPC: send the request, then wait for the matching
    /// reply — reading the stream ourselves whenever no other waiter
    /// holds the reader lease. `meta`, when present, rides the request
    /// frame's metadata header (deadline budget + priority class) for
    /// the server's admission gate. Returns the reply with its
    /// request/reply wire sizes.
    fn rpc(
        &self,
        request: &T,
        read_timeout: Duration,
        max_inflight: usize,
        meta: Option<FrameMeta>,
    ) -> io::Result<(T, usize, usize)> {
        if self.is_broken() {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "pooled stream already failed",
            ));
        }
        let corr = self.next_corr.fetch_add(1, Ordering::Relaxed);
        {
            let mut st = self.state.lock();
            if st.pending.len() >= max_inflight {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "multiplexed stream at its in-flight cap",
                ));
            }
            st.pending.insert(corr, None);
        }
        self.metrics.inflight.add(1);
        let res = self.rpc_inner(corr, request, read_timeout, meta);
        self.metrics.inflight.add(-1);
        // Clear our slot on every exit path (timeout, error); a reply
        // that arrives after this is counted as unknown and dropped.
        self.state.lock().pending.remove(&corr);
        if res.is_ok() {
            self.used.store(true, Ordering::SeqCst);
        }
        res
    }

    fn rpc_inner(
        &self,
        corr: u64,
        request: &T,
        read_timeout: Duration,
        meta: Option<FrameMeta>,
    ) -> io::Result<(T, usize, usize)> {
        let bytes_out = {
            let mut w = self.writer.lock();
            let written = match (meta, &self.faults) {
                (Some(m), Some(f)) => {
                    f.write_meta_frame(Direction::Outbound, &mut *w, corr, m, request)
                }
                (Some(m), None) => wire::write_meta_frame(&mut *w, corr, m, request),
                (None, Some(f)) => {
                    f.write_correlated_frame(Direction::Outbound, &mut *w, corr, request)
                }
                (None, None) => wire::write_correlated_frame(&mut *w, corr, request),
            };
            match written {
                Ok(n) => n,
                Err(e) => {
                    let kind = e.kind();
                    drop(w);
                    self.poison(kind, "multiplexed write failed");
                    return Err(e);
                }
            }
        };
        let deadline = Instant::now() + read_timeout;
        loop {
            let take_lease = {
                let mut st = self.state.lock();
                if let Some(slot) = st.pending.get_mut(&corr) {
                    if slot.is_some() {
                        let got = slot.take().expect("just checked");
                        st.pending.remove(&corr);
                        return got.map(|(v, bytes_in)| (v, bytes_out, bytes_in));
                    }
                } else {
                    return Err(io::Error::other("rpc slot vanished"));
                }
                if self.is_broken() {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "pooled stream failed",
                    ));
                }
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "no reply within the read timeout",
                    ));
                }
                if st.reader_active {
                    // Someone else is draining the stream; nap until a
                    // delivery (or the poll interval) and re-check.
                    let wait = MUX_POLL.min(deadline.saturating_duration_since(Instant::now()));
                    let _ = self.reply_ready.wait_for(&mut st, wait);
                    false
                } else {
                    st.reader_active = true;
                    true
                }
            };
            if take_lease {
                let read = self.read_one();
                self.state.lock().reader_active = false;
                if let Err(e) = read {
                    // Fills our own slot too; the next iteration
                    // collects it.
                    self.poison(e.kind(), "multiplexed read failed");
                }
                self.reply_ready.notify_all();
            }
        }
    }

    /// One reader pass: poll for data with a short timeout (`peek` does
    /// not consume, so releasing the lease never strands half-read
    /// bytes), then read exactly one frame and deliver it to whichever
    /// waiter it belongs to. `Ok(())` covers both "nothing arrived" and
    /// "one frame delivered"; `Err` means the stream is unusable.
    fn read_one(&self) -> io::Result<()> {
        self.stream.set_read_timeout(Some(MUX_POLL))?;
        let mut probe = [0u8; 1];
        match self.stream.peek(&mut probe) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed pooled stream",
                ));
            }
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        // A frame is arriving: switch to the full IO timeout so a
        // trickling sender is bounded but not starved mid-frame.
        self.stream.set_read_timeout(Some(self.io_timeout))?;
        let got = match &self.faults {
            Some(f) => f.read_any_frame_sized::<T>(Direction::Outbound, &mut &self.stream)?,
            None => wire::read_any_frame_sized::<T>(&mut &self.stream)?,
        };
        let Some((frame, wire_bytes)) = got else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed pooled stream",
            ));
        };
        match frame {
            Frame::Correlated(id, value) => {
                let mut st = self.state.lock();
                match st.pending.get_mut(&id) {
                    Some(slot) if slot.is_none() => {
                        *slot = Some(Ok((value, wire_bytes)));
                    }
                    // Unknown id (late after a timeout, injected-stale)
                    // or a duplicate of a delivered reply: count it and
                    // keep draining — the framing itself is intact.
                    _ => self.metrics.unknown_corr.inc(),
                }
            }
            Frame::Legacy(_) => {
                // An uncorrelated frame on a mux stream cannot be
                // routed to any waiter; drop it, same accounting.
                self.metrics.unknown_corr.inc();
            }
        }
        Ok(())
    }
}

/// Per-peer pooled connections.
struct PeerConns<T> {
    /// The shared multiplexed RPC stream, if one is established.
    mux: Option<Arc<MuxConn<T>>>,
    /// Idle exclusive streams awaiting the next conversational
    /// checkout, most recently used last.
    idle: Vec<IdleConn>,
}

impl<T> Default for PeerConns<T> {
    fn default() -> Self {
        Self {
            mux: None,
            idle: Vec::new(),
        }
    }
}

struct IdleConn {
    stream: TcpStream,
    since: Instant,
}

/// The per-peer connection pool. See the [module docs](self).
pub struct ConnPool<T> {
    config: ConnConfig,
    io_timeout: Duration,
    faults: Option<Arc<FaultInjector>>,
    metrics: ConnMetrics,
    peers: Mutex<HashMap<String, PeerConns<T>>>,
}

impl<T: Serialize + DeserializeOwned> ConnPool<T> {
    /// A pool connecting with `io_timeout` read/write deadlines,
    /// running outbound connects through `faults` when present.
    pub fn new(
        config: ConnConfig,
        io_timeout: Duration,
        faults: Option<Arc<FaultInjector>>,
        metrics: ConnMetrics,
    ) -> Self {
        Self {
            config,
            io_timeout,
            faults,
            metrics,
            peers: Mutex::new(HashMap::new()),
        }
    }

    /// The pool's metric handles (shared storage with any registry
    /// handles they were created from).
    pub fn metrics(&self) -> &ConnMetrics {
        &self.metrics
    }

    fn connect_raw(&self, addr: &str) -> io::Result<TcpStream> {
        if let Some(f) = &self.faults {
            f.admit(Direction::Outbound)?;
        }
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        if self.config.nodelay {
            let _ = stream.set_nodelay(true);
        }
        self.metrics.opened.inc();
        Ok(stream)
    }

    /// Check out an exclusive stream for a conversational exchange
    /// (gossip alternates legacy frames in strict order, so the stream
    /// cannot be shared while the conversation runs). Returns the
    /// stream plus whether it was reused from the pool; return it with
    /// [`Self::check_in`] after a clean exchange, drop it on failure.
    pub fn checkout(&self, addr: &str) -> io::Result<(TcpStream, bool)> {
        let reusable = {
            let mut peers = self.peers.lock();
            peers.get_mut(addr).and_then(|p| p.idle.pop())
        };
        if let Some(idle) = reusable {
            self.metrics.reused.inc();
            return Ok((idle.stream, true));
        }
        Ok((self.connect_raw(addr)?, false))
    }

    /// Open a fresh exclusive stream, bypassing the pool (the
    /// transparent stale-reconnect path after a reused checkout
    /// failed).
    pub fn checkout_fresh(&self, addr: &str) -> io::Result<TcpStream> {
        self.connect_raw(addr)
    }

    /// Return a checked-out stream after a clean exchange. Dropped
    /// instead when the peer already holds `max_idle_per_peer` idle
    /// streams.
    pub fn check_in(&self, addr: &str, stream: TcpStream) {
        let mut peers = self.peers.lock();
        let p = peers.entry(addr.to_string()).or_default();
        if p.idle.len() < self.config.max_idle_per_peer {
            p.idle.push(IdleConn {
                stream,
                since: Instant::now(),
            });
        }
    }

    /// Count a stale-stream replacement (exclusive-stream callers do
    /// the reconnect themselves via [`Self::checkout_fresh`]).
    pub fn note_stale_reconnect(&self) {
        self.metrics.stale_reconnects.inc();
    }

    /// The shared multiplexed stream for `addr`, creating or replacing
    /// a broken one. Second return: whether the stream pre-existed
    /// this call.
    fn mux(&self, addr: &str) -> io::Result<(Arc<MuxConn<T>>, bool)> {
        {
            let mut peers = self.peers.lock();
            if let Some(p) = peers.get_mut(addr) {
                if let Some(m) = &p.mux {
                    if !m.is_broken() {
                        return Ok((Arc::clone(m), true));
                    }
                    p.mux = None;
                }
            }
        }
        // Slow path: connect without holding the map lock (an injected
        // admit delay must not stall contacts to other peers). If two
        // first-RPCs race, the one that lands in the map first wins and
        // the loser's socket is simply dropped.
        let stream = self.connect_raw(addr)?;
        let writer = stream.try_clone()?;
        let conn = Arc::new(MuxConn::new(
            stream,
            writer,
            self.io_timeout,
            self.faults.clone(),
            self.metrics.clone(),
        ));
        let mut peers = self.peers.lock();
        let p = peers.entry(addr.to_string()).or_default();
        match &p.mux {
            Some(existing) if !existing.is_broken() => Ok((Arc::clone(existing), true)),
            _ => {
                p.mux = Some(Arc::clone(&conn));
                Ok((conn, false))
            }
        }
    }

    /// One correlated RPC over the shared per-peer stream, with stale
    /// detection: a connection-level failure on a stream that worked
    /// before is absorbed by one transparent reconnect — the retry the
    /// pool takes here is it paying for its own keep-alive gamble, not
    /// a peer failure, so it is never charged to the caller's retry or
    /// health budgets.
    pub fn rpc(
        &self,
        addr: &str,
        request: &T,
        read_timeout: Duration,
    ) -> io::Result<(T, RpcConnInfo)> {
        self.rpc_with_meta(addr, request, read_timeout, None)
    }

    /// [`Self::rpc`] with request metadata: the frame carries `meta`'s
    /// deadline budget and priority class for the server's admission
    /// gate. `None` falls back to a plain correlated frame, readable by
    /// servers predating the metadata header.
    pub fn rpc_with_meta(
        &self,
        addr: &str,
        request: &T,
        read_timeout: Duration,
        meta: Option<FrameMeta>,
    ) -> io::Result<(T, RpcConnInfo)> {
        let (conn, pre_existing) = self.mux(addr)?;
        let stale_eligible = pre_existing && conn.was_used();
        match conn.rpc(
            request,
            read_timeout,
            self.config.max_inflight_per_conn,
            meta,
        ) {
            Ok((reply, bytes_out, bytes_in)) => Ok((
                reply,
                RpcConnInfo {
                    reused: pre_existing,
                    stale_reconnect: false,
                    bytes_out: bytes_out as u64,
                    bytes_in: bytes_in as u64,
                },
            )),
            Err(e) if stale_eligible && is_connection_level(&e) => {
                self.metrics.stale_reconnects.inc();
                self.drop_mux(addr, &conn);
                let (fresh, _) = self.mux(addr)?;
                let (reply, bytes_out, bytes_in) = fresh.rpc(
                    request,
                    read_timeout,
                    self.config.max_inflight_per_conn,
                    meta,
                )?;
                Ok((
                    reply,
                    RpcConnInfo {
                        reused: false,
                        stale_reconnect: true,
                        bytes_out: bytes_out as u64,
                        bytes_in: bytes_in as u64,
                    },
                ))
            }
            Err(e) => Err(e),
        }
    }

    /// Remove `conn` from the pool if it is still the mapped mux for
    /// `addr` (another thread may already have replaced it).
    fn drop_mux(&self, addr: &str, conn: &Arc<MuxConn<T>>) {
        let mut peers = self.peers.lock();
        if let Some(p) = peers.get_mut(addr) {
            if let Some(m) = &p.mux {
                if Arc::ptr_eq(m, conn) {
                    p.mux = None;
                }
            }
        }
    }

    /// Retire idle exclusive streams past the idle timeout and forget
    /// broken mux streams. Cheap; the gossip loop calls it every tick.
    pub fn reap(&self) {
        let now = Instant::now();
        let mut peers = self.peers.lock();
        peers.retain(|_, p| {
            let before = p.idle.len();
            p.idle
                .retain(|c| now.duration_since(c.since) < self.config.idle_timeout);
            let reaped = before - p.idle.len();
            if reaped > 0 {
                self.metrics.reaped.add(reaped as u64);
            }
            if p.mux.as_ref().is_some_and(|m| m.is_broken()) {
                p.mux = None;
            }
            p.mux.is_some() || !p.idle.is_empty()
        });
    }

    /// Test hook: break every pooled stream to `addr` at the socket
    /// level *without removing it from the pool*, simulating a peer
    /// that silently dropped its keep-alives — the next use sees a
    /// stale stream. Returns how many streams were broken.
    pub fn debug_break(&self, addr: &str) -> usize {
        let peers = self.peers.lock();
        let Some(p) = peers.get(addr) else {
            return 0;
        };
        let mut broken = 0;
        for c in &p.idle {
            let _ = c.stream.shutdown(std::net::Shutdown::Both);
            broken += 1;
        }
        if let Some(m) = &p.mux {
            let _ = m.stream.shutdown(std::net::Shutdown::Both);
            broken += 1;
        }
        broken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A single-threaded echo server: accepts one connection at a time,
    /// echoes every correlated frame under its own id, and goes back to
    /// accepting when the connection dies.
    fn echo_server(listener: TcpListener) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                loop {
                    match wire::read_any_frame_sized::<Vec<u32>>(&mut s) {
                        Ok(Some((Frame::Correlated(id, v), _))) => {
                            if wire::write_correlated_frame(&mut s, id, &v).is_err() {
                                break;
                            }
                        }
                        _ => break,
                    }
                }
            }
        })
    }

    fn pool(config: ConnConfig) -> (ConnPool<Vec<u32>>, ConnMetrics) {
        let metrics = ConnMetrics::detached();
        let p = ConnPool::new(config, Duration::from_secs(2), None, metrics.clone());
        (p, metrics)
    }

    #[test]
    fn checkout_reuses_checked_in_streams() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Accept and hold connections open so check-ins stay usable.
        let held = std::thread::spawn(move || {
            let mut conns = Vec::new();
            while conns.len() < 2 {
                if let Ok((s, _)) = listener.accept() {
                    conns.push(s);
                }
            }
            std::thread::sleep(Duration::from_millis(500));
        });
        let (p, m) = pool(ConnConfig::default());
        let (s1, reused) = p.checkout(&addr).unwrap();
        assert!(!reused);
        assert_eq!(m.opened.get(), 1);
        p.check_in(&addr, s1);
        let (s2, reused) = p.checkout(&addr).unwrap();
        assert!(reused, "checked-in stream must be reused");
        assert_eq!(m.opened.get(), 1, "reuse must not connect");
        assert_eq!(m.reused.get(), 1);
        p.check_in(&addr, s2);
        // A second fresh checkout while the first idles.
        let (s3, reused) = p.checkout(&addr).unwrap();
        assert!(reused);
        drop(s3);
        held.join().unwrap();
    }

    #[test]
    fn reap_retires_idle_streams() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let held = std::thread::spawn(move || {
            let _conn = listener.accept();
            std::thread::sleep(Duration::from_millis(300));
        });
        let (p, m) = pool(ConnConfig {
            idle_timeout: Duration::ZERO,
            ..ConnConfig::default()
        });
        let (s, _) = p.checkout(&addr).unwrap();
        p.check_in(&addr, s);
        p.reap();
        assert_eq!(m.reaped.get(), 1);
        held.join().unwrap();
    }

    #[test]
    fn mux_rpc_roundtrips_and_reuses_one_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = echo_server(listener);
        let (p, m) = pool(ConnConfig::default());
        let (reply, info) = p
            .rpc(&addr, &vec![1, 2, 3], Duration::from_secs(2))
            .unwrap();
        assert_eq!(reply, vec![1, 2, 3]);
        assert!(!info.reused, "first RPC opens the stream");
        let (reply, info) = p.rpc(&addr, &vec![9], Duration::from_secs(2)).unwrap();
        assert_eq!(reply, vec![9]);
        assert!(info.reused, "second RPC shares the stream");
        assert_eq!(m.opened.get(), 1, "exactly one connect for both RPCs");
        drop(p); // closes the stream; the server loop exits its accept
        drop(server);
    }

    #[test]
    fn mux_rpc_with_meta_reaches_a_meta_aware_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // A meta-aware echo server: echoes the request under its id and
        // encodes the received metadata into the reply payload.
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            while let Ok(Some((frame, meta, _))) =
                wire::read_any_frame_meta_sized::<Vec<u32>>(&mut s)
            {
                let Frame::Correlated(id, mut v) = frame else {
                    break;
                };
                if let Some(m) = meta {
                    v.push(m.deadline_ms.unwrap_or(0));
                    v.push(u32::from(m.priority.to_wire()));
                }
                if wire::write_correlated_frame(&mut s, id, &v).is_err() {
                    break;
                }
            }
        });
        let (p, _) = pool(ConnConfig::default());
        let meta = FrameMeta::with_deadline(wire::Priority::Interactive, 1_234);
        let (reply, _) = p
            .rpc_with_meta(&addr, &vec![7], Duration::from_secs(2), Some(meta))
            .unwrap();
        assert_eq!(reply, vec![7, 1_234, 0], "metadata arrived intact");
        // A meta-less RPC on the same stream stays a plain correlated
        // frame (no metadata echoed back).
        let (reply, _) = p.rpc(&addr, &vec![8], Duration::from_secs(2)).unwrap();
        assert_eq!(reply, vec![8]);
        drop(p);
        drop(server);
    }

    #[test]
    fn stale_mux_stream_reconnects_transparently_once() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = echo_server(listener);
        let (p, m) = pool(ConnConfig::default());
        let (reply, _) = p.rpc(&addr, &vec![5], Duration::from_secs(2)).unwrap();
        assert_eq!(reply, vec![5]);
        assert_eq!(p.debug_break(&addr), 1, "one mux stream to break");
        let (reply, info) = p.rpc(&addr, &vec![6], Duration::from_secs(2)).unwrap();
        assert_eq!(reply, vec![6], "RPC must survive the stale stream");
        assert!(
            info.stale_reconnect,
            "the pool must own up to the reconnect"
        );
        assert_eq!(m.stale_reconnects.get(), 1);
        assert_eq!(m.opened.get(), 2, "exactly one extra connect");
        drop(p);
        drop(server);
    }

    #[test]
    fn inflight_cap_fails_fast() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // A server that reads but never replies: the first RPC parks in
        // flight until its timeout.
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = wire::read_any_frame_sized::<Vec<u32>>(&mut s);
            std::thread::sleep(Duration::from_millis(600));
        });
        let (p, _) = pool(ConnConfig {
            max_inflight_per_conn: 1,
            ..ConnConfig::default()
        });
        let p = Arc::new(p);
        let p2 = Arc::clone(&p);
        let addr2 = addr.clone();
        let first =
            std::thread::spawn(move || p2.rpc(&addr2, &vec![1], Duration::from_millis(400)));
        std::thread::sleep(Duration::from_millis(100));
        let err = p.rpc(&addr, &vec![2], Duration::from_secs(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock, "cap must fail fast");
        let err = first.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        server.join().unwrap();
    }
}
