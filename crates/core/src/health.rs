//! Per-peer failure memory for the live runtime.
//!
//! The paper's failure model is binary and immediate: "Each peer
//! discovers that another peer is offline when an attempt to
//! communicate with it fails" (§3). Over real sockets that is too
//! trigger-happy — a single dropped SYN or a slow disk on the remote
//! end would eject a healthy peer from gossip target selection. The
//! [`PeerHealth`] table interposes a *suspect* phase: peers accumulate
//! consecutive failures, transition `Healthy → Suspect → Offline`, and
//! only the offline transition feeds back into the gossip directory's
//! offline marking (which then drives the paper's T_Dead expiry).
//! Successful contacts reset the count and clear the mark, mirroring
//! §3's "hearing from a peer proves it is online".
//!
//! The table also remembers an EWMA of contact latency (diagnostic,
//! exposed through snapshots) and computes the capped exponential
//! backoff that gates how soon an offline peer is probed again.

use planetp_gossip::PeerId;
use std::collections::HashMap;
use std::time::Duration;

/// Liveness belief derived from contact outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// No unanswered failures.
    Healthy,
    /// At least one recent failure; still contacted normally.
    Suspect,
    /// Failure budget exhausted; contacts are gated by backoff and the
    /// gossip directory is told to mark the peer offline.
    Offline,
}

/// Tuning knobs for [`PeerHealth`].
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Consecutive failed contacts (each already retry-exhausted) after
    /// which a peer becomes [`HealthState::Suspect`].
    pub suspect_after: u32,
    /// Consecutive failed contacts after which a peer becomes
    /// [`HealthState::Offline`].
    pub offline_after: u32,
    /// First probe-again delay once a peer is offline.
    pub base_backoff_ms: u64,
    /// Cap on the probe-again delay.
    pub max_backoff_ms: u64,
    /// Smoothing factor for the contact-latency EWMA (0 < α ≤ 1).
    pub ewma_alpha: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            suspect_after: 1,
            offline_after: 2,
            base_backoff_ms: 500,
            max_backoff_ms: 30_000,
            ewma_alpha: 0.3,
        }
    }
}

/// Retry schedule for one logical peer contact (a gossip exchange or a
/// search RPC): up to `max_attempts` tries with capped exponential
/// backoff and deterministic jitter between them.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each retry after that.
    pub base_delay_ms: u64,
    /// Cap on the per-retry delay.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay_ms: 50,
            max_delay_ms: 1_000,
        }
    }
}

impl RetryPolicy {
    /// Delay before retry number `retry` (1-based). Jitter is
    /// deterministic in `salt` so test runs are reproducible: the
    /// second half of the capped exponential window is chosen by a
    /// hash, giving delays in `[cap/2, cap]`.
    pub fn delay(&self, retry: u32, salt: u64) -> Duration {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << retry.saturating_sub(1).min(16));
        let cap = exp.min(self.max_delay_ms).max(1);
        let half = cap / 2;
        let jitter = splitmix64(salt.wrapping_add(u64::from(retry))) % (half + 1);
        Duration::from_millis(half + jitter)
    }
}

/// Everything remembered about one peer's contact history.
#[derive(Debug, Clone, Copy)]
pub struct PeerHealthEntry {
    /// Failures since the last success.
    pub consecutive_failures: u32,
    /// Local clock (ms) of the last successful contact.
    pub last_success_ms: Option<u64>,
    /// Local clock (ms) of the last failed contact.
    pub last_failure_ms: Option<u64>,
    /// Exponentially weighted moving average of contact latency (ms).
    pub ewma_latency_ms: Option<f64>,
    /// Current liveness belief.
    pub state: HealthState,
    /// While offline: do not probe again before this local time (ms).
    pub retry_at_ms: u64,
    /// Keep-alive connections to this peer that went stale and were
    /// transparently replaced. Diagnostic only: a reaped idle stream
    /// says nothing about the peer's liveness, so these never feed the
    /// consecutive-failure state machine.
    pub stale_reconnects: u32,
    /// Consecutive `Busy` replies since the last successful contact.
    /// Like stale reconnects, Busy is *not* a failure — the peer is
    /// alive, merely overloaded — so these never feed the
    /// suspect→offline machine. They drive the busy throttle instead.
    pub busy_strikes: u32,
    /// While busy-throttled: the advertised retry-after horizon (local
    /// clock, ms). Inside this window, repeated strikes make group
    /// dispatch probabilistically skip the peer for a round.
    pub busy_until_ms: u64,
}

impl PeerHealthEntry {
    fn fresh() -> Self {
        Self {
            consecutive_failures: 0,
            last_success_ms: None,
            last_failure_ms: None,
            ewma_latency_ms: None,
            state: HealthState::Healthy,
            retry_at_ms: 0,
            stale_reconnects: 0,
            busy_strikes: 0,
            busy_until_ms: 0,
        }
    }
}

/// Outcome of recording a contact result: the state edge it caused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// State before the contact was recorded.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
}

impl HealthTransition {
    /// Did this contact push the peer over the offline threshold?
    pub fn became_offline(&self) -> bool {
        self.from != HealthState::Offline && self.to == HealthState::Offline
    }

    /// Did a suspect/offline peer answer again?
    pub fn recovered(&self) -> bool {
        self.from != HealthState::Healthy && self.to == HealthState::Healthy
    }
}

/// The per-node health table: one [`PeerHealthEntry`] per contacted
/// peer. Not thread-safe on its own — the live runtime wraps it in a
/// mutex next to the gossip engine.
#[derive(Debug)]
pub struct PeerHealth {
    config: HealthConfig,
    entries: HashMap<PeerId, PeerHealthEntry>,
}

impl PeerHealth {
    /// Empty table.
    pub fn new(config: HealthConfig) -> Self {
        Self {
            config,
            entries: HashMap::new(),
        }
    }

    /// Record a successful contact with observed `latency_ms`.
    pub fn record_success(
        &mut self,
        peer: PeerId,
        now_ms: u64,
        latency_ms: f64,
    ) -> HealthTransition {
        let alpha = self.config.ewma_alpha;
        let e = self
            .entries
            .entry(peer)
            .or_insert_with(PeerHealthEntry::fresh);
        let from = e.state;
        e.consecutive_failures = 0;
        e.last_success_ms = Some(now_ms);
        e.state = HealthState::Healthy;
        e.retry_at_ms = 0;
        // A served request proves the overload passed: drop the throttle.
        e.busy_strikes = 0;
        e.busy_until_ms = 0;
        e.ewma_latency_ms = Some(match e.ewma_latency_ms {
            Some(prev) => prev + alpha * (latency_ms - prev),
            None => latency_ms,
        });
        HealthTransition {
            from,
            to: HealthState::Healthy,
        }
    }

    /// Record a failed contact (after the caller's retries were
    /// exhausted). Advances the suspect→offline state machine and, on
    /// entering or staying offline, schedules the next probe with
    /// capped exponential backoff.
    pub fn record_failure(&mut self, peer: PeerId, now_ms: u64) -> HealthTransition {
        let cfg = self.config;
        let e = self
            .entries
            .entry(peer)
            .or_insert_with(PeerHealthEntry::fresh);
        let from = e.state;
        e.consecutive_failures = e.consecutive_failures.saturating_add(1);
        e.last_failure_ms = Some(now_ms);
        e.state = if e.consecutive_failures >= cfg.offline_after {
            HealthState::Offline
        } else if e.consecutive_failures >= cfg.suspect_after {
            HealthState::Suspect
        } else {
            HealthState::Healthy
        };
        if e.state == HealthState::Offline {
            let beyond = e.consecutive_failures - cfg.offline_after;
            let exp = cfg.base_backoff_ms.saturating_mul(1u64 << beyond.min(16));
            let cap = exp.min(cfg.max_backoff_ms).max(1);
            // Deterministic jitter in [cap/2, cap], like RetryPolicy.
            let half = cap / 2;
            let jitter = splitmix64((u64::from(peer) << 32) ^ u64::from(e.consecutive_failures))
                % (half + 1);
            e.retry_at_ms = now_ms + half + jitter;
        }
        HealthTransition { from, to: e.state }
    }

    /// Record that a pooled connection to `peer` was found stale and
    /// transparently replaced. Deliberately *not* a failure: the peer
    /// was never proven unreachable (its end of an idle stream merely
    /// went away), so state, failure count, and backoff are untouched.
    pub fn record_stale_reconnect(&mut self, peer: PeerId) {
        let e = self
            .entries
            .entry(peer)
            .or_insert_with(PeerHealthEntry::fresh);
        e.stale_reconnects = e.stale_reconnects.saturating_add(1);
    }

    /// Record a `Busy` reply from `peer` advertising `retry_after_ms`
    /// of backoff. Deliberately *not* a failure (the peer answered — it
    /// is alive, just shedding load), so the suspect→offline machine is
    /// untouched. Consecutive strikes accumulate and extend the busy
    /// window; [`Self::busy_throttled`] turns repeats into skips.
    pub fn record_busy(&mut self, peer: PeerId, now_ms: u64, retry_after_ms: u64) {
        let e = self
            .entries
            .entry(peer)
            .or_insert_with(PeerHealthEntry::fresh);
        e.busy_strikes = e.busy_strikes.saturating_add(1);
        e.busy_until_ms = e.busy_until_ms.max(now_ms + retry_after_ms.max(1));
    }

    /// Should a group dispatch skip this peer for one round because it
    /// keeps shedding us? A single Busy never throttles (the very next
    /// request may land); *repeated* Busy inside the advertised window
    /// skips probabilistically — probability grows with the strike
    /// count, capped below 1 so a throttled peer is still probed
    /// occasionally. Deterministic in `salt` for reproducible tests.
    pub fn busy_throttled(&self, peer: PeerId, now_ms: u64, salt: u64) -> bool {
        let Some(e) = self.entries.get(&peer) else {
            return false;
        };
        if e.busy_strikes < 2 || now_ms >= e.busy_until_ms {
            return false;
        }
        // 50% at two strikes, +15% per further strike, capped at 90%.
        let pct = 50u64
            .saturating_add(15 * u64::from(e.busy_strikes - 2))
            .min(90);
        let roll = splitmix64(salt ^ (u64::from(peer) << 17) ^ u64::from(e.busy_strikes)) % 100;
        roll < pct
    }

    /// Peers currently inside a busy-throttle window.
    pub fn busy_throttled_count(&self, now_ms: u64) -> usize {
        self.entries
            .values()
            .filter(|e| e.busy_strikes >= 2 && now_ms < e.busy_until_ms)
            .count()
    }

    /// Current belief about a peer (Healthy when never contacted).
    pub fn state(&self, peer: PeerId) -> HealthState {
        self.entries
            .get(&peer)
            .map_or(HealthState::Healthy, |e| e.state)
    }

    /// Should a contact to `peer` be skipped right now? True only for
    /// offline peers still inside their backoff window — suspects keep
    /// being contacted so they can clear themselves.
    pub fn should_skip(&self, peer: PeerId, now_ms: u64) -> bool {
        self.entries
            .get(&peer)
            .is_some_and(|e| e.state == HealthState::Offline && now_ms < e.retry_at_ms)
    }

    /// Snapshot of one peer's history.
    pub fn get(&self, peer: PeerId) -> Option<PeerHealthEntry> {
        self.entries.get(&peer).copied()
    }

    /// Iterate over all tracked peers.
    pub fn iter(&self) -> impl Iterator<Item = (PeerId, &PeerHealthEntry)> {
        self.entries.iter().map(|(&id, e)| (id, e))
    }

    /// Number of peers currently believed offline.
    pub fn offline_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.state == HealthState::Offline)
            .count()
    }
}

/// SplitMix64 — the deterministic jitter source (no RNG state to keep).
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PeerHealth {
        PeerHealth::new(HealthConfig::default())
    }

    #[test]
    fn failures_walk_healthy_suspect_offline() {
        let mut h = table();
        assert_eq!(h.state(7), HealthState::Healthy);
        let t = h.record_failure(7, 100);
        assert_eq!((t.from, t.to), (HealthState::Healthy, HealthState::Suspect));
        let t = h.record_failure(7, 200);
        assert!(t.became_offline());
        assert_eq!(h.state(7), HealthState::Offline);
    }

    #[test]
    fn success_resets_and_reports_recovery() {
        let mut h = table();
        h.record_failure(3, 0);
        h.record_failure(3, 10);
        let t = h.record_success(3, 20, 5.0);
        assert!(t.recovered());
        assert_eq!(h.state(3), HealthState::Healthy);
        assert_eq!(h.get(3).unwrap().consecutive_failures, 0);
    }

    #[test]
    fn offline_peers_skip_within_backoff_then_probe() {
        let mut h = table();
        h.record_failure(9, 0);
        h.record_failure(9, 0); // now offline; backoff from 500ms base
        assert!(h.should_skip(9, 1));
        let retry_at = h.get(9).unwrap().retry_at_ms;
        assert!(retry_at >= 250 && retry_at <= 500, "retry_at={retry_at}");
        assert!(!h.should_skip(9, retry_at), "probe allowed after backoff");
        // Suspects are never skipped.
        let mut h = table();
        h.record_failure(4, 0);
        assert_eq!(h.state(4), HealthState::Suspect);
        assert!(!h.should_skip(4, 1));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = HealthConfig {
            base_backoff_ms: 100,
            max_backoff_ms: 1_000,
            ..HealthConfig::default()
        };
        let mut h = PeerHealth::new(cfg);
        let mut prev = 0;
        for i in 0..10 {
            h.record_failure(1, 0);
            let at = h.get(1).unwrap().retry_at_ms;
            if i >= 2 {
                assert!(at >= prev / 2, "backoff should not collapse");
            }
            assert!(at <= 1_000, "backoff must cap at max: {at}");
            prev = at;
        }
    }

    #[test]
    fn ewma_tracks_latency() {
        let mut h = table();
        h.record_success(2, 0, 100.0);
        assert_eq!(h.get(2).unwrap().ewma_latency_ms, Some(100.0));
        h.record_success(2, 1, 200.0);
        let e = h.get(2).unwrap().ewma_latency_ms.unwrap();
        assert!(e > 100.0 && e < 200.0, "ewma moved toward new sample: {e}");
    }

    #[test]
    fn stale_reconnects_count_without_touching_liveness() {
        let mut h = table();
        h.record_success(5, 0, 10.0);
        h.record_stale_reconnect(5);
        h.record_stale_reconnect(5);
        let e = h.get(5).unwrap();
        assert_eq!(e.stale_reconnects, 2);
        assert_eq!(e.consecutive_failures, 0, "staleness is not a failure");
        assert_eq!(e.state, HealthState::Healthy);
        assert!(!h.should_skip(5, 1));
    }

    #[test]
    fn busy_replies_never_touch_the_liveness_machine() {
        let mut h = table();
        h.record_busy(6, 0, 200);
        h.record_busy(6, 10, 200);
        h.record_busy(6, 20, 200);
        let e = h.get(6).unwrap();
        assert_eq!(e.busy_strikes, 3);
        assert_eq!(e.consecutive_failures, 0, "busy is not a failure");
        assert_eq!(e.state, HealthState::Healthy);
        assert!(!h.should_skip(6, 21), "health never gates a busy peer");
    }

    #[test]
    fn single_busy_never_throttles_repeats_do_inside_the_window() {
        let mut h = table();
        h.record_busy(8, 0, 1_000);
        for salt in 0..64 {
            assert!(!h.busy_throttled(8, 10, salt), "one strike is free");
        }
        h.record_busy(8, 10, 1_000);
        h.record_busy(8, 20, 1_000);
        let hits = (0..64)
            .filter(|&salt| h.busy_throttled(8, 30, salt))
            .count();
        assert!(hits > 0, "repeated busy must sometimes skip");
        assert!(hits < 64, "probability stays below 1 — peer is re-probed");
        // Outside the advertised window the throttle lapses.
        assert!(!h.busy_throttled(8, 5_000, 1));
        // Deterministic in salt.
        assert_eq!(h.busy_throttled(8, 30, 7), h.busy_throttled(8, 30, 7));
        assert_eq!(h.busy_throttled_count(30), 1);
        assert_eq!(h.busy_throttled_count(5_000), 0);
    }

    #[test]
    fn success_clears_the_busy_throttle() {
        let mut h = table();
        h.record_busy(2, 0, 10_000);
        h.record_busy(2, 1, 10_000);
        h.record_success(2, 5, 3.0);
        let e = h.get(2).unwrap();
        assert_eq!(e.busy_strikes, 0);
        assert_eq!(e.busy_until_ms, 0);
        assert!(!h.busy_throttled(2, 6, 1));
    }

    #[test]
    fn retry_policy_delay_is_capped_and_jittered_deterministically() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_delay_ms: 100,
            max_delay_ms: 400,
        };
        let d1 = p.delay(1, 42);
        assert_eq!(d1, p.delay(1, 42), "same salt, same delay");
        assert!(d1.as_millis() >= 50 && d1.as_millis() <= 100, "{d1:?}");
        let d4 = p.delay(4, 42);
        assert!(d4.as_millis() <= 400, "cap applies: {d4:?}");
    }
}
