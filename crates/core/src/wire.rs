//! Framing for the live TCP runtime and the durable store.
//!
//! Frames are length-prefixed JSON: a 4-byte big-endian length followed
//! by the serialized value. JSON is verbose on the wire, but the live
//! runtime exists to *validate* protocol behaviour over real sockets
//! (the analog of the paper's 8-machine cluster run), where its
//! debuggability outweighs compactness; the simulator models wire sizes
//! with the paper's Table 2 constants regardless.
//!
//! The durable store ([`crate::durable`]) reuses the same framing with
//! a CRC-32 of the body inserted between length and payload
//! ([`write_crc_frame`] / [`read_crc_frame`]): a torn or bit-flipped
//! record on disk must be *detected*, not parsed into garbage, because
//! recovery truncates the log at the first bad frame instead of
//! erroring out.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{self, Read, Write};

/// Refuse frames bigger than this (64 MiB) — corrupt or hostile input.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Bit 31 of the length prefix marks a *correlated* frame:
/// `[len|FLAG u32 BE][corr_id u64 BE][body]`. The flag bit is far above
/// [`MAX_FRAME_BYTES`], so a legacy reader that receives a correlated
/// frame rejects it loudly as oversized instead of parsing garbage,
/// while new readers ([`read_any_frame_sized`]) accept both shapes on
/// one stream — that asymmetry is the whole compat story: old frames
/// keep working everywhere, new frames fail safe on old nodes.
pub const CORRELATED_FLAG: u32 = 1 << 31;

/// Bit 30 of the length prefix marks a correlated frame that also
/// carries *request metadata* — a remaining-deadline budget and a
/// priority class — between the correlation id and the body:
/// `[len|CORRELATED_FLAG|META_FLAG][corr_id u64][deadline_ms u32][class u8][body]`.
/// The same generational trick as [`CORRELATED_FLAG`] applies one bit
/// down: bit 30 is still far above [`MAX_FRAME_BYTES`], so every
/// pre-metadata reader — [`read_frame`] *and* [`read_any_frame_sized`],
/// which masks only bit 31 — rejects a metadata frame loudly as
/// oversized instead of parsing the 5 metadata bytes as body. Only
/// [`read_any_frame_meta_sized`] masks both bits.
pub const META_FLAG: u32 = 1 << 30;

/// On-wire sentinel in the deadline field meaning "no deadline
/// propagated" (the sender runs on plain timeouts).
const NO_DEADLINE: u32 = u32::MAX;

/// Bytes of request metadata between correlation id and body.
const META_BYTES: usize = 5;

/// Initial buffer reservation when reading a frame body. Bounds the
/// allocation a lying length prefix can force before any body byte
/// arrives; honest frames larger than this grow the buffer as data
/// streams in.
const READ_CHUNK_BYTES: usize = 64 << 10;

/// Largest serialization scratch buffer a thread keeps between frames.
/// An occasional outsized frame (a big anti-entropy reply) still
/// serializes fine; its buffer just is not retained.
const SCRATCH_RETAIN_BYTES: usize = 1 << 20;

thread_local! {
    /// Per-thread scratch for frame bodies, reused across writes so the
    /// hot senders — the gossip loop batching a whole exchange into one
    /// frame, the server workers answering it — stop allocating and
    /// freeing a body vector for every message.
    static SCRATCH: std::cell::RefCell<Vec<u8>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Serialize `value` into the thread's reused scratch buffer and hand
/// the body bytes to `f`. Falls back to a one-off allocation if the
/// scratch is already borrowed (a serializer that itself writes frames).
fn with_serialized<T: Serialize + ?Sized, R>(
    value: &T,
    f: impl FnOnce(&[u8]) -> io::Result<R>,
) -> io::Result<R> {
    SCRATCH.with(|cell| {
        let Ok(mut buf) = cell.try_borrow_mut() else {
            let body = serde_json::to_vec(value)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            return f(&body);
        };
        buf.clear();
        serde_json::to_writer(&mut *buf, value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let result = f(&buf);
        if buf.capacity() > SCRATCH_RETAIN_BYTES {
            *buf = Vec::new();
        }
        result
    })
}

/// Write one value as a frame. Returns the total bytes written
/// (length prefix + body), so callers can account wire traffic.
pub fn write_frame<T: Serialize + ?Sized>(w: &mut impl Write, value: &T) -> io::Result<usize> {
    with_serialized(value, |body| {
        if body.len() > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame exceeds maximum size",
            ));
        }
        w.write_all(&(body.len() as u32).to_be_bytes())?;
        w.write_all(body)?;
        w.flush()?;
        Ok(4 + body.len())
    })
}

/// Read one frame. `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame<T: DeserializeOwned>(r: &mut impl Read) -> io::Result<Option<T>> {
    Ok(read_frame_sized(r)?.map(|(value, _)| value))
}

/// Read one frame, also returning the total bytes consumed (length
/// prefix + body). `Ok(None)` on clean EOF at a frame boundary; a
/// connection that dies *inside* the length prefix is an error, not a
/// clean EOF. Correlated frames are rejected here (their flagged prefix
/// reads as oversized) — use [`read_any_frame_sized`] on streams that
/// may carry both.
pub fn read_frame_sized<T: DeserializeOwned>(r: &mut impl Read) -> io::Result<Option<(T, usize)>> {
    let mut len_buf = [0u8; 4];
    if !fill_exact(r, &mut len_buf, "truncated length prefix")? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds maximum size",
        ));
    }
    let value = read_body(r, len)?;
    Ok(Some((value, 4 + len)))
}

/// Fill `buf` completely from `r`, retrying `Interrupted`. Returns
/// `false` on a clean EOF before the first byte; EOF after partial
/// progress is an `UnexpectedEof` labeled `what`.
fn fill_exact(r: &mut impl Read, buf: &mut [u8], what: &str) -> io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    what.to_string(),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Read and parse a frame body of trusted-checked length `len`. The
/// length prefix is untrusted: a peer can claim 64 MiB in one small
/// packet, so the buffer grows with the bytes that actually arrive
/// instead of pre-allocating the claimed size.
fn read_body<T: DeserializeOwned>(r: &mut impl Read, len: usize) -> io::Result<T> {
    let mut body = Vec::with_capacity(len.min(READ_CHUNK_BYTES));
    let got = r.take(len as u64).read_to_end(&mut body)?;
    if got < len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "truncated frame body",
        ));
    }
    serde_json::from_slice(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

// ----------------------------------------------------------------------
// Correlated frames (multiplexed RPC streams)
// ----------------------------------------------------------------------

/// One frame off a stream that may carry both framing generations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame<T> {
    /// An uncorrelated frame from the original protocol (gossip
    /// conversations, old nodes).
    Legacy(T),
    /// A correlated frame: the id ties a reply back to the concurrent
    /// request that asked for it, so many in-flight RPCs can share one
    /// stream and replies may arrive in any order.
    Correlated(u64, T),
}

impl<T> Frame<T> {
    /// The payload, discarding any correlation id.
    pub fn into_value(self) -> T {
        match self {
            Frame::Legacy(v) | Frame::Correlated(_, v) => v,
        }
    }

    /// The correlation id, if this frame carried one.
    pub fn corr_id(&self) -> Option<u64> {
        match self {
            Frame::Legacy(_) => None,
            Frame::Correlated(id, _) => Some(*id),
        }
    }
}

/// Write one value as a correlated frame:
/// `[len|CORRELATED_FLAG u32 BE][corr_id u64 BE][body]`. Returns the
/// total bytes written (12 + body).
pub fn write_correlated_frame<T: Serialize + ?Sized>(
    w: &mut impl Write,
    corr_id: u64,
    value: &T,
) -> io::Result<usize> {
    with_serialized(value, |body| {
        if body.len() > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame exceeds maximum size",
            ));
        }
        w.write_all(&((body.len() as u32) | CORRELATED_FLAG).to_be_bytes())?;
        w.write_all(&corr_id.to_be_bytes())?;
        w.write_all(body)?;
        w.flush()?;
        Ok(4 + 8 + body.len())
    })
}

/// Read one frame of either generation. `Ok(None)` on clean EOF at a
/// frame boundary; dying inside the prefix, the correlation id, or the
/// body is an error. The size check applies to the *masked* length, so
/// correlated frames get the same 64 MiB bound as legacy ones.
pub fn read_any_frame_sized<T: DeserializeOwned>(
    r: &mut impl Read,
) -> io::Result<Option<(Frame<T>, usize)>> {
    let mut len_buf = [0u8; 4];
    if !fill_exact(r, &mut len_buf, "truncated length prefix")? {
        return Ok(None);
    }
    let raw = u32::from_be_bytes(len_buf);
    let correlated = raw & CORRELATED_FLAG != 0;
    let len = (raw & !CORRELATED_FLAG) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds maximum size",
        ));
    }
    let corr_id = if correlated {
        let mut id_buf = [0u8; 8];
        if !fill_exact(r, &mut id_buf, "truncated correlation id")? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated correlation id",
            ));
        }
        Some(u64::from_be_bytes(id_buf))
    } else {
        None
    };
    let value = read_body(r, len)?;
    Ok(Some(match corr_id {
        Some(id) => (Frame::Correlated(id, value), 4 + 8 + len),
        None => (Frame::Legacy(value), 4 + len),
    }))
}

// ----------------------------------------------------------------------
// Metadata frames (deadline propagation + priority classes)
// ----------------------------------------------------------------------

/// Priority class of a request, carried in the metadata header and used
/// by the server's admission control to decide what to shed first.
/// Order matters: shedding walks from the bottom of this enum up —
/// Background is sacrificed before Control, and Interactive work is
/// only refused when nothing lower is left to evict.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Priority {
    /// A human is waiting: search and proxy-search RPCs.
    Interactive,
    /// Keeps the community coherent: gossip exchanges and stats scrapes.
    Control,
    /// Can always run later: replica pushes.
    Background,
}

impl Priority {
    /// Every class, in shed order (last is shed first).
    pub const ALL: [Priority; 3] = [
        Priority::Interactive,
        Priority::Control,
        Priority::Background,
    ];

    /// The single metadata byte for this class.
    pub fn to_wire(self) -> u8 {
        match self {
            Priority::Interactive => 0,
            Priority::Control => 1,
            Priority::Background => 2,
        }
    }

    /// Decode a metadata class byte. `None` for bytes from a future
    /// protocol revision — the reader fails safe instead of guessing.
    pub fn from_wire(byte: u8) -> Option<Priority> {
        match byte {
            0 => Some(Priority::Interactive),
            1 => Some(Priority::Control),
            2 => Some(Priority::Background),
            _ => None,
        }
    }
}

/// Request metadata carried by a [`META_FLAG`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Remaining deadline budget when the frame was written, in ms.
    /// `None` means the sender propagated no deadline (plain timeout).
    pub deadline_ms: Option<u32>,
    /// Priority class the sender claims for this request.
    pub priority: Priority,
}

impl FrameMeta {
    /// Metadata claiming `priority` with no propagated deadline.
    pub fn new(priority: Priority) -> Self {
        Self {
            deadline_ms: None,
            priority,
        }
    }

    /// Metadata claiming `priority` with `deadline_ms` of budget left.
    pub fn with_deadline(priority: Priority, deadline_ms: u32) -> Self {
        Self {
            deadline_ms: Some(deadline_ms),
            priority,
        }
    }
}

/// Write one value as a correlated *metadata* frame:
/// `[len|CORRELATED_FLAG|META_FLAG][corr_id u64][deadline_ms u32][class u8][body]`,
/// all integers big-endian. Returns the total bytes written
/// (17 + body). Readers older than [`read_any_frame_meta_sized`] reject
/// this frame as oversized — fail safe, never misparse.
pub fn write_meta_frame<T: Serialize + ?Sized>(
    w: &mut impl Write,
    corr_id: u64,
    meta: FrameMeta,
    value: &T,
) -> io::Result<usize> {
    with_serialized(value, |body| {
        if body.len() > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame exceeds maximum size",
            ));
        }
        w.write_all(&((body.len() as u32) | CORRELATED_FLAG | META_FLAG).to_be_bytes())?;
        w.write_all(&corr_id.to_be_bytes())?;
        w.write_all(&meta.deadline_ms.unwrap_or(NO_DEADLINE).to_be_bytes())?;
        w.write_all(&[meta.priority.to_wire()])?;
        w.write_all(body)?;
        w.flush()?;
        Ok(4 + 8 + META_BYTES + body.len())
    })
}

/// Read one frame of *any* generation — legacy, correlated, or
/// correlated-with-metadata — plus the metadata if the frame carried
/// some and the total bytes consumed. This is the server-side reader:
/// it masks both flag bits, so it accepts every frame shape ever
/// written, while older readers reject metadata frames as oversized.
/// A metadata flag without the correlated flag, or an unknown class
/// byte, is `InvalidData` — the frame is from no protocol we speak.
pub fn read_any_frame_meta_sized<T: DeserializeOwned>(
    r: &mut impl Read,
) -> io::Result<Option<(Frame<T>, Option<FrameMeta>, usize)>> {
    let mut len_buf = [0u8; 4];
    if !fill_exact(r, &mut len_buf, "truncated length prefix")? {
        return Ok(None);
    }
    let raw = u32::from_be_bytes(len_buf);
    let correlated = raw & CORRELATED_FLAG != 0;
    let has_meta = raw & META_FLAG != 0;
    let len = (raw & !(CORRELATED_FLAG | META_FLAG)) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds maximum size",
        ));
    }
    if has_meta && !correlated {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "metadata frame without correlation id",
        ));
    }
    let corr_id = if correlated {
        let mut id_buf = [0u8; 8];
        if !fill_exact(r, &mut id_buf, "truncated correlation id")? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated correlation id",
            ));
        }
        Some(u64::from_be_bytes(id_buf))
    } else {
        None
    };
    let meta = if has_meta {
        let mut meta_buf = [0u8; META_BYTES];
        if !fill_exact(r, &mut meta_buf, "truncated frame metadata")? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated frame metadata",
            ));
        }
        let deadline = u32::from_be_bytes(meta_buf[..4].try_into().unwrap());
        let priority = Priority::from_wire(meta_buf[4]).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "unknown priority class byte")
        })?;
        Some(FrameMeta {
            deadline_ms: if deadline == NO_DEADLINE {
                None
            } else {
                Some(deadline)
            },
            priority,
        })
    } else {
        None
    };
    let value = read_body(r, len)?;
    let header = 4 + if correlated { 8 } else { 0 } + if has_meta { META_BYTES } else { 0 };
    Ok(Some(match corr_id {
        Some(id) => (Frame::Correlated(id, value), meta, header + len),
        None => (Frame::Legacy(value), meta, header + len),
    }))
}

// ----------------------------------------------------------------------
// CRC-framed records (durable store)
// ----------------------------------------------------------------------

/// CRC-32 (ISO-HDLC polynomial, reflected — the zlib/PNG variant),
/// implemented in-tree so the store adds no dependency.
pub fn crc32(data: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    static TABLE: [u32; 256] = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Why a CRC frame failed to read — recovery treats every variant as
/// "the log ends here", but tests and metrics want to know which.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrcFrameError {
    /// The stream ended inside the header or body (torn write).
    Torn,
    /// Header and body arrived whole but the checksum does not match
    /// (bit rot, or a torn write that landed on old file contents).
    BadChecksum,
    /// The length prefix is impossible (larger than the frame cap).
    BadLength,
    /// The body checksummed clean but did not deserialize (a frame from
    /// a future or corrupt schema).
    BadBody,
}

/// Result of reading one CRC frame.
#[derive(Debug)]
pub enum CrcFrame<T> {
    /// A valid frame and its on-disk size (header + body).
    Ok(T, usize),
    /// Clean EOF at a frame boundary.
    Eof,
    /// The frame could not be trusted; the reader should truncate here.
    Corrupt(CrcFrameError),
}

/// Write one value as a CRC frame: `[len u32][crc32 u32][body]`, both
/// integers big-endian, CRC over the body bytes. Returns bytes written.
pub fn write_crc_frame<T: Serialize + ?Sized>(w: &mut impl Write, value: &T) -> io::Result<usize> {
    with_serialized(value, |body| {
        if body.len() > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame exceeds maximum size",
            ));
        }
        w.write_all(&(body.len() as u32).to_be_bytes())?;
        w.write_all(&crc32(body).to_be_bytes())?;
        w.write_all(body)?;
        Ok(8 + body.len())
    })
}

/// Serialize one value into CRC-frame bytes (for callers that need the
/// raw frame, e.g. to place crash points between partial writes).
pub fn crc_frame_bytes<T: Serialize + ?Sized>(value: &T) -> io::Result<Vec<u8>> {
    let body =
        serde_json::to_vec(value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds maximum size",
        ));
    }
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(&body).to_be_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Read one CRC frame. Unlike [`read_frame`], nothing here is an
/// `io::Error` except a genuine transport error from the reader itself:
/// torn tails, bad checksums, and undecodable bodies all come back as
/// [`CrcFrame::Corrupt`] so the caller can truncate-and-continue.
pub fn read_crc_frame<T: DeserializeOwned>(r: &mut impl Read) -> io::Result<CrcFrame<T>> {
    let mut header = [0u8; 8];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(CrcFrame::Eof),
            Ok(0) => return Ok(CrcFrame::Corrupt(CrcFrameError::Torn)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header[..4].try_into().unwrap()) as usize;
    let crc = u32::from_be_bytes(header[4..].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return Ok(CrcFrame::Corrupt(CrcFrameError::BadLength));
    }
    let mut body = Vec::with_capacity(len.min(READ_CHUNK_BYTES));
    let got = r.take(len as u64).read_to_end(&mut body)?;
    if got < len {
        return Ok(CrcFrame::Corrupt(CrcFrameError::Torn));
    }
    if crc32(&body) != crc {
        return Ok(CrcFrame::Corrupt(CrcFrameError::BadChecksum));
    }
    match serde_json::from_slice(&body) {
        Ok(value) => Ok(CrcFrame::Ok(value, 8 + len)),
        Err(_) => Ok(CrcFrame::Corrupt(CrcFrameError::BadBody)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Sample {
        a: u32,
        b: Vec<String>,
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        let x = Sample {
            a: 1,
            b: vec!["one".into()],
        };
        let y = Sample { a: 2, b: vec![] };
        write_frame(&mut buf, &x).unwrap();
        write_frame(&mut buf, &y).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame::<Sample>(&mut r).unwrap(), Some(x));
        assert_eq!(read_frame::<Sample>(&mut r).unwrap(), Some(y));
        assert_eq!(read_frame::<Sample>(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn scratch_reuse_never_leaks_between_frames() {
        let x = Sample {
            a: 1,
            b: vec!["one".into()],
        };
        let mut a = Vec::new();
        write_frame(&mut a, &x).unwrap();
        // A larger intervening frame reuses (and grows) the same
        // scratch; the next small frame must come out byte-identical.
        let big = Sample {
            a: 2,
            b: vec!["y".repeat(256); 8],
        };
        let mut tmp = Vec::new();
        write_frame(&mut tmp, &big).unwrap();
        let mut b = Vec::new();
        write_frame(&mut b, &x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Sample { a: 1, b: vec![] }).unwrap();
        buf.truncate(buf.len() - 1);
        let mut r = buf.as_slice();
        assert!(read_frame::<Sample>(&mut r).is_err());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = buf.as_slice();
        assert!(read_frame::<Sample>(&mut r).is_err());
    }

    #[test]
    fn lying_length_prefix_fails_without_preallocation() {
        // A one-packet liar: claims 32 MiB, sends 5 bytes, hangs up.
        // Must fail with UnexpectedEof after buffering only what
        // arrived — not allocate the claimed 32 MiB up front (the
        // incremental read caps the initial reservation).
        let mut buf = Vec::new();
        buf.extend_from_slice(&(32u32 << 20).to_be_bytes());
        buf.extend_from_slice(b"abcde");
        let mut r = buf.as_slice();
        let err = read_frame::<Sample>(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn large_honest_frame_roundtrips() {
        // Bigger than the initial reservation chunk: the buffer must
        // grow with the arriving bytes.
        let big = Sample {
            a: 7,
            b: vec!["x".repeat(1024); 128],
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &big).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame::<Sample>(&mut r).unwrap(), Some(big));
    }

    #[test]
    fn correlated_frame_roundtrips_with_id() {
        let mut buf = Vec::new();
        let x = Sample {
            a: 3,
            b: vec!["mux".into()],
        };
        let n = write_correlated_frame(&mut buf, 0xDEAD_BEEF_u64, &x).unwrap();
        assert_eq!(n, buf.len());
        let mut r = buf.as_slice();
        let (frame, consumed) = read_any_frame_sized::<Sample>(&mut r)
            .unwrap()
            .expect("one frame");
        assert_eq!(frame, Frame::Correlated(0xDEAD_BEEF, x));
        assert_eq!(consumed, n);
        assert!(read_any_frame_sized::<Sample>(&mut r).unwrap().is_none());
    }

    #[test]
    fn mixed_generations_share_one_stream() {
        let mut buf = Vec::new();
        let old = Sample { a: 1, b: vec![] };
        let new = Sample {
            a: 2,
            b: vec!["corr".into()],
        };
        write_frame(&mut buf, &old).unwrap();
        write_correlated_frame(&mut buf, 7, &new).unwrap();
        write_frame(&mut buf, &old).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(
            read_any_frame_sized::<Sample>(&mut r).unwrap().unwrap().0,
            Frame::Legacy(Sample { a: 1, b: vec![] })
        );
        assert_eq!(
            read_any_frame_sized::<Sample>(&mut r).unwrap().unwrap().0,
            Frame::Correlated(7, new)
        );
        assert_eq!(
            read_any_frame_sized::<Sample>(&mut r).unwrap().unwrap().0,
            Frame::Legacy(old)
        );
        assert!(read_any_frame_sized::<Sample>(&mut r).unwrap().is_none());
    }

    #[test]
    fn legacy_reader_rejects_correlated_frames_loudly() {
        // The flag bit makes the prefix read as oversized on an old
        // node: a hard InvalidData, never a silently-misparsed body.
        let mut buf = Vec::new();
        write_correlated_frame(&mut buf, 1, &Sample { a: 1, b: vec![] }).unwrap();
        let err = read_frame::<Sample>(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_correlation_id_is_an_error() {
        let mut buf = Vec::new();
        write_correlated_frame(&mut buf, 42, &Sample { a: 1, b: vec![] }).unwrap();
        // Cut inside the 8-byte correlation id (after the 4-byte prefix).
        for cut in 4..12 {
            let err = read_any_frame_sized::<Sample>(&mut &buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn correlated_oversized_masked_length_rejected() {
        // Flagged prefix whose *masked* length still exceeds the cap.
        let mut buf = Vec::new();
        let claimed = (MAX_FRAME_BYTES as u32 + 1) | CORRELATED_FLAG;
        buf.extend_from_slice(&claimed.to_be_bytes());
        buf.extend_from_slice(&7u64.to_be_bytes());
        let err = read_any_frame_sized::<Sample>(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn meta_frame_roundtrips_with_deadline_and_class() {
        let mut buf = Vec::new();
        let x = Sample {
            a: 4,
            b: vec!["meta".into()],
        };
        let meta = FrameMeta::with_deadline(Priority::Interactive, 1_500);
        let n = write_meta_frame(&mut buf, 0xFACE_u64, meta, &x).unwrap();
        assert_eq!(n, buf.len());
        let mut r = buf.as_slice();
        let (frame, got_meta, consumed) = read_any_frame_meta_sized::<Sample>(&mut r)
            .unwrap()
            .expect("one frame");
        assert_eq!(frame, Frame::Correlated(0xFACE, x));
        assert_eq!(got_meta, Some(meta));
        assert_eq!(consumed, n);
        assert!(read_any_frame_meta_sized::<Sample>(&mut r)
            .unwrap()
            .is_none());
    }

    #[test]
    fn meta_frame_without_deadline_uses_sentinel() {
        let mut buf = Vec::new();
        let meta = FrameMeta::new(Priority::Background);
        write_meta_frame(&mut buf, 1, meta, &Sample { a: 1, b: vec![] }).unwrap();
        // Bytes 12..16 hold the deadline: the no-deadline sentinel.
        assert_eq!(&buf[12..16], &u32::MAX.to_be_bytes());
        let (_, got_meta, _) = read_any_frame_meta_sized::<Sample>(&mut buf.as_slice())
            .unwrap()
            .unwrap();
        assert_eq!(got_meta, Some(meta));
        assert_eq!(got_meta.unwrap().deadline_ms, None);
    }

    #[test]
    fn all_generations_share_one_stream_under_the_meta_reader() {
        let mut buf = Vec::new();
        let old = Sample { a: 1, b: vec![] };
        write_frame(&mut buf, &old).unwrap();
        write_correlated_frame(&mut buf, 7, &old).unwrap();
        write_meta_frame(&mut buf, 8, FrameMeta::new(Priority::Control), &old).unwrap();
        let mut r = buf.as_slice();
        let (f, m, _) = read_any_frame_meta_sized::<Sample>(&mut r)
            .unwrap()
            .unwrap();
        assert_eq!((f.corr_id(), m), (None, None));
        let (f, m, _) = read_any_frame_meta_sized::<Sample>(&mut r)
            .unwrap()
            .unwrap();
        assert_eq!((f.corr_id(), m), (Some(7), None));
        let (f, m, _) = read_any_frame_meta_sized::<Sample>(&mut r)
            .unwrap()
            .unwrap();
        assert_eq!(f.corr_id(), Some(8));
        assert_eq!(m, Some(FrameMeta::new(Priority::Control)));
        assert!(read_any_frame_meta_sized::<Sample>(&mut r)
            .unwrap()
            .is_none());
    }

    #[test]
    fn pre_meta_readers_reject_meta_frames_loudly() {
        // Bit 30 reads as oversized on both the legacy reader and the
        // correlated reader (which masks only bit 31): a hard
        // InvalidData, never 5 metadata bytes misparsed as body.
        let mut buf = Vec::new();
        let meta = FrameMeta::with_deadline(Priority::Interactive, 9);
        write_meta_frame(&mut buf, 3, meta, &Sample { a: 1, b: vec![] }).unwrap();
        let err = read_frame::<Sample>(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = read_any_frame_sized::<Sample>(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_meta_header_is_an_error() {
        let mut buf = Vec::new();
        let meta = FrameMeta::with_deadline(Priority::Control, 100);
        write_meta_frame(&mut buf, 5, meta, &Sample { a: 2, b: vec![] }).unwrap();
        // Cut anywhere inside the correlation id or the 5 metadata
        // bytes (after the 4-byte prefix, before the body at 17).
        for cut in 4..17 {
            let err = read_any_frame_meta_sized::<Sample>(&mut &buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn unknown_priority_class_byte_rejected() {
        let mut buf = Vec::new();
        write_meta_frame(
            &mut buf,
            5,
            FrameMeta::new(Priority::Interactive),
            &Sample { a: 2, b: vec![] },
        )
        .unwrap();
        buf[16] = 0x7F; // class byte from a future protocol revision
        let err = read_any_frame_meta_sized::<Sample>(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn meta_flag_without_correlation_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(2u32 | META_FLAG).to_be_bytes());
        buf.extend_from_slice(b"{}");
        let err = read_any_frame_meta_sized::<Sample>(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn priority_wire_bytes_roundtrip_and_reject_unknown() {
        for p in Priority::ALL {
            assert_eq!(Priority::from_wire(p.to_wire()), Some(p));
        }
        assert_eq!(Priority::from_wire(3), None);
        assert_eq!(Priority::from_wire(0xFF), None);
    }

    #[test]
    fn crc32_known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc_frame_roundtrip_and_clean_eof() {
        let mut buf = Vec::new();
        let x = Sample {
            a: 1,
            b: vec!["one".into()],
        };
        let n = write_crc_frame(&mut buf, &x).unwrap();
        assert_eq!(n, buf.len());
        let mut r = buf.as_slice();
        match read_crc_frame::<Sample>(&mut r).unwrap() {
            CrcFrame::Ok(got, size) => {
                assert_eq!(got, x);
                assert_eq!(size, n);
            }
            other => panic!("expected Ok, got {other:?}"),
        }
        assert!(matches!(
            read_crc_frame::<Sample>(&mut r).unwrap(),
            CrcFrame::Eof
        ));
    }

    #[test]
    fn crc_frame_torn_tail_is_corrupt_not_error() {
        let mut buf = Vec::new();
        write_crc_frame(
            &mut buf,
            &Sample {
                a: 9,
                b: vec!["abc".into()],
            },
        )
        .unwrap();
        for cut in [buf.len() - 1, buf.len() / 2, 3] {
            let mut r = &buf[..cut];
            match read_crc_frame::<Sample>(&mut r).unwrap() {
                CrcFrame::Corrupt(CrcFrameError::Torn) => {}
                other => panic!("cut at {cut}: expected Torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn crc_frame_bit_flip_detected() {
        let mut buf = Vec::new();
        write_crc_frame(
            &mut buf,
            &Sample {
                a: 5,
                b: vec!["zz".into()],
            },
        )
        .unwrap();
        // Flip one bit in every body position: the checksum must catch
        // each one (header flips surface as BadChecksum, BadLength, or
        // Torn depending on which field they land in — never Ok).
        for i in 8..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x10;
            let mut r = bad.as_slice();
            match read_crc_frame::<Sample>(&mut r).unwrap() {
                CrcFrame::Corrupt(CrcFrameError::BadChecksum) => {}
                other => panic!("flip at {i}: expected BadChecksum, got {other:?}"),
            }
        }
    }

    #[test]
    fn crc_frame_lying_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        let mut r = buf.as_slice();
        assert!(matches!(
            read_crc_frame::<Sample>(&mut r).unwrap(),
            CrcFrame::Corrupt(CrcFrameError::BadLength)
        ));
    }

    #[test]
    fn malformed_json_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(b"not j");
        let mut r = buf.as_slice();
        assert!(read_frame::<Sample>(&mut r).is_err());
    }
}
