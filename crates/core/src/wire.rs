//! Framing for the live TCP runtime.
//!
//! Frames are length-prefixed JSON: a 4-byte big-endian length followed
//! by the serialized value. JSON is verbose on the wire, but the live
//! runtime exists to *validate* protocol behaviour over real sockets
//! (the analog of the paper's 8-machine cluster run), where its
//! debuggability outweighs compactness; the simulator models wire sizes
//! with the paper's Table 2 constants regardless.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{self, Read, Write};

/// Refuse frames bigger than this (64 MiB) — corrupt or hostile input.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Initial buffer reservation when reading a frame body. Bounds the
/// allocation a lying length prefix can force before any body byte
/// arrives; honest frames larger than this grow the buffer as data
/// streams in.
const READ_CHUNK_BYTES: usize = 64 << 10;

/// Write one value as a frame. Returns the total bytes written
/// (length prefix + body), so callers can account wire traffic.
pub fn write_frame<T: Serialize + ?Sized>(w: &mut impl Write, value: &T) -> io::Result<usize> {
    let body = serde_json::to_vec(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds maximum size",
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(4 + body.len())
}

/// Read one frame. `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame<T: DeserializeOwned>(r: &mut impl Read) -> io::Result<Option<T>> {
    Ok(read_frame_sized(r)?.map(|(value, _)| value))
}

/// Read one frame, also returning the total bytes consumed (length
/// prefix + body). `Ok(None)` on clean EOF at a frame boundary; a
/// connection that dies *inside* the length prefix is an error, not a
/// clean EOF.
pub fn read_frame_sized<T: DeserializeOwned>(
    r: &mut impl Read,
) -> io::Result<Option<(T, usize)>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds maximum size",
        ));
    }
    // The length prefix is untrusted: a peer can claim 64 MiB in one
    // small packet. Grow the buffer with the bytes that actually
    // arrive instead of pre-allocating the claimed size.
    let mut body = Vec::with_capacity(len.min(READ_CHUNK_BYTES));
    let got = r.take(len as u64).read_to_end(&mut body)?;
    if got < len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "truncated frame body",
        ));
    }
    let value = serde_json::from_slice(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(Some((value, 4 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Sample {
        a: u32,
        b: Vec<String>,
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        let x = Sample { a: 1, b: vec!["one".into()] };
        let y = Sample { a: 2, b: vec![] };
        write_frame(&mut buf, &x).unwrap();
        write_frame(&mut buf, &y).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame::<Sample>(&mut r).unwrap(), Some(x));
        assert_eq!(read_frame::<Sample>(&mut r).unwrap(), Some(y));
        assert_eq!(read_frame::<Sample>(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Sample { a: 1, b: vec![] }).unwrap();
        buf.truncate(buf.len() - 1);
        let mut r = buf.as_slice();
        assert!(read_frame::<Sample>(&mut r).is_err());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = buf.as_slice();
        assert!(read_frame::<Sample>(&mut r).is_err());
    }

    #[test]
    fn lying_length_prefix_fails_without_preallocation() {
        // A one-packet liar: claims 32 MiB, sends 5 bytes, hangs up.
        // Must fail with UnexpectedEof after buffering only what
        // arrived — not allocate the claimed 32 MiB up front (the
        // incremental read caps the initial reservation).
        let mut buf = Vec::new();
        buf.extend_from_slice(&(32u32 << 20).to_be_bytes());
        buf.extend_from_slice(b"abcde");
        let mut r = buf.as_slice();
        let err = read_frame::<Sample>(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn large_honest_frame_roundtrips() {
        // Bigger than the initial reservation chunk: the buffer must
        // grow with the arriving bytes.
        let big = Sample { a: 7, b: vec!["x".repeat(1024); 128] };
        let mut buf = Vec::new();
        write_frame(&mut buf, &big).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame::<Sample>(&mut r).unwrap(), Some(big));
    }

    #[test]
    fn malformed_json_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(b"not j");
        let mut r = buf.as_slice();
        assert!(read_frame::<Sample>(&mut r).is_err());
    }
}
