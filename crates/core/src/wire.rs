//! Framing for the live TCP runtime.
//!
//! Frames are length-prefixed JSON: a 4-byte big-endian length followed
//! by the serialized value. JSON is verbose on the wire, but the live
//! runtime exists to *validate* protocol behaviour over real sockets
//! (the analog of the paper's 8-machine cluster run), where its
//! debuggability outweighs compactness; the simulator models wire sizes
//! with the paper's Table 2 constants regardless.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{self, Read, Write};

/// Refuse frames bigger than this (64 MiB) — corrupt or hostile input.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Write one value as a frame.
pub fn write_frame<T: Serialize>(w: &mut impl Write, value: &T) -> io::Result<()> {
    let body = serde_json::to_vec(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds maximum size",
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Read one frame. `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame<T: DeserializeOwned>(r: &mut impl Read) -> io::Result<Option<T>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds maximum size",
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let value = serde_json::from_slice(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(Some(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Sample {
        a: u32,
        b: Vec<String>,
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        let x = Sample { a: 1, b: vec!["one".into()] };
        let y = Sample { a: 2, b: vec![] };
        write_frame(&mut buf, &x).unwrap();
        write_frame(&mut buf, &y).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame::<Sample>(&mut r).unwrap(), Some(x));
        assert_eq!(read_frame::<Sample>(&mut r).unwrap(), Some(y));
        assert_eq!(read_frame::<Sample>(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Sample { a: 1, b: vec![] }).unwrap();
        buf.truncate(buf.len() - 1);
        let mut r = buf.as_slice();
        assert!(read_frame::<Sample>(&mut r).is_err());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = buf.as_slice();
        assert!(read_frame::<Sample>(&mut r).is_err());
    }

    #[test]
    fn malformed_json_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(b"not j");
        let mut r = buf.as_slice();
        assert!(read_frame::<Sample>(&mut r).is_err());
    }
}
