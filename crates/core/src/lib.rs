//! # PlanetP
//!
//! A content search and retrieval infrastructure for peer-to-peer
//! information sharing communities, reproducing Cuenca-Acuna et al.,
//! *"PlanetP: Using Gossiping to Build Content Addressable Peer-to-Peer
//! Information Sharing Communities"* (HPDC 2003).
//!
//! Every peer publishes XML documents into a local data store, indexes
//! their text, and gossips a Bloom filter summary of its vocabulary.
//! The replicated *global directory* (membership + one filter per peer)
//! lets any peer answer two kinds of queries against the communal
//! store:
//!
//! - **exhaustive search** (§5.1): a conjunction of keys, answered by
//!   contacting every peer whose filter may match;
//! - **ranked search** (§5.2): TFxIPF — a distributed approximation of
//!   TFxIDF vector-space ranking — with an adaptive heuristic deciding
//!   how many peers to contact.
//!
//! Fresh content is additionally findable within seconds through the
//! consistent-hashing *information brokerage* (§4), and applications
//! can register *persistent queries* (§5.1) to be called back when
//! matching content appears.
//!
//! ## Quickstart
//!
//! ```
//! use planetp::{Community, PublishOptions};
//!
//! let mut community = Community::new();
//! let alice = community.add_peer("alice");
//! let bob = community.add_peer("bob");
//!
//! community
//!     .publish(
//!         alice,
//!         r#"<doc><title>Epidemic algorithms</title>
//!            <body>randomized gossip spreads updates reliably</body></doc>"#,
//!         PublishOptions::default(),
//!     )
//!     .unwrap();
//!
//! // Bob searches the whole community by content.
//! let hits = community.search_ranked(bob, "gossip algorithms", 10).unwrap();
//! assert_eq!(hits.results.len(), 1);
//! # let _ = hits;
//! ```
//!
//! Two runtimes are provided:
//! - [`Community`]: in-process, for applications embedding PlanetP and
//!   for tests — peers exchange data through memory.
//! - [`live::LiveNode`]: each peer is a real TCP endpoint; gossip,
//!   anti-entropy, and search RPCs cross the network. This is the
//!   analog of the paper's Java prototype used to validate the
//!   simulator.

pub mod admission;
pub mod community;
pub mod conn;
pub mod datastore;
pub mod durable;
pub mod error;
pub mod faults;
pub mod health;
pub mod live;
pub mod persistent;
pub mod pool;
pub mod query;
pub mod wire;

pub use admission::{Admission, AdmissionConfig, AdmissionGate, AdmissionState};
pub use community::{Community, PeerHandle, RankedHits};
pub use conn::{is_connection_level, ConnConfig, ConnMetrics, ConnPool, RpcConnInfo};
pub use datastore::{content_hash, DocumentRecord, LocalDataStore, PublishOptions};
pub use durable::{
    DurableConfig, DurableStore, NodeState, PersistedPeer, PersistedReplica, RecoveryInfo,
    StoreMetrics, WalRecord,
};
pub use error::PlanetPError;
pub use faults::{
    flip_tail_bit, truncate_tail, CrashPoint, Direction, FaultInjector, FaultPlan, FaultRules,
    FaultStats, StoreFaultRules,
};
pub use health::{
    HealthConfig, HealthState, HealthTransition, PeerHealth, PeerHealthEntry, RetryPolicy,
};
pub use live::{
    scrape_stats, FanoutConfig, LiveConfig, LiveHit, LiveMsg, LiveNode, LiveSearchResult,
    NodeStatsSnapshot, SearchCoverage, SearchDoc,
};
pub use persistent::{Notification, PersistentQueryId, PersistentQueryRegistry};
pub use planetp_obs::{MetricsSnapshot, Registry};
pub use planetp_replica::{ReplicaAd, ReplicaConfig};
pub use pool::{ScopedJob, WorkerPool};
pub use query::{parse_query, QueryTerms};
pub use wire::{FrameMeta, Priority};
