//! `planetp` — a command-line peer for live PlanetP communities.
//!
//! Run one peer per terminal; the first founds the community, the rest
//! bootstrap off any existing member:
//!
//! ```sh
//! planetp --id 0 --interval-ms 1000                 # founder; prints its address
//! planetp --id 1 --bootstrap 0@127.0.0.1:40001      # joiner
//! ```
//!
//! With `--data-dir <dir>` the peer persists its identity, documents,
//! version pair, and learned directory to a snapshot + WAL store in
//! `<dir>`; kill it and restart with the same flag and it recovers its
//! state, re-announces above its previous versions, and catches up via
//! anti-entropy instead of rejoining cold.
//!
//! Commands on stdin:
//!
//! ```text
//! publish <xml>        publish an XML document (or: publish @file.xml)
//! search <query>       ranked TFxIPF search
//! grep <query>         exhaustive conjunctive search
//! proxy <id> <query>   ranked search via peer <id> (proxy search)
//! peers                show the local directory copy
//! stats [json|<id>]    this node's metrics (or scrape peer <id>)
//! help / quit
//! ```
//!
//! There is also a standalone subcommand that scrapes any running node
//! without joining the community:
//!
//! ```sh
//! planetp stats 127.0.0.1:40001          # human-readable
//! planetp stats 127.0.0.1:40001 --json   # MetricsSnapshot JSON
//! ```

use planetp::live::{LiveConfig, LiveNode};
use planetp::{AdmissionConfig, ConnConfig, DurableConfig, ReplicaConfig};
use planetp_gossip::GossipConfig;
use std::io::{BufRead, Write};
use std::time::Duration;

struct Args {
    id: u32,
    bootstrap: Option<(u32, String)>,
    interval_ms: u64,
    data_dir: Option<String>,
    no_conn_pool: bool,
    conn_idle_ms: Option<u64>,
    replicate: bool,
    replica_capacity_mb: Option<u64>,
    admission_queue: Option<usize>,
    no_shedding: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut id = None;
    let mut bootstrap = None;
    let mut interval_ms = 30_000u64;
    let mut data_dir = None;
    let mut no_conn_pool = false;
    let mut conn_idle_ms = None;
    let mut replicate = false;
    let mut replica_capacity_mb = None;
    let mut admission_queue = None;
    let mut no_shedding = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--id" => {
                id = Some(
                    argv.get(i + 1)
                        .ok_or("--id needs a value")?
                        .parse::<u32>()
                        .map_err(|e| format!("bad --id: {e}"))?,
                );
                i += 2;
            }
            "--bootstrap" => {
                let v = argv.get(i + 1).ok_or("--bootstrap needs id@addr")?;
                let (pid, addr) = v.split_once('@').ok_or("--bootstrap format: <id>@<addr>")?;
                bootstrap = Some((
                    pid.parse::<u32>()
                        .map_err(|e| format!("bad peer id: {e}"))?,
                    addr.to_string(),
                ));
                i += 2;
            }
            "--interval-ms" => {
                interval_ms = argv
                    .get(i + 1)
                    .ok_or("--interval-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("bad interval: {e}"))?;
                i += 2;
            }
            "--data-dir" => {
                data_dir = Some(
                    argv.get(i + 1)
                        .ok_or("--data-dir needs a path")?
                        .to_string(),
                );
                i += 2;
            }
            "--no-conn-pool" => {
                no_conn_pool = true;
                i += 1;
            }
            "--replicate" => {
                replicate = true;
                i += 1;
            }
            "--replica-capacity-mb" => {
                replica_capacity_mb = Some(
                    argv.get(i + 1)
                        .ok_or("--replica-capacity-mb needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --replica-capacity-mb: {e}"))?,
                );
                i += 2;
            }
            "--admission-queue" => {
                admission_queue = Some(
                    argv.get(i + 1)
                        .ok_or("--admission-queue needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --admission-queue: {e}"))?,
                );
                i += 2;
            }
            "--no-shedding" => {
                no_shedding = true;
                i += 1;
            }
            "--conn-idle-ms" => {
                conn_idle_ms = Some(
                    argv.get(i + 1)
                        .ok_or("--conn-idle-ms needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --conn-idle-ms: {e}"))?,
                );
                i += 2;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args {
        id: id.ok_or("--id is required")?,
        bootstrap,
        interval_ms,
        data_dir,
        no_conn_pool,
        conn_idle_ms,
        replicate,
        replica_capacity_mb,
        admission_queue,
        no_shedding,
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("stats") {
        std::process::exit(stats_command(&argv[1..]));
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: planetp --id <n> [--bootstrap <id>@<addr>] [--interval-ms <ms>] \
                 [--data-dir <dir>] [--no-conn-pool] [--conn-idle-ms <ms>] \
                 [--replicate] [--replica-capacity-mb <mb>] \
                 [--admission-queue <n>] [--no-shedding]\n\
                 \x20      planetp stats <addr> [--json]"
            );
            std::process::exit(2);
        }
    };
    let config = LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: args.interval_ms,
            max_interval_ms: args.interval_ms * 2,
            slowdown_ms: args.interval_ms / 6,
            ..GossipConfig::default()
        },
        io_timeout: Duration::from_secs(5),
        seed: u64::from(args.id) + 0xC11,
        durable: args.data_dir.as_deref().map(DurableConfig::at),
        conn: {
            let mut c = ConnConfig {
                enabled: !args.no_conn_pool,
                ..ConnConfig::default()
            };
            if let Some(ms) = args.conn_idle_ms {
                c.idle_timeout = Duration::from_millis(ms);
            }
            c
        },
        replica: {
            let mut r = if args.replicate {
                ReplicaConfig::enabled()
            } else {
                ReplicaConfig::default()
            };
            if let Some(mb) = args.replica_capacity_mb {
                r.capacity_bytes = mb << 20;
            }
            r
        },
        admission: {
            let mut a = AdmissionConfig::default();
            if let Some(n) = args.admission_queue {
                a.queue_capacity = n;
            }
            if args.no_shedding {
                a.shedding = false;
            }
            a
        },
        ..LiveConfig::default()
    };
    let node = match LiveNode::start(args.id, config, args.bootstrap) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    if let Some(info) = node.recovery_info() {
        if info.recovered {
            println!(
                "recovered from {} (snapshot: {}, wal records: {}{}); \
                 announcing versions {:?}",
                args.data_dir.as_deref().unwrap_or("?"),
                if info.snapshot_loaded { "yes" } else { "no" },
                info.wal_replays,
                if info.truncated_tail {
                    ", torn tail truncated"
                } else {
                    ""
                },
                node.announced_versions(),
            );
        }
    }
    println!("peer {} listening on {}", node.id(), node.addr());
    println!(
        "bootstrap others with: --bootstrap {}@{}",
        node.id(),
        node.addr()
    );
    repl(&node);
}

fn repl(node: &LiveNode) {
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("planetp> ");
        let _ = out.flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            return;
        }
        let line = line.trim();
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "" => {}
            "quit" | "exit" => return,
            "help" => {
                println!(
                    "publish <xml>|@file  search <query>  grep <query>  \
                     proxy <id> <query>  peers  stats [json|<id>]  quit"
                );
            }
            "publish" => {
                let xml = if let Some(path) = rest.strip_prefix('@') {
                    match std::fs::read_to_string(path) {
                        Ok(s) => s,
                        Err(e) => {
                            println!("cannot read {path}: {e}");
                            continue;
                        }
                    }
                } else {
                    rest.to_string()
                };
                match node.publish(&xml) {
                    Ok(id) => println!("published as doc {id}"),
                    Err(e) => println!("publish failed: {e}"),
                }
            }
            "search" => match node.search_ranked(rest, 10) {
                Ok(r) => {
                    for h in &r.hits {
                        println!(
                            "{:.3}  peer {} doc {}: {}",
                            h.score,
                            h.peer,
                            h.doc,
                            trim(&h.xml)
                        );
                    }
                    warn_coverage(&r.coverage);
                }
                Err(e) => println!("search failed: {e}"),
            },
            "grep" => match node.search_exhaustive(rest) {
                Ok(r) => {
                    for h in &r.hits {
                        println!("peer {} doc {}: {}", h.peer, h.doc, trim(&h.xml));
                    }
                    warn_coverage(&r.coverage);
                }
                Err(e) => println!("search failed: {e}"),
            },
            "proxy" => {
                let (pid, query) = match rest.split_once(' ') {
                    Some(x) => x,
                    None => {
                        println!("usage: proxy <peer id> <query>");
                        continue;
                    }
                };
                match pid.parse::<u32>() {
                    Ok(pid) => match node.search_via_proxy(pid, query, 10) {
                        Ok(r) => {
                            for h in &r.hits {
                                println!(
                                    "{:.3}  peer {} doc {}: {}",
                                    h.score,
                                    h.peer,
                                    h.doc,
                                    trim(&h.xml)
                                );
                            }
                            warn_coverage(&r.coverage);
                        }
                        Err(e) => println!("proxy search failed: {e}"),
                    },
                    Err(e) => println!("bad peer id: {e}"),
                }
            }
            "peers" => {
                println!("directory: {} peers", node.directory_size());
            }
            "stats" => match rest.trim() {
                "" => print!("{}", node.metrics_snapshot().render_human()),
                "json" => println!("{}", node.metrics_snapshot().to_json()),
                pid => match pid.parse::<u32>() {
                    Ok(pid) => match node.fetch_stats(pid) {
                        Ok(snap) => print!("{}", snap.render_human()),
                        Err(e) => println!("stats fetch failed: {e}"),
                    },
                    Err(_) => println!("usage: stats [json|<peer id>]"),
                },
            },
            other => println!("unknown command {other:?}; try help"),
        }
    }
}

/// `planetp stats <addr> [--json]`: scrape a running node's metrics
/// over the `GetStats` RPC without joining the community.
fn stats_command(args: &[String]) -> i32 {
    let mut addr = None;
    let mut json = false;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            other if addr.is_none() && !other.starts_with('-') => {
                addr = Some(other.to_string());
            }
            other => {
                eprintln!("error: unknown argument {other}");
                return 2;
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("usage: planetp stats <addr> [--json]");
        return 2;
    };
    match planetp::scrape_stats(&addr, Duration::from_secs(5)) {
        Ok(snap) => {
            if json {
                println!("{}", snap.to_json());
            } else {
                print!("{}", snap.render_human());
            }
            0
        }
        Err(e) => {
            eprintln!("failed to scrape {addr}: {e}");
            1
        }
    }
}

/// Tell the user when a result set is missing part of the community.
fn warn_coverage(c: &planetp::live::SearchCoverage) {
    if c.recovered_via_replicas > 0 {
        println!(
            "note: {} hit(s) served from replicas of offline peers",
            c.recovered_via_replicas
        );
    }
    if !c.is_complete() {
        println!(
            "warning: partial results — {} of {} attempted peers answered \
             ({} failed, {} skipped as offline, {} shed as overloaded)",
            c.peers_contacted,
            c.peers_attempted(),
            c.peers_failed,
            c.peers_skipped,
            c.peers_shed
        );
    }
}

fn trim(xml: &str) -> String {
    let flat: String = xml.split_whitespace().collect::<Vec<_>>().join(" ");
    if flat.len() > 72 {
        format!("{}...", &flat[..72])
    } else {
        flat
    }
}
