//! Deterministic fault injection for the live TCP runtime.
//!
//! The paper evaluates PlanetP under heavy churn (§6.3): peers leave
//! mid-gossip and offline contacts cost a detection timeout. The
//! simulator models this directly; the live runtime needs faults
//! injected at the socket layer. A [`FaultInjector`] sits between
//! [`crate::live::LiveNode`] and its streams and — driven by a seeded
//! RNG — refuses connections, delays I/O, drops connections mid-frame,
//! truncates frames, or corrupts frame bytes, per direction
//! (outbound = connections this node initiates, inbound = connections
//! it accepts).
//!
//! The injector is compiled into the runtime (not just tests): a node
//! configured without one pays a single `Option` check per operation.
//! All probabilistic choices come from one seeded RNG so a given seed
//! yields a reproducible fault schedule (modulo thread interleaving,
//! which only reorders draws).
//!
//! Beyond the socket layer, the injector also covers the durable
//! store's write path ([`crate::durable`]): every snapshot/WAL
//! operation passes named [`CrashPoint`]s (between serialize, write,
//! fsync, and rename), and the injector can simulate a process death
//! at any of them — the operation stops exactly there, leaving the
//! torn on-disk state a real crash would, and the store refuses
//! further writes as a dead process would. Helpers to truncate or
//! bit-flip a file tail complete the torn-write matrix for recovery
//! tests that mangle logs *between* process lifetimes.

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which side of a connection an operation is on, from the perspective
/// of the node holding the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Connections this node initiates (gossip sends, search RPCs).
    Outbound,
    /// Connections this node accepts on its listener.
    Inbound,
}

/// Per-direction fault probabilities. All probabilities are in
/// `[0, 1]` and are rolled independently per operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultRules {
    /// Probability a connection attempt (outbound) or accepted
    /// connection (inbound) is refused outright.
    pub refuse_connection: f64,
    /// Probability an operation is delayed by `delay_ms` first.
    pub delay: f64,
    /// The injected delay.
    pub delay_ms: u64,
    /// Probability a frame write stops halfway and the connection
    /// errors out (the peer sees a truncated body).
    pub drop_mid_frame: f64,
    /// Probability a frame write silently omits its final bytes and
    /// reports success (a crashed sender: the peer sees a short body,
    /// this side never learns).
    pub truncate_frame: f64,
    /// Probability frame body bytes are flipped before sending (the
    /// peer sees well-framed garbage).
    pub corrupt_frame: f64,
    /// Probability a correlated reply is silently never written (the
    /// server did the work, the client waits out its timeout on an
    /// otherwise healthy stream — a half-open exchange).
    pub drop_reply: f64,
    /// Probability a correlated reply goes out under a perturbed
    /// correlation id (a stale or misrouted reply: the receiving mux
    /// discards it as unknown and the real waiter times out).
    pub stale_corr_id: f64,
    /// Probability the server's admission gate forcibly sheds an
    /// inbound request — the caller receives `LiveMsg::Busy` exactly as
    /// under real overload. Lets tests drive the overload paths
    /// (uncharged health, busy throttle, `peers_shed` coverage)
    /// deterministically without saturating a real queue.
    pub force_busy: f64,
}

/// A full fault plan: one rule set per direction.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Faults on connections this node initiates.
    pub outbound: FaultRules,
    /// Faults on connections this node accepts.
    pub inbound: FaultRules,
}

impl FaultPlan {
    /// The same rules in both directions.
    pub fn symmetric(rules: FaultRules) -> Self {
        Self {
            outbound: rules,
            inbound: rules,
        }
    }
}

/// A named point in the durable store's write path where a process can
/// die. The store calls [`FaultInjector::crash_check`] at each one; an
/// injected crash aborts the operation exactly there, leaving on-disk
/// state as a real kill would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Before any byte of a WAL record reaches the file.
    WalBeforeWrite,
    /// After the first half of a WAL record's frame is written (a torn
    /// record: the tail of the log fails its checksum on recovery).
    WalMidWrite,
    /// After the full record is written but before `fsync` (the bytes
    /// may or may not survive; on a real kill the page cache decides).
    WalBeforeSync,
    /// Before any byte of a snapshot reaches its temp file.
    SnapshotBeforeWrite,
    /// After half the snapshot's temp file is written (an invalid temp
    /// file that recovery must ignore).
    SnapshotMidWrite,
    /// After the temp file is complete but before it is fsynced.
    SnapshotBeforeSync,
    /// After fsync but before the atomic rename (old snapshot + full
    /// WAL still authoritative).
    SnapshotBeforeRename,
    /// After the rename but before the WAL is truncated (recovery sees
    /// the new snapshot plus records already folded into it — replay
    /// must be idempotent).
    WalBeforeTruncate,
}

impl CrashPoint {
    /// Every crash point, in write-path order (the crash-loop harness
    /// iterates these to cover the whole matrix).
    pub const ALL: [CrashPoint; 8] = [
        CrashPoint::WalBeforeWrite,
        CrashPoint::WalMidWrite,
        CrashPoint::WalBeforeSync,
        CrashPoint::SnapshotBeforeWrite,
        CrashPoint::SnapshotMidWrite,
        CrashPoint::SnapshotBeforeSync,
        CrashPoint::SnapshotBeforeRename,
        CrashPoint::WalBeforeTruncate,
    ];
}

/// Store-path fault rules: a probability that any given crash point
/// fires, checked independently per store operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreFaultRules {
    /// Probability a [`CrashPoint`] check simulates a process death.
    pub crash: f64,
}

/// One-shot armed crash state (deterministic harness control).
#[derive(Debug, Default)]
struct ArmedCrash {
    at: Mutex<Option<CrashPoint>>,
}

/// Counters of faults actually injected (for test assertions).
#[derive(Debug, Default)]
struct Counters {
    refused: AtomicU64,
    delayed: AtomicU64,
    dropped_mid_frame: AtomicU64,
    truncated: AtomicU64,
    corrupted: AtomicU64,
    dropped_replies: AtomicU64,
    stale_corr_ids: AtomicU64,
    crashes: AtomicU64,
    forced_busy: AtomicU64,
}

/// Snapshot of [`FaultInjector`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Connections refused.
    pub refused: u64,
    /// Operations delayed.
    pub delayed: u64,
    /// Frames dropped mid-write.
    pub dropped_mid_frame: u64,
    /// Frames silently truncated.
    pub truncated: u64,
    /// Frames corrupted.
    pub corrupted: u64,
    /// Correlated replies silently never written.
    pub dropped_replies: u64,
    /// Correlated replies sent under a perturbed id.
    pub stale_corr_ids: u64,
    /// Store-path crashes simulated.
    pub crashes: u64,
    /// Inbound requests forcibly shed with a `Busy` reply.
    pub forced_busy: u64,
}

impl FaultStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.refused
            + self.delayed
            + self.dropped_mid_frame
            + self.truncated
            + self.corrupted
            + self.dropped_replies
            + self.stale_corr_ids
            + self.crashes
            + self.forced_busy
    }
}

/// The injector. Wraps stream setup and frame I/O; see module docs.
pub struct FaultInjector {
    plan: FaultPlan,
    store: StoreFaultRules,
    armed: ArmedCrash,
    rng: Mutex<SmallRng>,
    counters: Counters,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("stats", &self.stats())
            .finish()
    }
}

impl FaultInjector {
    /// Build an injector with the given RNG seed and plan.
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        Self {
            plan,
            store: StoreFaultRules::default(),
            armed: ArmedCrash::default(),
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
            counters: Counters::default(),
        }
    }

    /// Add store-path fault rules (probabilistic crash points).
    pub fn with_store_rules(mut self, rules: StoreFaultRules) -> Self {
        self.store = rules;
        self
    }

    /// Arm a one-shot crash: the next [`Self::crash_check`] for exactly
    /// this point fires, once. Deterministic control for crash-loop
    /// harnesses that want to hit a *chosen* point.
    pub fn arm_crash(&self, point: CrashPoint) {
        *self.armed.at.lock() = Some(point);
    }

    /// Is a one-shot crash still armed (i.e. not yet consumed)?
    pub fn crash_armed(&self) -> bool {
        self.armed.at.lock().is_some()
    }

    /// The durable store calls this at every [`CrashPoint`]. `Err`
    /// means "the process just died here": the store aborts the
    /// operation mid-flight and poisons itself.
    pub fn crash_check(&self, point: CrashPoint) -> io::Result<()> {
        let armed = {
            let mut a = self.armed.at.lock();
            if *a == Some(point) {
                *a = None;
                true
            } else {
                false
            }
        };
        if armed || self.roll(self.store.crash) {
            self.counters.crashes.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other(format!("injected crash at {point:?}")));
        }
        Ok(())
    }

    fn rules(&self, dir: Direction) -> &FaultRules {
        match dir {
            Direction::Outbound => &self.plan.outbound,
            Direction::Inbound => &self.plan.inbound,
        }
    }

    fn roll(&self, p: f64) -> bool {
        p > 0.0 && self.rng.lock().random::<f64>() < p
    }

    /// Counters of injected faults so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            refused: self.counters.refused.load(Ordering::Relaxed),
            delayed: self.counters.delayed.load(Ordering::Relaxed),
            dropped_mid_frame: self.counters.dropped_mid_frame.load(Ordering::Relaxed),
            truncated: self.counters.truncated.load(Ordering::Relaxed),
            corrupted: self.counters.corrupted.load(Ordering::Relaxed),
            dropped_replies: self.counters.dropped_replies.load(Ordering::Relaxed),
            stale_corr_ids: self.counters.stale_corr_ids.load(Ordering::Relaxed),
            crashes: self.counters.crashes.load(Ordering::Relaxed),
            forced_busy: self.counters.forced_busy.load(Ordering::Relaxed),
        }
    }

    /// Should the server's admission gate forcibly shed this request?
    /// Rolled once per served frame; a `true` is counted and the caller
    /// replies `Busy` exactly as under real overload.
    pub fn force_busy(&self, dir: Direction) -> bool {
        if self.roll(self.rules(dir).force_busy) {
            self.counters.forced_busy.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Gate a connection: refuse with the configured probability (the
    /// caller treats the error exactly like a real refused connect) and
    /// otherwise optionally delay it.
    pub fn admit(&self, dir: Direction) -> io::Result<()> {
        let rules = *self.rules(dir);
        if self.roll(rules.refuse_connection) {
            self.counters.refused.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "injected connection refusal",
            ));
        }
        self.maybe_delay(&rules);
        Ok(())
    }

    fn maybe_delay(&self, rules: &FaultRules) {
        if rules.delay_ms > 0 && self.roll(rules.delay) {
            self.counters.delayed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(rules.delay_ms));
        }
    }

    /// Write one frame, possibly dropping mid-frame, truncating, or
    /// corrupting it. Mirrors [`crate::wire::write_frame`] framing and
    /// returns the bytes actually put on the wire.
    pub fn write_frame<T: Serialize + ?Sized>(
        &self,
        dir: Direction,
        w: &mut impl Write,
        value: &T,
    ) -> io::Result<usize> {
        let rules = *self.rules(dir);
        let mut body =
            serde_json::to_vec(value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if body.len() > crate::wire::MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame exceeds maximum size",
            ));
        }
        self.maybe_delay(&rules);
        let len = (body.len() as u32).to_be_bytes();
        if self.roll(rules.drop_mid_frame) {
            self.counters
                .dropped_mid_frame
                .fetch_add(1, Ordering::Relaxed);
            w.write_all(&len)?;
            w.write_all(&body[..body.len() / 2])?;
            let _ = w.flush();
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected mid-frame drop",
            ));
        }
        if self.roll(rules.truncate_frame) {
            self.counters.truncated.fetch_add(1, Ordering::Relaxed);
            let keep = body.len().saturating_sub(7.min(body.len()));
            w.write_all(&len)?;
            w.write_all(&body[..keep])?;
            w.flush()?;
            // Report success: a crashed sender never learns either.
            return Ok(4 + keep);
        }
        if self.roll(rules.corrupt_frame) {
            self.counters.corrupted.fetch_add(1, Ordering::Relaxed);
            let n = body.len();
            if n > 0 {
                // Flip bytes at deterministic-ish positions; xor with
                // 0xA5 guarantees the byte changes.
                let mut rng = self.rng.lock();
                for _ in 0..3.min(n) {
                    let i = rng.random_range(0..n);
                    body[i] ^= 0xA5;
                }
            }
        }
        w.write_all(&len)?;
        w.write_all(&body)?;
        w.flush()?;
        Ok(4 + body.len())
    }

    /// Write one *correlated* frame (see
    /// [`crate::wire::write_correlated_frame`]) through the same fault
    /// ladder as [`Self::write_frame`], plus the reply-path rules:
    /// `drop_reply` writes nothing and reports success (the processing
    /// side already did its work — only the reply vanishes), and
    /// `stale_corr_id` perturbs the correlation id so the receiving mux
    /// cannot route the reply.
    pub fn write_correlated_frame<T: Serialize + ?Sized>(
        &self,
        dir: Direction,
        w: &mut impl Write,
        corr_id: u64,
        value: &T,
    ) -> io::Result<usize> {
        let rules = *self.rules(dir);
        let mut body =
            serde_json::to_vec(value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if body.len() > crate::wire::MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame exceeds maximum size",
            ));
        }
        self.maybe_delay(&rules);
        if self.roll(rules.drop_reply) {
            self.counters
                .dropped_replies
                .fetch_add(1, Ordering::Relaxed);
            return Ok(0);
        }
        let corr_id = if self.roll(rules.stale_corr_id) {
            self.counters.stale_corr_ids.fetch_add(1, Ordering::Relaxed);
            corr_id ^ 0x5A5A_5A5A_5A5A_5A5A
        } else {
            corr_id
        };
        let len = ((body.len() as u32) | crate::wire::CORRELATED_FLAG).to_be_bytes();
        let id = corr_id.to_be_bytes();
        if self.roll(rules.drop_mid_frame) {
            self.counters
                .dropped_mid_frame
                .fetch_add(1, Ordering::Relaxed);
            w.write_all(&len)?;
            w.write_all(&id)?;
            w.write_all(&body[..body.len() / 2])?;
            let _ = w.flush();
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected mid-frame drop",
            ));
        }
        if self.roll(rules.truncate_frame) {
            self.counters.truncated.fetch_add(1, Ordering::Relaxed);
            let keep = body.len().saturating_sub(7.min(body.len()));
            w.write_all(&len)?;
            w.write_all(&id)?;
            w.write_all(&body[..keep])?;
            w.flush()?;
            // Report success: a crashed sender never learns either.
            return Ok(4 + 8 + keep);
        }
        if self.roll(rules.corrupt_frame) {
            self.counters.corrupted.fetch_add(1, Ordering::Relaxed);
            let n = body.len();
            if n > 0 {
                let mut rng = self.rng.lock();
                for _ in 0..3.min(n) {
                    let i = rng.random_range(0..n);
                    body[i] ^= 0xA5;
                }
            }
        }
        w.write_all(&len)?;
        w.write_all(&id)?;
        w.write_all(&body)?;
        w.flush()?;
        Ok(4 + 8 + body.len())
    }

    /// Write one correlated *metadata* frame (see
    /// [`crate::wire::write_meta_frame`]) through the request-path
    /// fault ladder: delay, mid-frame drop, silent truncation, and body
    /// corruption. The reply-only rules (`drop_reply`,
    /// `stale_corr_id`) do not apply — this is how requests leave a
    /// client, not how replies leave a server.
    pub fn write_meta_frame<T: Serialize + ?Sized>(
        &self,
        dir: Direction,
        w: &mut impl Write,
        corr_id: u64,
        meta: crate::wire::FrameMeta,
        value: &T,
    ) -> io::Result<usize> {
        let rules = *self.rules(dir);
        self.maybe_delay(&rules);
        if self.roll(rules.drop_mid_frame) {
            self.counters
                .dropped_mid_frame
                .fetch_add(1, Ordering::Relaxed);
            // Write the full header, half the body, then die — the
            // receiver sees a well-formed header and a torn body.
            let body = serde_json::to_vec(value)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let mut framed = Vec::new();
            crate::wire::write_meta_frame(&mut framed, corr_id, meta, value)?;
            let keep = framed.len() - body.len() / 2;
            w.write_all(&framed[..keep])?;
            let _ = w.flush();
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected mid-frame drop",
            ));
        }
        if self.roll(rules.truncate_frame) {
            self.counters.truncated.fetch_add(1, Ordering::Relaxed);
            let mut framed = Vec::new();
            let n = crate::wire::write_meta_frame(&mut framed, corr_id, meta, value)?;
            let keep = n.saturating_sub(7.min(n));
            w.write_all(&framed[..keep])?;
            w.flush()?;
            // Report success: a crashed sender never learns either.
            return Ok(keep);
        }
        if self.roll(rules.corrupt_frame) {
            self.counters.corrupted.fetch_add(1, Ordering::Relaxed);
            let mut framed = Vec::new();
            let n = crate::wire::write_meta_frame(&mut framed, corr_id, meta, value)?;
            let header = 17.min(n);
            if n > header {
                let mut rng = self.rng.lock();
                for _ in 0..3.min(n - header) {
                    let i = rng.random_range(header..n);
                    framed[i] ^= 0xA5;
                }
            }
            w.write_all(&framed)?;
            w.flush()?;
            return Ok(n);
        }
        crate::wire::write_meta_frame(w, corr_id, meta, value)
    }

    /// Read one frame of any framing generation — legacy, correlated,
    /// or correlated-with-metadata — plus its wire size, possibly after
    /// an injected delay. (Read-side corruption is covered by
    /// write-side faults on the other end.)
    pub fn read_any_frame_meta_sized<T: DeserializeOwned>(
        &self,
        dir: Direction,
        r: &mut impl Read,
    ) -> io::Result<Option<(crate::wire::Frame<T>, Option<crate::wire::FrameMeta>, usize)>> {
        let rules = *self.rules(dir);
        self.maybe_delay(&rules);
        crate::wire::read_any_frame_meta_sized(r)
    }

    /// Read one frame of either framing generation plus its wire size,
    /// possibly after an injected delay. (Read-side corruption is
    /// covered by write-side faults on the other end.)
    pub fn read_any_frame_sized<T: DeserializeOwned>(
        &self,
        dir: Direction,
        r: &mut impl Read,
    ) -> io::Result<Option<(crate::wire::Frame<T>, usize)>> {
        let rules = *self.rules(dir);
        self.maybe_delay(&rules);
        crate::wire::read_any_frame_sized(r)
    }

    /// Read one frame, possibly after an injected delay. (Read-side
    /// corruption is covered by write-side faults on the other end.)
    pub fn read_frame<T: DeserializeOwned>(
        &self,
        dir: Direction,
        r: &mut impl Read,
    ) -> io::Result<Option<T>> {
        Ok(self.read_frame_sized(dir, r)?.map(|(value, _)| value))
    }

    /// Read one frame plus its wire size, possibly after an injected
    /// delay.
    pub fn read_frame_sized<T: DeserializeOwned>(
        &self,
        dir: Direction,
        r: &mut impl Read,
    ) -> io::Result<Option<(T, usize)>> {
        let rules = *self.rules(dir);
        self.maybe_delay(&rules);
        crate::wire::read_frame_sized(r)
    }
}

// ----------------------------------------------------------------------
// Torn-write helpers (mangling files *between* process lifetimes)
// ----------------------------------------------------------------------

/// Truncate the last `n` bytes of a file (a crashed kernel or disk that
/// never persisted the tail). No-op on an empty file; truncating more
/// than the file holds empties it.
pub fn truncate_tail(path: &std::path::Path, n: u64) -> io::Result<()> {
    let len = std::fs::metadata(path)?.len();
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(len.saturating_sub(n))?;
    f.sync_all()
}

/// Flip one bit `offset_from_end` bytes before the end of a file (bit
/// rot in the tail — the most recently written, least re-read region).
/// No-op if the file is shorter than the offset.
pub fn flip_tail_bit(path: &std::path::Path, offset_from_end: u64) -> io::Result<()> {
    use std::io::{Seek, SeekFrom};
    let len = std::fs::metadata(path)?.len();
    if len <= offset_from_end {
        return Ok(());
    }
    let pos = len - 1 - offset_from_end;
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    f.seek(SeekFrom::Start(pos))?;
    let mut byte = [0u8; 1];
    f.read_exact(&mut byte)?;
    byte[0] ^= 0x40;
    f.seek(SeekFrom::Start(pos))?;
    f.write_all(&byte)?;
    f.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refusal_is_a_connection_refused_error() {
        let inj = FaultInjector::new(
            1,
            FaultPlan::symmetric(FaultRules {
                refuse_connection: 1.0,
                ..FaultRules::default()
            }),
        );
        let err = inj.admit(Direction::Outbound).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert_eq!(inj.stats().refused, 1);
    }

    #[test]
    fn clean_injector_roundtrips_frames() {
        let inj = FaultInjector::new(2, FaultPlan::default());
        let mut buf = Vec::new();
        inj.write_frame(Direction::Outbound, &mut buf, &[1u32, 2, 3])
            .unwrap();
        let mut r = buf.as_slice();
        let got: Option<Vec<u32>> = inj.read_frame(Direction::Inbound, &mut r).unwrap();
        assert_eq!(got, Some(vec![1, 2, 3]));
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn mid_frame_drop_leaves_truncated_bytes_and_errors() {
        let inj = FaultInjector::new(
            3,
            FaultPlan::symmetric(FaultRules {
                drop_mid_frame: 1.0,
                ..FaultRules::default()
            }),
        );
        let mut buf = Vec::new();
        let err = inj
            .write_frame(Direction::Outbound, &mut buf, &[9u32; 100])
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // The receiving side must see a framing error, not a value.
        let mut r = buf.as_slice();
        assert!(crate::wire::read_frame::<Vec<u32>>(&mut r).is_err());
        assert_eq!(inj.stats().dropped_mid_frame, 1);
    }

    #[test]
    fn truncation_reports_success_but_receiver_errors() {
        let inj = FaultInjector::new(
            4,
            FaultPlan::symmetric(FaultRules {
                truncate_frame: 1.0,
                ..FaultRules::default()
            }),
        );
        let mut buf = Vec::new();
        inj.write_frame(Direction::Outbound, &mut buf, &[9u32; 100])
            .unwrap();
        let mut r = buf.as_slice();
        assert!(crate::wire::read_frame::<Vec<u32>>(&mut r).is_err());
        assert_eq!(inj.stats().truncated, 1);
    }

    #[test]
    fn corruption_keeps_framing_but_breaks_decoding() {
        let inj = FaultInjector::new(
            5,
            FaultPlan::symmetric(FaultRules {
                corrupt_frame: 1.0,
                ..FaultRules::default()
            }),
        );
        let mut buf = Vec::new();
        inj.write_frame(Direction::Outbound, &mut buf, &[9u32; 100])
            .unwrap();
        let mut r = buf.as_slice();
        // Well-framed (length matches) but the JSON inside is garbage.
        let res = crate::wire::read_frame::<Vec<u32>>(&mut r);
        match res {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData),
            // An unlucky flip could still parse as different numbers;
            // either way nothing panics and framing stays intact.
            Ok(v) => assert!(v.is_some()),
        }
        assert_eq!(inj.stats().corrupted, 1);
    }

    #[test]
    fn dropped_reply_reports_success_but_writes_nothing() {
        let inj = FaultInjector::new(
            6,
            FaultPlan::symmetric(FaultRules {
                drop_reply: 1.0,
                ..FaultRules::default()
            }),
        );
        let mut buf = Vec::new();
        let n = inj
            .write_correlated_frame(Direction::Inbound, &mut buf, 9, &[1u32])
            .unwrap();
        assert_eq!(n, 0);
        assert!(buf.is_empty(), "dropped reply left bytes on the wire");
        assert_eq!(inj.stats().dropped_replies, 1);
    }

    #[test]
    fn stale_corr_id_changes_the_id_but_keeps_the_frame_valid() {
        let inj = FaultInjector::new(
            7,
            FaultPlan::symmetric(FaultRules {
                stale_corr_id: 1.0,
                ..FaultRules::default()
            }),
        );
        let mut buf = Vec::new();
        inj.write_correlated_frame(Direction::Inbound, &mut buf, 1234, &[5u32])
            .unwrap();
        let mut r = buf.as_slice();
        match crate::wire::read_any_frame_sized::<Vec<u32>>(&mut r).unwrap() {
            Some((crate::wire::Frame::Correlated(id, v), _)) => {
                assert_ne!(id, 1234, "id must be perturbed");
                assert_eq!(v, vec![5], "payload must survive intact");
            }
            other => panic!("expected a correlated frame, got {other:?}"),
        }
        assert_eq!(inj.stats().stale_corr_ids, 1);
    }

    #[test]
    fn clean_injector_roundtrips_correlated_frames() {
        let inj = FaultInjector::new(8, FaultPlan::default());
        let mut buf = Vec::new();
        inj.write_correlated_frame(Direction::Outbound, &mut buf, 77, &[1u32, 2])
            .unwrap();
        let mut r = buf.as_slice();
        let got = inj
            .read_any_frame_sized::<Vec<u32>>(Direction::Inbound, &mut r)
            .unwrap()
            .expect("one frame");
        assert_eq!(got.0, crate::wire::Frame::Correlated(77, vec![1, 2]));
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn clean_injector_roundtrips_meta_frames() {
        let inj = FaultInjector::new(12, FaultPlan::default());
        let meta = crate::wire::FrameMeta::with_deadline(crate::wire::Priority::Interactive, 250);
        let mut buf = Vec::new();
        inj.write_meta_frame(Direction::Outbound, &mut buf, 21, meta, &[3u32, 4])
            .unwrap();
        let mut r = buf.as_slice();
        let (frame, got_meta, _) = inj
            .read_any_frame_meta_sized::<Vec<u32>>(Direction::Inbound, &mut r)
            .unwrap()
            .expect("one frame");
        assert_eq!(frame, crate::wire::Frame::Correlated(21, vec![3, 4]));
        assert_eq!(got_meta, Some(meta));
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn truncated_meta_frame_reports_success_but_receiver_errors() {
        let inj = FaultInjector::new(
            13,
            FaultPlan::symmetric(FaultRules {
                truncate_frame: 1.0,
                ..FaultRules::default()
            }),
        );
        let meta = crate::wire::FrameMeta::new(crate::wire::Priority::Background);
        let mut buf = Vec::new();
        inj.write_meta_frame(Direction::Outbound, &mut buf, 1, meta, &[9u32; 50])
            .unwrap();
        let mut r = buf.as_slice();
        assert!(crate::wire::read_any_frame_meta_sized::<Vec<u32>>(&mut r).is_err());
        assert_eq!(inj.stats().truncated, 1);
    }

    #[test]
    fn force_busy_is_seeded_and_counted() {
        let plan = FaultPlan::symmetric(FaultRules {
            force_busy: 0.5,
            ..FaultRules::default()
        });
        let a = FaultInjector::new(77, plan);
        let b = FaultInjector::new(77, plan);
        let seq_a: Vec<bool> = (0..64).map(|_| a.force_busy(Direction::Inbound)).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.force_busy(Direction::Inbound)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|x| *x) && seq_a.iter().any(|x| !*x));
        let forced = seq_a.iter().filter(|x| **x).count() as u64;
        assert_eq!(a.stats().forced_busy, forced);
        // A zero-probability injector never forces.
        let clean = FaultInjector::new(1, FaultPlan::default());
        assert!((0..32).all(|_| !clean.force_busy(Direction::Inbound)));
    }

    #[test]
    fn armed_crash_fires_once_at_its_point_only() {
        let inj = FaultInjector::new(11, FaultPlan::default());
        inj.arm_crash(CrashPoint::SnapshotBeforeRename);
        // Other points pass untouched.
        assert!(inj.crash_check(CrashPoint::WalBeforeWrite).is_ok());
        assert!(inj.crash_armed());
        // The armed point fires exactly once.
        assert!(inj.crash_check(CrashPoint::SnapshotBeforeRename).is_err());
        assert!(!inj.crash_armed());
        assert!(inj.crash_check(CrashPoint::SnapshotBeforeRename).is_ok());
        assert_eq!(inj.stats().crashes, 1);
    }

    #[test]
    fn probabilistic_crashes_are_seeded() {
        let rules = StoreFaultRules { crash: 0.5 };
        let a = FaultInjector::new(42, FaultPlan::default()).with_store_rules(rules);
        let b = FaultInjector::new(42, FaultPlan::default()).with_store_rules(rules);
        let seq_a: Vec<bool> = (0..64)
            .map(|_| a.crash_check(CrashPoint::WalBeforeSync).is_ok())
            .collect();
        let seq_b: Vec<bool> = (0..64)
            .map(|_| b.crash_check(CrashPoint::WalBeforeSync).is_ok())
            .collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|ok| *ok) && seq_a.iter().any(|ok| !*ok));
    }

    #[test]
    fn tail_manglers_truncate_and_flip() {
        let dir = std::env::temp_dir().join(format!(
            "planetp-faults-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail.bin");
        std::fs::write(&path, [0u8; 16]).unwrap();
        truncate_tail(&path, 6).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 10);
        flip_tail_bit(&path, 0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[9], 0x40, "last byte flipped");
        assert!(bytes[..9].iter().all(|&b| b == 0));
        // Over-truncation empties; flipping an empty file is a no-op.
        truncate_tail(&path, 1_000).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        flip_tail_bit(&path, 0).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let plan = FaultPlan::symmetric(FaultRules {
            refuse_connection: 0.5,
            ..FaultRules::default()
        });
        let a = FaultInjector::new(99, plan);
        let b = FaultInjector::new(99, plan);
        let seq_a: Vec<bool> = (0..64)
            .map(|_| a.admit(Direction::Outbound).is_ok())
            .collect();
        let seq_b: Vec<bool> = (0..64)
            .map(|_| b.admit(Direction::Outbound).is_ok())
            .collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|ok| *ok) && seq_a.iter().any(|ok| !*ok));
    }
}
