//! Error type for the public API.

use std::fmt;

/// Errors surfaced by PlanetP operations.
#[derive(Debug)]
pub enum PlanetPError {
    /// The XML snippet could not be parsed.
    InvalidXml(planetp_index::xml::XmlError),
    /// The referenced peer does not exist in this community.
    UnknownPeer(String),
    /// The referenced document does not exist.
    UnknownDocument(u64),
    /// A network operation failed (live runtime).
    Network(std::io::Error),
    /// A peer sent a malformed frame (live runtime).
    Protocol(String),
}

impl fmt::Display for PlanetPError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanetPError::InvalidXml(e) => write!(f, "invalid XML: {e}"),
            PlanetPError::UnknownPeer(p) => write!(f, "unknown peer: {p}"),
            PlanetPError::UnknownDocument(d) => write!(f, "unknown document: {d}"),
            PlanetPError::Network(e) => write!(f, "network error: {e}"),
            PlanetPError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for PlanetPError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanetPError::InvalidXml(e) => Some(e),
            PlanetPError::Network(e) => Some(e),
            _ => None,
        }
    }
}

impl From<planetp_index::xml::XmlError> for PlanetPError {
    fn from(e: planetp_index::xml::XmlError) -> Self {
        PlanetPError::InvalidXml(e)
    }
}

impl From<std::io::Error> for PlanetPError {
    fn from(e: std::io::Error) -> Self {
        PlanetPError::Network(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = PlanetPError::UnknownPeer("zed".into());
        assert!(e.to_string().contains("zed"));
        let e = PlanetPError::UnknownDocument(42);
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn xml_error_converts_and_chains() {
        let xml_err = planetp_index::XmlDocument::parse("<a>").unwrap_err();
        let e: PlanetPError = xml_err.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
