//! A small scoped worker pool for query fan-out.
//!
//! §5.2 contacts ranked peers "in groups of m simultaneously"; the live
//! runtime dispatches each group's RPCs onto this pool so one slow peer
//! delays only its own slot, not the whole group. The pool is std +
//! parking_lot only (no new dependencies) and deliberately tiny: a
//! locked FIFO of boxed jobs, a condvar, and a fixed set of worker
//! threads shared by every search a node runs.
//!
//! [`WorkerPool::run_all`] is *scoped*: jobs may borrow from the
//! caller's stack, because the call blocks until every submitted job
//! has finished (panicked jobs included — a drop guard counts them
//! down). While blocked, the caller helps drain the queue, so progress
//! is guaranteed even when all workers are busy with other searches and
//! concurrent `run_all` calls cannot deadlock waiting on each other.

use std::collections::VecDeque;
use std::mem;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};
use planetp_obs::{names, Counter, Gauge, Registry};

type RawJob = Box<dyn FnOnce() + Send + 'static>;

/// A boxed job for [`WorkerPool::run_all`]; may borrow from the
/// caller's stack for the `'scope` of the call.
pub type ScopedJob<'scope, T> = Box<dyn FnOnce() -> T + Send + 'scope>;

struct Shared {
    queue: Mutex<VecDeque<RawJob>>,
    available: Condvar,
    shutdown: AtomicBool,
    queue_depth: Gauge,
    jobs_executed: Counter,
}

impl Shared {
    fn try_pop(&self) -> Option<RawJob> {
        let mut q = self.queue.lock();
        let job = q.pop_front();
        if job.is_some() {
            self.queue_depth.set(q.len() as i64);
        }
        job
    }

    fn run_job(&self, job: RawJob) {
        // A panicking job must not take down a worker (or the searching
        // thread, when the caller is helping). The wrapper's drop guard
        // still counts the job as finished during unwind.
        let _ = catch_unwind(AssertUnwindSafe(job));
        self.jobs_executed.inc();
    }
}

/// Completion latch for one `run_all` scope.
struct Latch {
    done: Mutex<usize>,
    all_done: Condvar,
}

/// Counts a job finished even if it panicked.
struct CompletionGuard<'a> {
    latch: &'a Latch,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        let mut done = self.latch.done.lock();
        *done += 1;
        self.latch.all_done.notify_all();
    }
}

/// A fixed-size pool of worker threads executing boxed jobs from a
/// shared FIFO. See the [module docs](self).
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Pool with `threads` workers and detached (invisible) metrics.
    pub fn new(threads: usize) -> Self {
        Self::build(threads, Gauge::detached(), Counter::detached())
    }

    /// Pool with `threads` workers recording queue depth and job counts
    /// into `registry` under the shared `pool.*` names.
    pub fn in_registry(threads: usize, registry: &Registry) -> Self {
        Self::build(
            threads,
            registry.gauge(names::POOL_QUEUE_DEPTH),
            registry.counter(names::POOL_JOBS),
        )
    }

    fn build(threads: usize, queue_depth: Gauge, jobs_executed: Counter) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_depth,
            jobs_executed,
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("planetp-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads (0 means `run_all` runs everything on
    /// the calling thread).
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue one fire-and-forget job. Unlike [`Self::run_all`]
    /// nothing blocks and nothing is scoped: the job runs on some
    /// worker whenever one frees up, so it must own its data
    /// (`'static`). With zero workers an executed job would never run —
    /// callers that rely on `execute` size their pool accordingly.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let mut q = self.shared.queue.lock();
        q.push_back(Box::new(job));
        self.shared.queue_depth.set(q.len() as i64);
        drop(q);
        self.shared.available.notify_one();
    }

    /// Run every job, in parallel across the workers and the calling
    /// thread, and return their results in submission order. Blocks
    /// until all jobs have finished — which is what lets jobs borrow
    /// from the caller's stack. A slot is `None` only if its job
    /// panicked.
    pub fn run_all<'scope, T: Send + 'scope>(
        &self,
        jobs: Vec<ScopedJob<'scope, T>>,
    ) -> Vec<Option<T>> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let latch = Latch {
            done: Mutex::new(0),
            all_done: Condvar::new(),
        };
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        {
            let mut q = self.shared.queue.lock();
            for (i, job) in jobs.into_iter().enumerate() {
                let slot = &results[i];
                let latch = &latch;
                let wrapped: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let _guard = CompletionGuard { latch };
                    let out = job();
                    *slot.lock() = Some(out);
                });
                // SAFETY: the job may borrow caller-stack data (`jobs`'
                // 'scope, plus `results` and `latch` above), so it is
                // not really 'static. It never outlives those borrows:
                // this function does not return until the latch has
                // counted all `n` wrappers finished, each wrapper
                // counts itself finished only as it is dropped (drop
                // guard, panic included), and a queued-but-never-run
                // wrapper is impossible while we wait — the pool cannot
                // be dropped mid-call (`&self` is borrowed) and the
                // caller-help loop below keeps draining the queue for
                // as long as this scope's jobs are outstanding. This
                // is the same erasure crossbeam's scoped threads rely
                // on.
                let raw = unsafe {
                    mem::transmute::<
                        Box<dyn FnOnce() + Send + '_>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(wrapped)
                };
                q.push_back(raw);
            }
            self.shared.queue_depth.set(q.len() as i64);
            self.shared.available.notify_all();
        }
        // Help while waiting: run queued jobs (ours or other scopes')
        // on this thread, but only for as long as this scope's own
        // jobs are outstanding. Helping exists so queued jobs of this
        // call cannot deadlock behind busy workers — once our latch is
        // full, draining other searches' RPCs here would only tie this
        // search's wall-clock to theirs.
        loop {
            if *latch.done.lock() >= n {
                break;
            }
            match self.shared.try_pop() {
                Some(job) => self.shared.run_job(job),
                None => break,
            }
        }
        // Wait for stragglers still running on workers.
        let mut done = latch.done.lock();
        while *done < n {
            latch.all_done.wait(&mut done);
        }
        drop(done);
        results.into_iter().map(|m| m.into_inner()).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.available.notify_all();
        let me = std::thread::current().id();
        for t in self.workers.drain(..) {
            // The pool can be dropped *from one of its own workers*: an
            // `execute`d job may hold the last strong reference to the
            // structure owning the pool. Joining that worker would be a
            // self-join deadlock; it exits on its own via the shutdown
            // flag once the current job returns.
            if t.thread().id() == me {
                continue;
            }
            let _ = t.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock();
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = q.pop_front() {
                    shared.queue_depth.set(q.len() as i64);
                    break job;
                }
                shared.available.wait(&mut q);
            }
        };
        shared.run_job(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::{Duration, Instant};

    fn jobs_from<'a, T: Send, F: FnOnce() -> T + Send + 'a>(fns: Vec<F>) -> Vec<ScopedJob<'a, T>> {
        fns.into_iter()
            .map(|f| Box::new(f) as ScopedJob<'a, T>)
            .collect()
    }

    #[test]
    fn results_in_submission_order() {
        let pool = WorkerPool::new(3);
        let jobs = jobs_from((0..20).map(|i| move || i * 2).collect());
        let out = pool.run_all(jobs);
        let got: Vec<i32> = out.into_iter().map(|r| r.expect("no panic")).collect();
        assert_eq!(got, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_may_borrow_caller_stack() {
        let pool = WorkerPool::new(2);
        let data: Vec<usize> = (0..100).collect();
        let total = AtomicUsize::new(0);
        let jobs = jobs_from(
            data.chunks(10)
                .map(|chunk| {
                    let total = &total;
                    move || {
                        total.fetch_add(chunk.iter().sum(), Ordering::Relaxed);
                    }
                })
                .collect(),
        );
        pool.run_all(jobs);
        assert_eq!(total.load(Ordering::Relaxed), (0..100).sum());
    }

    #[test]
    fn sleeping_jobs_overlap() {
        let pool = WorkerPool::new(4);
        let started = Instant::now();
        let jobs = jobs_from(
            (0..4)
                .map(|_| move || std::thread::sleep(Duration::from_millis(100)))
                .collect(),
        );
        pool.run_all(jobs);
        // 4×100 ms serialized would take 400 ms; overlapped, well less.
        assert!(
            started.elapsed() < Duration::from_millis(350),
            "jobs did not overlap: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn panicking_job_yields_none_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<ScopedJob<'_, usize>> = vec![
            Box::new(|| 1usize),
            Box::new(|| panic!("job panic (expected in test)")),
            Box::new(|| 3usize),
        ];
        let out = pool.run_all(jobs);
        assert_eq!(out[0], Some(1));
        assert_eq!(out[1], None);
        assert_eq!(out[2], Some(3));
        // The pool still works afterwards.
        let out = pool.run_all(jobs_from(vec![|| 7usize]));
        assert_eq!(out, vec![Some(7)]);
    }

    #[test]
    fn zero_workers_runs_on_caller() {
        let pool = WorkerPool::new(0);
        let jobs: Vec<ScopedJob<'_, i32>> = vec![Box::new(|| 1), Box::new(|| 2), Box::new(|| 3)];
        let out = pool.run_all(jobs);
        assert_eq!(out, vec![Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn empty_job_list() {
        let pool = WorkerPool::new(2);
        let out: Vec<Option<()>> = pool.run_all(Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn helper_stops_stealing_once_own_scope_is_done() {
        use std::sync::mpsc;
        use std::thread::ThreadId;

        // No workers: each run_all caller is its own only executor, so
        // any cross-scope execution can only come from the help loop.
        let pool = Arc::new(WorkerPool::new(0));
        let (start_tx, start_rx) = mpsc::channel::<()>();
        let (queued_tx, queued_rx) = mpsc::channel::<()>();
        let pool_b = Arc::clone(&pool);
        let b = std::thread::spawn(move || {
            let b_id = std::thread::current().id();
            start_rx.recv().expect("scope A started its job");
            let jobs: Vec<ScopedJob<'_, ThreadId>> = vec![
                Box::new(move || {
                    // Both of this scope's jobs were enqueued before
                    // this one ran; tell scope A, then keep this thread
                    // busy so the second job stays queued.
                    queued_tx.send(()).expect("A is waiting");
                    std::thread::sleep(Duration::from_millis(200));
                    std::thread::current().id()
                }),
                Box::new(|| std::thread::current().id()),
            ];
            let out = pool_b.run_all(jobs);
            (b_id, out[1].expect("no panic"))
        });
        // Scope A: its one job finishes while scope B's second job is
        // still queued. A's help loop must then exit, not steal it.
        let jobs: Vec<ScopedJob<'_, ()>> = vec![Box::new(move || {
            start_tx.send(()).expect("B is waiting");
            queued_rx.recv().expect("B enqueued its jobs");
        })];
        pool.run_all(jobs);
        let (b_id, second_ran_on) = b.join().expect("no panic");
        assert_eq!(
            second_ran_on, b_id,
            "helper stole a foreign job after its own scope completed"
        );
    }

    #[test]
    fn execute_runs_fire_and_forget_jobs() {
        let pool = WorkerPool::new(2);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let count = Arc::clone(&count);
            pool.execute(move || {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while count.load(Ordering::Relaxed) < 10 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(count.load(Ordering::Relaxed), 10, "executed jobs never ran");
    }

    #[test]
    fn executed_jobs_can_requeue_themselves() {
        // The server conn loop reschedules each connection as a fresh
        // job; model that shape: a job chain that re-executes itself
        // until a countdown hits zero.
        let pool = Arc::new(WorkerPool::new(1));
        let count = Arc::new(AtomicUsize::new(0));
        fn step(pool: &Arc<WorkerPool>, count: &Arc<AtomicUsize>, left: usize) {
            if left == 0 {
                return;
            }
            count.fetch_add(1, Ordering::Relaxed);
            let pool2 = Arc::clone(pool);
            let count2 = Arc::clone(count);
            let pool3 = Arc::clone(pool);
            pool3.execute(move || step(&pool2, &count2, left - 1));
        }
        step(&pool, &count, 25);
        let deadline = Instant::now() + Duration::from_secs(5);
        while count.load(Ordering::Relaxed) < 25 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(count.load(Ordering::Relaxed), 25);
    }

    #[test]
    fn dropping_pool_from_its_own_worker_does_not_deadlock() {
        // An executed job holding the last Arc to the pool drops it on
        // a worker thread; Drop must skip self-join and return.
        let pool = Arc::new(WorkerPool::new(2));
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let pool2 = Arc::clone(&pool);
        pool.execute(move || {
            drop(pool2); // may or may not be the last reference yet
            let _ = tx.send(());
        });
        rx.recv_timeout(Duration::from_secs(5)).expect("job ran");
        // Now make the *job* own the final reference: hand the Arc to a
        // job and drop ours first.
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let holder = Arc::clone(&pool);
        pool.execute(move || {
            std::thread::sleep(Duration::from_millis(50));
            drop(holder); // last strong ref released on this worker
            let _ = tx.send(());
        });
        drop(pool);
        rx.recv_timeout(Duration::from_secs(5))
            .expect("pool drop on own worker deadlocked");
    }

    #[test]
    fn concurrent_run_all_from_many_threads() {
        let pool = Arc::new(WorkerPool::new(2));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let jobs = jobs_from((0..8).map(|i| move || t * 100 + i).collect());
                let out = pool.run_all(jobs);
                for (i, r) in out.into_iter().enumerate() {
                    assert_eq!(r, Some(t * 100 + i as u64));
                }
            }));
        }
        for h in handles {
            h.join().expect("no panic");
        }
    }
}
