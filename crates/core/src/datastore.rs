//! The local data store (§2).
//!
//! "PlanetP maintains a local data store at each peer ... the basic
//! unit of storage is an XML document. ... Each published XML document
//! is stored in the local data store of the publishing peer." The store
//! indexes the document's text (plus tag names and attribute values)
//! into the peer's inverted index and keeps the Bloom filter summary of
//! the vocabulary up to date.

use planetp_bloom::{BloomFilter, BloomParams};
use planetp_index::{Analyzer, DocId, InvertedIndex, XmlDocument};
use std::collections::HashMap;

use crate::error::PlanetPError;

/// Options for publishing a document.
#[derive(Debug, Clone, Default)]
pub struct PublishOptions {
    /// Also publish the document's hottest terms to the information
    /// brokerage (as PFS does, §6). The community runtime handles the
    /// actual brokerage call; the option records intent and the hot
    /// fraction.
    pub broker_hot_terms: Option<f64>,
}

/// A stored document.
#[derive(Debug, Clone)]
pub struct DocumentRecord {
    /// Store-assigned id.
    pub id: DocId,
    /// The raw XML as published.
    pub xml: String,
    /// Analyzed terms (what the index holds).
    pub terms: Vec<String>,
    /// External links referenced by the document.
    pub links: Vec<String>,
    /// Stable content hash of the raw XML ([`content_hash`]). Equal
    /// across every copy of the document, on every peer, across
    /// restarts — replicated search results dedup on it.
    pub hash: u64,
}

/// FNV-1a (64-bit) over the raw XML bytes. Deterministic — unlike
/// `std`'s `DefaultHasher`, whose output may change between runs and
/// Rust versions — so the same document hashes identically on every
/// peer, which is what makes replica deduplication work on the wire.
pub fn content_hash(xml: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in xml.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// One peer's document store, inverted index, and filter summary.
#[derive(Debug)]
pub struct LocalDataStore {
    analyzer: Analyzer,
    bloom_params: BloomParams,
    docs: HashMap<DocId, DocumentRecord>,
    index: InvertedIndex,
    bloom: BloomFilter,
    /// Versions the Bloom filter summary; bumped on every change.
    bloom_version: u32,
    next_id: DocId,
}

impl LocalDataStore {
    /// Empty store with the paper's analyzer and filter parameters.
    pub fn new() -> Self {
        Self::with_params(Analyzer::new(), BloomParams::paper())
    }

    /// Empty store with custom analysis/summary parameters.
    pub fn with_params(analyzer: Analyzer, bloom_params: BloomParams) -> Self {
        Self {
            analyzer,
            bloom_params,
            docs: HashMap::new(),
            index: InvertedIndex::new(),
            bloom: BloomFilter::new(bloom_params),
            bloom_version: 0,
            next_id: 1,
        }
    }

    /// Publish an XML document: parse, index, summarize. Returns the
    /// assigned document id.
    pub fn publish(&mut self, xml: &str) -> Result<DocId, PlanetPError> {
        let doc = XmlDocument::parse(xml)?;
        let terms = self.analyzer.analyze(&doc.indexable_text());
        let links = doc.links().into_iter().map(String::from).collect();
        let id = self.next_id;
        self.next_id += 1;
        self.index.add_document(id, &terms);
        // New terms are ORed into the (append-only) filter.
        for t in &terms {
            self.bloom.insert(t);
        }
        self.bloom_version += 1;
        let hash = content_hash(xml);
        self.docs.insert(
            id,
            DocumentRecord {
                id,
                xml: xml.to_string(),
                terms,
                links,
                hash,
            },
        );
        Ok(id)
    }

    /// Rehydrate one document under its *original* id (crash-restart
    /// recovery: ids must survive a restart because remote peers hold
    /// `(peer, doc)` references from earlier searches). Re-parses and
    /// re-indexes exactly like [`Self::publish`]; `next_id` advances
    /// past the restored id so later publishes never collide. Replay is
    /// idempotent — restoring an id that is already present replaces it
    /// (the WAL may replay records already folded into a snapshot).
    pub fn restore_document(&mut self, id: DocId, xml: &str) -> Result<(), PlanetPError> {
        if self.docs.contains_key(&id) {
            return Ok(());
        }
        let doc = XmlDocument::parse(xml)?;
        let terms = self.analyzer.analyze(&doc.indexable_text());
        let links = doc.links().into_iter().map(String::from).collect();
        self.index.add_document(id, &terms);
        for t in &terms {
            self.bloom.insert(t);
        }
        self.bloom_version += 1;
        self.next_id = self.next_id.max(id + 1);
        let hash = content_hash(xml);
        self.docs.insert(
            id,
            DocumentRecord {
                id,
                xml: xml.to_string(),
                terms,
                links,
                hash,
            },
        );
        Ok(())
    }

    /// Remove a document. The Bloom filter is rebuilt from the index
    /// (filters cannot delete in place).
    pub fn unpublish(&mut self, id: DocId) -> Result<(), PlanetPError> {
        if self.docs.remove(&id).is_none() {
            return Err(PlanetPError::UnknownDocument(id));
        }
        self.index.remove_document(id);
        let mut fresh = BloomFilter::new(self.bloom_params);
        for t in self.index.vocabulary() {
            fresh.insert(t);
        }
        self.bloom = fresh;
        self.bloom_version += 1;
        Ok(())
    }

    /// Fetch a stored document.
    pub fn get(&self, id: DocId) -> Option<&DocumentRecord> {
        self.docs.get(&id)
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when nothing is published.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The store's inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The current Bloom filter summary.
    pub fn bloom(&self) -> &BloomFilter {
        &self.bloom
    }

    /// Version of the summary (bumped on every publish/unpublish).
    pub fn bloom_version(&self) -> u32 {
        self.bloom_version
    }

    /// The analyzer documents and queries share.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Local exhaustive search: document ids containing *all* terms.
    pub fn search_conjunction(&self, terms: &[String]) -> Vec<DocId> {
        let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
        self.index.search_conjunction(&refs)
    }

    /// The `fraction` most frequent terms of a document (what PFS
    /// publishes to the brokerage, §6: "the 10% most frequently
    /// appearing terms in the file").
    pub fn hot_terms(&self, id: DocId, fraction: f64) -> Vec<String> {
        let Some(rec) = self.docs.get(&id) else {
            return Vec::new();
        };
        let mut counts: HashMap<&str, u32> = HashMap::new();
        for t in &rec.terms {
            *counts.entry(t).or_insert(0) += 1;
        }
        let mut by_freq: Vec<(&str, u32)> = counts.into_iter().collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let n = ((by_freq.len() as f64 * fraction).ceil() as usize)
            .clamp(usize::from(!by_freq.is_empty()), by_freq.len());
        by_freq.truncate(n);
        by_freq.into_iter().map(|(t, _)| t.to_string()).collect()
    }

    /// Iterate all stored documents.
    pub fn documents(&self) -> impl Iterator<Item = &DocumentRecord> {
        self.docs.values()
    }
}

impl Default for LocalDataStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(docs: &[&str]) -> LocalDataStore {
        let mut s = LocalDataStore::new();
        for d in docs {
            s.publish(d).expect("publish");
        }
        s
    }

    #[test]
    fn publish_indexes_and_summarizes() {
        let s = store_with(&["<doc>epidemic gossiping protocols</doc>"]);
        assert_eq!(s.len(), 1);
        // Terms are stemmed; the filter covers them.
        assert!(s.index().contains_term("gossip"));
        assert!(s.bloom().contains("gossip"));
        assert!(s.bloom().contains("epidem"));
        assert_eq!(s.bloom_version(), 1);
    }

    #[test]
    fn invalid_xml_rejected() {
        let mut s = LocalDataStore::new();
        assert!(matches!(
            s.publish("<doc>unclosed"),
            Err(PlanetPError::InvalidXml(_))
        ));
        assert!(s.is_empty());
    }

    #[test]
    fn unpublish_rebuilds_filter() {
        let mut s = store_with(&["<a>unique-alpha-term</a>", "<b>shared common words</b>"]);
        assert!(s.bloom().contains("alpha"));
        s.unpublish(1).unwrap();
        assert!(!s.index().contains_term("alpha"));
        assert!(
            !s.bloom().contains("alpha") || s.bloom().estimated_fpr() > 0.0,
            "rebuilt filter must drop removed vocabulary"
        );
        assert!(s.bloom().contains("share"));
        assert!(matches!(
            s.unpublish(1),
            Err(PlanetPError::UnknownDocument(1))
        ));
    }

    #[test]
    fn conjunction_search_local() {
        let s = store_with(&[
            "<a>gossip networks</a>",
            "<b>gossip protocols</b>",
            "<c>storage networks</c>",
        ]);
        let hits = s.search_conjunction(&["gossip".into(), "network".into()]);
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn hot_terms_pick_most_frequent() {
        let s = store_with(&["<d>bloom bloom bloom filter filter gossip</d>"]);
        let hot = s.hot_terms(1, 0.34);
        assert_eq!(hot[0], "bloom");
        assert!(!hot.is_empty() && hot.len() <= 2);
        assert!(s.hot_terms(99, 0.1).is_empty(), "unknown doc -> empty");
    }

    #[test]
    fn links_extracted_on_publish() {
        let s = store_with(&[r#"<d><file href="http://x/a.pdf"/>text</d>"#]);
        assert_eq!(s.get(1).unwrap().links, vec!["http://x/a.pdf"]);
    }

    #[test]
    fn restore_preserves_ids_and_advances_next_id() {
        let mut s = LocalDataStore::new();
        s.restore_document(7, "<a>restored gossip text</a>")
            .unwrap();
        s.restore_document(3, "<b>earlier document</b>").unwrap();
        // Idempotent replay: restoring an existing id is a no-op.
        s.restore_document(7, "<a>restored gossip text</a>")
            .unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.index().contains_term("gossip"));
        assert!(s.bloom().contains("gossip"));
        let id = s.publish("<c>new after restore</c>").unwrap();
        assert_eq!(id, 8, "next_id advances past the highest restored id");
    }

    #[test]
    fn content_hash_is_stable_and_content_addressed() {
        let xml = "<doc>same bytes, same hash</doc>";
        let mut a = LocalDataStore::new();
        let mut b = LocalDataStore::new();
        let ia = a.publish(xml).unwrap();
        // Different local id on b, identical content hash.
        b.publish("<other>padding</other>").unwrap();
        let ib = b.publish(xml).unwrap();
        assert_ne!(ia, ib);
        assert_eq!(a.get(ia).unwrap().hash, b.get(ib).unwrap().hash);
        assert_eq!(a.get(ia).unwrap().hash, content_hash(xml));
        // Restore under the original id keeps the hash.
        let mut c = LocalDataStore::new();
        c.restore_document(ia, xml).unwrap();
        assert_eq!(c.get(ia).unwrap().hash, content_hash(xml));
        // Different content, different hash.
        assert_ne!(content_hash("<a>x</a>"), content_hash("<a>y</a>"));
    }

    #[test]
    fn ids_are_never_reused() {
        let mut s = store_with(&["<a>one</a>"]);
        s.unpublish(1).unwrap();
        let id = s.publish("<b>two</b>").unwrap();
        assert_eq!(id, 2);
    }
}
