//! Prioritized admission control for the live server.
//!
//! A saturated PlanetP node used to admit every inbound frame: replica
//! pushes queued behind interactive searches, workers burned CPU on
//! replies whose callers had already timed out, and overload showed up
//! as client-side timeouts — indistinguishable from a dead peer. This
//! module puts a bounded, class-aware gate in front of frame service:
//!
//! - every request is classified ([`crate::wire::Priority`]) either by
//!   the metadata its sender attached or by its message type;
//! - requests wait in per-class FIFO queues under one shared bound;
//!   grants always go to the highest class first;
//! - when the bound is hit, the *lowest*-class queued work is shed
//!   first (Background, then Control) — and never silently: every shed
//!   request is answered with `LiveMsg::Busy` carrying a retry hint;
//! - a request whose propagated deadline passes while it waits is
//!   dropped without service (its caller has already given up).
//!
//! The decision logic lives in the clock-free [`AdmissionState`] so
//! property tests can drive arbitrary schedules; [`AdmissionGate`]
//! wraps it with real blocking for the server workers.

use crate::wire::Priority;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// Tuning for the admission gate.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Master switch. Off = every frame is served immediately, exactly
    /// the pre-admission behavior.
    pub enabled: bool,
    /// Requests concurrently in service (granted, not yet completed).
    pub max_active: usize,
    /// Total queued requests across all classes. Arrivals beyond this
    /// trigger shedding (or unbounded queueing when `shedding` is off).
    pub queue_capacity: usize,
    /// Shed on overflow and reply `Busy`. Off (`--no-shedding`) keeps
    /// the bounded-queue accounting but never refuses work — the
    /// pre-admission collapse mode, kept for comparison benchmarks.
    pub shedding: bool,
    /// Longest a request may wait queued before it is shed anyway.
    /// Bounds how long a server worker can be parked on the gate.
    pub max_wait_ms: u64,
    /// Base retry hint advertised in `Busy` replies.
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            max_active: 4,
            queue_capacity: 32,
            shedding: true,
            max_wait_ms: 500,
            retry_after_ms: 200,
        }
    }
}

/// What happened to one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueued {
    /// Queued under this ticket id.
    Queued(u64),
    /// Refused on arrival — reply `Busy`.
    Shed,
}

/// The clock-free decision core: per-class FIFOs under one shared
/// bound, strict-priority grants, lowest-class-first eviction. All
/// timestamps are caller-supplied ms so tests control time.
#[derive(Debug)]
pub struct AdmissionState {
    queues: [VecDeque<(u64, u64)>; 3], // (ticket, enqueued_at_ms), indexed by class wire byte
    active: usize,
    max_active: usize,
    queue_capacity: usize,
    shedding: bool,
    next_ticket: u64,
}

impl AdmissionState {
    /// Empty state with the given limits.
    pub fn new(max_active: usize, queue_capacity: usize, shedding: bool) -> Self {
        Self {
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            active: 0,
            max_active: max_active.max(1),
            queue_capacity,
            shedding,
            next_ticket: 1,
        }
    }

    /// Requests currently queued across all classes.
    pub fn queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Requests granted and not yet completed.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Add an arrival of `class`. Returns its fate plus, possibly, the
    /// ticket of a queued lower-class request evicted to make room —
    /// the caller must answer that ticket with `Busy` (nothing is shed
    /// silently).
    pub fn enqueue(&mut self, class: Priority, now_ms: u64) -> (Enqueued, Option<u64>) {
        let mut evicted = None;
        if self.queued() >= self.queue_capacity && self.shedding {
            // Walk shed order: Background first, then Control. Evict
            // only work of a class strictly below the arrival; if
            // nothing lower is queued, the arrival itself is shed.
            let victim_class = Priority::ALL
                .iter()
                .rev()
                .find(|c| **c > class && !self.queues[c.to_wire() as usize].is_empty())
                .copied();
            match victim_class {
                Some(victim) => {
                    // Newest first: the victim waited least, loses least.
                    let (ticket, _) = self.queues[victim.to_wire() as usize]
                        .pop_back()
                        .expect("victim queue checked non-empty");
                    evicted = Some(ticket);
                }
                None => return (Enqueued::Shed, None),
            }
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.queues[class.to_wire() as usize].push_back((ticket, now_ms));
        (Enqueued::Queued(ticket), evicted)
    }

    /// Grant the next request if a service slot is free: the front of
    /// the highest-priority non-empty queue. Returns the ticket, its
    /// queue wait in ms, and its class.
    pub fn grant_next(&mut self, now_ms: u64) -> Option<(u64, u64, Priority)> {
        if self.active >= self.max_active {
            return None;
        }
        for class in Priority::ALL {
            if let Some((ticket, at)) = self.queues[class.to_wire() as usize].pop_front() {
                self.active += 1;
                return Some((ticket, now_ms.saturating_sub(at), class));
            }
        }
        None
    }

    /// One granted request finished service.
    pub fn complete(&mut self) {
        self.active = self.active.saturating_sub(1);
    }

    /// Remove a still-queued ticket (its waiter gave up: deadline or
    /// max wait). True if it was found.
    pub fn cancel(&mut self, ticket: u64) -> bool {
        for q in &mut self.queues {
            if let Some(pos) = q.iter().position(|(t, _)| *t == ticket) {
                q.remove(pos);
                return true;
            }
        }
        false
    }
}

/// Outcome of [`AdmissionGate::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Serve the request, then call [`AdmissionGate::complete`].
    Admitted {
        /// Time spent queued before the grant.
        queue_wait: Duration,
    },
    /// Refused — reply `Busy { retry_after_ms, .. }`.
    Shed {
        /// Backoff hint to advertise.
        retry_after_ms: u64,
    },
    /// The propagated deadline passed while queued — drop the frame,
    /// the caller has already timed out.
    Expired,
}

struct GateInner {
    core: AdmissionState,
    granted: HashMap<u64, u64>,
    evicted: HashSet<u64>,
}

/// Blocking wrapper around [`AdmissionState`] for the server workers.
pub struct AdmissionGate {
    inner: Mutex<GateInner>,
    cv: Condvar,
    config: AdmissionConfig,
    start: Instant,
}

impl std::fmt::Debug for AdmissionGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionGate")
            .field("config", &self.config)
            .finish()
    }
}

impl AdmissionGate {
    /// Gate with the given tuning.
    pub fn new(config: AdmissionConfig) -> Self {
        Self {
            inner: Mutex::new(GateInner {
                core: AdmissionState::new(
                    config.max_active,
                    config.queue_capacity,
                    config.shedding,
                ),
                granted: HashMap::new(),
                evicted: HashSet::new(),
            }),
            cv: Condvar::new(),
            config,
            start: Instant::now(),
        }
    }

    /// The gate's tuning.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Backoff hint for `Busy` replies: the configured base, doubled
    /// while the queue is saturated so backed-off clients spread out.
    pub fn retry_after_ms(&self) -> u64 {
        let base = self.config.retry_after_ms.max(1);
        let inner = self.inner.lock();
        if inner.core.queued() >= self.config.queue_capacity {
            base * 2
        } else {
            base
        }
    }

    /// Ask to serve one request of `class`. Blocks until a service slot
    /// is granted, the request is shed (overflow eviction or max wait),
    /// or `deadline` passes. On `Admitted`, the caller serves and then
    /// calls [`Self::complete`].
    pub fn admit(&self, class: Priority, deadline: Option<Instant>) -> Admission {
        if !self.config.enabled {
            return Admission::Admitted {
                queue_wait: Duration::ZERO,
            };
        }
        let shed = |gate: &Self| Admission::Shed {
            retry_after_ms: {
                let base = gate.config.retry_after_ms.max(1);
                base
            },
        };
        let mut inner = self.inner.lock();
        let (result, evicted) = inner.core.enqueue(class, self.now_ms());
        if let Some(ticket) = evicted {
            inner.evicted.insert(ticket);
            // Wake the evicted waiter now: it must turn around and
            // reply `Busy` immediately, not at its wait cap.
            self.cv.notify_all();
        }
        let ticket = match result {
            Enqueued::Shed => return shed(self),
            Enqueued::Queued(t) => t,
        };
        let wait_cap = Instant::now() + Duration::from_millis(self.config.max_wait_ms.max(1));
        let wake_at = match deadline {
            Some(d) => d.min(wait_cap),
            None => wait_cap,
        };
        loop {
            // Any waiter may hand out grants; waiters then claim theirs.
            let now = self.now_ms();
            let mut woke_someone = false;
            while let Some((id, wait, _)) = inner.core.grant_next(now) {
                inner.granted.insert(id, wait);
                woke_someone = true;
            }
            if woke_someone {
                self.cv.notify_all();
            }
            if let Some(wait) = inner.granted.remove(&ticket) {
                return Admission::Admitted {
                    queue_wait: Duration::from_millis(wait),
                };
            }
            if inner.evicted.remove(&ticket) {
                return shed(self);
            }
            let now_i = Instant::now();
            if now_i >= wake_at {
                inner.core.cancel(ticket);
                // A grant may have raced in while we timed out; honor it.
                if let Some(wait) = inner.granted.remove(&ticket) {
                    return Admission::Admitted {
                        queue_wait: Duration::from_millis(wait),
                    };
                }
                return if deadline.is_some_and(|d| now_i >= d) {
                    Admission::Expired
                } else {
                    shed(self)
                };
            }
            let _ = self.cv.wait_until(&mut inner, wake_at);
        }
    }

    /// One admitted request finished service: free its slot and hand
    /// out any grants that unblocks.
    pub fn complete(&self) {
        if !self.config.enabled {
            return;
        }
        let mut inner = self.inner.lock();
        inner.core.complete();
        let now = self.now_ms();
        let mut woke = false;
        while let Some((id, wait, _)) = inner.core.grant_next(now) {
            inner.granted.insert(id, wait);
            woke = true;
        }
        drop(inner);
        if woke {
            self.cv.notify_all();
        }
    }

    /// Requests currently queued (diagnostic).
    pub fn queued(&self) -> usize {
        self.inner.lock().core.queued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn state(max_active: usize, cap: usize) -> AdmissionState {
        AdmissionState::new(max_active, cap, true)
    }

    #[test]
    fn grants_prefer_interactive_over_lower_classes() {
        let mut s = state(1, 8);
        let (bg, _) = s.enqueue(Priority::Background, 0);
        let (ctl, _) = s.enqueue(Priority::Control, 0);
        let (int, _) = s.enqueue(Priority::Interactive, 0);
        let (Enqueued::Queued(_bg), Enqueued::Queued(_ctl), Enqueued::Queued(int_t)) =
            (bg, ctl, int)
        else {
            panic!("all three should queue");
        };
        let (granted, _, class) = s.grant_next(5).expect("slot free");
        assert_eq!(granted, int_t, "interactive granted first");
        assert_eq!(class, Priority::Interactive);
        assert!(s.grant_next(5).is_none(), "max_active=1 blocks the rest");
        s.complete();
        let (_, _, class) = s.grant_next(5).expect("slot freed");
        assert_eq!(class, Priority::Control, "control before background");
    }

    #[test]
    fn overflow_evicts_background_before_control_never_interactive() {
        let mut s = state(1, 2);
        let (Enqueued::Queued(bg), None) = s.enqueue(Priority::Background, 0) else {
            panic!("queued")
        };
        let (Enqueued::Queued(_ctl), None) = s.enqueue(Priority::Control, 0) else {
            panic!("queued")
        };
        // Full. An interactive arrival evicts the background ticket.
        let (res, evicted) = s.enqueue(Priority::Interactive, 1);
        assert!(matches!(res, Enqueued::Queued(_)));
        assert_eq!(evicted, Some(bg), "background evicted first");
        // Full again with {control, interactive}. Another interactive
        // evicts the control ticket; never another interactive.
        let (res, evicted) = s.enqueue(Priority::Interactive, 2);
        assert!(matches!(res, Enqueued::Queued(_)));
        assert!(evicted.is_some());
        let (res, evicted) = s.enqueue(Priority::Interactive, 3);
        assert_eq!(res, Enqueued::Shed, "pure-interactive queue sheds arrivals");
        assert_eq!(evicted, None);
        assert_eq!(s.queued(), 2, "bound holds");
    }

    #[test]
    fn background_arrival_on_full_queue_is_shed_not_queued() {
        let mut s = state(1, 1);
        assert!(matches!(
            s.enqueue(Priority::Control, 0),
            (Enqueued::Queued(_), None)
        ));
        let (res, evicted) = s.enqueue(Priority::Background, 1);
        assert_eq!(res, Enqueued::Shed, "cannot evict higher-class work");
        assert_eq!(evicted, None);
    }

    #[test]
    fn shedding_off_queues_past_the_bound() {
        let mut s = AdmissionState::new(1, 1, false);
        for i in 0..10 {
            assert!(matches!(
                s.enqueue(Priority::Background, i),
                (Enqueued::Queued(_), None)
            ));
        }
        assert_eq!(s.queued(), 10);
    }

    #[test]
    fn queue_wait_is_measured_from_enqueue() {
        let mut s = state(1, 4);
        let (Enqueued::Queued(_), _) = s.enqueue(Priority::Interactive, 100) else {
            panic!()
        };
        let (_, wait, _) = s.grant_next(175).unwrap();
        assert_eq!(wait, 75);
    }

    #[test]
    fn cancel_removes_only_the_named_ticket() {
        let mut s = state(1, 4);
        let (Enqueued::Queued(a), _) = s.enqueue(Priority::Control, 0) else {
            panic!()
        };
        let (Enqueued::Queued(b), _) = s.enqueue(Priority::Control, 0) else {
            panic!()
        };
        assert!(s.cancel(a));
        assert!(!s.cancel(a), "already gone");
        assert_eq!(s.queued(), 1);
        let (granted, _, _) = s.grant_next(1).unwrap();
        assert_eq!(granted, b);
    }

    #[test]
    fn disabled_gate_admits_instantly_and_complete_is_harmless() {
        let gate = AdmissionGate::new(AdmissionConfig {
            enabled: false,
            ..AdmissionConfig::default()
        });
        match gate.admit(Priority::Background, None) {
            Admission::Admitted { queue_wait } => assert_eq!(queue_wait, Duration::ZERO),
            other => panic!("expected instant admit, got {other:?}"),
        }
        gate.complete();
        gate.complete();
    }

    #[test]
    fn gate_admits_up_to_max_active_then_sheds_overflow() {
        let gate = Arc::new(AdmissionGate::new(AdmissionConfig {
            max_active: 1,
            queue_capacity: 1,
            max_wait_ms: 50,
            ..AdmissionConfig::default()
        }));
        // First admit takes the slot without blocking.
        match gate.admit(Priority::Interactive, None) {
            Admission::Admitted { .. } => {}
            other => panic!("expected admit, got {other:?}"),
        }
        // Second waits out max_wait_ms and is shed with a retry hint.
        let g = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g.admit(Priority::Interactive, None));
        // Third arrival finds the queue full of its own class: shed now.
        std::thread::sleep(Duration::from_millis(10));
        match gate.admit(Priority::Interactive, None) {
            Admission::Shed { retry_after_ms } => assert!(retry_after_ms > 0),
            other => panic!("expected shed, got {other:?}"),
        }
        match waiter.join().unwrap() {
            Admission::Shed { .. } => {}
            other => panic!("expected max-wait shed, got {other:?}"),
        }
        // Completing the first frees the slot for a fresh admit.
        gate.complete();
        match gate.admit(Priority::Background, None) {
            Admission::Admitted { .. } => {}
            other => panic!("expected admit, got {other:?}"),
        }
    }

    #[test]
    fn gate_unblocks_waiter_on_complete() {
        let gate = Arc::new(AdmissionGate::new(AdmissionConfig {
            max_active: 1,
            queue_capacity: 4,
            max_wait_ms: 5_000,
            ..AdmissionConfig::default()
        }));
        assert!(matches!(
            gate.admit(Priority::Interactive, None),
            Admission::Admitted { .. }
        ));
        let g = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g.admit(Priority::Interactive, None));
        std::thread::sleep(Duration::from_millis(20));
        gate.complete();
        match waiter.join().unwrap() {
            Admission::Admitted { queue_wait } => {
                assert!(
                    queue_wait >= Duration::from_millis(10),
                    "waited for the slot"
                )
            }
            other => panic!("expected admit after complete, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_drops_the_queued_request() {
        let gate = Arc::new(AdmissionGate::new(AdmissionConfig {
            max_active: 1,
            queue_capacity: 4,
            max_wait_ms: 5_000,
            ..AdmissionConfig::default()
        }));
        assert!(matches!(
            gate.admit(Priority::Interactive, None),
            Admission::Admitted { .. }
        ));
        let deadline = Instant::now() + Duration::from_millis(30);
        match gate.admit(Priority::Interactive, Some(deadline)) {
            Admission::Expired => {}
            other => panic!("expected expiry, got {other:?}"),
        }
        assert_eq!(gate.queued(), 0, "expired ticket left the queue");
    }
}
