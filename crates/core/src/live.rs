//! The live TCP runtime.
//!
//! Each [`LiveNode`] is one real peer: a TCP listener, a gossip loop
//! thread running a [`GossipEngine`] over compressed Bloom filters, a
//! local data store, and RPC handlers for ranked and exhaustive search.
//! This is the analog of the paper's Java prototype, used to validate
//! that the protocol converges over real sockets (the paper validated
//! its simulator against a 200-peer cluster deployment the same way).
//!
//! Peer addresses ride inside the gossip payload: a peer's
//! [`LivePayload`] carries its socket address next to its compressed
//! filter, so learning of a peer via gossip also teaches how to reach
//! it.

use parking_lot::Mutex;
use planetp_bloom::CompressedBloom;
use planetp_gossip::{
    GossipConfig, GossipEngine, Message, Payload, PeerId, SpeedClass,
};
use planetp_search::{adaptive_p, rank_peers, IpfTable};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::datastore::LocalDataStore;
use crate::error::PlanetPError;
use crate::query::parse_query;

/// What a live peer gossips about itself: its address and its
/// compressed Bloom filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LivePayload {
    /// Socket address ("127.0.0.1:port").
    pub addr: String,
    /// Golomb-compressed filter summarizing the peer's vocabulary.
    pub bloom: CompressedBloom,
}

impl Payload for LivePayload {
    fn wire_bytes(&self) -> usize {
        6 + self.addr.len() + self.bloom.wire_bytes()
    }
}

/// Everything that crosses the wire between live peers.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum LiveMsg {
    /// A gossip protocol message.
    Gossip {
        /// Sending peer.
        from: PeerId,
        /// The protocol message.
        msg: Message<LivePayload>,
    },
    /// Ranked-search RPC: score the local store with the given IPF view.
    SearchRequest {
        /// Analyzed query terms.
        terms: Vec<String>,
        /// The initiator's `(term, IPF)` view.
        ipf: Vec<(String, f64)>,
        /// Community size the IPF was computed over.
        num_peers: usize,
    },
    /// Reply: `(doc id, score, xml)` for matching documents.
    SearchResponse {
        /// Matching documents.
        docs: Vec<(u64, f64, String)>,
    },
    /// Exhaustive-search RPC: conjunction of analyzed terms.
    ExhaustiveRequest {
        /// Analyzed query terms.
        terms: Vec<String>,
    },
    /// Reply: `(doc id, xml)` for documents containing every term.
    ExhaustiveResponse {
        /// Matching documents.
        docs: Vec<(u64, String)>,
    },
    /// Proxy search (§7.2 future work): a bandwidth-limited peer asks a
    /// well-connected one to run the whole ranked query on its behalf —
    /// the proxy fans out to the community and returns the final top-k.
    ProxySearchRequest {
        /// Raw query text (the proxy analyzes it with its own pipeline).
        query: String,
        /// Result-list size.
        k: usize,
    },
    /// Reply to `ProxySearchRequest`: `(peer, doc id, score, xml)`.
    ProxySearchResponse {
        /// Final ranked hits.
        hits: Vec<(PeerId, u64, f64, String)>,
    },
}

/// Configuration of a live node.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Gossip protocol settings. Tests shrink `base_interval_ms` so
    /// convergence takes milliseconds instead of minutes.
    pub gossip: GossipConfig,
    /// Connect/read timeout for peer contacts.
    pub io_timeout: Duration,
    /// RNG seed for the gossip engine.
    pub seed: u64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            gossip: GossipConfig::default(),
            io_timeout: Duration::from_secs(5),
            seed: 1,
        }
    }
}

struct Inner {
    id: PeerId,
    addr: String,
    config: LiveConfig,
    engine: Mutex<GossipEngine<LivePayload>>,
    store: Mutex<LocalDataStore>,
    /// Fallback address book (bootstrap contact before its payload
    /// arrives).
    addr_book: Mutex<HashMap<PeerId, String>>,
    epoch: Instant,
    shutdown: AtomicBool,
}

impl Inner {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn resolve(&self, peer: PeerId) -> Option<String> {
        if let Some(e) = self.engine.lock().directory().get(peer) {
            if let Some(p) = &e.payload {
                return Some(p.addr.clone());
            }
        }
        self.addr_book.lock().get(&peer).cloned()
    }

    fn my_payload(&self) -> LivePayload {
        LivePayload {
            addr: self.addr.clone(),
            bloom: CompressedBloom::compress(self.store.lock().bloom()),
        }
    }

    /// Run one half of a gossip conversation over an open stream:
    /// handle `msg`, write back our responses, and keep alternating
    /// until either side has nothing more to say.
    fn converse(&self, stream: &mut TcpStream, from: PeerId, msg: Message<LivePayload>) -> io::Result<()> {
        let mut responses = self.engine.lock().handle_message(from, msg, self.now_ms());
        loop {
            let batch: Vec<LiveMsg> = responses
                .drain(..)
                .map(|(_, m)| LiveMsg::Gossip { from: self.id, msg: m })
                .collect();
            let done = batch.is_empty();
            crate::wire::write_frame(stream, &batch)?;
            if done {
                return Ok(());
            }
            let Some(reply): Option<Vec<LiveMsg>> = crate::wire::read_frame(stream)? else {
                return Ok(());
            };
            if reply.is_empty() {
                return Ok(());
            }
            for m in reply {
                if let LiveMsg::Gossip { from, msg } = m {
                    responses.extend(
                        self.engine.lock().handle_message(from, msg, self.now_ms()),
                    );
                }
            }
        }
    }

    /// Initiate a gossip exchange with `target`.
    fn gossip_to(&self, target: PeerId, msg: Message<LivePayload>) {
        let Some(addr) = self.resolve(target) else {
            return;
        };
        let attempt = || -> io::Result<()> {
            let mut stream = TcpStream::connect(&addr)?;
            stream.set_read_timeout(Some(self.config.io_timeout))?;
            stream.set_write_timeout(Some(self.config.io_timeout))?;
            crate::wire::write_frame(
                &mut stream,
                &vec![LiveMsg::Gossip { from: self.id, msg: msg.clone() }],
            )?;
            // Alternate until both sides go quiet.
            loop {
                let Some(batch): Option<Vec<LiveMsg>> =
                    crate::wire::read_frame(&mut stream)?
                else {
                    return Ok(());
                };
                if batch.is_empty() {
                    return Ok(());
                }
                let mut responses = Vec::new();
                for m in batch {
                    if let LiveMsg::Gossip { from, msg } = m {
                        responses.extend(
                            self.engine.lock().handle_message(from, msg, self.now_ms()),
                        );
                    }
                }
                let out: Vec<LiveMsg> = responses
                    .into_iter()
                    .map(|(_, m)| LiveMsg::Gossip { from: self.id, msg: m })
                    .collect();
                let done = out.is_empty();
                crate::wire::write_frame(&mut stream, &out)?;
                if done {
                    return Ok(());
                }
            }
        };
        if attempt().is_err() {
            self.engine.lock().on_contact_failed(target, self.now_ms());
        }
    }

    /// One synchronous RPC (search) to a peer.
    fn rpc(&self, addr: &str, request: &LiveMsg) -> io::Result<LiveMsg> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        crate::wire::write_frame(&mut stream, &vec![request])?;
        let batch: Vec<LiveMsg> = crate::wire::read_frame(&mut stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no reply"))?;
        batch
            .into_iter()
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty reply"))
    }

    /// Ranked TFxIPF search across the community (shared by the node
    /// API and the proxy-search handler).
    fn ranked_search(&self, raw_query: &str, k: usize) -> Result<Vec<LiveHit>, PlanetPError> {
        let analyzer = self.store.lock().analyzer().clone();
        let q = parse_query(raw_query, &analyzer);
        if q.is_empty() {
            return Ok(Vec::new());
        }
        // Decompress every peer's filter from the directory.
        let (filters, owners) = {
            let engine = self.engine.lock();
            let mut filters = Vec::new();
            let mut owners = Vec::new();
            for (pid, e) in engine.directory().iter() {
                if let Some(p) = &e.payload {
                    if let Some(f) = p.bloom.decompress() {
                        filters.push(f);
                        owners.push((pid, p.addr.clone()));
                    }
                }
            }
            (filters, owners)
        };
        let ipf = IpfTable::compute(&q.terms, &filters);
        let ranked = rank_peers(&q.terms, &filters, &ipf);
        let patience = adaptive_p(filters.len(), k);
        let mut top: Vec<LiveHit> = Vec::new();
        let mut dry = 0usize;
        for rp in ranked {
            let (pid, addr) = &owners[rp.peer];
            let docs = if *pid == self.id {
                let store = self.store.lock();
                planetp_search::score_index(store.index(), &q.terms, &ipf)
                    .into_iter()
                    .filter_map(|(d, s)| store.get(d).map(|r| (d, s, r.xml.clone())))
                    .collect()
            } else {
                match self.rpc(
                    addr,
                    &LiveMsg::SearchRequest {
                        terms: q.terms.clone(),
                        ipf: ipf.to_pairs(),
                        num_peers: filters.len(),
                    },
                ) {
                    Ok(LiveMsg::SearchResponse { docs }) => docs,
                    _ => {
                        self.engine.lock().on_contact_failed(*pid, self.now_ms());
                        continue;
                    }
                }
            };
            let mut contributed = false;
            for (doc, score, xml) in docs {
                let hit = LiveHit { peer: *pid, doc, score, xml };
                if offer_hit(&mut top, hit, k) {
                    contributed = true;
                }
            }
            if contributed {
                dry = 0;
            } else {
                dry += 1;
            }
            if top.len() >= k && dry >= patience {
                break;
            }
        }
        top.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are never NaN")
                .then_with(|| (a.peer, a.doc).cmp(&(b.peer, b.doc)))
        });
        Ok(top)
    }

    fn handle_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(self.config.io_timeout));
        let _ = stream.set_write_timeout(Some(self.config.io_timeout));
        let Ok(Some(batch)) = crate::wire::read_frame::<Vec<LiveMsg>>(&mut stream)
        else {
            return;
        };
        for m in batch {
            match m {
                LiveMsg::Gossip { from, msg } => {
                    let _ = self.converse(&mut stream, from, msg);
                }
                LiveMsg::SearchRequest { terms, ipf, num_peers } => {
                    let table = IpfTable::from_pairs(ipf, num_peers);
                    let store = self.store.lock();
                    let docs = planetp_search::score_index(store.index(), &terms, &table)
                        .into_iter()
                        .filter_map(|(doc, score)| {
                            store.get(doc).map(|r| (doc, score, r.xml.clone()))
                        })
                        .collect();
                    let _ = crate::wire::write_frame(
                        &mut stream,
                        &vec![LiveMsg::SearchResponse { docs }],
                    );
                }
                LiveMsg::ExhaustiveRequest { terms } => {
                    let store = self.store.lock();
                    let docs = store
                        .search_conjunction(&terms)
                        .into_iter()
                        .filter_map(|d| store.get(d).map(|r| (d, r.xml.clone())))
                        .collect();
                    let _ = crate::wire::write_frame(
                        &mut stream,
                        &vec![LiveMsg::ExhaustiveResponse { docs }],
                    );
                }
                LiveMsg::ProxySearchRequest { query, k } => {
                    let hits = match self.ranked_search(&query, k) {
                        Ok(h) => h
                            .into_iter()
                            .map(|h| (h.peer, h.doc, h.score, h.xml))
                            .collect(),
                        Err(_) => Vec::new(),
                    };
                    let _ = crate::wire::write_frame(
                        &mut stream,
                        &vec![LiveMsg::ProxySearchResponse { hits }],
                    );
                }
                LiveMsg::SearchResponse { .. }
                | LiveMsg::ExhaustiveResponse { .. }
                | LiveMsg::ProxySearchResponse { .. } => {}
            }
        }
    }
}

/// Bounded top-k insertion; returns whether the hit made the cut.
fn offer_hit(top: &mut Vec<LiveHit>, hit: LiveHit, k: usize) -> bool {
    if top.len() < k {
        top.push(hit);
        return true;
    }
    let (worst_i, _) = top
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.score.partial_cmp(&b.score).expect("scores are never NaN")
        })
        .expect("top non-empty");
    if hit.score > top[worst_i].score {
        top[worst_i] = hit;
        true
    } else {
        false
    }
}

/// One ranked hit from a live search.
#[derive(Debug, Clone)]
pub struct LiveHit {
    /// Owning peer.
    pub peer: PeerId,
    /// Document id on that peer.
    pub doc: u64,
    /// TFxIPF score.
    pub score: f64,
    /// Document XML.
    pub xml: String,
}

/// A live PlanetP peer: listener + gossip loop + data store.
pub struct LiveNode {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl LiveNode {
    /// Start a node. `bootstrap` is `(peer id, address)` of one
    /// existing member; `None` founds a new community.
    pub fn start(
        id: PeerId,
        config: LiveConfig,
        bootstrap: Option<(PeerId, String)>,
    ) -> Result<Self, PlanetPError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        let store = LocalDataStore::new();
        let payload = LivePayload {
            addr: addr.clone(),
            bloom: CompressedBloom::compress(store.bloom()),
        };
        let engine = GossipEngine::new(
            id,
            SpeedClass::Fast,
            config.gossip,
            config.seed ^ u64::from(id),
            Some(payload),
            bootstrap.as_ref().map(|(b, _)| (*b, SpeedClass::Fast)),
        );
        let mut addr_book = HashMap::new();
        if let Some((b, a)) = bootstrap {
            addr_book.insert(b, a);
        }
        let inner = Arc::new(Inner {
            id,
            addr,
            config,
            engine: Mutex::new(engine),
            store: Mutex::new(store),
            addr_book: Mutex::new(addr_book),
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
        });

        let mut threads = Vec::new();
        // Listener thread: one handler thread per connection (peer
        // counts here are test-scale).
        {
            let inner = Arc::clone(&inner);
            listener.set_nonblocking(true)?;
            threads.push(std::thread::spawn(move || {
                while !inner.shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nonblocking(false);
                            let inner = Arc::clone(&inner);
                            std::thread::spawn(move || {
                                inner.handle_connection(stream);
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            }));
        }
        // Gossip loop.
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || {
                let mut next_tick = Duration::from_millis(0);
                let started = Instant::now();
                while !inner.shutdown.load(Ordering::Relaxed) {
                    if started.elapsed() < next_tick {
                        std::thread::sleep(Duration::from_millis(2));
                        continue;
                    }
                    let outcome = {
                        let mut engine = inner.engine.lock();
                        let o = engine.tick(inner.now_ms());
                        next_tick = started.elapsed()
                            + Duration::from_millis(engine.current_interval());
                        o
                    };
                    if let Some(out) = outcome {
                        inner.gossip_to(out.target, out.message);
                    }
                }
            }));
        }
        Ok(Self { inner, threads })
    }

    /// This node's peer id.
    pub fn id(&self) -> PeerId {
        self.inner.id
    }

    /// The node's listen address.
    pub fn addr(&self) -> &str {
        &self.inner.addr
    }

    /// Number of peers in the local directory copy.
    pub fn directory_size(&self) -> usize {
        self.inner.engine.lock().directory().len()
    }

    /// Directory digest (for convergence checks in tests).
    pub fn directory_digest(&self) -> u64 {
        self.inner.engine.lock().directory().digest()
    }

    /// Publish an XML document: index locally and gossip the new filter.
    pub fn publish(&self, xml: &str) -> Result<u64, PlanetPError> {
        let doc = self.inner.store.lock().publish(xml)?;
        let payload = self.inner.my_payload();
        self.inner.engine.lock().local_update(payload);
        Ok(doc)
    }

    /// Ranked TFxIPF search across the community.
    pub fn search_ranked(&self, raw_query: &str, k: usize) -> Result<Vec<LiveHit>, PlanetPError> {
        self.inner.ranked_search(raw_query, k)
    }

    /// Ask `proxy` to run the ranked search on our behalf — the §7.2
    /// "proxy search" extension for bandwidth-limited peers. The proxy
    /// does the fan-out; we pay for one request and one reply.
    pub fn search_via_proxy(
        &self,
        proxy: PeerId,
        raw_query: &str,
        k: usize,
    ) -> Result<Vec<LiveHit>, PlanetPError> {
        let addr = self
            .inner
            .resolve(proxy)
            .ok_or_else(|| PlanetPError::UnknownPeer(format!("peer {proxy}")))?;
        match self.inner.rpc(
            &addr,
            &LiveMsg::ProxySearchRequest { query: raw_query.to_string(), k },
        ) {
            Ok(LiveMsg::ProxySearchResponse { hits }) => Ok(hits
                .into_iter()
                .map(|(peer, doc, score, xml)| LiveHit { peer, doc, score, xml })
                .collect()),
            Ok(_) => Err(PlanetPError::Protocol("unexpected proxy reply".into())),
            Err(e) => Err(PlanetPError::Network(e)),
        }
    }

    /// Exhaustive conjunction search across the community.
    pub fn search_exhaustive(&self, raw_query: &str) -> Result<Vec<LiveHit>, PlanetPError> {
        let analyzer = self.inner.store.lock().analyzer().clone();
        let q = parse_query(raw_query, &analyzer);
        if q.is_empty() {
            return Ok(Vec::new());
        }
        let candidates: Vec<(PeerId, Option<String>)> = {
            let engine = self.inner.engine.lock();
            engine
                .directory()
                .iter()
                .filter_map(|(pid, e)| {
                    let p = e.payload.as_ref()?;
                    let f = p.bloom.decompress()?;
                    q.terms
                        .iter()
                        .all(|t| f.contains(t))
                        .then(|| (pid, Some(p.addr.clone())))
                })
                .collect()
        };
        let mut hits = Vec::new();
        for (pid, addr) in candidates {
            if pid == self.inner.id {
                let store = self.inner.store.lock();
                for d in store.search_conjunction(&q.terms) {
                    let r = store.get(d).expect("doc exists");
                    hits.push(LiveHit { peer: pid, doc: d, score: 0.0, xml: r.xml.clone() });
                }
                continue;
            }
            let Some(addr) = addr else { continue };
            if let Ok(LiveMsg::ExhaustiveResponse { docs }) = self
                .inner
                .rpc(&addr, &LiveMsg::ExhaustiveRequest { terms: q.terms.clone() })
            {
                for (doc, xml) in docs {
                    hits.push(LiveHit { peer: pid, doc, score: 0.0, xml });
                }
            } else {
                self.inner
                    .engine
                    .lock()
                    .on_contact_failed(pid, self.inner.now_ms());
            }
        }
        hits.sort_by_key(|a| (a.peer, a.doc));
        Ok(hits)
    }

    /// Stop the node's threads. Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for LiveNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}
