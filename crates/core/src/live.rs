//! The live TCP runtime.
//!
//! Each [`LiveNode`] is one real peer: a TCP listener, a gossip loop
//! thread running a [`GossipEngine`] over compressed Bloom filters, a
//! local data store, and RPC handlers for ranked and exhaustive search.
//! This is the analog of the paper's Java prototype, used to validate
//! that the protocol converges over real sockets (the paper validated
//! its simulator against a 200-peer cluster deployment the same way).
//!
//! Peer addresses ride inside the gossip payload: a peer's
//! [`LivePayload`] carries its socket address next to its compressed
//! filter, so learning of a peer via gossip also teaches how to reach
//! it.
//!
//! ## Failure model
//!
//! The runtime assumes peers fail: connections are refused, frames
//! arrive truncated or corrupt, replies never come. Three layers deal
//! with this (see `DESIGN.md` §8):
//!
//! - every logical contact (a gossip exchange, a search RPC) retries
//!   with capped exponential backoff ([`RetryPolicy`]);
//! - a per-peer [`PeerHealth`] table turns *consecutive* exhausted
//!   contacts into `Healthy → Suspect → Offline` transitions; only the
//!   offline transition feeds the gossip directory's offline marking
//!   (the paper's §3 rule), and offline peers are skipped until their
//!   backoff expires;
//! - searches degrade gracefully: dead peers are skipped after bounded
//!   retries, the rank order keeps draining, and every result carries
//!   a [`SearchCoverage`] saying how much of the community actually
//!   answered.
//!
//! A [`FaultInjector`] can be plugged into [`LiveConfig`] to exercise
//! all of it deterministically (`crates/core/tests/live_faults.rs`).

use parking_lot::{Mutex, MutexGuard};
use planetp_bloom::{BloomDiff, BloomFilter, CompressedBloom, HashedKey};
use planetp_bloomtree::{TreeConfig, TreeMetrics};
use planetp_gossip::{
    DirEntry, Directory, EngineStats, GossipConfig, GossipEngine, Message, Payload, PeerId,
    PeerStatus, SpeedClass,
};
use planetp_obs::{
    names, Counter, Gauge, Histogram, MetricsSnapshot, Registry, LATENCY_MS_BUCKETS,
    SIZE_BYTES_BUCKETS,
};
use planetp_search::{
    adaptive_p, IpfTable, PeerFilterRef, PeerVersion, QueryCache, QueryCacheMetrics,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use planetp_replica::{
    AdmitDecision, HostedReplica, OwnDoc, PeerView, ReplicaAd, ReplicaConfig, ReplicaEngine,
    ReplicaMetrics, AD_WIRE_BYTES,
};

use crate::admission::{Admission, AdmissionConfig, AdmissionGate};
use crate::conn::{is_connection_level, ConnConfig, ConnMetrics, ConnPool, RpcConnInfo};
use crate::datastore::{content_hash, LocalDataStore};
use crate::durable::{DurableConfig, DurableStore, StoreMetrics, WalRecord};
use crate::error::PlanetPError;
use crate::faults::{Direction, FaultInjector};
use crate::health::{splitmix64, HealthConfig, PeerHealth, PeerHealthEntry, RetryPolicy};
use crate::pool::{ScopedJob, WorkerPool};
use crate::query::parse_query;
use crate::wire::{Frame, FrameMeta, Priority};

/// Is `PLANETP_DEBUG` set? Gates the runtime's debug-level logging of
/// swallowed protocol errors (stderr; no logging dependency).
fn debug_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("PLANETP_DEBUG").is_some())
}

macro_rules! debug_log {
    ($($arg:tt)*) => {
        if debug_enabled() {
            eprintln!($($arg)*);
        }
    };
}

/// What a live peer gossips about itself: its address, its compressed
/// Bloom filter, and (when replication is on) its replication ad.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LivePayload {
    /// Socket address ("127.0.0.1:port").
    pub addr: String,
    /// Golomb-compressed filter summarizing the peer's vocabulary.
    pub bloom: CompressedBloom,
    /// Replication ad: spare capacity, claimed availability, hosted
    /// count. `None` when the peer does not replicate (and on payloads
    /// persisted before replication existed — serde default).
    #[serde(default)]
    pub replica: Option<ReplicaAd>,
}

/// The delta form of [`LivePayload`]: a [`BloomDiff`] between
/// consecutive filter versions plus the sender's current replication
/// ad. The address rides only in the full form — a receiver applying a
/// delta already knows it from its stored entry. The ad is tiny and
/// changes with nearly every accepted replica, so shipping it whole in
/// every delta is cheaper than diffing it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveDelta {
    /// Filter change between the chained versions.
    pub diff: BloomDiff,
    /// The sender's replication ad as of this version.
    #[serde(default)]
    pub replica: Option<ReplicaAd>,
}

impl Payload for LivePayload {
    type Delta = LiveDelta;

    fn wire_bytes(&self) -> usize {
        6 + self.addr.len()
            + self.bloom.wire_bytes()
            + self.replica.map_or(1, |_| 1 + AD_WIRE_BYTES)
    }

    fn delta_wire_bytes(delta: &LiveDelta) -> usize {
        delta.diff.wire_bytes() + delta.replica.map_or(1, |_| 1 + AD_WIRE_BYTES)
    }

    fn apply_delta(&self, delta: &LiveDelta) -> Option<Self> {
        let bloom = self.bloom.apply_diff(&delta.diff)?;
        Some(LivePayload {
            addr: self.addr.clone(),
            bloom,
            // The delta's ad is authoritative: it is newer than ours.
            replica: delta.replica,
        })
    }
}

/// Everything that crosses the wire between live peers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LiveMsg {
    /// A gossip protocol message.
    Gossip {
        /// Sending peer.
        from: PeerId,
        /// The protocol message.
        msg: Message<LivePayload>,
    },
    /// Ranked-search RPC: score the local store with the given IPF view.
    SearchRequest {
        /// Analyzed query terms.
        terms: Vec<String>,
        /// The initiator's `(term, IPF)` view.
        ipf: Vec<(String, f64)>,
        /// Community size the IPF was computed over.
        num_peers: usize,
    },
    /// Reply: matching documents, scored under the initiator's IPF.
    SearchResponse {
        /// Matching documents.
        docs: Vec<SearchDoc>,
    },
    /// Exhaustive-search RPC: conjunction of analyzed terms.
    ExhaustiveRequest {
        /// Analyzed query terms.
        terms: Vec<String>,
    },
    /// Reply: documents containing every term (scores are zero).
    ExhaustiveResponse {
        /// Matching documents.
        docs: Vec<SearchDoc>,
    },
    /// Proxy search (§7.2 future work): a bandwidth-limited peer asks a
    /// well-connected one to run the whole ranked query on its behalf —
    /// the proxy fans out to the community and returns the final top-k.
    ProxySearchRequest {
        /// Raw query text (the proxy analyzes it with its own pipeline).
        query: String,
        /// Result-list size.
        k: usize,
    },
    /// Reply to `ProxySearchRequest`: `(peer, doc id, score, content
    /// hash, xml)` plus the proxy's view of how much of the community
    /// answered.
    ProxySearchResponse {
        /// Final ranked hits.
        hits: Vec<(PeerId, u64, f64, u64, String)>,
        /// Coverage of the proxy's fan-out.
        coverage: SearchCoverage,
    },
    /// Replication RPC: the sender asks the receiver to host a copy of
    /// one of its documents (availability repair, DESIGN.md §15).
    ReplicaPush {
        /// The document's home peer (the sender).
        home: PeerId,
        /// Its document id at the home peer.
        home_doc: u64,
        /// Content hash of `xml`; the receiver verifies it before
        /// paying any storage.
        hash: u64,
        /// The sender's hotness estimate, seeding the receiver's sketch
        /// so the fresh copy competes fairly in eviction.
        hotness: u64,
        /// The raw XML.
        xml: String,
    },
    /// Reply to `ReplicaPush`.
    ReplicaAccept {
        /// Echo of the pushed `home_doc`, correlating plan to outcome.
        home_doc: u64,
        /// Whether the receiver now hosts (or already hosted) the copy.
        accepted: bool,
    },
    /// `GetStats` RPC: ask a node for its unified metrics snapshot.
    /// Any client that speaks the framing can scrape any node (see
    /// [`scrape_stats`] and the `planetp stats` subcommand).
    StatsRequest,
    /// Reply to `StatsRequest`.
    StatsResponse {
        /// Point-in-time copy of the node's metrics registry.
        snapshot: MetricsSnapshot,
    },
    /// Overload shed: the receiver refused to serve the request because
    /// its admission queue was full (DESIGN.md §16). Explicitly not a
    /// failure — the peer is alive and saying so — and never charged to
    /// the suspect/offline health machine.
    Busy {
        /// How long the sender should back off before retrying.
        retry_after_ms: u64,
        /// The priority class the request was classified (and shed)
        /// under.
        class: Priority,
    },
}

/// The admission class of a request message when its sender attached
/// no explicit [`FrameMeta`] (legacy clients, gossip streams): searches
/// serve a waiting human, gossip and stats keep the community coherent,
/// replica pushes are deferrable background repair. Reply types never
/// pass admission on their own and default to Control.
fn priority_of(msg: &LiveMsg) -> Priority {
    match msg {
        LiveMsg::SearchRequest { .. }
        | LiveMsg::ExhaustiveRequest { .. }
        | LiveMsg::ProxySearchRequest { .. } => Priority::Interactive,
        LiveMsg::ReplicaPush { .. } => Priority::Background,
        _ => Priority::Control,
    }
}

/// Clip a wall-clock budget to the wire header's u32 ms field. The
/// all-ones value is the "no deadline" sentinel, so the cap stays one
/// below it.
fn budget_ms(d: Duration) -> u32 {
    d.as_millis().min(u128::from(u32::MAX - 1)) as u32
}

/// One document in a search reply, annotated for replica-aware
/// merging at the initiator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchDoc {
    /// Document id at the answering peer.
    pub doc: u64,
    /// TFxIPF score under the initiator's IPF view (0 for exhaustive).
    pub score: f64,
    /// Stable content hash; identical across every copy of the
    /// document, so initiators can collapse replica duplicates.
    pub hash: u64,
    /// `Some((home, home_doc))` when the answering peer holds this
    /// document as a replica for another peer.
    pub replica_of: Option<(PeerId, u64)>,
    /// The raw XML.
    pub xml: String,
}

/// Parallel fan-out settings for the search path — the paper's §5.2
/// rule of contacting the ranked candidates "in groups of m peers
/// simultaneously".
#[derive(Debug, Clone, Copy)]
pub struct FanoutConfig {
    /// Peers contacted concurrently per group (the paper's `m`). 1
    /// reproduces the strictly sequential rank-order walk.
    pub group_size: usize,
    /// Hard wall-clock budget for one peer contact, retries included,
    /// so one straggler cannot hold its whole group hostage. `None`
    /// derives the budget from the retry schedule (worst-case connect
    /// + read per attempt plus backoff sleeps), which never gives up
    /// on a peer earlier than the sequential path would have.
    pub contact_deadline: Option<Duration>,
    /// Worker threads in the node's shared search pool. 0 runs every
    /// group on the calling thread (sequential but deterministic).
    pub pool_threads: usize,
}

impl Default for FanoutConfig {
    fn default() -> Self {
        Self {
            group_size: 4,
            contact_deadline: None,
            pool_threads: 4,
        }
    }
}

/// Configuration of a live node.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Gossip protocol settings. Tests shrink `base_interval_ms` so
    /// convergence takes milliseconds instead of minutes.
    pub gossip: GossipConfig,
    /// Connect/read timeout for peer contacts.
    pub io_timeout: Duration,
    /// RNG seed for the gossip engine.
    pub seed: u64,
    /// Retry schedule for gossip sends and search RPCs.
    pub retry: RetryPolicy,
    /// Suspect/offline thresholds and probe backoff.
    pub health: HealthConfig,
    /// Parallel group fan-out for search contacts.
    pub fanout: FanoutConfig,
    /// Bloofi front end for the query cache: on a term-cache miss only
    /// tree-surviving candidate filters are probed instead of every
    /// peer's. `None` restores the flat scan. The default tree lives in
    /// the paper's filter bit space, which every live peer publishes
    /// in, so all peers become bit-copy leaves and plans are unchanged
    /// bit for bit.
    pub bloom_tree: Option<TreeConfig>,
    /// Optional fault injector wrapping all socket I/O (tests; chaos
    /// runs). `None` costs one pointer check per operation.
    pub faults: Option<Arc<FaultInjector>>,
    /// Durable snapshot + WAL store for crash-restart recovery. `None`
    /// keeps the node fully in-memory (a crash loses everything, as
    /// before). With a data directory set, identity, documents, the
    /// node's own version pair, and the learned directory survive a
    /// kill, and startup runs recovery + an anti-entropy catch-up.
    pub durable: Option<DurableConfig>,
    /// Persistent connection pool (keep-alive gossip streams, one
    /// multiplexed RPC stream per peer, `TCP_NODELAY`, bounded server
    /// workers). `conn.enabled = false` restores connect-per-contact.
    pub conn: ConnConfig,
    /// Availability-aware autonomous replication (DESIGN.md §15). Off
    /// by default: the node neither advertises capacity nor pushes or
    /// accepts replicas, preserving the paper's one-copy behavior.
    pub replica: ReplicaConfig,
    /// Overload protection (DESIGN.md §16): a bounded, class-aware
    /// admission gate in front of the server workers. Under saturation
    /// the lowest class queued is shed first — with an explicit `Busy`
    /// reply, never a silent timeout — and frames whose propagated
    /// deadline already passed are dropped unserved.
    pub admission: AdmissionConfig,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            gossip: GossipConfig::default(),
            io_timeout: Duration::from_secs(5),
            seed: 1,
            retry: RetryPolicy::default(),
            health: HealthConfig::default(),
            fanout: FanoutConfig::default(),
            bloom_tree: Some(TreeConfig::default()),
            faults: None,
            durable: None,
            conn: ConnConfig::default(),
            replica: ReplicaConfig::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// How much of the community a search actually reached.
///
/// `peers_considered` is every directory entry whose filter made it a
/// candidate; of those, the adaptive stopping heuristic decides how
/// many to *attempt*. Every attempt lands in exactly one of
/// `peers_contacted` (answered), `peers_failed` (transport or protocol
/// error after retries), `peers_skipped` (known-offline, inside its
/// probe backoff — not even tried), or `peers_shed` (overloaded: the
/// peer answered `Busy`, or the client-side busy throttle skipped it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchCoverage {
    /// Candidate peers for the query (including this node).
    pub peers_considered: usize,
    /// Peers that answered (including this node's local store).
    pub peers_contacted: usize,
    /// Peers that failed after exhausting the retry budget.
    pub peers_failed: usize,
    /// Peers skipped because they were offline and inside backoff.
    pub peers_skipped: usize,
    /// Peers that shed the contact under overload: they replied `Busy`,
    /// or the client-side busy throttle skipped them for this round.
    /// Unlike `peers_failed`, these are alive — their absence is load
    /// shedding, not death — and they are never charged to peer health.
    #[serde(default)]
    pub peers_shed: usize,
    /// Was this node still catching up after a crash-restart when it
    /// answered? A recovering node plans against its *persisted*
    /// directory, which may trail the community until the first
    /// anti-entropy exchange completes.
    #[serde(default)]
    pub recovering: bool,
    /// Result-list entries only reachable through a replica: their
    /// content hash never appeared in any non-replica reply (typically
    /// because the home peer is offline). Nonzero means replication
    /// actively widened this search's coverage.
    #[serde(default)]
    pub recovered_via_replicas: usize,
}

impl SearchCoverage {
    /// Peers the search tried (or deliberately skipped as dead or
    /// overloaded).
    pub fn peers_attempted(&self) -> usize {
        self.peers_contacted + self.peers_failed + self.peers_skipped + self.peers_shed
    }

    /// Fraction of attempted peers that answered, in `[0, 1]`. A
    /// search that attempted nobody (empty community, empty query)
    /// counts as fully covered.
    pub fn coverage_fraction(&self) -> f64 {
        let attempted = self.peers_attempted();
        if attempted == 0 {
            1.0
        } else {
            self.peers_contacted as f64 / attempted as f64
        }
    }

    /// Did every attempted peer answer?
    pub fn is_complete(&self) -> bool {
        self.peers_failed == 0 && self.peers_skipped == 0 && self.peers_shed == 0
    }
}

/// A search result plus the coverage it was computed over.
#[derive(Debug, Clone)]
pub struct LiveSearchResult {
    /// Ranked hits (score-descending for ranked search).
    pub hits: Vec<LiveHit>,
    /// How much of the community answered.
    pub coverage: SearchCoverage,
}

/// Node-level counters and histograms. Every field is a handle into the
/// node's unified [`Registry`] — the same registry the gossip engine
/// records into once attached — so one [`MetricsSnapshot`] covers the
/// whole node. [`NodeStatsSnapshot`] remains as a thin compatibility
/// view over the failure counters.
#[derive(Debug)]
struct NodeStats {
    registry: Registry,
    malformed_frames: Counter,
    reply_failures: Counter,
    rpc_retries: Counter,
    rpc_failures: Counter,
    gossip_retries: Counter,
    gossip_failures: Counter,
    contacts_skipped: Counter,
    unexpected_replies: Counter,
    peers_marked_offline: Counter,
    peers_recovered: Counter,
    searches_degraded: Counter,
    health_suspects: Counter,
    bytes_out: Counter,
    bytes_in: Counter,
    frames_out: Counter,
    frames_in: Counter,
    rpc_latency_ms: Histogram,
    gossip_exchange_ms: Histogram,
    search_queries: Counter,
    search_peers_contacted: Counter,
    search_stopped_early: Counter,
    search_exhausted: Counter,
    search_groups: Counter,
    search_fanout_ms: Histogram,
    bloom_wire_bytes: Histogram,
    directory_size: Gauge,
    recovery_restarts: Counter,
    recovery_docs_restored: Counter,
    recovery_peers_restored: Counter,
    recovery_catchup_ms: Histogram,
    /// Initiator-side replica accounting. Registered on every node —
    /// even a node that hosts nothing collapses duplicates and counts
    /// recovered hits when *other* peers replicate.
    replica_dup_collapsed: Counter,
    replica_recovered_hits: Counter,
    /// Server-side admission gate accounting (DESIGN.md §16).
    admission_admitted: Counter,
    admission_shed: Counter,
    admission_expired: Counter,
    admission_queue_wait_ms: Histogram,
    /// `Busy` traffic: replies this node sent (as an overloaded
    /// server), received (as a client), and contacts the client-side
    /// busy throttle skipped.
    busy_sent: Counter,
    busy_received: Counter,
    busy_throttled_peers: Counter,
}

impl Default for NodeStats {
    fn default() -> Self {
        Self::in_registry(&Registry::new())
    }
}

impl NodeStats {
    fn in_registry(registry: &Registry) -> Self {
        Self {
            registry: registry.clone(),
            malformed_frames: registry.counter("net.malformed_frames"),
            reply_failures: registry.counter("net.reply_failures"),
            rpc_retries: registry.counter(names::RPC_RETRIES),
            rpc_failures: registry.counter(names::RPC_FAILURES),
            gossip_retries: registry.counter("gossip.retries"),
            gossip_failures: registry.counter("gossip.failures"),
            contacts_skipped: registry.counter("health.contacts_skipped"),
            unexpected_replies: registry.counter("rpc.unexpected_replies"),
            peers_marked_offline: registry.counter(names::HEALTH_OFFLINE),
            peers_recovered: registry.counter(names::HEALTH_RECOVERIES),
            searches_degraded: registry.counter("search.degraded"),
            health_suspects: registry.counter(names::HEALTH_SUSPECTS),
            bytes_out: registry.counter(names::NET_BYTES_OUT),
            bytes_in: registry.counter(names::NET_BYTES_IN),
            frames_out: registry.counter(names::NET_FRAMES_OUT),
            frames_in: registry.counter(names::NET_FRAMES_IN),
            rpc_latency_ms: registry.histogram(names::RPC_LATENCY_MS, LATENCY_MS_BUCKETS),
            gossip_exchange_ms: registry.histogram(names::GOSSIP_EXCHANGE_MS, LATENCY_MS_BUCKETS),
            search_queries: registry.counter(names::SEARCH_QUERIES),
            search_peers_contacted: registry.counter(names::SEARCH_PEERS_CONTACTED),
            search_stopped_early: registry.counter(names::SEARCH_STOPPED_EARLY),
            search_exhausted: registry.counter(names::SEARCH_EXHAUSTED),
            search_groups: registry.counter(names::SEARCH_GROUPS),
            search_fanout_ms: registry.histogram(names::SEARCH_FANOUT_MS, LATENCY_MS_BUCKETS),
            bloom_wire_bytes: registry.histogram(names::BLOOM_WIRE_BYTES, SIZE_BYTES_BUCKETS),
            directory_size: registry.gauge("gossip.directory_size"),
            recovery_restarts: registry.counter(names::RECOVERY_RESTARTS),
            recovery_docs_restored: registry.counter(names::RECOVERY_DOCS_RESTORED),
            recovery_peers_restored: registry.counter(names::RECOVERY_PEERS_RESTORED),
            recovery_catchup_ms: registry.histogram(names::RECOVERY_CATCHUP_MS, LATENCY_MS_BUCKETS),
            replica_dup_collapsed: registry.counter(names::REPLICA_DUP_COLLAPSED),
            replica_recovered_hits: registry.counter(names::REPLICA_RECOVERED_HITS),
            admission_admitted: registry.counter(names::ADMISSION_ADMITTED),
            admission_shed: registry.counter(names::ADMISSION_SHED),
            admission_expired: registry.counter(names::ADMISSION_EXPIRED),
            admission_queue_wait_ms: registry
                .histogram(names::ADMISSION_QUEUE_WAIT_MS, LATENCY_MS_BUCKETS),
            busy_sent: registry.counter(names::BUSY_SENT),
            busy_received: registry.counter(names::BUSY_RECEIVED),
            busy_throttled_peers: registry.counter(names::BUSY_THROTTLED_PEERS),
        }
    }
}

/// Point-in-time copy of a node's failure counters — the live-runtime
/// complement of the gossip engine's
/// [`EngineStats`](planetp_gossip::EngineStats) protocol counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStatsSnapshot {
    /// Inbound frames that failed to parse or arrived truncated.
    pub malformed_frames: u64,
    /// Failed attempts to write a reply on an accepted connection.
    pub reply_failures: u64,
    /// Search RPC attempts retried after a transport error.
    pub rpc_retries: u64,
    /// Search RPCs that exhausted their retry budget.
    pub rpc_failures: u64,
    /// Gossip exchanges retried after a transport error.
    pub gossip_retries: u64,
    /// Gossip exchanges that exhausted their retry budget.
    pub gossip_failures: u64,
    /// Contacts skipped because the peer was offline and in backoff.
    pub contacts_skipped: u64,
    /// RPC replies whose type did not match the request.
    pub unexpected_replies: u64,
    /// Health transitions into Offline (fed back to the directory).
    pub peers_marked_offline: u64,
    /// Suspect/offline peers that answered again.
    pub peers_recovered: u64,
    /// Searches that returned with incomplete coverage.
    pub searches_degraded: u64,
    /// Is the node still catching up after a crash-restart (recovered
    /// state loaded, first anti-entropy exchange not yet completed)?
    pub recovering: bool,
}

impl NodeStats {
    fn snapshot(&self, recovering: bool) -> NodeStatsSnapshot {
        NodeStatsSnapshot {
            recovering,
            malformed_frames: self.malformed_frames.get(),
            reply_failures: self.reply_failures.get(),
            rpc_retries: self.rpc_retries.get(),
            rpc_failures: self.rpc_failures.get(),
            gossip_retries: self.gossip_retries.get(),
            gossip_failures: self.gossip_failures.get(),
            contacts_skipped: self.contacts_skipped.get(),
            unexpected_replies: self.unexpected_replies.get(),
            peers_marked_offline: self.peers_marked_offline.get(),
            peers_recovered: self.peers_recovered.get(),
            searches_degraded: self.searches_degraded.get(),
        }
    }
}

/// One peer's decompressed filter plus the directory version —
/// `(status_version, bloom_version)`, compared as a pair so no bits
/// are folded away — it was decompressed at.
struct VersionedFilter {
    version: PeerVersion,
    filter: BloomFilter,
}

/// Query-side mirror of the directory: decompressed filters (the
/// gossip directory only holds compressed ones) and the ranking cache
/// built over them. Both are versioned by the directory, so a query
/// pays decompression and IPF work only for peers whose gossiped state
/// actually changed since the last query.
struct QueryState {
    filters: HashMap<PeerId, VersionedFilter>,
    cache: QueryCache,
}

/// How one peer's mirrored filter gets brought up to date during a
/// [`Inner::synced_query_state`] sync.
enum SyncWork {
    /// Mirror already matches the directory version.
    Current,
    /// Toggle these diff steps into the mirrored filter in place —
    /// the delta-gossip fast path that skips re-decompressing the
    /// full 50 KB payload on every version bump.
    Delta(Vec<LiveDelta>),
    /// Decompress the full payload from scratch.
    Full(CompressedBloom),
}

/// Where one fan-out slot's documents come from during the merge.
enum GroupSlot {
    /// This node's own store (answered inline, never dispatched).
    Local,
    /// Known-offline peer inside its probe backoff; never dispatched.
    Skipped,
    /// Peer inside its busy-throttle window (it recently shed us with
    /// `Busy`); probabilistically skipped for this round so a recovering
    /// server is not immediately re-saturated.
    Shed,
    /// Index into the dispatched jobs / replies of this group.
    Remote(usize),
}

/// One accepted connection as it cycles through the bounded server
/// worker pool (see [`Inner::serve_step`]).
struct ServerConn {
    stream: TcpStream,
    /// When to give up on an idle connection instead of requeueing it.
    idle_deadline: Instant,
    /// Inbound fault admission ran (it runs once, on first service).
    admitted: bool,
}

struct Inner {
    id: PeerId,
    addr: String,
    config: LiveConfig,
    engine: Mutex<GossipEngine<LivePayload>>,
    store: Mutex<LocalDataStore>,
    health: Mutex<PeerHealth>,
    stats: NodeStats,
    /// Fallback address book (bootstrap contact before its payload
    /// arrives).
    addr_book: Mutex<HashMap<PeerId, String>>,
    /// Decompressed-filter mirror + query cache (see [`QueryState`]).
    query_state: Mutex<QueryState>,
    /// The uncompressed local filter as of the last *gossiped*
    /// `bloom_version` — the diff base for delta publishes (§7.2).
    prev_bloom: Mutex<BloomFilter>,
    /// Shared search worker pool, spun up on the first query.
    pool: OnceLock<WorkerPool>,
    /// Persistent outbound connections (keep-alive gossip streams plus
    /// one multiplexed RPC stream per peer). `None` when pooling is
    /// disabled — every contact then connects and hangs up, as before.
    conns: Option<ConnPool<Vec<LiveMsg>>>,
    /// Bounded workers serving accepted connections (replaces the old
    /// thread-per-connection accept loop). Detached metrics: its queue
    /// gauge must not fight the search pool's `pool.queue_depth`.
    server_pool: WorkerPool,
    /// Class-aware admission gate the server workers pass before
    /// serving a frame (DESIGN.md §16).
    admission: AdmissionGate,
    /// Replication decision engine, when `config.replica.enabled`.
    /// Lock order: never held across the store lock — callers snapshot
    /// what they need (`origins()`, a plan) and drop it first.
    replica: Option<Mutex<ReplicaEngine>>,
    /// Snapshot + WAL store (crash-restart durability), when enabled.
    durable: Option<Mutex<DurableStore>>,
    /// Recovered from disk and not yet through the first successful
    /// anti-entropy exchange with the community.
    recovering: AtomicBool,
    /// When recovery finished loading state (feeds the catch-up
    /// histogram once the first exchange completes).
    recovered_at: Mutex<Option<Instant>>,
    epoch: Instant,
    shutdown: AtomicBool,
}

impl Inner {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn resolve(&self, peer: PeerId) -> Option<String> {
        if let Some(e) = self.engine.lock().directory().get(peer) {
            if let Some(p) = &e.payload {
                return Some(p.addr.clone());
            }
        }
        self.addr_book.lock().get(&peer).cloned()
    }

    /// Announce a new version of the local filter to the community:
    /// the directory entry gets the full compressed payload (what
    /// anti-entropy and chain-break fallbacks ship), while the rumor
    /// path gets the diff from the previously gossiped version so the
    /// update travels as a delta chain ("PlanetP sends diffs of the
    /// Bloom filters to save bandwidth", §7.2).
    fn gossip_own_update(&self) {
        let new_filter = self.store.lock().bloom().clone();
        let replica = self.current_replica_ad();
        let payload = LivePayload {
            addr: self.addr.clone(),
            bloom: CompressedBloom::compress_observed(&new_filter, &self.stats.bloom_wire_bytes),
            replica,
        };
        let mut prev = self.prev_bloom.lock();
        let mut engine = self.engine.lock();
        if prev.params() == new_filter.params() {
            let diff =
                BloomDiff::between_observed(&prev, &new_filter, &self.stats.bloom_wire_bytes);
            engine.local_update_delta(payload, LiveDelta { diff, replica });
        } else {
            // A filter rebuild changed the parameters: no meaningful
            // diff exists, gossip the full payload.
            engine.local_update(payload);
        }
        *prev = new_filter;
    }

    /// The replication ad this node currently gossips; `None` when
    /// replication is off.
    fn current_replica_ad(&self) -> Option<ReplicaAd> {
        self.replica.as_ref().map(|r| r.lock().local_ad())
    }

    // ------------------------------------------------------------------
    // Durability
    // ------------------------------------------------------------------

    fn is_recovering(&self) -> bool {
        self.recovering.load(Ordering::Relaxed)
    }

    /// Append one record to the durable store, if enabled. The error is
    /// surfaced so the publish path can report an (injected or real)
    /// crash; the store poisons itself on failure, so later appends are
    /// refused like writes from a dead process.
    fn durable_append(&self, rec: WalRecord) -> io::Result<()> {
        match &self.durable {
            Some(d) => d.lock().append(rec),
            None => Ok(()),
        }
    }

    /// Persist the node's own `(status_version, bloom_version)` pair as
    /// currently announced by the gossip engine.
    fn persist_own_versions(&self) -> io::Result<()> {
        if self.durable.is_none() {
            return Ok(());
        }
        let (sv, bv) = {
            let engine = self.engine.lock();
            let e = engine.directory().get(self.id).expect("self entry");
            (e.status_version, e.bloom_version)
        };
        self.durable_append(WalRecord::OwnVersions {
            status_version: sv,
            bloom_version: bv,
        })
    }

    /// Persist directory deltas: peers whose gossiped versions advanced
    /// past the stored copy, and peers that departed. Runs on the
    /// gossip loop after each tick; errors poison the store and are
    /// logged, not propagated (the loop must keep gossiping).
    fn persist_directory(&self) {
        let Some(d) = &self.durable else { return };
        let snapshot: Vec<(PeerId, u64, u32, Option<LivePayload>)> = {
            let engine = self.engine.lock();
            engine
                .directory()
                .iter()
                .map(|(pid, e)| (pid, e.status_version, e.bloom_version, e.payload.clone()))
                .collect()
        };
        let mut store = d.lock();
        if store.poisoned() {
            return;
        }
        if let Err(e) = store.sync_directory(&snapshot) {
            debug_log!(
                "planetp[{}]: failed to persist directory delta: {e}",
                self.id
            );
        }
    }

    /// The first successful gossip exchange after a recovered startup
    /// completes the anti-entropy catch-up: leave the recovering state
    /// and record how long the node served with a possibly-trailing
    /// directory.
    fn note_catchup_complete(&self) {
        if self.recovering.swap(false, Ordering::Relaxed) {
            if let Some(at) = self.recovered_at.lock().take() {
                self.stats
                    .recovery_catchup_ms
                    .observe(at.elapsed().as_millis() as u64);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault-aware socket plumbing
    // ------------------------------------------------------------------

    /// Open an outbound connection with timeouts set (and outbound
    /// faults applied). Used by the connect-per-contact path when
    /// pooling is disabled; the pooled path connects via [`ConnPool`].
    fn connect(&self, addr: &str) -> io::Result<TcpStream> {
        if let Some(f) = &self.config.faults {
            f.admit(Direction::Outbound)?;
        }
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        if self.config.conn.nodelay {
            let _ = stream.set_nodelay(true);
        }
        Ok(stream)
    }

    fn send(&self, dir: Direction, stream: &mut TcpStream, batch: &[LiveMsg]) -> io::Result<()> {
        let wire_bytes = match &self.config.faults {
            Some(f) => f.write_frame(dir, stream, batch)?,
            None => crate::wire::write_frame(stream, batch)?,
        };
        self.stats.bytes_out.add(wire_bytes as u64);
        self.stats.frames_out.inc();
        Ok(())
    }

    fn recv(&self, dir: Direction, stream: &mut TcpStream) -> io::Result<Option<Vec<LiveMsg>>> {
        let got = match &self.config.faults {
            Some(f) => f.read_frame_sized(dir, stream)?,
            None => crate::wire::read_frame_sized(stream)?,
        };
        Ok(got.map(|(batch, wire_bytes)| {
            self.stats.bytes_in.add(wire_bytes as u64);
            self.stats.frames_in.inc();
            batch
        }))
    }

    // ------------------------------------------------------------------
    // Health bookkeeping
    // ------------------------------------------------------------------

    /// A logical contact with `peer` succeeded after `latency`.
    fn note_contact_ok(&self, peer: PeerId, latency: Duration) {
        let t = {
            let mut h = self.health.lock();
            h.record_success(peer, self.now_ms(), latency.as_secs_f64() * 1_000.0)
        };
        if t.recovered() {
            self.stats.peers_recovered.inc();
            self.engine.lock().on_contact_recovered(peer);
        }
    }

    /// A logical contact with `peer` failed after exhausting retries.
    /// The suspect phase only counts; crossing the offline threshold
    /// feeds back into the gossip directory's offline marking so the
    /// peer stops being gossiped to as reachable (§3).
    fn note_contact_failed(&self, peer: PeerId, err: &io::Error) {
        let now = self.now_ms();
        let t = {
            let mut h = self.health.lock();
            h.record_failure(peer, now)
        };
        let mut engine = self.engine.lock();
        if t.became_offline() {
            self.stats.peers_marked_offline.inc();
            engine.on_contact_failed(peer, now);
        } else {
            if t.from != t.to {
                // A fresh Healthy -> Suspect transition (repeat
                // failures while already Suspect don't re-count).
                self.stats.health_suspects.inc();
            }
            engine.note_contact_suspect(peer);
        }
        debug_log!(
            "planetp[{}]: contact with peer {peer} failed ({err}); state {:?} -> {:?}",
            self.id,
            t.from,
            t.to
        );
    }

    /// Is `peer` offline and still inside its probe backoff?
    fn in_backoff(&self, peer: PeerId) -> bool {
        self.health.lock().should_skip(peer, self.now_ms())
    }

    /// `peer` answered `Busy`: feed the client-side throttle. Exactly
    /// like PR 7's stale reconnects, this is *not* a failure — the peer
    /// proved it is alive — so the suspect/offline machine and the
    /// retry budget are never charged.
    fn note_peer_busy(&self, peer: PeerId, retry_after_ms: u64) {
        self.stats.busy_received.inc();
        self.health
            .lock()
            .record_busy(peer, self.now_ms(), retry_after_ms);
    }

    /// Should this round probabilistically skip `peer` because it
    /// recently shed us with `Busy`? The salt folds in the current
    /// clock so each round re-rolls — a throttled peer is *mostly*
    /// skipped, not blacklisted.
    fn busy_throttled(&self, peer: PeerId) -> bool {
        let now = self.now_ms();
        let salt = splitmix64((u64::from(self.id) << 40) ^ now);
        self.health.lock().busy_throttled(peer, now, salt)
    }

    // ------------------------------------------------------------------
    // Gossip transport
    // ------------------------------------------------------------------

    /// Run one half of a gossip conversation over an open stream:
    /// handle `msg`, write back our responses, and keep alternating
    /// until either side has nothing more to say.
    fn converse(
        &self,
        stream: &mut TcpStream,
        from: PeerId,
        msg: Message<LivePayload>,
    ) -> io::Result<()> {
        let mut responses = self.engine.lock().handle_message(from, msg, self.now_ms());
        loop {
            let batch: Vec<LiveMsg> = responses
                .drain(..)
                .map(|(_, m)| LiveMsg::Gossip {
                    from: self.id,
                    msg: m,
                })
                .collect();
            let done = batch.is_empty();
            self.send(Direction::Inbound, stream, &batch)?;
            if done {
                return Ok(());
            }
            let Some(reply) = self.recv(Direction::Inbound, stream)? else {
                return Ok(());
            };
            if reply.is_empty() {
                return Ok(());
            }
            for m in reply {
                if let LiveMsg::Gossip { from, msg } = m {
                    responses.extend(self.engine.lock().handle_message(from, msg, self.now_ms()));
                }
            }
        }
    }

    /// The initiator's half of a gossip conversation over an open
    /// stream. A conversation ends at a clean frame boundary (one side
    /// sends an empty batch and the other reads it), which is what
    /// makes the stream reusable for the next round.
    ///
    /// `reused` marks a keep-alive stream from the pool: end-of-stream
    /// before the first reply then means the peer silently dropped its
    /// end while the stream idled, and is reported as a
    /// connection-level error so the caller can reconnect
    /// transparently. On a fresh stream it keeps its historical
    /// peer-hung-up-is-not-our-problem semantics.
    fn gossip_conversation(
        &self,
        stream: &mut TcpStream,
        msg: &Message<LivePayload>,
        reused: bool,
    ) -> io::Result<()> {
        self.send(
            Direction::Outbound,
            stream,
            &[LiveMsg::Gossip {
                from: self.id,
                msg: msg.clone(),
            }],
        )?;
        let mut first_reply = true;
        // Alternate until both sides go quiet.
        loop {
            let Some(batch) = self.recv(Direction::Outbound, stream)? else {
                if reused && first_reply {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "pooled stream closed before the first reply",
                    ));
                }
                return Ok(());
            };
            first_reply = false;
            if batch.is_empty() {
                return Ok(());
            }
            let mut responses = Vec::new();
            for m in batch {
                if let LiveMsg::Gossip { from, msg } = m {
                    responses.extend(self.engine.lock().handle_message(from, msg, self.now_ms()));
                }
            }
            let out: Vec<LiveMsg> = responses
                .into_iter()
                .map(|(_, m)| LiveMsg::Gossip {
                    from: self.id,
                    msg: m,
                })
                .collect();
            let done = out.is_empty();
            self.send(Direction::Outbound, stream, &out)?;
            if done {
                return Ok(());
            }
        }
    }

    /// One attempt at a full gossip exchange with `addr`. With pooling
    /// on, the stream comes from the keep-alive pool and goes back
    /// after a clean exchange; a connection-level failure on a reused
    /// stream is absorbed by one transparent fresh reconnect (counted
    /// as `conn.stale_reconnects`, never charged as a gossip retry).
    fn gossip_attempt(&self, addr: &str, msg: &Message<LivePayload>) -> io::Result<()> {
        let Some(pool) = &self.conns else {
            let mut stream = self.connect(addr)?;
            return self.gossip_conversation(&mut stream, msg, false);
        };
        let (mut stream, reused) = pool.checkout(addr)?;
        match self.gossip_conversation(&mut stream, msg, reused) {
            Ok(()) => {
                pool.check_in(addr, stream);
                Ok(())
            }
            Err(e) if reused && is_connection_level(&e) => {
                drop(stream);
                pool.note_stale_reconnect();
                let mut fresh = pool.checkout_fresh(addr)?;
                let res = self.gossip_conversation(&mut fresh, msg, false);
                if res.is_ok() {
                    pool.check_in(addr, fresh);
                }
                res
            }
            Err(e) => Err(e),
        }
    }

    /// Initiate a gossip exchange with `target`, retrying transient
    /// failures with capped exponential backoff before giving up and
    /// recording the failure.
    fn gossip_to(&self, target: PeerId, msg: Message<LivePayload>) {
        let Some(addr) = self.resolve(target) else {
            return;
        };
        if self.in_backoff(target) {
            self.stats.contacts_skipped.inc();
            return;
        }
        let salt = splitmix64((u64::from(self.id) << 32) | u64::from(target));
        let started = Instant::now();
        let mut result = self.gossip_attempt(&addr, &msg);
        let mut retry = 0u32;
        while result.is_err()
            && retry + 1 < self.config.retry.max_attempts.max(1)
            && !self.shutdown.load(Ordering::Relaxed)
        {
            retry += 1;
            self.stats.gossip_retries.inc();
            std::thread::sleep(self.config.retry.delay(retry, salt));
            result = self.gossip_attempt(&addr, &msg);
        }
        match result {
            Ok(()) => {
                self.stats
                    .gossip_exchange_ms
                    .observe(started.elapsed().as_millis() as u64);
                self.note_contact_ok(target, started.elapsed());
                self.note_catchup_complete();
            }
            Err(e) => {
                self.stats.gossip_failures.inc();
                self.note_contact_failed(target, &e);
            }
        }
    }

    // ------------------------------------------------------------------
    // Search RPCs
    // ------------------------------------------------------------------

    /// Worst-case wall clock for one logical peer contact under the
    /// retry schedule: each attempt can burn a connect plus a read
    /// timeout, with a capped backoff sleep before every retry.
    fn contact_budget(&self) -> Duration {
        let r = &self.config.retry;
        let attempts = u64::from(r.max_attempts.max(1));
        let per_attempt = 2 * self.config.io_timeout.as_millis() as u64;
        Duration::from_millis(attempts * per_attempt + (attempts - 1) * r.max_delay_ms)
    }

    /// Read deadline for a proxied search. The proxy's fan-out is
    /// grouped but still bounded by a full contact budget per
    /// candidate peer in the worst case (parallelism only shrinks it);
    /// a flat `io_timeout` would expire exactly when the proxy's fault
    /// tolerance is absorbing dead peers. Our directory size is the
    /// best local estimate of the proxy's candidate count.
    fn proxy_read_timeout(&self) -> Duration {
        let peers = self.engine.lock().directory().len().max(1) as u32;
        self.contact_budget() * peers + self.config.io_timeout
    }

    /// One synchronous RPC attempt (no retries). `read_timeout` sets
    /// the reply deadline — point RPCs use `io_timeout`, proxied
    /// searches a fan-out-sized budget.
    ///
    /// With pooling on, the request rides the peer's shared
    /// multiplexed stream under a correlation id; a stale pooled
    /// stream is replaced transparently inside the pool and reported
    /// via [`RpcConnInfo::stale_reconnect`] — the attempt still counts
    /// as a single success. Without pooling this is the original
    /// connect-send-read-hangup exchange (legacy frames, which carry no
    /// metadata — the server then classifies by message type).
    ///
    /// `meta` attaches the request's deadline budget and priority class
    /// for the receiver's admission gate.
    fn rpc_once(
        &self,
        addr: &str,
        request: &LiveMsg,
        read_timeout: Duration,
        meta: Option<FrameMeta>,
    ) -> io::Result<(LiveMsg, RpcConnInfo)> {
        if let Some(pool) = &self.conns {
            let batch = vec![request.clone()];
            let (reply, info) = pool.rpc_with_meta(addr, &batch, read_timeout, meta)?;
            self.stats.bytes_out.add(info.bytes_out);
            self.stats.frames_out.inc();
            self.stats.bytes_in.add(info.bytes_in);
            self.stats.frames_in.inc();
            let msg = reply
                .into_iter()
                .next()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty reply"))?;
            return Ok((msg, info));
        }
        let mut stream = self.connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        self.send(Direction::Outbound, &mut stream, &[request.clone()])?;
        let batch = self
            .recv(Direction::Outbound, &mut stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no reply"))?;
        batch
            .into_iter()
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty reply"))
            .map(|m| (m, RpcConnInfo::default()))
    }

    /// A search RPC to `peer` with the configured retry schedule;
    /// records health on the final outcome. Each attempt propagates its
    /// read timeout as the frame's deadline budget, so an overloaded
    /// receiver can drop the request once we have stopped listening. A
    /// `Busy` reply ends the schedule immediately — retrying into a
    /// queue that just shed us only deepens the overload — and is
    /// returned as a *successful* reply for the caller to classify.
    fn rpc_with_retry(
        &self,
        peer: PeerId,
        addr: &str,
        request: &LiveMsg,
        read_timeout: Duration,
    ) -> io::Result<LiveMsg> {
        let salt = splitmix64((u64::from(self.id) << 33) ^ u64::from(peer));
        let started = Instant::now();
        let meta = FrameMeta::with_deadline(priority_of(request), budget_ms(read_timeout));
        let mut last_err = None;
        for retry in 0..self.config.retry.max_attempts.max(1) {
            if retry > 0 {
                self.stats.rpc_retries.inc();
                std::thread::sleep(self.config.retry.delay(retry, salt));
            }
            let attempt_started = Instant::now();
            match self.rpc_once(addr, request, read_timeout, Some(meta)) {
                Ok((
                    LiveMsg::Busy {
                        retry_after_ms,
                        class,
                    },
                    _,
                )) => {
                    self.note_peer_busy(peer, retry_after_ms);
                    return Ok(LiveMsg::Busy {
                        retry_after_ms,
                        class,
                    });
                }
                Ok((reply, info)) => {
                    // Latency of the attempt that succeeded, not of
                    // the whole retry schedule (backoff sleeps would
                    // swamp the histogram).
                    self.stats
                        .rpc_latency_ms
                        .observe(attempt_started.elapsed().as_millis() as u64);
                    if info.stale_reconnect {
                        // The pool replaced a stale keep-alive stream
                        // under us: diagnostic only, never a failure.
                        self.health.lock().record_stale_reconnect(peer);
                    }
                    self.note_contact_ok(peer, started.elapsed());
                    return Ok(reply);
                }
                Err(e) => last_err = Some(e),
            }
        }
        let err = last_err.unwrap_or_else(|| io::Error::other("no attempts"));
        self.stats.rpc_failures.inc();
        self.note_contact_failed(peer, &err);
        Err(err)
    }

    /// A search RPC to `peer` that must conclude — retries included —
    /// within `deadline`. The schedule is the configured retry policy,
    /// but a retry runs only if its backoff sleep still fits inside
    /// the deadline, and each attempt's read timeout is clipped to the
    /// time remaining. Health and stats are recorded on the final
    /// outcome exactly as in [`Self::rpc_with_retry`].
    fn rpc_with_deadline(
        &self,
        peer: PeerId,
        addr: &str,
        request: &LiveMsg,
        deadline: Duration,
    ) -> io::Result<LiveMsg> {
        let salt = splitmix64((u64::from(self.id) << 33) ^ u64::from(peer));
        let started = Instant::now();
        let mut last_err = None;
        for retry in 0..self.config.retry.max_attempts.max(1) {
            if retry > 0 {
                let delay = self.config.retry.delay(retry, salt);
                if started.elapsed() + delay >= deadline {
                    break;
                }
                self.stats.rpc_retries.inc();
                std::thread::sleep(delay);
            }
            let remaining = deadline.saturating_sub(started.elapsed());
            if remaining.is_zero() {
                break;
            }
            let attempt_timeout = remaining.min(self.config.io_timeout);
            // The remaining budget rides the frame header: a receiver
            // that cannot serve before it passes drops the request
            // instead of burning a worker on an abandoned reply.
            let meta = FrameMeta::with_deadline(priority_of(request), budget_ms(attempt_timeout));
            let attempt_started = Instant::now();
            match self.rpc_once(addr, request, attempt_timeout, Some(meta)) {
                Ok((
                    LiveMsg::Busy {
                        retry_after_ms,
                        class,
                    },
                    _,
                )) => {
                    self.note_peer_busy(peer, retry_after_ms);
                    return Ok(LiveMsg::Busy {
                        retry_after_ms,
                        class,
                    });
                }
                Ok((reply, info)) => {
                    self.stats
                        .rpc_latency_ms
                        .observe(attempt_started.elapsed().as_millis() as u64);
                    if info.stale_reconnect {
                        self.health.lock().record_stale_reconnect(peer);
                    }
                    self.note_contact_ok(peer, started.elapsed());
                    return Ok(reply);
                }
                Err(e) => last_err = Some(e),
            }
        }
        let err = last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::TimedOut, "contact deadline exhausted")
        });
        self.stats.rpc_failures.inc();
        self.note_contact_failed(peer, &err);
        Err(err)
    }

    /// A single-attempt RPC classified [`Priority::Background`], for
    /// replica pushes: no retries (the next replication round re-plans
    /// from scratch anyway, so a second attempt into an overloaded or
    /// flaky peer is pure added load), deadline budget propagated, and
    /// a `Busy` reply surfaced for the caller to skip quietly. Health
    /// is still recorded on transport outcomes.
    fn rpc_background(
        &self,
        peer: PeerId,
        addr: &str,
        request: &LiveMsg,
        read_timeout: Duration,
    ) -> io::Result<LiveMsg> {
        let started = Instant::now();
        let meta = FrameMeta::with_deadline(Priority::Background, budget_ms(read_timeout));
        match self.rpc_once(addr, request, read_timeout, Some(meta)) {
            Ok((
                LiveMsg::Busy {
                    retry_after_ms,
                    class,
                },
                _,
            )) => {
                self.note_peer_busy(peer, retry_after_ms);
                Ok(LiveMsg::Busy {
                    retry_after_ms,
                    class,
                })
            }
            Ok((reply, info)) => {
                self.stats
                    .rpc_latency_ms
                    .observe(started.elapsed().as_millis() as u64);
                if info.stale_reconnect {
                    self.health.lock().record_stale_reconnect(peer);
                }
                self.note_contact_ok(peer, started.elapsed());
                Ok(reply)
            }
            Err(e) => {
                self.stats.rpc_failures.inc();
                self.note_contact_failed(peer, &e);
                Err(e)
            }
        }
    }

    /// The shared search worker pool, spun up on first use so nodes
    /// that never search never pay for the threads.
    fn pool(&self) -> &WorkerPool {
        self.pool.get_or_init(|| {
            WorkerPool::in_registry(self.config.fanout.pool_threads, &self.stats.registry)
        })
    }

    /// Per-contact wall-clock budget for fan-out dispatches.
    fn fanout_deadline(&self) -> Duration {
        self.config
            .fanout
            .contact_deadline
            .unwrap_or_else(|| self.contact_budget())
    }

    /// Lock the query-side mirror, bring it up to date with the gossip
    /// directory, and return the guard plus the candidate list in
    /// stable ascending-peer-id order as `(peer, addr, version)`.
    ///
    /// A peer's filter is decompressed only when its directory version
    /// — the `(status_version, bloom_version)` pair — advanced since
    /// the last query; everyone else's 50 KB stays untouched. When the
    /// version advanced *and* the gossip engine still holds the delta
    /// chain that carried the update, the diff steps are toggled into
    /// the already-decompressed mirror in place instead of paying a
    /// full decompression — the delta wire form applied end to end.
    /// Departed peers are evicted so the mirror cannot grow stale
    /// entries, and the version list is exactly what the query cache
    /// keys its invalidation on.
    fn synced_query_state(
        &self,
    ) -> (
        MutexGuard<'_, QueryState>,
        Vec<(PeerId, String, PeerVersion)>,
    ) {
        let mut qs = self.query_state.lock();
        // Snapshot the directory under a short engine lock; the
        // decompression / delta-apply work happens after it is released.
        let mut snapshot: Vec<(PeerId, String, PeerVersion, SyncWork)> = {
            let engine = self.engine.lock();
            let mut snap = Vec::new();
            for (pid, e) in engine.directory().iter() {
                if let Some(p) = &e.payload {
                    let version = (e.status_version, e.bloom_version);
                    let work = match qs.filters.get(&pid) {
                        Some(v) if v.version == version => SyncWork::Current,
                        // Same incarnation, strictly behind: the stored
                        // chain may cover exactly our gap.
                        Some(v)
                            if v.version.0 == e.status_version && v.version.1 < e.bloom_version =>
                        {
                            match engine.delta_steps(
                                pid,
                                e.status_version,
                                v.version.1,
                                e.bloom_version,
                            ) {
                                Some(steps) => SyncWork::Delta(steps),
                                None => SyncWork::Full(p.bloom.clone()),
                            }
                        }
                        _ => SyncWork::Full(p.bloom.clone()),
                    };
                    snap.push((pid, p.addr.clone(), version, work));
                }
            }
            snap
        };
        snapshot.sort_by_key(|(pid, _, _, _)| *pid);
        for (pid, _, version, work) in &snapshot {
            match work {
                SyncWork::Current => {}
                SyncWork::Delta(steps) => {
                    // Toggle the changed bits into the mirrored filter.
                    // A corrupt step drops the peer from the query view
                    // (never rank on half-applied data); the next sync
                    // re-decompresses the full payload from scratch.
                    let applied = match qs.filters.get_mut(pid) {
                        Some(v) => {
                            let ok = steps.iter().all(|d| d.diff.apply_in_place(&mut v.filter));
                            if ok {
                                v.version = *version;
                            }
                            ok
                        }
                        None => false,
                    };
                    if !applied {
                        qs.filters.remove(pid);
                    }
                }
                SyncWork::Full(b) => match b.decompress() {
                    Some(filter) => {
                        qs.filters.insert(
                            *pid,
                            VersionedFilter {
                                version: *version,
                                filter,
                            },
                        );
                    }
                    // Corrupt filter: drop the peer from the query view
                    // rather than ranking it on stale data.
                    None => {
                        qs.filters.remove(pid);
                    }
                },
            }
        }
        qs.filters.retain(|pid, _| {
            snapshot
                .binary_search_by_key(pid, |(p, _, _, _)| *p)
                .is_ok()
        });
        let owners: Vec<(PeerId, String, PeerVersion)> = snapshot
            .into_iter()
            .filter(|(pid, _, _, _)| qs.filters.contains_key(pid))
            .map(|(pid, addr, version, _)| (pid, addr, version))
            .collect();
        (qs, owners)
    }

    /// Dispatch one group of search contacts: every remote member goes
    /// to the worker pool concurrently under the fan-out deadline,
    /// while local / backed-off members are classified for the caller
    /// to merge. Returns per-member slots plus the replies indexed by
    /// [`GroupSlot::Remote`].
    fn dispatch_group(
        &self,
        members: &[(PeerId, &str)],
        request: &LiveMsg,
        deadline: Duration,
    ) -> (Vec<GroupSlot>, Vec<Option<io::Result<LiveMsg>>>) {
        let mut slots = Vec::with_capacity(members.len());
        let mut jobs: Vec<ScopedJob<'_, io::Result<LiveMsg>>> = Vec::new();
        for &(pid, addr) in members {
            if pid == self.id {
                slots.push(GroupSlot::Local);
            } else if self.in_backoff(pid) {
                slots.push(GroupSlot::Skipped);
            } else if self.busy_throttled(pid) {
                // The peer shed us with `Busy` recently: mostly leave
                // it alone this round instead of re-saturating it.
                slots.push(GroupSlot::Shed);
                self.stats.busy_throttled_peers.inc();
            } else {
                let addr = addr.to_string();
                slots.push(GroupSlot::Remote(jobs.len()));
                jobs.push(Box::new(move || {
                    self.rpc_with_deadline(pid, &addr, request, deadline)
                }));
            }
        }
        if jobs.is_empty() {
            // Nothing was dispatched (all local or skipped): a ~0 ms
            // sample here would skew the fan-out histogram and the
            // group counter the bench figures read.
            return (slots, Vec::new());
        }
        let started = Instant::now();
        let replies = self.pool().run_all(jobs);
        self.stats.search_groups.inc();
        self.stats
            .search_fanout_ms
            .observe(started.elapsed().as_millis() as u64);
        (slots, replies)
    }

    /// Ranked TFxIPF search across the community (shared by the node
    /// API and the proxy-search handler) with the configured group
    /// size. Degrades gracefully: dead peers are skipped or cut off at
    /// the deadline, the rank order keeps draining, and the coverage
    /// summary accounts for every peer the search attempted.
    fn ranked_search(&self, raw_query: &str, k: usize) -> Result<LiveSearchResult, PlanetPError> {
        self.ranked_search_with(raw_query, k, self.config.fanout.group_size)
    }

    /// [`Self::ranked_search`] with an explicit group size `m`: each
    /// group of the ranked candidate order is contacted simultaneously
    /// on the worker pool, replies are merged back in rank order, and
    /// §5.2's adaptive stopping is evaluated per peer exactly as in
    /// the sequential walk (`m = 1` reproduces it contact for
    /// contact). Stopping mid-group abandons only the not-yet-merged
    /// replies of that group — coverage counts attempts, and every
    /// attempt was already in flight.
    fn ranked_search_with(
        &self,
        raw_query: &str,
        k: usize,
        group_size: usize,
    ) -> Result<LiveSearchResult, PlanetPError> {
        let analyzer = self.store.lock().analyzer().clone();
        let q = parse_query(raw_query, &analyzer);
        if q.is_empty() {
            return Ok(LiveSearchResult {
                hits: Vec::new(),
                coverage: SearchCoverage::default(),
            });
        }
        self.stats.search_queries.inc();
        // Plan against the versioned mirror: decompression and IPF /
        // ranking work is paid only for peers whose gossiped state
        // changed since the last query, and every filter is borrowed —
        // nothing on this path clones a Bloom filter.
        let (plan, owners) = {
            let (mut qs, owners) = self.synced_query_state();
            let QueryState { filters, cache } = &mut *qs;
            let view: Vec<PeerFilterRef<'_>> = owners
                .iter()
                .map(|(pid, _, version)| PeerFilterRef {
                    id: u64::from(*pid),
                    version: *version,
                    filter: &filters[pid].filter,
                })
                .collect();
            (cache.plan(&q.terms, &view), owners)
        };
        let n = owners.len();
        let patience = adaptive_p(n, k);
        let mut coverage = SearchCoverage {
            peers_considered: n,
            recovering: self.is_recovering(),
            ..SearchCoverage::default()
        };
        let request = LiveMsg::SearchRequest {
            terms: q.terms.clone(),
            ipf: plan.ipf.to_pairs(),
            num_peers: n,
        };
        let deadline = self.fanout_deadline();
        let mut top: Vec<LiveHit> = Vec::new();
        // Content hashes seen in a *home* (non-replica) copy: a kept
        // replica hit whose hash never shows up here was genuinely
        // recovered — no reachable peer held the original.
        let mut home_seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut dup_collapsed = 0u64;
        let mut dry = 0usize;
        let mut stopped_early = false;
        'groups: for group in plan.ranked.chunks(group_size.max(1)) {
            let members: Vec<(PeerId, &str)> = group
                .iter()
                .map(|rp| {
                    let (pid, addr, _) = &owners[rp.peer];
                    (*pid, addr.as_str())
                })
                .collect();
            let (slots, mut replies) = self.dispatch_group(&members, &request, deadline);
            // Merge in rank order, with the same bookkeeping the
            // sequential walk kept per contact.
            for (rp, slot) in group.iter().zip(slots) {
                let (pid, _, _) = &owners[rp.peer];
                let docs: Vec<SearchDoc> = match slot {
                    GroupSlot::Local => {
                        coverage.peers_contacted += 1;
                        let origins = self.replica_origins();
                        let store = self.store.lock();
                        planetp_search::score_index(store.index(), &q.terms, &plan.ipf)
                            .into_iter()
                            .filter_map(|(d, s)| {
                                store.get(d).map(|r| SearchDoc {
                                    doc: d,
                                    score: s,
                                    hash: r.hash,
                                    replica_of: origins.get(&d).copied(),
                                    xml: r.xml.clone(),
                                })
                            })
                            .collect()
                    }
                    GroupSlot::Skipped => {
                        coverage.peers_skipped += 1;
                        self.stats.contacts_skipped.inc();
                        continue;
                    }
                    GroupSlot::Shed => {
                        coverage.peers_shed += 1;
                        continue;
                    }
                    GroupSlot::Remote(i) => match replies[i].take() {
                        Some(Ok(LiveMsg::SearchResponse { docs })) => {
                            coverage.peers_contacted += 1;
                            docs
                        }
                        Some(Ok(LiveMsg::Busy { .. })) => {
                            // The peer is alive but overloaded: shed,
                            // not failed — health was already fed by
                            // the RPC layer.
                            coverage.peers_shed += 1;
                            continue;
                        }
                        Some(Ok(other)) => {
                            self.stats.unexpected_replies.inc();
                            debug_log!(
                                "planetp[{}]: unexpected search reply from peer {pid}: {other:?}",
                                self.id
                            );
                            coverage.peers_failed += 1;
                            continue;
                        }
                        Some(Err(_)) | None => {
                            coverage.peers_failed += 1;
                            continue;
                        }
                    },
                };
                let mut contributed = false;
                for sd in docs {
                    // A corrupt or hostile peer could ship NaN/infinite
                    // scores; drop them instead of letting them poison
                    // the ranking.
                    if !sd.score.is_finite() {
                        debug_log!(
                            "planetp[{}]: dropped non-finite score from peer {pid}",
                            self.id
                        );
                        continue;
                    }
                    if sd.replica_of.is_none() {
                        home_seen.insert(sd.hash);
                    }
                    let hit = LiveHit {
                        peer: *pid,
                        doc: sd.doc,
                        score: sd.score,
                        hash: sd.hash,
                        replica_of: sd.replica_of,
                        xml: sd.xml,
                    };
                    // Collapse replica duplicates: the same content can
                    // arrive from its home and from any holder. Keep
                    // the best-scored copy (ties keep the first seen).
                    if let Some(i) = top.iter().position(|h| h.hash == hit.hash) {
                        dup_collapsed += 1;
                        if hit.score > top[i].score {
                            top[i] = hit;
                            contributed = true;
                        }
                        continue;
                    }
                    if offer_hit(&mut top, hit, k) {
                        contributed = true;
                    }
                }
                if contributed {
                    dry = 0;
                } else {
                    dry += 1;
                }
                if top.len() >= k && dry >= patience {
                    stopped_early = true;
                    break 'groups;
                }
            }
        }
        top.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| (a.peer, a.doc).cmp(&(b.peer, b.doc)))
        });
        coverage.recovered_via_replicas = top
            .iter()
            .filter(|h| h.replica_of.is_some() && !home_seen.contains(&h.hash))
            .count();
        if dup_collapsed > 0 {
            self.stats.replica_dup_collapsed.add(dup_collapsed);
        }
        if coverage.recovered_via_replicas > 0 {
            self.stats
                .replica_recovered_hits
                .add(coverage.recovered_via_replicas as u64);
        }
        // The paper's Fig 6 metric: how many peers the adaptive
        // stopping heuristic actually contacted, and whether it cut
        // the rank order short or drained it.
        self.stats
            .search_peers_contacted
            .add(coverage.peers_contacted as u64);
        if stopped_early {
            self.stats.search_stopped_early.inc();
        } else {
            self.stats.search_exhausted.inc();
        }
        if !coverage.is_complete() {
            self.stats.searches_degraded.inc();
        }
        Ok(LiveSearchResult {
            hits: top,
            coverage,
        })
    }

    /// Exhaustive conjunction search (§5.1). Candidates come from the
    /// same versioned filter mirror as ranked search (hashing each
    /// query term once and probing every filter by precomputed hash),
    /// and all remote candidates are contacted in one parallel batch
    /// on the worker pool under the fan-out deadline.
    fn exhaustive_search(&self, raw_query: &str) -> Result<LiveSearchResult, PlanetPError> {
        let analyzer = self.store.lock().analyzer().clone();
        let q = parse_query(raw_query, &analyzer);
        if q.is_empty() {
            return Ok(LiveSearchResult {
                hits: Vec::new(),
                coverage: SearchCoverage::default(),
            });
        }
        let keys: Vec<HashedKey> = q.terms.iter().map(|t| HashedKey::new(t)).collect();
        let candidates: Vec<(PeerId, String)> = {
            let (qs, owners) = self.synced_query_state();
            owners
                .into_iter()
                .filter(|(pid, _, _)| qs.filters[pid].filter.count_hits_hashed(&keys) == keys.len())
                .map(|(pid, addr, _)| (pid, addr))
                .collect()
        };
        let mut coverage = SearchCoverage {
            peers_considered: candidates.len(),
            recovering: self.is_recovering(),
            ..SearchCoverage::default()
        };
        let request = LiveMsg::ExhaustiveRequest {
            terms: q.terms.clone(),
        };
        let members: Vec<(PeerId, &str)> = candidates
            .iter()
            .map(|(pid, addr)| (*pid, addr.as_str()))
            .collect();
        let (slots, mut replies) = self.dispatch_group(&members, &request, self.fanout_deadline());
        // Replica dedup state: content hash → index into `hits`. Home
        // copies are preferred over replicas, first-seen otherwise.
        struct ExhaustiveMerge {
            hits: Vec<LiveHit>,
            by_hash: HashMap<u64, usize>,
            home_seen: std::collections::HashSet<u64>,
            dup_collapsed: u64,
        }
        impl ExhaustiveMerge {
            fn offer(&mut self, hit: LiveHit) {
                if hit.replica_of.is_none() {
                    self.home_seen.insert(hit.hash);
                }
                match self.by_hash.entry(hit.hash) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        self.dup_collapsed += 1;
                        let i = *e.get();
                        if self.hits[i].replica_of.is_some() && hit.replica_of.is_none() {
                            self.hits[i] = hit;
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(self.hits.len());
                        self.hits.push(hit);
                    }
                }
            }
        }
        let mut merge = ExhaustiveMerge {
            hits: Vec::new(),
            by_hash: HashMap::new(),
            home_seen: std::collections::HashSet::new(),
            dup_collapsed: 0,
        };
        for ((pid, _), slot) in candidates.iter().zip(slots) {
            match slot {
                GroupSlot::Local => {
                    coverage.peers_contacted += 1;
                    let origins = self.replica_origins();
                    let store = self.store.lock();
                    for d in store.search_conjunction(&q.terms) {
                        let r = store.get(d).expect("doc exists");
                        merge.offer(LiveHit {
                            peer: *pid,
                            doc: d,
                            score: 0.0,
                            hash: r.hash,
                            replica_of: origins.get(&d).copied(),
                            xml: r.xml.clone(),
                        });
                    }
                }
                GroupSlot::Skipped => {
                    coverage.peers_skipped += 1;
                    self.stats.contacts_skipped.inc();
                }
                GroupSlot::Shed => {
                    coverage.peers_shed += 1;
                }
                GroupSlot::Remote(i) => match replies[i].take() {
                    Some(Ok(LiveMsg::ExhaustiveResponse { docs })) => {
                        coverage.peers_contacted += 1;
                        for sd in docs {
                            merge.offer(LiveHit {
                                peer: *pid,
                                doc: sd.doc,
                                score: 0.0,
                                hash: sd.hash,
                                replica_of: sd.replica_of,
                                xml: sd.xml,
                            });
                        }
                    }
                    Some(Ok(LiveMsg::Busy { .. })) => {
                        coverage.peers_shed += 1;
                    }
                    Some(Ok(other)) => {
                        self.stats.unexpected_replies.inc();
                        debug_log!(
                            "planetp[{}]: unexpected exhaustive reply from {pid}: {other:?}",
                            self.id
                        );
                        coverage.peers_failed += 1;
                    }
                    Some(Err(_)) | None => {
                        coverage.peers_failed += 1;
                    }
                },
            }
        }
        let ExhaustiveMerge {
            mut hits,
            home_seen,
            dup_collapsed,
            ..
        } = merge;
        hits.sort_by_key(|a| (a.peer, a.doc));
        coverage.recovered_via_replicas = hits
            .iter()
            .filter(|h| h.replica_of.is_some() && !home_seen.contains(&h.hash))
            .count();
        if dup_collapsed > 0 {
            self.stats.replica_dup_collapsed.add(dup_collapsed);
        }
        if coverage.recovered_via_replicas > 0 {
            self.stats
                .replica_recovered_hits
                .add(coverage.recovered_via_replicas as u64);
        }
        if !coverage.is_complete() {
            self.stats.searches_degraded.inc();
        }
        Ok(LiveSearchResult { hits, coverage })
    }

    /// How long the server keeps an idle accepted connection alive. A
    /// little longer than the clients' idle reaping horizon, so the
    /// server is never the one to hang up on a stream a client still
    /// considers poolable.
    fn server_keepalive(&self) -> Duration {
        self.config.conn.idle_timeout * 2
    }

    /// Park `conn` on the bounded server worker pool for its next
    /// serve step. Jobs hold only a `Weak` back-reference: a connection
    /// must not keep the node alive, and the job chain dies with it.
    fn enqueue_conn(self: &Arc<Self>, conn: ServerConn) {
        let weak = Arc::downgrade(self);
        self.server_pool
            .execute(move || Inner::serve_step(&weak, conn));
    }

    /// One cooperative scheduling turn for an accepted connection:
    /// admit it (once, on a worker — not on the listener thread), poll
    /// briefly for data, serve exactly one frame if one arrived, and
    /// requeue. Returning without requeueing drops the connection.
    /// Bounded workers multiplex all accepted connections this way —
    /// an idle keep-alive stream costs a poll per turn, not a parked
    /// thread.
    fn serve_step(weak: &Weak<Inner>, mut conn: ServerConn) {
        const SERVER_POLL: Duration = Duration::from_millis(5);
        let Some(inner) = weak.upgrade() else { return };
        if inner.shutdown.load(Ordering::Relaxed) {
            return;
        }
        if !conn.admitted {
            if let Some(f) = &inner.config.faults {
                // Inbound refusal: hang up before reading anything.
                if f.admit(Direction::Inbound).is_err() {
                    return;
                }
            }
            conn.admitted = true;
        }
        let mut probe = [0u8; 1];
        if conn.stream.set_read_timeout(Some(SERVER_POLL)).is_err() {
            return;
        }
        match conn.stream.peek(&mut probe) {
            Ok(0) => return, // peer closed
            Ok(_) => {
                let _ = conn.stream.set_read_timeout(Some(inner.config.io_timeout));
                if !inner.serve_one_frame(&mut conn.stream) {
                    return;
                }
                conn.idle_deadline = Instant::now() + inner.server_keepalive();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= conn.idle_deadline {
                    return; // idled out
                }
            }
            Err(_) => return,
        }
        inner.enqueue_conn(conn);
    }

    /// Read one inbound frame — legacy, correlated, or metadata-bearing
    /// — classify it, pass the admission gate, and dispatch it.
    /// Returns whether the connection is still healthy enough to keep.
    ///
    /// Admission happens *here*, on a server worker, after the frame is
    /// parsed: the class comes from the sender's [`FrameMeta`] when
    /// present (the gate trusts the wire header) and from the message
    /// types otherwise, and a propagated deadline budget starts
    /// counting from receipt. A shed request is answered with
    /// [`LiveMsg::Busy`] — never a silent hangup — and an expired one
    /// is dropped without service, since its caller already gave up.
    fn serve_one_frame(&self, stream: &mut TcpStream) -> bool {
        let got = match &self.config.faults {
            Some(f) => f.read_any_frame_meta_sized::<Vec<LiveMsg>>(Direction::Inbound, stream),
            None => crate::wire::read_any_frame_meta_sized::<Vec<LiveMsg>>(stream),
        };
        let receipt = Instant::now();
        let (frame, meta, wire_bytes) = match got {
            Ok(Some(x)) => x,
            Ok(None) => return false,
            Err(e) => {
                self.stats.malformed_frames.inc();
                debug_log!("planetp[{}]: malformed inbound frame: {e}", self.id);
                return false;
            }
        };
        self.stats.bytes_in.add(wire_bytes as u64);
        self.stats.frames_in.inc();
        let (corr, batch) = match frame {
            Frame::Correlated(id, batch) => (Some(id), batch),
            Frame::Legacy(batch) => (None, batch),
        };
        // Classification: the sender's explicit class wins; a legacy
        // frame takes the most urgent class of its batch (`min` —
        // `Priority` orders Interactive first).
        let class = match &meta {
            Some(m) => m.priority,
            None => batch
                .iter()
                .map(priority_of)
                .min()
                .unwrap_or(Priority::Control),
        };
        let deadline = meta
            .and_then(|m| m.deadline_ms)
            .map(|ms| receipt + Duration::from_millis(u64::from(ms)));
        if let Some(f) = &self.config.faults {
            if f.force_busy(Direction::Inbound) {
                // Injected overload (chaos tests): shed unconditionally.
                self.stats.admission_shed.inc();
                self.stats.busy_sent.inc();
                let retry_after_ms = self.admission.retry_after_ms();
                self.reply_framed(
                    stream,
                    corr,
                    LiveMsg::Busy {
                        retry_after_ms,
                        class,
                    },
                );
                return true;
            }
        }
        match self.admission.admit(class, deadline) {
            Admission::Admitted { queue_wait } => {
                self.stats.admission_admitted.inc();
                self.stats
                    .admission_queue_wait_ms
                    .observe(queue_wait.as_millis() as u64);
            }
            Admission::Shed { retry_after_ms } => {
                self.stats.admission_shed.inc();
                self.stats.busy_sent.inc();
                self.reply_framed(
                    stream,
                    corr,
                    LiveMsg::Busy {
                        retry_after_ms,
                        class,
                    },
                );
                return true;
            }
            Admission::Expired => {
                // The sender stopped listening before we could start:
                // any reply (even `Busy`) would be wasted bytes.
                self.stats.admission_expired.inc();
                return true;
            }
        }
        let keep = self.dispatch_batch(stream, corr, batch);
        self.admission.complete();
        keep
    }

    /// Serve every message of one admitted frame. Split from
    /// [`Self::serve_one_frame`] so its early returns cannot leak the
    /// admission slot.
    fn dispatch_batch(
        &self,
        stream: &mut TcpStream,
        corr: Option<u64>,
        batch: Vec<LiveMsg>,
    ) -> bool {
        for m in batch {
            match m {
                LiveMsg::Gossip { from, msg } => {
                    // Gossip alternates legacy frames inline on this
                    // stream; the conversation ends at a clean frame
                    // boundary, so the stream stays reusable.
                    if let Err(e) = self.converse(stream, from, msg) {
                        self.stats.reply_failures.inc();
                        debug_log!(
                            "planetp[{}]: gossip conversation with {from} broke: {e}",
                            self.id
                        );
                        return false;
                    }
                }
                LiveMsg::SearchRequest {
                    terms,
                    ipf,
                    num_peers,
                } => {
                    let table = IpfTable::from_pairs(ipf, num_peers);
                    let origins = self.replica_origins();
                    let store = self.store.lock();
                    let docs: Vec<SearchDoc> =
                        planetp_search::score_index(store.index(), &terms, &table)
                            .into_iter()
                            .filter_map(|(doc, score)| {
                                store.get(doc).map(|r| SearchDoc {
                                    doc,
                                    score,
                                    hash: r.hash,
                                    replica_of: origins.get(&doc).copied(),
                                    xml: r.xml.clone(),
                                })
                            })
                            .collect();
                    drop(store);
                    self.note_docs_served(docs.iter().map(|d| d.hash));
                    self.reply_framed(stream, corr, LiveMsg::SearchResponse { docs });
                }
                LiveMsg::ExhaustiveRequest { terms } => {
                    let origins = self.replica_origins();
                    let store = self.store.lock();
                    let docs: Vec<SearchDoc> = store
                        .search_conjunction(&terms)
                        .into_iter()
                        .filter_map(|d| {
                            store.get(d).map(|r| SearchDoc {
                                doc: d,
                                score: 0.0,
                                hash: r.hash,
                                replica_of: origins.get(&d).copied(),
                                xml: r.xml.clone(),
                            })
                        })
                        .collect();
                    drop(store);
                    self.note_docs_served(docs.iter().map(|d| d.hash));
                    self.reply_framed(stream, corr, LiveMsg::ExhaustiveResponse { docs });
                }
                LiveMsg::ProxySearchRequest { query, k } => {
                    let (hits, coverage) = match self.ranked_search(&query, k) {
                        Ok(r) => (
                            r.hits
                                .into_iter()
                                .map(|h| (h.peer, h.doc, h.score, h.hash, h.xml))
                                .collect(),
                            r.coverage,
                        ),
                        Err(_) => (Vec::new(), SearchCoverage::default()),
                    };
                    self.reply_framed(
                        stream,
                        corr,
                        LiveMsg::ProxySearchResponse { hits, coverage },
                    );
                }
                LiveMsg::ReplicaPush {
                    home,
                    home_doc,
                    hash,
                    hotness,
                    xml,
                } => {
                    let reply = self.handle_replica_push(home, home_doc, hash, hotness, &xml);
                    self.reply_framed(stream, corr, reply);
                }
                LiveMsg::StatsRequest => {
                    let snapshot = self.metrics_snapshot();
                    self.reply_framed(stream, corr, LiveMsg::StatsResponse { snapshot });
                }
                LiveMsg::SearchResponse { .. }
                | LiveMsg::ExhaustiveResponse { .. }
                | LiveMsg::ProxySearchResponse { .. }
                | LiveMsg::ReplicaAccept { .. }
                | LiveMsg::StatsResponse { .. }
                | LiveMsg::Busy { .. } => {}
            }
        }
        true
    }

    /// Write one RPC reply, counting (not swallowing) failures. A
    /// `corr` id echoes the request's correlation id so the client's
    /// multiplexer can route the reply; `None` writes a legacy frame
    /// for old-style one-shot clients.
    fn reply_framed(&self, stream: &mut TcpStream, corr: Option<u64>, msg: LiveMsg) {
        let batch = vec![msg];
        let res = match corr {
            Some(id) => match &self.config.faults {
                Some(f) => f.write_correlated_frame(Direction::Inbound, stream, id, &batch),
                None => crate::wire::write_correlated_frame(stream, id, &batch),
            },
            None => match &self.config.faults {
                Some(f) => f.write_frame(Direction::Inbound, stream, &batch),
                None => crate::wire::write_frame(stream, &batch),
            },
        };
        match res {
            Ok(n) => {
                // An injected dropped reply reports 0 bytes written —
                // nothing actually left this node.
                if n > 0 {
                    self.stats.bytes_out.add(n as u64);
                    self.stats.frames_out.inc();
                }
            }
            Err(e) => {
                self.stats.reply_failures.inc();
                debug_log!("planetp[{}]: failed to write reply: {e}", self.id);
            }
        }
    }

    /// Point-in-time snapshot of the node's unified metrics registry
    /// (gossip engine, transport, search, and health counters), with
    /// gauges refreshed first.
    fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.stats
            .directory_size
            .set(self.engine.lock().directory().len() as i64);
        self.stats.registry.snapshot()
    }

    // ------------------------------------------------------------------
    // Autonomous replication (DESIGN.md §15)
    // ------------------------------------------------------------------

    /// Snapshot of local doc id → (home, home_doc) for hosted replicas.
    /// Taken *before* locking the store (see the lock-order note on
    /// [`Inner::replica`]); empty when replication is off.
    fn replica_origins(&self) -> std::collections::BTreeMap<u64, (PeerId, u64)> {
        self.replica
            .as_ref()
            .map(|r| r.lock().origins())
            .unwrap_or_default()
    }

    /// Feed served document hashes into the hotness sketch.
    fn note_docs_served(&self, hashes: impl IntoIterator<Item = u64>) {
        if let Some(r) = &self.replica {
            let mut r = r.lock();
            for h in hashes {
                r.observe_served(h);
            }
        }
    }

    /// One replication planning round, run from the gossip loop: sample
    /// the directory into the availability tracker, plan pushes for
    /// under-replicated local documents, execute them over the normal
    /// RPC path (retries, fault injection, health bookkeeping), and
    /// re-gossip the ad if it changed.
    fn replica_tick(&self) {
        let Some(replica) = &self.replica else { return };
        // 1. Directory sample: status → availability, payloads → ads.
        let mut views: Vec<PeerView> = Vec::new();
        let mut addrs: HashMap<PeerId, String> = HashMap::new();
        {
            let engine = self.engine.lock();
            for (pid, e) in engine.directory().iter() {
                if pid == self.id {
                    continue;
                }
                let online = matches!(e.status, PeerStatus::Online);
                let ad = e.payload.as_ref().and_then(|p| p.replica);
                if let Some(p) = &e.payload {
                    addrs.insert(pid, p.addr.clone());
                }
                views.push(PeerView {
                    peer: pid,
                    ad,
                    online,
                });
            }
        }
        {
            let mut r = replica.lock();
            for v in &views {
                r.observe_peer(v.peer, v.online);
            }
            r.retain_peers(|p| views.iter().any(|v| v.peer == p));
        }
        // 2. Home-owned documents (hosted replicas are their home's
        // responsibility). Replica lock dropped before the store lock.
        let own_docs: Vec<OwnDoc> = {
            let origins = self.replica_origins();
            let store = self.store.lock();
            store
                .documents()
                .filter(|rec| !origins.contains_key(&rec.id))
                .map(|rec| OwnDoc {
                    doc: rec.id,
                    hash: rec.hash,
                    bytes: rec.xml.len() as u64,
                })
                .collect()
        };
        // 3. Plan under the replica lock, push outside every lock.
        let plans = replica.lock().plan_pushes(&own_docs, &views);
        for plan in plans {
            let Some((xml, hotness)) = ({
                let store = self.store.lock();
                store.get(plan.doc).map(|r| r.xml.clone())
            })
            .map(|xml| (xml, replica.lock().hotness(plan.hash))) else {
                continue; // unpublished since planning
            };
            let request = LiveMsg::ReplicaPush {
                home: self.id,
                home_doc: plan.doc,
                hash: plan.hash,
                hotness,
                xml,
            };
            for target in plan.targets {
                if self.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                let Some(addr) = addrs.get(&target) else {
                    continue;
                };
                if self.in_backoff(target) {
                    continue;
                }
                replica.lock().metrics().pushes.inc();
                // Background class, single attempt: repair traffic must
                // never compete with interactive work for an overloaded
                // receiver's queue, and the next round re-plans anyway.
                match self.rpc_background(target, addr, &request, self.config.io_timeout) {
                    Ok(LiveMsg::ReplicaAccept { home_doc, accepted }) if home_doc == plan.doc => {
                        let mut r = replica.lock();
                        if accepted {
                            r.note_accept(plan.doc, target);
                        } else {
                            r.note_declined(plan.doc, target);
                        }
                    }
                    Ok(LiveMsg::Busy { .. }) => {
                        // Overloaded receiver shed the push: skip
                        // quietly, the plan stays pending.
                        debug_log!("planetp[{}]: replica push to {target} shed (busy)", self.id);
                    }
                    Ok(_) => {
                        self.stats.unexpected_replies.inc();
                    }
                    Err(e) => {
                        debug_log!("planetp[{}]: replica push to {target} failed: {e}", self.id);
                    }
                }
            }
        }
        // 4. Re-advertise when the gossiped ad no longer matches
        // reality (capacity moved, hosted count changed).
        self.refresh_replica_ad();
    }

    /// Bump the gossiped payload iff the current ad differs from the
    /// one in the directory, so ad changes ride the existing delta
    /// chain without gossiping a new version every tick.
    fn refresh_replica_ad(&self) {
        let Some(ad) = self.current_replica_ad() else {
            return;
        };
        let gossiped = {
            let engine = self.engine.lock();
            engine
                .directory()
                .get(self.id)
                .and_then(|e| e.payload.as_ref())
                .and_then(|p| p.replica)
        };
        if gossiped != Some(ad) {
            self.gossip_own_update();
            if let Err(e) = self.persist_own_versions() {
                debug_log!(
                    "planetp[{}]: failed to persist versions after ad refresh: {e}",
                    self.id
                );
            }
        }
    }

    /// Handle an incoming `ReplicaPush`: verify the hash, admit (maybe
    /// evicting colder replicas), ingest into the normal store + index
    /// + filter so the copy is discoverable through the unmodified
    /// search path, and persist the hosting to the WAL.
    fn handle_replica_push(
        &self,
        home: PeerId,
        home_doc: u64,
        hash: u64,
        hotness: u64,
        xml: &str,
    ) -> LiveMsg {
        let Some(replica) = &self.replica else {
            return LiveMsg::ReplicaAccept {
                home_doc,
                accepted: false,
            };
        };
        if content_hash(xml) != hash {
            // Corrupt or lying sender: refuse before paying storage.
            replica.lock().metrics().rejects.inc();
            return LiveMsg::ReplicaAccept {
                home_doc,
                accepted: false,
            };
        }
        let decision = {
            let mut r = replica.lock();
            r.seed_hotness(hash, hotness);
            // The home is talking to us right now: count it online.
            r.observe_peer(home, true);
            r.admit(home, hash, xml.len() as u64)
        };
        match decision {
            AdmitDecision::AlreadyHosted { .. } => LiveMsg::ReplicaAccept {
                home_doc,
                accepted: true,
            },
            AdmitDecision::Reject => {
                replica.lock().metrics().rejects.inc();
                LiveMsg::ReplicaAccept {
                    home_doc,
                    accepted: false,
                }
            }
            AdmitDecision::Accept { evict } => {
                for victim in evict {
                    self.evict_replica(victim);
                }
                let doc = match self.store.lock().publish(xml) {
                    Ok(d) => d,
                    Err(e) => {
                        debug_log!("planetp[{}]: replica ingest failed: {e}", self.id);
                        replica.lock().metrics().rejects.inc();
                        return LiveMsg::ReplicaAccept {
                            home_doc,
                            accepted: false,
                        };
                    }
                };
                let hosted = HostedReplica {
                    home,
                    home_doc,
                    hash,
                    bytes: xml.len() as u64,
                };
                if !replica.lock().record_hosted(doc, hosted) {
                    // Lost a race with a concurrent push of the same
                    // content: drop the redundant copy, still accepted.
                    let _ = self.store.lock().unpublish(doc);
                    return LiveMsg::ReplicaAccept {
                        home_doc,
                        accepted: true,
                    };
                }
                if let Err(e) = self.durable_append(WalRecord::ReplicaStored {
                    doc,
                    home,
                    home_doc,
                    hash,
                    xml: xml.to_string(),
                }) {
                    debug_log!("planetp[{}]: failed to persist replica {doc}: {e}", self.id);
                }
                // The ingested copy changed the filter (and the ad):
                // announce the new version.
                self.gossip_own_update();
                if let Err(e) = self.persist_own_versions() {
                    debug_log!(
                        "planetp[{}]: failed to persist versions after replica: {e}",
                        self.id
                    );
                }
                LiveMsg::ReplicaAccept {
                    home_doc,
                    accepted: true,
                }
            }
        }
    }

    /// Evict one hosted replica: unpublish (rebuilding the filter),
    /// log the drop, and release its capacity. The caller is expected
    /// to gossip the new filter version afterwards.
    fn evict_replica(&self, doc: u64) {
        let Some(replica) = &self.replica else { return };
        if replica.lock().drop_hosted(doc).is_none() {
            return;
        }
        if let Err(e) = self.store.lock().unpublish(doc) {
            debug_log!(
                "planetp[{}]: evicted replica {doc} was not stored: {e}",
                self.id
            );
        }
        if let Err(e) = self.durable_append(WalRecord::ReplicaDropped { doc }) {
            debug_log!(
                "planetp[{}]: failed to persist replica drop {doc}: {e}",
                self.id
            );
        }
    }
}

/// Bounded top-k insertion; returns whether the hit made the cut.
/// Non-finite scores are rejected outright, and a non-finite score
/// already in `top` (callers filter them, but this path must degrade
/// sanely anyway) is treated as minimal — evicted first rather than
/// pinned at rank 1 by `total_cmp`'s NaN-is-greatest ordering.
fn offer_hit(top: &mut Vec<LiveHit>, hit: LiveHit, k: usize) -> bool {
    if !hit.score.is_finite() {
        return false;
    }
    if top.len() < k {
        top.push(hit);
        return true;
    }
    let key = |s: f64| if s.is_finite() { s } else { f64::NEG_INFINITY };
    let (worst_i, worst) = top
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| key(a.score).total_cmp(&key(b.score)))
        .expect("top non-empty");
    if !worst.score.is_finite() || hit.score > worst.score {
        top[worst_i] = hit;
        true
    } else {
        false
    }
}

/// One ranked hit from a live search.
#[derive(Debug, Clone)]
pub struct LiveHit {
    /// Peer that answered with this copy (the home peer, or a replica
    /// holder — see [`LiveHit::replica_of`]).
    pub peer: PeerId,
    /// Document id on that peer.
    pub doc: u64,
    /// TFxIPF score.
    pub score: f64,
    /// Stable content hash (replica duplicates were collapsed on it).
    pub hash: u64,
    /// `Some((home, home_doc))` when the answering peer holds this
    /// document as a replica for an (often offline) home peer.
    pub replica_of: Option<(PeerId, u64)>,
    /// Document XML.
    pub xml: String,
}

/// A live PlanetP peer: listener + gossip loop + data store.
pub struct LiveNode {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl LiveNode {
    /// Start a node. `bootstrap` is `(peer id, address)` of one
    /// existing member; `None` founds a new community.
    pub fn start(
        id: PeerId,
        config: LiveConfig,
        bootstrap: Option<(PeerId, String)>,
    ) -> Result<Self, PlanetPError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        // One registry per node: the engine's protocol counters and the
        // runtime's transport/search/health counters land side by side,
        // so one snapshot (local call or GetStats RPC) covers it all.
        let stats = NodeStats::default();
        let mut store = LocalDataStore::new();

        // Durability: open the snapshot + WAL store (running recovery)
        // before the gossip engine exists, because what recovery finds
        // decides how the engine starts.
        let mut durable = match &config.durable {
            Some(dc) => Some(DurableStore::open(
                dc.clone(),
                StoreMetrics::in_registry(&stats.registry),
                config.faults.clone(),
            )?),
            None => None,
        };
        let mut recovering = false;
        if let Some(d) = &mut durable {
            if let Some(owner) = d.state().id {
                if owner != id {
                    return Err(PlanetPError::Protocol(format!(
                        "data dir belongs to peer {owner}, not peer {id}"
                    )));
                }
            }
            // Rehydrate the local data store under the original doc ids
            // (remote peers hold `(peer, doc)` references from earlier
            // searches). WAL frames are checksummed, so the XML parses;
            // a failure here is a bug, not bad input.
            for (doc, xml) in d.state().docs.clone() {
                store.restore_document(doc, &xml)?;
                stats.recovery_docs_restored.inc();
            }
        }
        // Replication: build the engine (metrics in the node registry)
        // and resume hosting whatever the WAL says we held. If the
        // operator disabled replication on a store that has hosted
        // replicas, the docs stay searchable but are no longer
        // advertised, re-pushed, or evicted.
        let mut replica_engine = if config.replica.enabled {
            Some(ReplicaEngine::with_metrics(
                config.replica.clone(),
                ReplicaMetrics::in_registry(&stats.registry),
            ))
        } else {
            None
        };
        if let (Some(re), Some(d)) = (replica_engine.as_mut(), durable.as_ref()) {
            for (doc, pr) in d.state().replicas.clone() {
                let bytes = d.state().docs.get(&doc).map_or(0, |x| x.len() as u64);
                re.restore_hosted(
                    doc,
                    HostedReplica {
                        home: pr.home,
                        home_doc: pr.home_doc,
                        hash: pr.hash,
                        bytes,
                    },
                );
            }
        }
        let payload = LivePayload {
            addr: addr.clone(),
            bloom: CompressedBloom::compress(store.bloom()),
            replica: replica_engine.as_ref().map(|r| r.local_ad()),
        };

        let mut engine = match durable
            .as_ref()
            .filter(|d| d.recovery().recovered)
            .map(|d| d.state().clone())
        {
            Some(state) => {
                // Crash-restart: rebuild the engine around the persisted
                // directory and re-announce with a version pair strictly
                // above the persisted high-water mark — even if a torn
                // tail lost recent bloom bumps, `(sv+1, _)` supersedes
                // anything the community gossiped for the old
                // incarnation (the status version only changes here, and
                // it is persisted synchronously below before serving).
                let mut dir: Directory<LivePayload> = Directory::new();
                dir.insert(
                    id,
                    DirEntry {
                        status_version: state.status_version.max(1),
                        bloom_version: state.bloom_version,
                        payload: Some(payload.clone()),
                        status: PeerStatus::Online,
                        speed: SpeedClass::Fast,
                    },
                );
                for (pid, p) in &state.peers {
                    dir.insert(
                        *pid,
                        DirEntry {
                            status_version: p.status_version,
                            bloom_version: p.bloom_version,
                            payload: p.payload.clone(),
                            status: PeerStatus::Online,
                            speed: SpeedClass::Fast,
                        },
                    );
                    stats.recovery_peers_restored.inc();
                }
                if let Some((b, _)) = &bootstrap {
                    if dir.get(*b).is_none() {
                        dir.insert(
                            *b,
                            DirEntry {
                                status_version: 0,
                                bloom_version: 0,
                                payload: None,
                                status: PeerStatus::Online,
                                speed: SpeedClass::Fast,
                            },
                        );
                    }
                }
                let mut engine = GossipEngine::with_directory(
                    id,
                    SpeedClass::Fast,
                    config.gossip,
                    config.seed ^ u64::from(id),
                    dir,
                );
                engine.local_recover(payload.clone(), (state.status_version, state.bloom_version));
                stats.recovery_restarts.inc();
                // Catch-up phase: there is someone to catch up with.
                recovering = !state.peers.is_empty() || bootstrap.is_some();
                engine
            }
            None => GossipEngine::new(
                id,
                SpeedClass::Fast,
                config.gossip,
                config.seed ^ u64::from(id),
                Some(payload),
                bootstrap.as_ref().map(|(b, _)| (*b, SpeedClass::Fast)),
            ),
        };
        engine.attach_metrics(&stats.registry);
        if let Some(d) = &mut durable {
            // Persist identity and the (possibly bumped) announced
            // version pair *synchronously before serving anything* —
            // the high-water-mark rule above depends on it.
            if d.state().id != Some(id) {
                d.append(WalRecord::Identity { id })?;
            }
            let e = engine.directory().get(id).expect("self entry");
            d.append(WalRecord::OwnVersions {
                status_version: e.status_version,
                bloom_version: e.bloom_version,
            })?;
            d.write_snapshot()?;
        }
        let mut addr_book = HashMap::new();
        if let Some((b, a)) = bootstrap {
            addr_book.insert(b, a);
        }
        let health = PeerHealth::new(config.health);
        let mut cache =
            QueryCache::new().with_metrics(QueryCacheMetrics::in_registry(&stats.registry));
        if let Some(tree_config) = config.bloom_tree {
            cache = cache.with_tree(tree_config, TreeMetrics::in_registry(&stats.registry));
        }
        let query_state = QueryState {
            filters: HashMap::new(),
            cache,
        };
        let conns = config.conn.enabled.then(|| {
            ConnPool::new(
                config.conn,
                config.io_timeout,
                config.faults.clone(),
                ConnMetrics::in_registry(&stats.registry),
            )
        });
        let server_pool = WorkerPool::new(config.conn.server_threads.max(1));
        let admission = AdmissionGate::new(config.admission);
        // The announced payload above was compressed from this exact
        // filter, so it is the correct base for the first publish diff.
        let prev_bloom = store.bloom().clone();
        let inner = Arc::new(Inner {
            id,
            addr,
            config,
            engine: Mutex::new(engine),
            store: Mutex::new(store),
            health: Mutex::new(health),
            stats,
            addr_book: Mutex::new(addr_book),
            query_state: Mutex::new(query_state),
            prev_bloom: Mutex::new(prev_bloom),
            pool: OnceLock::new(),
            conns,
            server_pool,
            admission,
            replica: replica_engine.map(Mutex::new),
            durable: durable.map(Mutex::new),
            recovering: AtomicBool::new(recovering),
            recovered_at: Mutex::new(recovering.then(Instant::now)),
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
        });

        let mut threads = Vec::new();
        // Listener thread: accepted connections go to the bounded
        // server worker pool (no thread-per-connection), which also
        // lets clients keep streams alive between requests.
        {
            let inner = Arc::clone(&inner);
            listener.set_nonblocking(true)?;
            threads.push(std::thread::spawn(move || {
                while !inner.shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nonblocking(false);
                            let _ = stream.set_write_timeout(Some(inner.config.io_timeout));
                            if inner.config.conn.nodelay {
                                let _ = stream.set_nodelay(true);
                            }
                            inner.enqueue_conn(ServerConn {
                                stream,
                                idle_deadline: Instant::now() + inner.server_keepalive(),
                                admitted: false,
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            }));
        }
        // Gossip loop (also drives the replication tick: replication
        // needs no thread of its own, and piggybacking keeps its
        // directory samples in lockstep with gossip rounds).
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || {
                let mut next_tick = Duration::from_millis(0);
                let replica_interval = Duration::from_millis(inner.config.replica.interval_ms);
                let decay_interval = Duration::from_millis(inner.config.replica.decay_interval_ms);
                let mut next_replica = Duration::from_millis(0);
                let mut next_decay = decay_interval;
                let started = Instant::now();
                while !inner.shutdown.load(Ordering::Relaxed) {
                    if started.elapsed() < next_tick.min(next_replica) {
                        std::thread::sleep(Duration::from_millis(2));
                        continue;
                    }
                    if started.elapsed() >= next_tick {
                        let outcome = {
                            let mut engine = inner.engine.lock();
                            let o = engine.tick(inner.now_ms());
                            next_tick = started.elapsed()
                                + Duration::from_millis(engine.current_interval());
                            o
                        };
                        if let Some(out) = outcome {
                            inner.gossip_to(out.target, out.message);
                        }
                        // Fold whatever this tick (and any inbound
                        // gossip since the last one) taught us into the
                        // WAL.
                        inner.persist_directory();
                        // Retire idle pooled streams past their timeout.
                        if let Some(p) = &inner.conns {
                            p.reap();
                        }
                    }
                    if inner.replica.is_some() && started.elapsed() >= next_replica {
                        next_replica = started.elapsed() + replica_interval;
                        if started.elapsed() >= next_decay {
                            next_decay = started.elapsed() + decay_interval;
                            if let Some(r) = &inner.replica {
                                r.lock().decay();
                            }
                        }
                        inner.replica_tick();
                    } else if inner.replica.is_none() {
                        // Without replication the loop only waits on
                        // gossip ticks.
                        next_replica = next_tick;
                    }
                }
            }));
        }
        Ok(Self { inner, threads })
    }

    /// This node's peer id.
    pub fn id(&self) -> PeerId {
        self.inner.id
    }

    /// The node's listen address.
    pub fn addr(&self) -> &str {
        &self.inner.addr
    }

    /// Number of peers in the local directory copy.
    pub fn directory_size(&self) -> usize {
        self.inner.engine.lock().directory().len()
    }

    /// Directory digest (for convergence checks in tests).
    pub fn directory_digest(&self) -> u64 {
        self.inner.engine.lock().directory().digest()
    }

    /// Node-level failure counters.
    pub fn stats(&self) -> NodeStatsSnapshot {
        self.inner.stats.snapshot(self.inner.is_recovering())
    }

    /// Is the node still in its post-restart catch-up phase (recovered
    /// state loaded from disk, first anti-entropy exchange with the
    /// community not yet completed)? Searches still run during it —
    /// their [`SearchCoverage::recovering`] flag is set — but they plan
    /// against the persisted directory, which may trail the community.
    pub fn is_recovering(&self) -> bool {
        self.inner.is_recovering()
    }

    /// Block until the catch-up phase ends (or `timeout` elapses);
    /// returns whether the node is ready. A node that never recovered
    /// is ready immediately.
    pub fn await_ready(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.inner.is_recovering() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// The `(status_version, bloom_version)` pair this node currently
    /// announces for itself. After a crash-restart both components are
    /// strictly above everything the previous incarnation announced.
    pub fn announced_versions(&self) -> (u64, u32) {
        let engine = self.inner.engine.lock();
        let e = engine.directory().get(self.inner.id).expect("self entry");
        (e.status_version, e.bloom_version)
    }

    /// What recovery found on disk at startup, if durability is on.
    pub fn recovery_info(&self) -> Option<crate::durable::RecoveryInfo> {
        self.inner.durable.as_ref().map(|d| d.lock().recovery())
    }

    /// Validate the durable store's materialized state (`Ok(())` when
    /// durability is off).
    pub fn validate_durable(&self) -> Result<(), String> {
        match &self.inner.durable {
            Some(d) => d.lock().validate(),
            None => Ok(()),
        }
    }

    /// Did an (injected or real) crash poison the durable store? A
    /// poisoned node keeps serving from memory but persists nothing
    /// more — the harness treats it as dead and restarts it.
    pub fn store_poisoned(&self) -> bool {
        self.inner
            .durable
            .as_ref()
            .is_some_and(|d| d.lock().poisoned())
    }

    /// The gossip engine's protocol counters.
    pub fn gossip_stats(&self) -> EngineStats {
        self.inner.engine.lock().stats()
    }

    /// How many replicas this node currently hosts for other peers and
    /// the bytes they occupy, or `None` when replication is disabled.
    pub fn replica_hosted(&self) -> Option<(usize, u64)> {
        let replica = self.inner.replica.as_ref()?;
        let r = replica.lock();
        Some((r.hosted_count(), r.used_bytes()))
    }

    /// The replication advertisement this node currently gossips, or
    /// `None` when replication is disabled.
    pub fn replica_ad(&self) -> Option<ReplicaAd> {
        self.inner.current_replica_ad()
    }

    /// Unified metrics snapshot of this node: gossip, transport,
    /// search, and health metrics from one registry. Serializable; see
    /// [`planetp_obs::MetricsSnapshot`] for diffing and rendering.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.metrics_snapshot()
    }

    /// Fetch `peer`'s metrics over the wire (the `GetStats` RPC), with
    /// the node's usual retry schedule and health bookkeeping.
    pub fn fetch_stats(&self, peer: PeerId) -> Result<MetricsSnapshot, PlanetPError> {
        let addr = self
            .inner
            .resolve(peer)
            .ok_or_else(|| PlanetPError::UnknownPeer(format!("peer {peer}")))?;
        match self.inner.rpc_with_retry(
            peer,
            &addr,
            &LiveMsg::StatsRequest,
            self.inner.config.io_timeout,
        ) {
            Ok(LiveMsg::StatsResponse { snapshot }) => Ok(snapshot),
            Ok(LiveMsg::Busy { retry_after_ms, .. }) => Err(PlanetPError::Protocol(format!(
                "peer {peer} is overloaded (retry in {retry_after_ms} ms)"
            ))),
            Ok(_) => {
                self.inner.stats.unexpected_replies.inc();
                Err(PlanetPError::Protocol("unexpected stats reply".into()))
            }
            Err(e) => Err(PlanetPError::Network(e)),
        }
    }

    /// Health history for one peer, if it has been contacted.
    pub fn peer_health(&self, peer: PeerId) -> Option<PeerHealthEntry> {
        self.inner.health.lock().get(peer)
    }

    /// Test hook: break every pooled stream to `peer` at the socket
    /// level without telling the pool, simulating a peer that silently
    /// dropped its keep-alives (restart, NAT timeout). The next pooled
    /// contact sees a stale stream and must recover transparently.
    /// Returns how many streams were broken (0 when pooling is off or
    /// no stream to that peer exists).
    pub fn debug_break_pooled_conns(&self, peer: PeerId) -> usize {
        let Some(addr) = self.inner.resolve(peer) else {
            return 0;
        };
        self.inner
            .conns
            .as_ref()
            .map_or(0, |p| p.debug_break(&addr))
    }

    /// Publish an XML document: index locally, gossip the new filter,
    /// and (with durability on) WAL the document and the bumped bloom
    /// version. A persistence failure — which includes an injected
    /// crash — is surfaced as an error: the document is indexed in this
    /// process's memory but will not survive a restart, exactly like a
    /// publish that raced a real crash.
    pub fn publish(&self, xml: &str) -> Result<u64, PlanetPError> {
        let doc = self.inner.store.lock().publish(xml)?;
        self.inner.gossip_own_update();
        self.inner.durable_append(WalRecord::Publish {
            doc,
            xml: xml.to_string(),
        })?;
        self.inner.persist_own_versions()?;
        Ok(doc)
    }

    /// Ranked TFxIPF search across the community. The result's
    /// [`SearchCoverage`] says how much of the community answered.
    pub fn search_ranked(
        &self,
        raw_query: &str,
        k: usize,
    ) -> Result<LiveSearchResult, PlanetPError> {
        self.inner.ranked_search(raw_query, k)
    }

    /// Ranked search with an explicit fan-out group size, overriding
    /// `config.fanout.group_size` for this one query. `1` reproduces
    /// the strictly sequential rank-order walk — benches and tests use
    /// this to compare group sizes on the same node.
    pub fn search_ranked_grouped(
        &self,
        raw_query: &str,
        k: usize,
        group_size: usize,
    ) -> Result<LiveSearchResult, PlanetPError> {
        self.inner.ranked_search_with(raw_query, k, group_size)
    }

    /// Ask `proxy` to run the ranked search on our behalf — the §7.2
    /// "proxy search" extension for bandwidth-limited peers. The proxy
    /// does the fan-out; we pay for one request and one reply. The
    /// returned coverage is the proxy's view of its fan-out.
    pub fn search_via_proxy(
        &self,
        proxy: PeerId,
        raw_query: &str,
        k: usize,
    ) -> Result<LiveSearchResult, PlanetPError> {
        let addr = self
            .inner
            .resolve(proxy)
            .ok_or_else(|| PlanetPError::UnknownPeer(format!("peer {proxy}")))?;
        match self.inner.rpc_with_retry(
            proxy,
            &addr,
            &LiveMsg::ProxySearchRequest {
                query: raw_query.to_string(),
                k,
            },
            self.inner.proxy_read_timeout(),
        ) {
            Ok(LiveMsg::ProxySearchResponse { hits, coverage }) => {
                // The proxy is as untrusted as any remote peer: drop
                // non-finite scores (mirroring ranked_search's guard)
                // and reject coverage bookkeeping that cannot balance.
                let hits: Vec<LiveHit> = hits
                    .into_iter()
                    .filter(|(_, _, score, _, _)| {
                        let ok = score.is_finite();
                        if !ok {
                            debug_log!(
                                "planetp[{}]: dropped non-finite score from proxy {proxy}",
                                self.inner.id
                            );
                        }
                        ok
                    })
                    .map(|(peer, doc, score, hash, xml)| LiveHit {
                        peer,
                        doc,
                        score,
                        hash,
                        // The proxy already collapsed replica
                        // duplicates; provenance is not re-derived
                        // through the narrow proxy reply.
                        replica_of: None,
                        xml,
                    })
                    .collect();
                if coverage.peers_attempted() > coverage.peers_considered {
                    self.inner.stats.unexpected_replies.inc();
                    return Err(PlanetPError::Protocol(
                        "proxy coverage bookkeeping does not balance".into(),
                    ));
                }
                Ok(LiveSearchResult { hits, coverage })
            }
            Ok(LiveMsg::Busy { retry_after_ms, .. }) => Err(PlanetPError::Protocol(format!(
                "proxy {proxy} is overloaded (retry in {retry_after_ms} ms)"
            ))),
            Ok(_) => {
                self.inner.stats.unexpected_replies.inc();
                Err(PlanetPError::Protocol("unexpected proxy reply".into()))
            }
            Err(e) => Err(PlanetPError::Network(e)),
        }
    }

    /// Exhaustive conjunction search across the community. Candidates
    /// are contacted in one parallel batch; dead peers are skipped or
    /// cut off at the fan-out deadline, and the coverage summary
    /// accounts for every candidate that did not answer.
    pub fn search_exhaustive(&self, raw_query: &str) -> Result<LiveSearchResult, PlanetPError> {
        self.inner.exhaustive_search(raw_query)
    }

    /// Stop the node's threads. Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for LiveNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Scrape a node's metrics without being a community member: connect
/// to `addr`, send a [`LiveMsg::StatsRequest`], and return the
/// snapshot. This is what `planetp stats <addr>` uses — any process
/// that speaks the framing can interrogate any live node.
pub fn scrape_stats(addr: &str, timeout: Duration) -> io::Result<MetricsSnapshot> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let _ = stream.set_nodelay(true);
    crate::wire::write_frame(&mut stream, &[LiveMsg::StatsRequest])?;
    let batch: Vec<LiveMsg> = crate::wire::read_frame(&mut stream)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no reply"))?;
    match batch.into_iter().next() {
        Some(LiveMsg::StatsResponse { snapshot }) => Ok(snapshot),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected stats reply",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(score: f64) -> LiveHit {
        LiveHit {
            peer: 1,
            doc: 0,
            score,
            hash: 0,
            replica_of: None,
            xml: String::new(),
        }
    }

    #[test]
    fn offer_hit_survives_nan_scores() {
        // A hostile peer ships NaN: insertion and eviction must not
        // panic (this used to hit `partial_cmp(...).expect(...)`).
        let mut top = vec![hit(1.0), hit(2.0)];
        assert!(!offer_hit(&mut top, hit(f64::NAN), 2));
        let mut top = vec![hit(f64::NAN), hit(2.0)];
        assert!(offer_hit(&mut top, hit(3.0), 2));
        assert!(top.iter().any(|h| h.score == 3.0));
        // NaN never enters even a non-full list...
        let mut top = vec![hit(1.0)];
        assert!(!offer_hit(&mut top, hit(f64::NAN), 2));
        assert_eq!(top.len(), 1);
        // ...and a NaN already present counts as minimal: any real
        // score evicts it, so it cannot pin itself at rank 1.
        let mut top = vec![hit(f64::NAN), hit(2.0)];
        assert!(offer_hit(&mut top, hit(1.0), 2));
        assert!(top.iter().all(|h| h.score.is_finite()));
    }

    #[test]
    fn nan_scores_sort_without_panicking() {
        let mut hits = vec![hit(f64::NAN), hit(1.0), hit(f64::NAN), hit(0.5)];
        hits.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| (a.peer, a.doc).cmp(&(b.peer, b.doc)))
        });
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn coverage_fraction_accounts_every_attempt() {
        let c = SearchCoverage {
            peers_considered: 10,
            peers_contacted: 6,
            peers_failed: 2,
            peers_skipped: 1,
            peers_shed: 1,
            recovering: false,
            recovered_via_replicas: 0,
        };
        assert_eq!(c.peers_attempted(), 10);
        assert!((c.coverage_fraction() - 0.6).abs() < 1e-9);
        assert!(!c.is_complete());
        // A shed peer alone keeps coverage honest: the search did not
        // hear from everyone it wanted to.
        let shed_only = SearchCoverage {
            peers_considered: 2,
            peers_contacted: 1,
            peers_shed: 1,
            ..SearchCoverage::default()
        };
        assert!(!shed_only.is_complete());
        let empty = SearchCoverage::default();
        assert_eq!(empty.coverage_fraction(), 1.0);
        assert!(empty.is_complete());
    }
}
