//! The in-process community runtime.
//!
//! [`Community`] wires peers together in one address space: the global
//! directory is trivially consistent (what gossiping converges to), so
//! applications, examples, and the retrieval experiments can exercise
//! the full publish → summarize → rank → retrieve pipeline without
//! sockets. The live TCP runtime in [`crate::live`] provides the same
//! operations over a real network.

use planetp_broker::{BrokerageService, Snippet};
use planetp_index::DocId;
use planetp_search::{DistributedSearch, IpfTable, PeerStore, SelectionConfig};
use std::collections::HashMap;

use crate::datastore::{LocalDataStore, PublishOptions};
use crate::error::PlanetPError;
use crate::persistent::{Notification, PersistentQueryId, PersistentQueryRegistry};
use crate::query::parse_query;

/// Opaque handle to a community member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerHandle(pub(crate) usize);

struct Member {
    name: String,
    store: LocalDataStore,
    online: bool,
    registry: PersistentQueryRegistry,
}

/// One hit of a ranked search.
#[derive(Debug, Clone)]
pub struct RankedHit {
    /// Owning peer's name.
    pub peer: String,
    /// Document id within that peer's store.
    pub doc: DocId,
    /// TFxIPF similarity score.
    pub score: f64,
    /// The document's XML.
    pub xml: String,
}

/// Result of a ranked search.
#[derive(Debug, Clone)]
pub struct RankedHits {
    /// Best-first results (at most k).
    pub results: Vec<RankedHit>,
    /// Peers contacted to produce them.
    pub peers_contacted: usize,
}

/// One hit of an exhaustive search.
#[derive(Debug, Clone)]
pub struct ExhaustiveHit {
    /// Owning peer's name.
    pub peer: String,
    /// Document id within that peer's store.
    pub doc: DocId,
    /// The document's XML.
    pub xml: String,
}

/// Result of an exhaustive search.
#[derive(Debug, Clone)]
pub struct ExhaustiveHits {
    /// All matching documents from online peers.
    pub results: Vec<ExhaustiveHit>,
    /// Broker snippets matching the query (fresh content).
    pub snippets: Vec<String>,
    /// Offline peers whose filters matched: "the searching peer could
    /// arrange to rendezvous with the off-line peers when they
    /// reconnect" (§2).
    pub possibly_on_offline_peers: Vec<String>,
}

/// A PlanetP community in one process.
pub struct Community {
    members: Vec<Member>,
    names: HashMap<String, usize>,
    brokerage: BrokerageService,
    /// Logical clock for snippet expiry, ms.
    now_ms: u64,
    /// Discard time for hot-term snippets (PFS uses 10 minutes).
    pub snippet_ttl_ms: u64,
    next_snippet_id: u64,
}

impl Community {
    /// Empty community.
    pub fn new() -> Self {
        Self {
            members: Vec::new(),
            names: HashMap::new(),
            brokerage: BrokerageService::new(),
            now_ms: 0,
            snippet_ttl_ms: 10 * 60 * 1000,
            next_snippet_id: 0,
        }
    }

    /// Add a member; its name must be unique.
    ///
    /// # Panics
    /// Panics if the name is already taken.
    pub fn add_peer(&mut self, name: &str) -> PeerHandle {
        assert!(
            !self.names.contains_key(name),
            "peer name {name:?} already taken"
        );
        let idx = self.members.len();
        self.members.push(Member {
            name: name.to_string(),
            store: LocalDataStore::new(),
            online: true,
            registry: PersistentQueryRegistry::new(),
        });
        self.names.insert(name.to_string(), idx);
        // Every member also serves as a broker; its ring position is
        // derived from its name.
        let pos = planetp_broker::key_position(name);
        self.brokerage.join(idx as u32, pos);
        PeerHandle(idx)
    }

    /// Look up a member by name.
    pub fn peer(&self, name: &str) -> Option<PeerHandle> {
        self.names.get(name).map(|&i| PeerHandle(i))
    }

    /// A member's name.
    pub fn name(&self, peer: PeerHandle) -> &str {
        &self.members[peer.0].name
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the community has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Advance the logical clock (drives snippet expiry).
    pub fn advance_time(&mut self, ms: u64) {
        self.now_ms += ms;
        self.brokerage.sweep(self.now_ms);
    }

    /// Current logical time, ms.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Take a member offline (its documents become unreachable, but
    /// its Bloom filter stays in everyone's directory).
    pub fn set_offline(&mut self, peer: PeerHandle) {
        self.members[peer.0].online = false;
        self.brokerage.leave_abrupt(peer.0 as u32);
    }

    /// Bring a member back online.
    pub fn set_online(&mut self, peer: PeerHandle) {
        let m = &mut self.members[peer.0];
        if !m.online {
            m.online = true;
            let pos = planetp_broker::key_position(&m.name);
            self.brokerage.join(peer.0 as u32, pos);
        }
    }

    /// Is the member online?
    pub fn is_online(&self, peer: PeerHandle) -> bool {
        self.members[peer.0].online
    }

    /// Direct access to a member's data store.
    pub fn store(&self, peer: PeerHandle) -> &LocalDataStore {
        &self.members[peer.0].store
    }

    // ------------------------------------------------------------------
    // Publishing
    // ------------------------------------------------------------------

    /// Publish an XML document from a peer. Triggers persistent-query
    /// upcalls on every member (the in-process analog of the new Bloom
    /// filter reaching everyone) and, when requested, a hot-term
    /// brokerage publication.
    pub fn publish(
        &mut self,
        peer: PeerHandle,
        xml: &str,
        options: PublishOptions,
    ) -> Result<DocId, PlanetPError> {
        let doc_id = self.members[peer.0].store.publish(xml)?;
        let publisher = self.members[peer.0].name.clone();

        if let Some(fraction) = options.broker_hot_terms {
            let keys = self.members[peer.0].store.hot_terms(doc_id, fraction);
            if !keys.is_empty() {
                self.next_snippet_id += 1;
                let snippet = Snippet {
                    id: self.next_snippet_id,
                    publisher: peer.0 as u32,
                    xml: xml.to_string(),
                    keys: keys.clone(),
                    discard_at: self.now_ms + self.snippet_ttl_ms,
                };
                self.brokerage.publish(snippet);
                for m in &self.members {
                    m.registry.on_snippet(&publisher, xml, &keys);
                }
            }
        }

        // The publisher's new Bloom filter "arrives" at every member.
        let bloom = self.members[peer.0].store.bloom().clone();
        for m in &self.members {
            m.registry.on_bloom_update(&publisher, &bloom);
        }
        Ok(doc_id)
    }

    /// Remove a document from a peer's store.
    pub fn unpublish(&mut self, peer: PeerHandle, doc: DocId) -> Result<(), PlanetPError> {
        self.members[peer.0].store.unpublish(doc)
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// Exhaustive search (§5.1): all documents on online peers matching
    /// *every* query key, plus matching broker snippets, plus the names
    /// of offline peers whose filters matched.
    pub fn search_exhaustive(
        &self,
        peer: PeerHandle,
        raw_query: &str,
    ) -> Result<ExhaustiveHits, PlanetPError> {
        let analyzer = self.members[peer.0].store.analyzer().clone();
        let q = parse_query(raw_query, &analyzer);
        let mut hits = ExhaustiveHits {
            results: Vec::new(),
            snippets: Vec::new(),
            possibly_on_offline_peers: Vec::new(),
        };
        if q.is_empty() {
            return Ok(hits);
        }
        for m in &self.members {
            let candidate = q.terms.iter().all(|t| m.store.bloom().contains(t));
            if !candidate {
                continue;
            }
            if !m.online {
                hits.possibly_on_offline_peers.push(m.name.clone());
                continue;
            }
            for doc in m.store.search_conjunction(&q.terms) {
                let rec = m.store.get(doc).expect("searched doc exists");
                hits.results.push(ExhaustiveHit {
                    peer: m.name.clone(),
                    doc,
                    xml: rec.xml.clone(),
                });
            }
        }
        // Brokers may hold fresh snippets under any query term; a
        // snippet matches if it satisfies the whole conjunction.
        let mut seen = std::collections::HashSet::new();
        for t in &q.terms {
            for s in self.brokerage.lookup(t, self.now_ms) {
                if q.terms.iter().all(|qt| s.keys.contains(qt)) && seen.insert((s.publisher, s.id))
                {
                    hits.snippets.push(s.xml.clone());
                }
            }
        }
        hits.results
            .sort_by(|a, b| (&a.peer, a.doc).cmp(&(&b.peer, b.doc)));
        Ok(hits)
    }

    /// Ranked search (§5.2): TFxIPF with the adaptive stopping
    /// heuristic, over online peers.
    pub fn search_ranked(
        &self,
        peer: PeerHandle,
        raw_query: &str,
        k: usize,
    ) -> Result<RankedHits, PlanetPError> {
        let analyzer = self.members[peer.0].store.analyzer().clone();
        let q = parse_query(raw_query, &analyzer);
        if q.is_empty() {
            return Ok(RankedHits {
                results: Vec::new(),
                peers_contacted: 0,
            });
        }
        let online: Vec<usize> = (0..self.members.len())
            .filter(|&i| self.members[i].online)
            .collect();
        let stores: Vec<StoreAdapter<'_>> = online
            .iter()
            .map(|&i| StoreAdapter {
                store: &self.members[i].store,
            })
            .collect();
        let search = DistributedSearch::new(&stores);
        let out = search.search(&q.terms, SelectionConfig::paper(k));
        let results = out
            .results
            .into_iter()
            .map(|sd| {
                let member = &self.members[online[sd.doc.peer]];
                let rec = member.store.get(sd.doc.doc).expect("ranked doc exists");
                RankedHit {
                    peer: member.name.clone(),
                    doc: sd.doc.doc,
                    score: sd.score,
                    xml: rec.xml.clone(),
                }
            })
            .collect();
        Ok(RankedHits {
            results,
            peers_contacted: out.peers_contacted,
        })
    }

    // ------------------------------------------------------------------
    // Persistent queries
    // ------------------------------------------------------------------

    /// Register a persistent query for a peer; `callback` runs whenever
    /// matching content appears anywhere in the community.
    pub fn register_persistent_query(
        &mut self,
        peer: PeerHandle,
        raw_query: &str,
        callback: impl Fn(&Notification) + Send + Sync + 'static,
    ) -> PersistentQueryId {
        let analyzer = self.members[peer.0].store.analyzer().clone();
        let q = parse_query(raw_query, &analyzer);
        self.members[peer.0].registry.register(q.terms, callback)
    }

    /// Remove a persistent query.
    pub fn unregister_persistent_query(&mut self, peer: PeerHandle, id: PersistentQueryId) -> bool {
        self.members[peer.0].registry.unregister(id)
    }
}

impl Default for Community {
    fn default() -> Self {
        Self::new()
    }
}

/// Adapter exposing a `LocalDataStore` as a search `PeerStore`.
struct StoreAdapter<'a> {
    store: &'a LocalDataStore,
}

impl PeerStore for StoreAdapter<'_> {
    fn bloom(&self) -> &planetp_bloom::BloomFilter {
        self.store.bloom()
    }

    fn local_search(&self, query_terms: &[String], ipf: &IpfTable) -> Vec<(u64, f64)> {
        planetp_search::score_index(self.store.index(), query_terms, ipf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn community_of(names: &[&str]) -> (Community, Vec<PeerHandle>) {
        let mut c = Community::new();
        let handles = names.iter().map(|n| c.add_peer(n)).collect();
        (c, handles)
    }

    #[test]
    fn publish_then_exhaustive_search() {
        let (mut c, h) = community_of(&["alice", "bob", "carol"]);
        c.publish(
            h[0],
            "<d>gossip protocols everywhere</d>",
            PublishOptions::default(),
        )
        .unwrap();
        c.publish(h[1], "<d>gossip networks</d>", PublishOptions::default())
            .unwrap();
        c.publish(h[2], "<d>unrelated content</d>", PublishOptions::default())
            .unwrap();
        let hits = c.search_exhaustive(h[2], "gossip").unwrap();
        assert_eq!(hits.results.len(), 2);
        let hits = c.search_exhaustive(h[2], "gossip protocols").unwrap();
        assert_eq!(hits.results.len(), 1);
        assert_eq!(hits.results[0].peer, "alice");
    }

    #[test]
    fn ranked_search_orders_by_relevance() {
        let (mut c, h) = community_of(&["a", "b"]);
        c.publish(
            h[0],
            "<d>bloom bloom bloom filters</d>",
            PublishOptions::default(),
        )
        .unwrap();
        c.publish(
            h[1],
            "<d>bloom mentioned once here among many other words</d>",
            PublishOptions::default(),
        )
        .unwrap();
        let hits = c.search_ranked(h[0], "bloom", 10).unwrap();
        assert_eq!(hits.results.len(), 2);
        assert_eq!(hits.results[0].peer, "a", "tf-heavy doc first");
        assert!(hits.results[0].score > hits.results[1].score);
    }

    #[test]
    fn offline_peers_reported_not_searched() {
        let (mut c, h) = community_of(&["a", "b"]);
        c.publish(h[1], "<d>rare-term document</d>", PublishOptions::default())
            .unwrap();
        c.set_offline(h[1]);
        let hits = c.search_exhaustive(h[0], "rare-term").unwrap();
        assert!(hits.results.is_empty());
        assert_eq!(hits.possibly_on_offline_peers, vec!["b"]);
        c.set_online(h[1]);
        let hits = c.search_exhaustive(h[0], "rare-term").unwrap();
        assert_eq!(hits.results.len(), 1);
    }

    #[test]
    fn broker_snippets_surface_fresh_content() {
        let (mut c, h) = community_of(&["a", "b", "c", "d"]);
        c.publish(
            h[0],
            "<d>breaking breaking news</d>",
            PublishOptions {
                broker_hot_terms: Some(1.0),
            },
        )
        .unwrap();
        let hits = c.search_exhaustive(h[3], "breaking news").unwrap();
        assert_eq!(hits.snippets.len(), 1);
        // After the TTL the snippet is gone but the document remains.
        c.advance_time(11 * 60 * 1000);
        let hits = c.search_exhaustive(h[3], "breaking news").unwrap();
        assert!(hits.snippets.is_empty());
        assert_eq!(hits.results.len(), 1);
    }

    #[test]
    fn persistent_query_fires_on_publish() {
        let (mut c, h) = community_of(&["watcher", "writer"]);
        let count = Arc::new(AtomicUsize::new(0));
        let cc = Arc::clone(&count);
        c.register_persistent_query(h[0], "epidemic", move |_| {
            cc.fetch_add(1, Ordering::SeqCst);
        });
        c.publish(
            h[1],
            "<d>epidemic algorithms</d>",
            PublishOptions::default(),
        )
        .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 1);
        // Bloom filters are cumulative: a later publish re-delivers a
        // filter that still matches, so the upcall fires again (the
        // application re-runs the query to find what, if anything, is
        // new — exactly how PFS refreshes directories, §6).
        c.publish(h[1], "<d>nothing relevant</d>", PublishOptions::default())
            .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn unregister_silences_persistent_query() {
        let (mut c, h) = community_of(&["w", "p"]);
        let count = Arc::new(AtomicUsize::new(0));
        let cc = Arc::clone(&count);
        let id = c.register_persistent_query(h[0], "topic", move |_| {
            cc.fetch_add(1, Ordering::SeqCst);
        });
        assert!(c.unregister_persistent_query(h[0], id));
        c.publish(h[1], "<d>topic</d>", PublishOptions::default())
            .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn empty_query_returns_empty() {
        let (mut c, h) = community_of(&["a"]);
        c.publish(h[0], "<d>content</d>", PublishOptions::default())
            .unwrap();
        assert!(c
            .search_exhaustive(h[0], "the of")
            .unwrap()
            .results
            .is_empty());
        assert!(c.search_ranked(h[0], "", 5).unwrap().results.is_empty());
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn duplicate_names_rejected() {
        let mut c = Community::new();
        c.add_peer("same");
        c.add_peer("same");
    }

    #[test]
    fn peer_lookup_by_name() {
        let (c, h) = community_of(&["x", "y"]);
        assert_eq!(c.peer("y"), Some(h[1]));
        assert_eq!(c.peer("zzz"), None);
        assert_eq!(c.name(h[0]), "x");
    }

    #[test]
    fn unpublish_removes_from_search() {
        let (mut c, h) = community_of(&["a"]);
        let d = c
            .publish(h[0], "<d>temporary</d>", PublishOptions::default())
            .unwrap();
        assert_eq!(
            c.search_exhaustive(h[0], "temporary")
                .unwrap()
                .results
                .len(),
            1
        );
        c.unpublish(h[0], d).unwrap();
        assert!(c
            .search_exhaustive(h[0], "temporary")
            .unwrap()
            .results
            .is_empty());
    }
}
