//! Persistent queries (§5.1).
//!
//! "Persistent queries allow peers to specify interest in new
//! information entering the system without having to constantly poll
//! ... the poster provides an object that will be invoked whenever a
//! new matching snippet is found, either when a new Bloom filter is
//! received or a new snippet is published to the brokers."

use planetp_bloom::BloomFilter;
use std::collections::HashMap;

/// Identifier of a registered persistent query.
pub type PersistentQueryId = u64;

/// Why a persistent query fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Notification {
    /// A peer's updated Bloom filter claims all query terms: that peer
    /// may now hold matching documents (false positives possible).
    PeerMayMatch {
        /// Name of the peer whose filter matched.
        peer: String,
    },
    /// A snippet matching the query was published to the brokerage.
    Snippet {
        /// Name of the publishing peer.
        publisher: String,
        /// The snippet's XML content.
        xml: String,
    },
}

type Callback = Box<dyn Fn(&Notification) + Send + Sync>;

struct PersistentQuery {
    terms: Vec<String>,
    callback: Callback,
}

/// Registry of a peer's persistent queries.
#[derive(Default)]
pub struct PersistentQueryRegistry {
    queries: HashMap<PersistentQueryId, PersistentQuery>,
    next_id: PersistentQueryId,
}

impl std::fmt::Debug for PersistentQueryRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentQueryRegistry")
            .field("queries", &self.queries.len())
            .finish()
    }
}

impl PersistentQueryRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a query (analyzed terms) with an upcall.
    pub fn register(
        &mut self,
        terms: Vec<String>,
        callback: impl Fn(&Notification) + Send + Sync + 'static,
    ) -> PersistentQueryId {
        self.next_id += 1;
        let id = self.next_id;
        self.queries.insert(
            id,
            PersistentQuery {
                terms,
                callback: Box::new(callback),
            },
        );
        id
    }

    /// Remove a query. Returns whether it existed.
    pub fn unregister(&mut self, id: PersistentQueryId) -> bool {
        self.queries.remove(&id).is_some()
    }

    /// Number of live queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// A peer's new Bloom filter arrived: fire every query whose terms
    /// all hit the filter.
    pub fn on_bloom_update(&self, peer: &str, bloom: &BloomFilter) {
        for q in self.queries.values() {
            if !q.terms.is_empty() && q.terms.iter().all(|t| bloom.contains(t)) {
                (q.callback)(&Notification::PeerMayMatch {
                    peer: peer.to_string(),
                });
            }
        }
    }

    /// A snippet was published: fire every query whose terms are all
    /// among the snippet's keys.
    pub fn on_snippet(&self, publisher: &str, xml: &str, keys: &[String]) {
        for q in self.queries.values() {
            if !q.terms.is_empty() && q.terms.iter().all(|t| keys.contains(t)) {
                (q.callback)(&Notification::Snippet {
                    publisher: publisher.to_string(),
                    xml: xml.to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planetp_bloom::BloomParams;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn terms(t: &[&str]) -> Vec<String> {
        t.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn bloom_update_fires_matching_queries_only() {
        let mut reg = PersistentQueryRegistry::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        reg.register(terms(&["gossip", "bloom"]), move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        let mut f = BloomFilter::new(BloomParams::for_capacity(100, 0.001));
        f.insert("gossip");
        reg.on_bloom_update("alice", &f);
        assert_eq!(
            hits.load(Ordering::SeqCst),
            0,
            "partial match must not fire"
        );
        f.insert("bloom");
        reg.on_bloom_update("alice", &f);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn snippet_matching_is_conjunctive_on_keys() {
        let mut reg = PersistentQueryRegistry::new();
        let got: Arc<parking_lot::Mutex<Vec<Notification>>> = Default::default();
        let g = Arc::clone(&got);
        reg.register(terms(&["alert"]), move |n| g.lock().push(n.clone()));
        reg.on_snippet("bob", "<n>fire</n>", &terms(&["alert", "fire"]));
        reg.on_snippet("bob", "<n>calm</n>", &terms(&["calm"]));
        let got = got.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(
            got[0],
            Notification::Snippet {
                publisher: "bob".into(),
                xml: "<n>fire</n>".into()
            }
        );
    }

    #[test]
    fn unregister_stops_upcalls() {
        let mut reg = PersistentQueryRegistry::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let id = reg.register(terms(&["x"]), move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert!(reg.unregister(id));
        assert!(!reg.unregister(id));
        reg.on_snippet("p", "<x/>", &terms(&["x"]));
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        assert!(reg.is_empty());
    }

    #[test]
    fn empty_term_queries_never_fire() {
        let mut reg = PersistentQueryRegistry::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        reg.register(vec![], move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        reg.on_snippet("p", "<x/>", &terms(&["anything"]));
        assert_eq!(hits.load(Ordering::SeqCst), 0);
    }
}
