//! Query parsing.
//!
//! "An application poses a query represented as a conjunction of keys
//! separated by white spaces" (§5.1). Queries run through the same
//! analyzer as documents (tokenize, stop-word removal, stemming) or
//! lookups would miss.

use planetp_index::Analyzer;

/// An analyzed query: the terms actually matched against the indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTerms {
    /// Analyzed terms in query order, duplicates removed.
    pub terms: Vec<String>,
}

impl QueryTerms {
    /// Is there anything to search for?
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Analyze a raw query string.
pub fn parse_query(raw: &str, analyzer: &Analyzer) -> QueryTerms {
    let mut terms = analyzer.analyze(raw);
    // Conjunction semantics: each key counts once.
    let mut seen = std::collections::HashSet::new();
    terms.retain(|t| seen.insert(t.clone()));
    QueryTerms { terms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_stems() {
        let q = parse_query("Gossiping  protocols", &Analyzer::new());
        assert_eq!(q.terms, vec!["gossip", "protocol"]);
    }

    #[test]
    fn stop_words_drop_out() {
        let q = parse_query("the of and", &Analyzer::new());
        assert!(q.is_empty());
    }

    #[test]
    fn duplicates_removed() {
        let q = parse_query("gossip gossip gossiping", &Analyzer::new());
        assert_eq!(q.terms, vec!["gossip"]);
    }
}
