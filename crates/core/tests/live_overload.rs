//! Overload protection end to end: a saturated (here: forcibly
//! overloaded) node sheds work with an explicit [`LiveMsg::Busy`]
//! instead of timing out, Background work is sacrificed before
//! Interactive work, shed peers show up in the search coverage
//! summary, and — the part that keeps overload from cascading into
//! false churn — a `Busy` reply is never charged to the suspect →
//! offline health machine.

use planetp::admission::{Admission, AdmissionConfig, AdmissionGate};
use planetp::faults::{FaultInjector, FaultPlan, FaultRules};
use planetp::live::{LiveConfig, LiveNode};
use planetp::wire::Priority;
use planetp_gossip::GossipConfig;
use planetp_obs::names;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast_config(seed: u64, faults: Option<Arc<FaultInjector>>) -> LiveConfig {
    LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: 40,
            max_interval_ms: 120,
            slowdown_ms: 20,
            ..GossipConfig::default()
        },
        // Deliberately long: if Busy handling regressed into the
        // timeout path, the latency assertion below would blow past it.
        io_timeout: Duration::from_secs(10),
        seed,
        faults,
        ..LiveConfig::default()
    }
}

fn wait_for(mut cond: impl FnMut() -> bool, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    cond()
}

/// Priority ordering at the gate under real saturation, with real
/// blocked waiters: one slot, one queue entry. A queued Background
/// request is evicted the moment an Interactive request arrives, a
/// Background arrival never evicts Background, and the Interactive
/// request is served as soon as the slot frees.
#[test]
fn background_is_shed_before_interactive_under_saturation() {
    let gate = Arc::new(AdmissionGate::new(AdmissionConfig {
        max_active: 1,
        queue_capacity: 1,
        max_wait_ms: 10_000,
        ..AdmissionConfig::default()
    }));

    // Occupy the only service slot.
    assert!(matches!(
        gate.admit(Priority::Interactive, None),
        Admission::Admitted { .. }
    ));

    // A Background request takes the only queue slot and blocks.
    let bg_gate = Arc::clone(&gate);
    let bg = std::thread::spawn(move || bg_gate.admit(Priority::Background, None));
    assert!(
        wait_for(|| gate.queued() == 1, Duration::from_secs(5)),
        "background request never queued"
    );

    // Another Background arrival finds the queue full of its own class:
    // it is shed itself, immediately — never evicts an equal.
    let started = Instant::now();
    assert!(matches!(
        gate.admit(Priority::Background, None),
        Admission::Shed { .. }
    ));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "same-class shed must not wait out the queue"
    );
    assert_eq!(gate.queued(), 1, "the original background request remains");

    // An Interactive arrival evicts the queued Background request...
    let int_gate = Arc::clone(&gate);
    let int = std::thread::spawn(move || int_gate.admit(Priority::Interactive, None));
    let bg_fate = bg.join().expect("background waiter");
    assert!(
        matches!(bg_fate, Admission::Shed { retry_after_ms } if retry_after_ms > 0),
        "evicted background request must be shed with a retry hint: {bg_fate:?}"
    );

    // ...and is served as soon as the slot frees.
    gate.complete();
    let int_fate = int.join().expect("interactive waiter");
    assert!(
        matches!(int_fate, Admission::Admitted { .. }),
        "interactive request must be granted after eviction: {int_fate:?}"
    );
    gate.complete();
}

/// An overloaded peer (its injector forces `Busy` on every inbound
/// request) is visible but useless to searches: ranked search counts it
/// in `peers_shed`, keeps the result from claiming completeness, still
/// returns everyone else's hits — and the searcher's health table never
/// charges the peer, because shedding is load, not death.
#[test]
fn overloaded_peer_is_shed_in_coverage_but_never_charged_to_health() {
    const VICTIM: u32 = 2;
    let victim_faults = Arc::new(FaultInjector::new(
        99,
        FaultPlan {
            inbound: FaultRules {
                force_busy: 1.0,
                ..FaultRules::default()
            },
            ..FaultPlan::default()
        },
    ));

    // The victim joins and converges through the gossip rounds it
    // initiates itself (outbound is clean); everything it *serves* is
    // answered `Busy`.
    let founder = LiveNode::start(0, fast_config(90, None), None).expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let nodes = vec![
        founder,
        LiveNode::start(1, fast_config(91, None), Some(bootstrap.clone())).expect("node 1"),
        LiveNode::start(
            VICTIM,
            fast_config(92, Some(Arc::clone(&victim_faults))),
            Some(bootstrap),
        )
        .expect("victim"),
    ];
    assert!(
        wait_for(
            || nodes.iter().all(|n| n.directory_size() == 3),
            Duration::from_secs(60),
        ),
        "directories never reached size 3: {:?}",
        nodes.iter().map(|n| n.directory_size()).collect::<Vec<_>>()
    );

    nodes[1]
        .publish("<doc><title>Healthy peer</title><body>overload shared corpus</body></doc>")
        .unwrap();
    nodes[VICTIM as usize]
        .publish("<doc><title>Busy peer</title><body>overload shared corpus</body></doc>")
        .unwrap();
    assert!(
        wait_for(
            || {
                let d = nodes[0].directory_digest();
                nodes.iter().all(|n| n.directory_digest() == d)
            },
            Duration::from_secs(60),
        ),
        "directories never converged after publishing"
    );

    // The victim's filter matches, so search must try it — and take the
    // Busy reply in stride, in milliseconds, not after a 10 s timeout.
    let started = Instant::now();
    let r = nodes[0].search_ranked("overload corpus", 10).unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "Busy must answer fast, not via the timeout path: took {elapsed:?}"
    );

    let owners: Vec<u32> = r.hits.iter().map(|h| h.peer).collect();
    assert!(
        owners.contains(&1),
        "healthy peer's hit missing: {owners:?}"
    );
    assert!(
        r.coverage.peers_shed >= 1,
        "the overloaded peer must be counted as shed: {:?}",
        r.coverage
    );
    assert_eq!(
        r.coverage.peers_failed, 0,
        "Busy is not a failure: {:?}",
        r.coverage
    );
    assert!(
        !r.coverage.is_complete(),
        "a shed peer must spoil completeness: {:?}",
        r.coverage
    );

    // Hammer a few more searches: the shed accounting must hold every
    // time (whether the contact was answered Busy or throttled away).
    for _ in 0..4 {
        let r = nodes[0].search_ranked("overload corpus", 10).unwrap();
        assert!(
            r.coverage.peers_shed >= 1,
            "shed peer lost: {:?}",
            r.coverage
        );
    }

    // Never charged to health: no consecutive failures, no offline
    // marking, no rpc failure counted anywhere on the searcher.
    let health = nodes[0].peer_health(VICTIM);
    assert_eq!(
        health.map_or(0, |e| e.consecutive_failures),
        0,
        "Busy replies were charged to the health machine: {health:?}"
    );
    let s = nodes[0].stats();
    assert_eq!(
        s.rpc_failures, 0,
        "Busy was counted as an RPC failure: {s:?}"
    );
    assert_eq!(
        s.peers_marked_offline, 0,
        "an overloaded peer was declared dead: {s:?}"
    );

    // The metrics tell the same story on both ends of the wire.
    let searcher = nodes[0].metrics_snapshot();
    assert!(
        searcher.counter(names::BUSY_RECEIVED) >= 1,
        "searcher never recorded a Busy reply"
    );
    let victim = nodes[VICTIM as usize].metrics_snapshot();
    assert!(
        victim.counter(names::BUSY_SENT) >= 1,
        "victim never recorded sending Busy"
    );
    assert!(
        victim.counter(names::ADMISSION_SHED) >= 1,
        "victim never recorded shedding"
    );
    assert!(
        victim_faults.stats().forced_busy >= 1,
        "the forced-overload rule never fired"
    );
}
