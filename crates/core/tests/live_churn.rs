//! Live runtime under churn: a node disappears mid-community, others
//! detect the failure through real connection errors and route around
//! it, and searches keep working.

use planetp::live::{LiveConfig, LiveNode};
use planetp_gossip::GossipConfig;
use std::time::{Duration, Instant};

fn fast_config(seed: u64) -> LiveConfig {
    LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: 40,
            max_interval_ms: 120,
            slowdown_ms: 20,
            ..GossipConfig::default()
        },
        io_timeout: Duration::from_millis(500),
        seed,
        ..LiveConfig::default()
    }
}

fn wait_for(mut cond: impl FnMut() -> bool, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    cond()
}

#[test]
fn community_survives_peer_death() {
    let founder = LiveNode::start(0, fast_config(500), None).expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..5 {
        nodes.push(
            LiveNode::start(
                id,
                fast_config(500 + u64::from(id)),
                Some(bootstrap.clone()),
            )
            .expect("node"),
        );
    }
    assert!(wait_for(
        || nodes.iter().all(|n| n.directory_size() == 5),
        Duration::from_secs(30),
    ));

    nodes[1]
        .publish("<d>durable knowledge survives churn</d>")
        .unwrap();
    nodes[4].publish("<d>volatile host content</d>").unwrap();
    assert!(wait_for(
        || {
            let d = nodes[0].directory_digest();
            nodes.iter().all(|n| n.directory_digest() == d)
        },
        Duration::from_secs(30),
    ));

    // Kill node 4 (drop closes its listener and stops its threads).
    let dead = nodes.pop().expect("node 4");
    drop(dead);

    // The survivors keep gossiping; a search from node 2 still finds
    // node 1's document, and the dead peer's content is simply absent
    // (its filter still matches, the contact fails, search moves on).
    assert!(
        wait_for(
            || {
                let r = nodes[2].search_ranked("durable knowledge", 5).unwrap();
                r.hits.len() == 1 && r.hits[0].peer == 1
            },
            Duration::from_secs(30),
        ),
        "search must keep working after a peer death"
    );
    // The dead peer's filter still matches, so some search attempt must
    // reach it, fail, and report that in coverage. A single attempt can
    // come back complete if adaptive stopping gives up before the dead
    // peer's rank position, so poll rather than trusting one search.
    assert!(
        wait_for(
            || {
                let r = nodes[2].search_ranked("volatile host", 5).unwrap();
                assert!(r.hits.is_empty(), "dead peer's docs must not be returned");
                !r.coverage.is_complete()
            },
            Duration::from_secs(30),
        ),
        "coverage never reported the dead peer"
    );

    // New content published after the death still converges among the
    // survivors.
    nodes[3].publish("<d>post-mortem publication</d>").unwrap();
    assert!(
        wait_for(
            || {
                let hits = nodes[0].search_exhaustive("post-mortem").unwrap().hits;
                hits.len() == 1
            },
            Duration::from_secs(30),
        ),
        "publications after the death must still spread"
    );
}
