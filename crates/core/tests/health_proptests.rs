//! Property-based tests of the `core::health` state machine: arbitrary
//! interleavings of contact outcomes across peers must never panic,
//! never jump straight from Healthy to Offline, and always return to a
//! fully reset Healthy entry on success.

use planetp::health::{HealthConfig, HealthState, PeerHealth};
use proptest::prelude::*;

/// One recorded contact outcome in a generated schedule.
#[derive(Debug, Clone)]
enum Contact {
    /// (peer, latency_ms)
    Success(u8, u16),
    /// (peer)
    Failure(u8),
    /// Advance the local clock by this many ms.
    Tick(u16),
}

fn contact_strategy() -> impl Strategy<Value = Contact> {
    prop_oneof![
        2 => (any::<u8>(), any::<u16>()).prop_map(|(p, l)| Contact::Success(p, l)),
        3 => any::<u8>().prop_map(Contact::Failure),
        1 => any::<u16>().prop_map(Contact::Tick),
    ]
}

/// Configs where the suspect phase is a real intermediate stop
/// (suspect_after < offline_after), as the live runtime always uses.
fn config_strategy() -> impl Strategy<Value = HealthConfig> {
    (1u32..4, 1u32..5, 1u64..2_000, 1u64..60_000, 0.01f64..1.0).prop_map(
        |(suspect_after, extra, base_backoff_ms, max_backoff_ms, ewma_alpha)| HealthConfig {
            suspect_after,
            offline_after: suspect_after + extra,
            base_backoff_ms,
            max_backoff_ms,
            ewma_alpha,
        },
    )
}

proptest! {
    /// Replay arbitrary schedules over few peers and check every
    /// invariant after every step. The replay itself is the no-panic
    /// property.
    #[test]
    fn state_machine_invariants_hold(
        config in config_strategy(),
        schedule in prop::collection::vec(contact_strategy(), 0..200),
    ) {
        let mut health = PeerHealth::new(config);
        let mut now: u64 = 0;
        for contact in &schedule {
            match *contact {
                Contact::Tick(dt) => now += u64::from(dt),
                Contact::Success(peer, latency) => {
                    let peer = u32::from(peer % 5);
                    let t = health.record_success(peer, now, f64::from(latency));
                    // Success always lands in Healthy with everything
                    // reset: no stale failure count, no backoff gate.
                    prop_assert_eq!(t.to, HealthState::Healthy);
                    let e = health.get(peer).expect("recorded peer exists");
                    prop_assert_eq!(e.state, HealthState::Healthy);
                    prop_assert_eq!(e.consecutive_failures, 0);
                    prop_assert_eq!(e.retry_at_ms, 0);
                    prop_assert!(!health.should_skip(peer, now));
                    prop_assert!(e.ewma_latency_ms.is_some());
                    // recovered() fires exactly on non-Healthy -> Healthy.
                    prop_assert_eq!(t.recovered(), t.from != HealthState::Healthy);
                }
                Contact::Failure(peer) => {
                    let peer = u32::from(peer % 5);
                    let before = health.state(peer);
                    let t = health.record_failure(peer, now);
                    prop_assert_eq!(t.from, before);
                    // Offline is only reachable through Suspect: a
                    // Healthy peer may become Suspect on this failure,
                    // never Offline in one step.
                    if t.to == HealthState::Offline {
                        prop_assert_ne!(
                            t.from, HealthState::Healthy,
                            "Healthy jumped straight to Offline"
                        );
                    }
                    let e = health.get(peer).expect("recorded peer exists");
                    // State agrees with the failure count thresholds.
                    let expect = if e.consecutive_failures >= config.offline_after {
                        HealthState::Offline
                    } else if e.consecutive_failures >= config.suspect_after {
                        HealthState::Suspect
                    } else {
                        HealthState::Healthy
                    };
                    prop_assert_eq!(e.state, expect);
                    // Backoff stays inside [now, now + cap] and only
                    // gates offline peers; suspects keep being probed.
                    if e.state == HealthState::Offline {
                        prop_assert!(e.retry_at_ms >= now);
                        prop_assert!(
                            e.retry_at_ms <= now + config.max_backoff_ms.max(1),
                            "retry_at {} beyond cap", e.retry_at_ms
                        );
                        prop_assert!(!health.should_skip(peer, e.retry_at_ms));
                    } else {
                        prop_assert!(!health.should_skip(peer, now));
                    }
                }
            }
        }
        // offline_count agrees with a full scan of the table.
        let scanned = health
            .iter()
            .filter(|(_, e)| e.state == HealthState::Offline)
            .count();
        prop_assert_eq!(health.offline_count(), scanned);
    }

    /// Every path to Offline passes through Suspect: collect the edge
    /// list of one peer's transitions and check the walk is gradual.
    #[test]
    fn offline_requires_a_suspect_phase(
        config in config_strategy(),
        outcomes in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut health = PeerHealth::new(config);
        let mut seen_suspect_since_healthy = false;
        for (i, &ok) in outcomes.iter().enumerate() {
            let now = i as u64 * 10;
            let t = if ok {
                health.record_success(7, now, 5.0)
            } else {
                health.record_failure(7, now)
            };
            match t.to {
                HealthState::Healthy => seen_suspect_since_healthy = false,
                HealthState::Suspect => seen_suspect_since_healthy = true,
                HealthState::Offline => prop_assert!(
                    seen_suspect_since_healthy || t.from == HealthState::Offline,
                    "reached Offline without a Suspect phase (from {:?})",
                    t.from
                ),
            }
        }
    }

    /// Peers never observed are Healthy and never skipped, at any time.
    #[test]
    fn unknown_peers_are_healthy(peer in any::<u32>(), now in any::<u64>()) {
        let health = PeerHealth::new(HealthConfig::default());
        prop_assert_eq!(health.state(peer), HealthState::Healthy);
        prop_assert!(!health.should_skip(peer, now));
        prop_assert!(health.get(peer).is_none());
    }
}
