//! Property tests of the admission-control decision core
//! ([`planetp::admission::AdmissionState`]) under arbitrary schedules:
//! the shared queue bound holds, shedding is class-ordered (a queued
//! request is only ever evicted for a strictly higher-class arrival),
//! grants are strict-priority FIFO, and no ticket is ever lost —
//! everything that enters leaves through exactly one of grant,
//! eviction, or cancellation.

use planetp::admission::{AdmissionState, Enqueued};
use planetp::wire::Priority;
use proptest::prelude::*;
use std::collections::HashSet;

fn any_class() -> impl Strategy<Value = Priority> {
    prop_oneof![
        Just(Priority::Interactive),
        Just(Priority::Control),
        Just(Priority::Background),
    ]
}

#[derive(Debug, Clone)]
enum Op {
    Enqueue(Priority),
    Grant,
    Complete,
    CancelNth(usize),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any_class().prop_map(Op::Enqueue),
        3 => Just(Op::Grant),
        2 => Just(Op::Complete),
        1 => (0usize..8).prop_map(Op::CancelNth),
    ]
}

proptest! {
    /// Drive a random schedule against a mirror of the queue and check
    /// every structural invariant after every step.
    #[test]
    fn admission_invariants_hold_under_arbitrary_schedules(
        max_active in 1usize..4,
        capacity in 1usize..8,
        ops in prop::collection::vec(op(), 1..200),
    ) {
        let mut s = AdmissionState::new(max_active, capacity, true);
        // Mirror of the queued tickets in arrival order.
        let mut queued: Vec<(u64, Priority)> = Vec::new();
        let mut now = 0u64;
        for op in ops {
            now += 1;
            match op {
                Op::Enqueue(class) => {
                    let before: Vec<u64> = queued.iter().map(|(t, _)| *t).collect();
                    let (res, evicted) = s.enqueue(class, now);
                    if let Some(v) = evicted {
                        // Eviction only happens on a full queue, and
                        // only of work strictly below the arrival.
                        prop_assert_eq!(before.len(), capacity);
                        let vc = queued
                            .iter()
                            .find(|(t, _)| *t == v)
                            .map(|(_, c)| *c)
                            .expect("evicted ticket was queued");
                        prop_assert!(
                            vc > class,
                            "evicted {:?} to admit {:?}",
                            vc,
                            class
                        );
                        queued.retain(|(t, _)| *t != v);
                    }
                    match res {
                        Enqueued::Queued(t) => {
                            prop_assert!(!before.contains(&t), "ticket ids are fresh");
                            queued.push((t, class));
                        }
                        Enqueued::Shed => {
                            // Shed-on-arrival only when the queue is
                            // full and holds nothing lower-class than
                            // the arrival (Interactive never evicts
                            // Interactive).
                            prop_assert_eq!(queued.len(), capacity);
                            prop_assert!(evicted.is_none());
                            prop_assert!(queued.iter().all(|(_, c)| *c <= class));
                        }
                    }
                }
                Op::Grant => match s.grant_next(now) {
                    Some((t, _wait, class)) => {
                        // Strict priority: the oldest ticket of the
                        // most urgent non-empty class.
                        let best = queued.iter().map(|(_, c)| *c).min().unwrap();
                        prop_assert_eq!(class, best);
                        let expect = queued
                            .iter()
                            .find(|(_, c)| *c == best)
                            .map(|(t, _)| *t)
                            .unwrap();
                        prop_assert_eq!(t, expect, "FIFO within the class");
                        queued.retain(|(tt, _)| *tt != t);
                    }
                    None => {
                        prop_assert!(
                            queued.is_empty() || s.active() == max_active,
                            "a grant is only refused when blocked or empty"
                        );
                    }
                },
                Op::Complete => {
                    if s.active() > 0 {
                        s.complete();
                    }
                }
                Op::CancelNth(n) => {
                    if !queued.is_empty() {
                        let (t, _) = queued[n % queued.len()];
                        prop_assert!(s.cancel(t));
                        queued.retain(|(tt, _)| *tt != t);
                    }
                }
            }
            prop_assert!(s.queued() <= capacity, "shared bound holds");
            prop_assert_eq!(s.queued(), queued.len(), "mirror agrees");
            prop_assert!(s.active() <= max_active, "service bound holds");
        }
    }

    /// `--no-shedding` mode (the pre-admission collapse baseline the
    /// overload bench compares against): nothing is ever refused or
    /// evicted, no matter how far past the bound the queue grows.
    #[test]
    fn shedding_off_never_refuses_work(
        classes in prop::collection::vec(any_class(), 1..64),
    ) {
        let mut s = AdmissionState::new(1, 2, false);
        for (i, class) in classes.iter().enumerate() {
            let (res, evicted) = s.enqueue(*class, i as u64);
            prop_assert!(matches!(res, Enqueued::Queued(_)));
            prop_assert!(evicted.is_none());
        }
        prop_assert_eq!(s.queued(), classes.len());
    }

    /// No lost replies: after an arbitrary arrival burst, draining the
    /// gate grants exactly the tickets that were neither shed on
    /// arrival nor evicted — each of which was answered with `Busy` at
    /// the time — and nothing remains queued.
    #[test]
    fn draining_grants_every_surviving_ticket(
        classes in prop::collection::vec(any_class(), 1..32),
        capacity in 1usize..8,
    ) {
        let mut s = AdmissionState::new(1, capacity, true);
        let mut alive: HashSet<u64> = HashSet::new();
        for (i, class) in classes.iter().enumerate() {
            let (res, evicted) = s.enqueue(*class, i as u64);
            if let Some(v) = evicted {
                prop_assert!(alive.remove(&v), "evicted ticket was alive");
            }
            if let Enqueued::Queued(t) = res {
                alive.insert(t);
            }
        }
        let mut drained = HashSet::new();
        while let Some((t, _, _)) = s.grant_next(1_000) {
            s.complete();
            drained.insert(t);
        }
        prop_assert_eq!(drained, alive, "granted exactly the survivors");
        prop_assert_eq!(s.queued(), 0);
    }
}
