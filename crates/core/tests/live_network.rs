//! Live TCP runtime validation: real sockets, real gossip, real search
//! RPCs — the analog of the paper's cluster deployment used to validate
//! the simulator. Gossip intervals are shrunk from 30 s to tens of
//! milliseconds so convergence takes a moment, not minutes.

use planetp::live::{LiveConfig, LiveNode};
use planetp_gossip::GossipConfig;
use std::time::{Duration, Instant};

fn fast_config(seed: u64) -> LiveConfig {
    LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: 40,
            max_interval_ms: 120,
            slowdown_ms: 20,
            ..GossipConfig::default()
        },
        io_timeout: Duration::from_secs(2),
        seed,
        ..LiveConfig::default()
    }
}

/// Spin until `cond` holds or the deadline passes.
fn wait_for(mut cond: impl FnMut() -> bool, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    cond()
}

fn start_community(n: u32) -> Vec<LiveNode> {
    let founder = LiveNode::start(0, fast_config(100), None).expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..n {
        nodes.push(
            LiveNode::start(
                id,
                fast_config(100 + u64::from(id)),
                Some(bootstrap.clone()),
            )
            .expect("node starts"),
        );
    }
    nodes
}

#[test]
fn five_peers_converge_and_search() {
    let nodes = start_community(5);
    assert!(
        wait_for(
            || nodes.iter().all(|n| n.directory_size() == 5),
            Duration::from_secs(30),
        ),
        "directories never reached size 5: {:?}",
        nodes.iter().map(|n| n.directory_size()).collect::<Vec<_>>()
    );

    // Publish from different peers.
    nodes[1]
        .publish("<doc><title>Epidemic algorithms</title><body>gossip spreads updates</body></doc>")
        .unwrap();
    nodes[3]
        .publish("<doc><title>Bloom filters</title><body>compact summaries for gossip</body></doc>")
        .unwrap();
    nodes[4]
        .publish("<doc><title>Cooking</title><body>entirely unrelated content</body></doc>")
        .unwrap();

    // Wait until the new filters are everywhere (digests equal).
    assert!(
        wait_for(
            || {
                let d0 = nodes[0].directory_digest();
                nodes.iter().all(|n| n.directory_digest() == d0)
            },
            Duration::from_secs(30),
        ),
        "directories never converged after publishes"
    );

    // Ranked search from a peer that owns none of the matching docs.
    let result = nodes[0].search_ranked("gossip", 10).unwrap();
    assert!(
        result.coverage.is_complete(),
        "healthy community must yield full coverage: {:?}",
        result.coverage
    );
    let owners: Vec<u32> = result.hits.iter().map(|h| h.peer).collect();
    assert!(owners.contains(&1), "missing node 1's doc: {owners:?}");
    assert!(owners.contains(&3), "missing node 3's doc: {owners:?}");
    assert!(!owners.contains(&4), "unrelated doc matched");

    // Exhaustive conjunction search.
    let hits = nodes[0].search_exhaustive("gossip summaries").unwrap().hits;
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].peer, 3);
}

#[test]
fn late_joiner_downloads_directory_and_content_is_findable() {
    let mut nodes = start_community(3);
    nodes[2]
        .publish("<d>deterministic replicated directory</d>")
        .unwrap();
    assert!(
        wait_for(
            || {
                let d0 = nodes[0].directory_digest();
                nodes.iter().all(|n| n.directory_digest() == d0)
            },
            Duration::from_secs(30),
        ),
        "initial community never converged"
    );

    // A new peer joins via node 1.
    let late =
        LiveNode::start(9, fast_config(999), Some((1, nodes[1].addr().to_string()))).unwrap();
    nodes.push(late);
    assert!(
        wait_for(
            || nodes.iter().all(|n| n.directory_size() == 4),
            Duration::from_secs(30),
        ),
        "join never propagated: {:?}",
        nodes.iter().map(|n| n.directory_size()).collect::<Vec<_>>()
    );

    // The late joiner can find content published before it joined.
    let hits = nodes[3]
        .search_ranked("replicated directory", 5)
        .unwrap()
        .hits;
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].peer, 2);
}

#[test]
fn search_suppresses_non_candidates() {
    let nodes = start_community(3);
    assert!(wait_for(
        || nodes.iter().all(|n| n.directory_size() == 3),
        Duration::from_secs(30),
    ));
    nodes[1].publish("<d>zanzibar archipelago</d>").unwrap();
    assert!(wait_for(
        || {
            let d0 = nodes[0].directory_digest();
            nodes.iter().all(|n| n.directory_digest() == d0)
        },
        Duration::from_secs(30),
    ));
    // A term on no peer returns nothing (and must not hang).
    let hits = nodes[0]
        .search_exhaustive("nonexistent-term-xyz")
        .unwrap()
        .hits;
    assert!(hits.is_empty());
    let hits = nodes[2].search_exhaustive("zanzibar").unwrap().hits;
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].peer, 1);
}
