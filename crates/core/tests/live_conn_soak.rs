//! Connection-pool behaviour under real sockets: the zero-connect
//! warm path, the uncharged stale-reconnect contract, and a soak that
//! mixes gossip and search load with ~20% connection faults while
//! watching process-level resource bounds.
//!
//! The acceptance claim for the pooled live wire lives here: a warm
//! repeated ranked search performs **zero** new TCP connects, proven
//! on the `conn.opened` counter — not inferred from latency.

use planetp::faults::{FaultInjector, FaultPlan, FaultRules};
use planetp::health::{HealthState, RetryPolicy};
use planetp::live::{FanoutConfig, LiveConfig, LiveNode};
use planetp::ConnConfig;
use planetp_gossip::GossipConfig;
use planetp_obs::names;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn base_config(seed: u64, faults: Option<Arc<FaultInjector>>, conn: ConnConfig) -> LiveConfig {
    LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: 40,
            max_interval_ms: 120,
            slowdown_ms: 20,
            ..GossipConfig::default()
        },
        io_timeout: Duration::from_secs(2),
        seed,
        retry: RetryPolicy {
            max_attempts: 2,
            base_delay_ms: 20,
            max_delay_ms: 100,
        },
        fanout: FanoutConfig {
            group_size: 3,
            contact_deadline: None,
            pool_threads: 4,
        },
        faults,
        conn,
        ..LiveConfig::default()
    }
}

fn wait_for(mut cond: impl FnMut() -> bool, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    cond()
}

/// Start `n` nodes, converge the directory, publish one corpus doc per
/// node, and converge again. Panics with diagnostics on failure.
fn community(n: u32, config: impl Fn(u32) -> LiveConfig) -> Vec<LiveNode> {
    let founder = LiveNode::start(0, config(0), None).expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..n {
        nodes.push(LiveNode::start(id, config(id), Some(bootstrap.clone())).expect("node"));
    }
    assert!(
        wait_for(
            || nodes.iter().all(|nd| nd.directory_size() == n as usize),
            Duration::from_secs(60),
        ),
        "directories never reached size {n}: {:?}",
        nodes
            .iter()
            .map(|nd| nd.directory_size())
            .collect::<Vec<_>>()
    );
    for (i, nd) in nodes.iter().enumerate() {
        nd.publish(&format!("<doc><body>soak corpus entry {i}</body></doc>"))
            .unwrap();
    }
    assert!(
        wait_for(
            || {
                let d = nodes[0].directory_digest();
                nodes.iter().all(|nd| nd.directory_digest() == d)
            },
            Duration::from_secs(60),
        ),
        "directories never converged after publishes"
    );
    nodes
}

/// Live threads in this process, from `/proc/self/status` (Linux only;
/// `None` elsewhere, which skips the resource assertions).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Open file descriptors in this process, from `/proc/self/fd`.
fn fd_count() -> Option<usize> {
    Some(std::fs::read_dir("/proc/self/fd").ok()?.count())
}

/// The acceptance criterion: once the pool reaches steady state, a
/// repeated ranked search opens **zero** new TCP connections — every
/// contact rides an existing multiplexed stream — while returning the
/// complete, correct result set every time.
#[test]
fn warm_ranked_search_opens_zero_connections() {
    const N: u32 = 8;
    // Idle timeout far beyond the test so the reaper cannot retire a
    // stream mid-measurement and force a reconnect we did not cause.
    let conn = ConnConfig {
        idle_timeout: Duration::from_secs(120),
        ..ConnConfig::default()
    };
    let nodes = community(N, |id| base_config(700 + u64::from(id), None, conn));
    let searcher = &nodes[0];
    let opened = |n: &LiveNode| n.metrics_snapshot().counter(names::CONN_OPENED);

    // Stabilize: background gossip and the first few searches are
    // allowed to populate the pool. Steady state = the opened counter
    // flat across three consecutive full searches.
    let mut last = opened(searcher);
    let mut flat = 0;
    let start = Instant::now();
    while flat < 3 && start.elapsed() < Duration::from_secs(30) {
        searcher.search_ranked("soak corpus", 50).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        let now = opened(searcher);
        if now == last {
            flat += 1;
        } else {
            flat = 0;
            last = now;
        }
    }
    assert!(flat >= 3, "connection pool never reached steady state");

    // Measure: five warm searches, zero connects, full correct results.
    let before = searcher.metrics_snapshot();
    let (base_opened, base_reused) = (
        before.counter(names::CONN_OPENED),
        before.counter(names::CONN_REUSED),
    );
    for round in 0..5 {
        let r = searcher.search_ranked("soak corpus", 50).unwrap();
        assert_eq!(
            r.hits.len(),
            N as usize,
            "round {round}: expected one doc per peer: {:?}",
            r.coverage
        );
        assert!(r.coverage.is_complete(), "round {round}: {:?}", r.coverage);
        for h in &r.hits {
            assert!(
                h.xml.contains(&format!("soak corpus entry {}", h.peer)),
                "round {round}: hit from peer {} carries wrong doc: {}",
                h.peer,
                h.xml
            );
        }
    }
    let after = searcher.metrics_snapshot();
    assert_eq!(
        after.counter(names::CONN_OPENED),
        base_opened,
        "warm repeated ranked search opened new TCP connections"
    );
    assert!(
        after.counter(names::CONN_REUSED) > base_reused,
        "warm searches must ride reused pooled streams"
    );
}

/// Satellite (b), uncharged path: a pooled stream that went stale
/// behind the pool's back (peer-side socket teardown) is replaced by
/// one transparent reconnect. No retry is charged, no health failure
/// is recorded — the peer stays Healthy — but the stale reconnect is
/// visible in both the conn metrics and the peer's health entry.
#[test]
fn rpc_stale_pooled_connection_reconnects_uncharged() {
    let a =
        LiveNode::start(0, base_config(710, None, ConnConfig::default()), None).expect("founder");
    let bootstrap = (0u32, a.addr().to_string());
    let b = LiveNode::start(
        1,
        base_config(711, None, ConnConfig::default()),
        Some(bootstrap),
    )
    .expect("joiner");
    assert!(wait_for(
        || a.directory_size() == 2 && b.directory_size() == 2,
        Duration::from_secs(30),
    ));

    // Establish a pooled multiplexed stream to b, then note the charged
    // counters at that point.
    a.fetch_stats(1).expect("first stats fetch");
    let charged_before = a.stats();

    // Break every pooled stream to b at the socket level — the pool
    // still believes they are good.
    let broken = a.debug_break_pooled_conns(1);
    assert!(broken > 0, "expected at least one pooled stream to break");

    // The next RPC must succeed anyway: one transparent reconnect.
    a.fetch_stats(1)
        .expect("stats fetch over a stale pooled stream");

    let snap = a.metrics_snapshot();
    assert!(
        snap.counter(names::CONN_STALE_RECONNECTS) >= 1,
        "transparent reconnect must be visible in conn.stale_reconnects"
    );
    let charged = a.stats();
    assert_eq!(
        charged.rpc_retries, charged_before.rpc_retries,
        "stale pooled stream must not charge an RPC retry"
    );
    assert_eq!(
        charged.rpc_failures, charged_before.rpc_failures,
        "stale pooled stream must not charge an RPC failure"
    );
    let health = a.peer_health(1).expect("peer 1 has health history");
    assert_eq!(
        health.state,
        HealthState::Healthy,
        "stale pooled stream must not make the peer Suspect"
    );
    assert_eq!(
        health.consecutive_failures, 0,
        "stale pooled stream must not count as a contact failure"
    );
    assert!(
        health.stale_reconnects >= 1,
        "the reconnect should be recorded diagnostically on the peer"
    );
}

/// Satellite (b), charged path: a peer that is actually gone still
/// costs retries and walks health toward Suspect/Offline — the stale
/// grace applies to the *stream*, never to the peer.
#[test]
fn rpc_dead_peer_charges_retries_and_health() {
    let retry = RetryPolicy {
        max_attempts: 2,
        base_delay_ms: 10,
        max_delay_ms: 40,
    };
    let mk = |seed| LiveConfig {
        retry,
        ..base_config(seed, None, ConnConfig::default())
    };
    let a = LiveNode::start(0, mk(720), None).expect("founder");
    let bootstrap = (0u32, a.addr().to_string());
    let mut b = LiveNode::start(1, mk(721), Some(bootstrap)).expect("joiner");
    assert!(wait_for(
        || a.directory_size() == 2 && b.directory_size() == 2,
        Duration::from_secs(30),
    ));
    a.fetch_stats(1).expect("first stats fetch");
    let before = a.stats();

    // Kill b for real: its listener closes and its pooled streams die.
    b.shutdown();
    drop(b);

    a.fetch_stats(1).expect_err("dead peer cannot answer");
    let after = a.stats();
    assert!(
        after.rpc_retries > before.rpc_retries,
        "a dead peer must charge retries: {after:?}"
    );
    assert!(
        after.rpc_failures > before.rpc_failures,
        "a dead peer must charge an RPC failure: {after:?}"
    );
    let health = a.peer_health(1).expect("peer 1 has health history");
    assert_ne!(
        health.state,
        HealthState::Healthy,
        "a dead peer must not stay Healthy"
    );
    assert!(health.consecutive_failures >= 1, "failures must be counted");
}

/// Satellite (d): an 8-peer community under mixed gossip + search +
/// publish load with ~20% connection-level faults on every peer's
/// inbound path. For the soak window (default ~6 s locally,
/// `PLANETP_SOAK_SECS=30` in CI's release chaos job) the process must
/// keep threads and file descriptors bounded, keep opening connections
/// only in response to faults (reuse dominates), return corpus-correct
/// results, and release its descriptors at shutdown.
#[test]
fn soak_under_connection_faults_stays_bounded() {
    const N: u32 = 8;
    const SERVER_THREADS: usize = 2;
    const POOL_THREADS: usize = 4;
    let soak_secs: u64 = std::env::var("PLANETP_SOAK_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    let base_threads = thread_count();
    let base_fds = fd_count();

    let conn = ConnConfig {
        server_threads: SERVER_THREADS,
        ..ConnConfig::default()
    };
    let faulty = |seed: u64| {
        Some(Arc::new(FaultInjector::new(
            seed,
            FaultPlan {
                inbound: FaultRules {
                    refuse_connection: 0.15,
                    drop_mid_frame: 0.05,
                    drop_reply: 0.05,
                    stale_corr_id: 0.05,
                    ..FaultRules::default()
                },
                outbound: FaultRules::default(),
            },
        )))
    };
    let mut nodes = community(N, |id| {
        let mut c = base_config(730 + u64::from(id), faulty(930 + u64::from(id)), conn);
        c.io_timeout = Duration::from_secs(1);
        c.fanout.contact_deadline = Some(Duration::from_millis(700));
        c.fanout.pool_threads = POOL_THREADS;
        c
    });

    // Pre-soak pool counters: the soak asserts on deltas, so the cold
    // connects of bootstrap and convergence don't dilute the reuse
    // fraction we are actually claiming.
    let sum = |name: &str, nodes: &[LiveNode]| -> u64 {
        nodes
            .iter()
            .map(|n| n.metrics_snapshot().counter(name))
            .sum()
    };
    let opened_before = sum(names::CONN_OPENED, &nodes);
    let reused_before = sum(names::CONN_REUSED, &nodes);

    // Every live thread this harness is entitled to: listener + gossip
    // loop, the bounded server worker pool, and the search fan-out pool
    // per node, plus slack for threads mid-spawn/mid-exit.
    let thread_bound =
        base_threads.map(|b| b + N as usize * (2 + SERVER_THREADS + POOL_THREADS) + 8);
    // Descriptor ceiling: listener + a bounded pool per peer pair, both
    // directions, with generous slack — the point is that a leak grows
    // past any constant, not the exact constant.
    let fd_bound = base_fds.map(|b| b + N as usize * 64);

    let deadline = Instant::now() + Duration::from_secs(soak_secs);
    let mut successes = 0usize;
    let mut iter = 0usize;
    let mut max_threads = 0usize;
    let mut max_fds = 0usize;
    while Instant::now() < deadline {
        let n = &nodes[iter % nodes.len()];
        if iter % 7 == 3 {
            // Publishes keep gossip busy with real filter updates; a
            // fault may sink one, which is fine.
            let _ = n.publish(&format!(
                "<doc><body>soak corpus extra {} {}</body></doc>",
                n.id(),
                iter
            ));
        }
        if let Ok(r) = n.search_ranked("soak corpus", 64) {
            if !r.hits.is_empty() {
                successes += 1;
            }
            for h in &r.hits {
                assert!(
                    (h.peer as usize) < nodes.len(),
                    "hit from unknown peer {}",
                    h.peer
                );
                assert!(
                    h.xml.contains("soak corpus"),
                    "corrupt hit survived framing faults: {}",
                    h.xml
                );
            }
        }
        if let Some(t) = thread_count() {
            max_threads = max_threads.max(t);
        }
        if let Some(f) = fd_count() {
            max_fds = max_fds.max(f);
        }
        iter += 1;
    }

    assert!(
        successes >= (soak_secs as usize / 2).max(3),
        "only {successes} searches returned hits over {soak_secs}s of soak"
    );
    if let Some(bound) = thread_bound {
        assert!(
            max_threads <= bound,
            "thread count leaked under faults: peak {max_threads}, bound {bound}"
        );
    }
    if let Some(bound) = fd_bound {
        assert!(
            max_fds <= bound,
            "file descriptors leaked under faults: peak {max_fds}, bound {bound}"
        );
    }

    // Reuse must dominate: connects during the soak happen only when a
    // fault killed a stream, while every healthy contact rides the
    // pool.
    let opened_delta = sum(names::CONN_OPENED, &nodes) - opened_before;
    let reused_delta = sum(names::CONN_REUSED, &nodes) - reused_before;
    assert!(reused_delta > 0, "soak never reused a pooled stream");
    let frac = reused_delta as f64 / (opened_delta + reused_delta) as f64;
    assert!(
        frac >= 0.5,
        "connection churn under faults: {opened_delta} opened vs {reused_delta} \
         reused ({frac:.2} reuse fraction)"
    );

    // Shutdown releases everything: descriptors return to (near) the
    // pre-community baseline — the ultimate no-leak check.
    for n in nodes.iter_mut() {
        n.shutdown();
    }
    drop(nodes);
    if let (Some(base), Some(_)) = (base_fds, fd_count()) {
        assert!(
            wait_for(
                || fd_count().is_some_and(|f| f <= base + 16),
                Duration::from_secs(10),
            ),
            "file descriptors not released after shutdown: {} now, {} at start",
            fd_count().unwrap_or(0),
            base
        );
    }
}
