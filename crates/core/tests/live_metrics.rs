//! Metrics-driven live integration tests.
//!
//! These tests interrogate the live TCP runtime exclusively through
//! [`MetricsSnapshot`] diffs — the same unified schema `planetp stats`
//! prints and the `GetStats` RPC serves — rather than reaching into
//! runtime internals. If the observability layer lies, these fail.

use planetp::live::{LiveConfig, LiveNode};
use planetp::{scrape_stats, MetricsSnapshot};
use planetp_gossip::GossipConfig;
use planetp_obs::names;
use std::time::{Duration, Instant};

fn fast_config(seed: u64) -> LiveConfig {
    LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: 40,
            max_interval_ms: 120,
            slowdown_ms: 20,
            ..GossipConfig::default()
        },
        io_timeout: Duration::from_secs(2),
        seed,
        ..LiveConfig::default()
    }
}

/// Spin until `cond` holds or the deadline passes.
fn wait_for(mut cond: impl FnMut() -> bool, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    cond()
}

fn start_community(n: u32) -> Vec<LiveNode> {
    let founder = LiveNode::start(0, fast_config(700), None).expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..n {
        nodes.push(
            LiveNode::start(
                id,
                fast_config(700 + u64::from(id)),
                Some(bootstrap.clone()),
            )
            .expect("node starts"),
        );
    }
    nodes
}

fn converged(nodes: &[LiveNode]) -> bool {
    let d0 = nodes[0].directory_digest();
    nodes.iter().all(|n| n.directory_digest() == d0)
}

/// Persist a snapshot as JSON under `target/metrics/` so CI can upload
/// it as a build artifact.
fn save_artifact(name: &str, snap: &MetricsSnapshot) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/metrics");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(name), snap.to_json());
    }
}

#[test]
fn six_peer_metrics_balance_and_latency() {
    let nodes = start_community(6);
    assert!(
        wait_for(
            || nodes.iter().all(|n| n.directory_size() == 6),
            Duration::from_secs(30),
        ),
        "directories never reached size 6: {:?}",
        nodes.iter().map(|n| n.directory_size()).collect::<Vec<_>>()
    );

    // Baseline after the join storm settles; everything below is
    // asserted on diffs against this point.
    let before: Vec<MetricsSnapshot> = nodes.iter().map(|n| n.metrics_snapshot()).collect();

    nodes[1]
        .publish("<doc><title>Epidemic algorithms</title><body>gossip spreads updates</body></doc>")
        .unwrap();
    nodes[4]
        .publish("<doc><title>Bloom filters</title><body>compact summaries for gossip</body></doc>")
        .unwrap();
    assert!(
        wait_for(|| converged(&nodes), Duration::from_secs(30)),
        "directories never converged after publishes"
    );

    // One ranked search from a peer owning none of the matches: it must
    // cross the wire to at least one remote peer.
    let result = nodes[0].search_ranked("gossip", 10).unwrap();
    assert!(!result.hits.is_empty(), "search found nothing");

    let after: Vec<MetricsSnapshot> = nodes.iter().map(|n| n.metrics_snapshot()).collect();
    let diffs: Vec<MetricsSnapshot> = after.iter().zip(&before).map(|(a, b)| a.diff(b)).collect();

    // (1) Rumor balance. Each publish is one new rumor the other five
    // peers must each learn exactly once (push, partial AE, or full AE):
    // community-wide, learns land at exactly 2 * 5 = 10, and rumors
    // learned via push cannot exceed rumor messages put on the wire.
    let rumors_sent: u64 = diffs
        .iter()
        .map(|d| d.counter("gossip.msgs_out.rumor"))
        .sum();
    let learned_push: u64 = diffs
        .iter()
        .map(|d| d.counter(names::GOSSIP_LEARNED_PUSH))
        .sum();
    let learned_total: u64 = diffs
        .iter()
        .map(|d| {
            d.counter(names::GOSSIP_LEARNED_PUSH)
                + d.counter(names::GOSSIP_LEARNED_PARTIAL_AE)
                + d.counter(names::GOSSIP_LEARNED_AE)
        })
        .sum();
    assert_eq!(learned_total, 10, "diffs: {diffs:#?}");
    assert!(rumors_sent > 0, "publishes spread without rumor messages?");
    assert!(
        learned_push <= rumors_sent,
        "learned {learned_push} rumors from only {rumors_sent} rumor messages"
    );

    // (2) RPC latency histogram populated by the remote search hops.
    let d0 = &diffs[0];
    let rpc = d0
        .histogram(names::RPC_LATENCY_MS)
        .expect("rpc.latency_ms registered");
    assert!(rpc.count >= 1, "ranked search made no remote RPCs: {rpc:?}");
    assert_eq!(
        rpc.counts.iter().sum::<u64>(),
        rpc.count,
        "bucket counts disagree"
    );
    assert_eq!(d0.counter(names::SEARCH_QUERIES), 1);
    assert!(d0.counter(names::SEARCH_PEERS_CONTACTED) >= 1);

    // (3) Bytes on the wire: nonzero everywhere, bounded by sanity (two
    // small publishes cannot cost megabytes per node).
    for (i, d) in diffs.iter().enumerate() {
        let out = d.counter(names::NET_BYTES_OUT);
        let inb = d.counter(names::NET_BYTES_IN);
        assert!(out > 0, "node {i} sent no bytes");
        assert!(inb > 0, "node {i} received no bytes");
        assert!(
            out < 8 << 20,
            "node {i} sent {out} bytes for two tiny publishes"
        );
        assert_eq!(
            d.counter(names::NET_FRAMES_OUT) > 0,
            out > 0,
            "frames/bytes accounting disagree on node {i}"
        );
    }

    save_artifact("live_six_peer_node0.json", &after[0]);
}

#[test]
fn get_stats_rpc_scrapes_remote_nodes() {
    let nodes = start_community(3);
    assert!(
        wait_for(
            || nodes.iter().all(|n| n.directory_size() == 3),
            Duration::from_secs(30),
        ),
        "community never formed"
    );

    // Member-to-member: the GetStats RPC through the node API.
    let remote = nodes[0].fetch_stats(1).expect("fetch_stats");
    assert!(
        remote.counter(names::GOSSIP_ROUNDS) > 0,
        "no gossip rounds: {remote:#?}"
    );
    assert!(remote.counter(names::NET_BYTES_OUT) > 0);
    assert!(remote.gauge("gossip.directory_size") >= 3);

    // Outsider scrape: any process that speaks the framing, no
    // membership required (this is what `planetp stats <addr>` does).
    let scraped = scrape_stats(nodes[2].addr(), Duration::from_secs(5)).expect("scrape_stats");
    assert!(scraped.counter(names::GOSSIP_ROUNDS) > 0);
    // The snapshot covers every layer under one schema.
    for prefix in ["gossip.", "net.", "rpc.", "search."] {
        assert!(
            scraped.metrics.keys().any(|k| k.starts_with(prefix)),
            "snapshot missing {prefix}* metrics: {:?}",
            scraped.metrics.keys().collect::<Vec<_>>()
        );
    }

    // Snapshots survive the JSON round-trip the RPC rides on.
    let reparsed = MetricsSnapshot::from_json(&scraped.to_json()).unwrap();
    assert_eq!(reparsed, scraped);
}

#[test]
fn snapshot_diff_isolates_search_traffic() {
    let nodes = start_community(3);
    assert!(
        wait_for(
            || nodes.iter().all(|n| n.directory_size() == 3),
            Duration::from_secs(30),
        ),
        "community never formed"
    );
    nodes[2].publish("<d>zanzibar archipelago</d>").unwrap();
    assert!(
        wait_for(|| converged(&nodes), Duration::from_secs(30)),
        "publish never converged"
    );

    let before = nodes[0].metrics_snapshot();
    let hits = nodes[0].search_exhaustive("zanzibar").unwrap().hits;
    assert_eq!(hits.len(), 1);
    let diff = nodes[0].metrics_snapshot().diff(&before);

    // The diff shows the one RPC round-trip (plus any concurrent
    // gossip), not the whole session history.
    assert!(diff.counter(names::RPC_FAILURES) == 0, "diff: {diff:#?}");
    let rpc = diff.histogram(names::RPC_LATENCY_MS).expect("registered");
    assert!(rpc.count >= 1, "exhaustive search made no RPC");
    assert!(
        diff.counter(names::NET_BYTES_OUT) < before.counter(names::NET_BYTES_OUT),
        "diff should be small against the session total"
    );
}
