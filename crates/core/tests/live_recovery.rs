//! Crash-restart recovery under fire: a live community whose members
//! keep dying at injected crash points — torn WAL records, half-written
//! snapshots, bit rot in the log tail — and keep coming back from their
//! data directories. Every recovered incarnation must validate clean,
//! re-announce a strictly higher `(status_version, bloom_version)` pair
//! than anything its predecessor gossiped, and re-converge with the
//! community.
//!
//! Determinism: victim selection, crash points, and tail mangling all
//! come from a fixed-seed splitmix64 stream; the crash points themselves
//! cycle so every point in [`CrashPoint::ALL`] is exercised at least
//! twice across the run.

use planetp::faults::{flip_tail_bit, truncate_tail, CrashPoint, FaultInjector, FaultPlan};
use planetp::health::{HealthConfig, RetryPolicy};
use planetp::live::{LiveConfig, LiveNode};
use planetp::DurableConfig;
use planetp_gossip::GossipConfig;
use planetp_obs::{names, MetricsSnapshot};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const COMMUNITY: usize = 6;
const CYCLES: usize = 20;

/// Fresh per-test scratch directory under the system temp dir (the
/// container has no tempfile crate; pid + sequence keeps runs apart).
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "planetp-recovery-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A fast, rejoin-heavy config with durability pointed at `dir`. The
/// tiny compaction threshold forces the snapshot path constantly, so
/// every snapshot-side crash point is reachable from a couple of
/// publishes.
fn durable_config(seed: u64, dir: &Path, faults: Option<Arc<FaultInjector>>) -> LiveConfig {
    LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: 40,
            max_interval_ms: 120,
            slowdown_ms: 20,
            ..GossipConfig::default()
        },
        io_timeout: Duration::from_millis(500),
        seed,
        retry: RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 30,
            max_delay_ms: 200,
        },
        health: HealthConfig {
            base_backoff_ms: 200,
            max_backoff_ms: 2_000,
            ..HealthConfig::default()
        },
        durable: Some(DurableConfig {
            dir: dir.to_path_buf(),
            compact_after_records: 3,
        }),
        faults,
        ..LiveConfig::default()
    }
}

fn wait_for(mut cond: impl FnMut() -> bool, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    cond()
}

/// splitmix64: deterministic pseudo-randomness without a crate.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn save_artifact(name: &str, snap: &MetricsSnapshot) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/metrics");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(name), snap.to_json());
    }
}

fn all_converged(nodes: &[Option<LiveNode>]) -> bool {
    let mut digest = None;
    for n in nodes.iter().flatten() {
        if n.directory_size() != COMMUNITY {
            return false;
        }
        let d = n.directory_digest();
        if *digest.get_or_insert(d) != d {
            return false;
        }
    }
    true
}

/// The tentpole acceptance test: a 6-peer community survives 20 random
/// crash/restart cycles covering every [`CrashPoint`], with the WAL
/// tail additionally mangled between some lifetimes. Every restart
/// recovers a validate()-clean store, announces strictly increasing
/// versions, and the directory re-converges.
#[test]
fn community_survives_crash_restart_cycles() {
    let root = scratch("chaos");
    let mut rng = 0x5EED_CAFE_u64;

    // Found the community: node 0 first, the rest bootstrap off it.
    let mut injectors: Vec<Arc<FaultInjector>> = (0..COMMUNITY)
        .map(|id| Arc::new(FaultInjector::new(100 + id as u64, FaultPlan::default())))
        .collect();
    let data_dir = |id: usize| root.join(format!("node{id}"));
    let founder = LiveNode::start(
        0,
        durable_config(900, &data_dir(0), Some(Arc::clone(&injectors[0]))),
        None,
    )
    .expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes: Vec<Option<LiveNode>> = vec![Some(founder)];
    for id in 1..COMMUNITY {
        nodes.push(Some(
            LiveNode::start(
                id as u32,
                durable_config(
                    900 + id as u64,
                    &data_dir(id),
                    Some(Arc::clone(&injectors[id])),
                ),
                Some(bootstrap.clone()),
            )
            .expect("member"),
        ));
    }
    assert!(
        wait_for(|| all_converged(&nodes), Duration::from_secs(30)),
        "community never formed"
    );
    for (id, n) in nodes.iter().enumerate() {
        n.as_ref()
            .unwrap()
            .publish(&format!("<d>chaos corpus seeded by node{id}</d>"))
            .expect("seed publish");
    }
    assert!(
        wait_for(|| all_converged(&nodes), Duration::from_secs(30)),
        "seed publishes never converged"
    );

    let mut last_versions: Vec<(u64, u32)> = nodes
        .iter()
        .map(|n| n.as_ref().unwrap().announced_versions())
        .collect();
    let mut mangles_applied = 0u32;
    let mut torn_tails_seen = 0u32;

    for cycle in 0..CYCLES {
        let victim = (next_rand(&mut rng) % COMMUNITY as u64) as usize;
        let point = CrashPoint::ALL[cycle % CrashPoint::ALL.len()];
        let node = nodes[victim].take().expect("victim alive");

        // Arm the crash, then publish until the store dies at the armed
        // point (each publish appends twice and usually compacts, so
        // every point is reachable within a few tries).
        injectors[victim].arm_crash(point);
        for filler in 0..12 {
            if node
                .publish(&format!(
                    "<d>cycle {cycle} filler {filler} node{victim}</d>"
                ))
                .is_err()
            {
                break;
            }
        }
        assert!(
            node.store_poisoned(),
            "cycle {cycle}: armed {point:?} never fired on node {victim}"
        );
        drop(node); // the "kill -9"

        // Sometimes the tail of the log rots between lifetimes too.
        let wal = data_dir(victim).join("wal.log");
        let wal_len = std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
        match next_rand(&mut rng) % 3 {
            0 if wal_len > 3 => {
                let n = 1 + next_rand(&mut rng) % 3;
                truncate_tail(&wal, n).expect("truncate tail");
                mangles_applied += 1;
            }
            1 if wal_len > 4 => {
                let off = next_rand(&mut rng) % 4;
                flip_tail_bit(&wal, off).expect("flip tail bit");
                mangles_applied += 1;
            }
            _ => {}
        }

        // Restart from the same data dir, bootstrapping off any member
        // that is still up (the old incarnation's port is gone).
        let live = (0..COMMUNITY)
            .find(|&i| nodes[i].is_some())
            .expect("someone survives");
        let boot = (
            live as u32,
            nodes[live].as_ref().unwrap().addr().to_string(),
        );
        injectors[victim] = Arc::new(FaultInjector::new(
            10_000 + cycle as u64,
            FaultPlan::default(),
        ));
        let reborn = LiveNode::start(
            victim as u32,
            durable_config(
                2_000 + cycle as u64,
                &data_dir(victim),
                Some(Arc::clone(&injectors[victim])),
            ),
            Some(boot),
        )
        .unwrap_or_else(|e| panic!("cycle {cycle}: node {victim} failed to restart: {e}"));

        let info = reborn.recovery_info().expect("durability is on");
        assert!(info.recovered, "cycle {cycle}: nothing recovered from disk");
        if info.truncated_tail {
            torn_tails_seen += 1;
        }
        reborn
            .validate_durable()
            .unwrap_or_else(|e| panic!("cycle {cycle}: invalid recovered state: {e}"));

        // The pair must strictly supersede everything the previous
        // incarnation announced, under the directory's lexicographic
        // order. status_version alone guarantees it: it is bumped at
        // every recovery and lives in the (never-mangled) snapshot, so
        // even a torn tail that loses the last bloom_version record
        // cannot produce a stale-looking announcement.
        let (sv, bv) = reborn.announced_versions();
        let (psv, pbv) = last_versions[victim];
        assert!(
            sv > psv && (sv, bv) > (psv, pbv),
            "cycle {cycle}: node {victim} re-announced ({sv}, {bv}), \
             not strictly above its previous ({psv}, {pbv})"
        );
        last_versions[victim] = (sv, bv);

        assert!(
            reborn.await_ready(Duration::from_secs(20)),
            "cycle {cycle}: node {victim} never finished catch-up"
        );
        nodes[victim] = Some(reborn);
        assert!(
            wait_for(|| all_converged(&nodes), Duration::from_secs(30)),
            "cycle {cycle}: directory never re-converged after node {victim} rejoined"
        );
    }

    // Every mangled tail must have been detected and truncated on the
    // recovery that followed it (crashes alone can add more).
    assert!(
        torn_tails_seen >= mangles_applied.min(1),
        "mangled {mangles_applied} WAL tails but recovery never reported one"
    );

    // The community still answers content searches, including for the
    // corpus published before any crash.
    let asker = nodes[0].as_ref().unwrap();
    let found = wait_for(
        || {
            asker
                .search_ranked("chaos corpus", COMMUNITY * 2)
                .is_ok_and(|r| {
                    let mut owners: Vec<u32> = r.hits.iter().map(|h| h.peer).collect();
                    owners.sort_unstable();
                    owners.dedup();
                    owners.len() == COMMUNITY
                })
        },
        Duration::from_secs(60),
    );
    assert!(found, "seed corpus lost after {CYCLES} crash cycles");

    // The store and recovery metrics the issue promises are visible.
    let snap = asker.metrics_snapshot();
    let json = snap.to_json();
    for name in [
        names::STORE_WAL_RECORDS,
        names::STORE_WAL_REPLAYS,
        names::STORE_TRUNCATED_TAILS,
        names::RECOVERY_CATCHUP_MS,
    ] {
        assert!(json.contains(name), "{name} missing from metrics snapshot");
    }
    assert!(
        snap.counter(names::STORE_WAL_RECORDS) > 0,
        "node 0 never logged"
    );
    save_artifact("live_recovery_node0.json", &snap);

    let _ = std::fs::remove_dir_all(&root);
}

/// Restart mechanics in isolation: a node gets back its identity,
/// documents (under their original ids), and versions-above-history
/// guarantee — and a data dir cannot be claimed by the wrong peer.
#[test]
fn restart_restores_identity_docs_and_versions() {
    let root = scratch("solo");
    let dir = root.join("node7");

    let first = LiveNode::start(7, durable_config(41, &dir, None), None).expect("start");
    let d1 = first
        .publish("<d>durable gossip survives restarts</d>")
        .expect("publish");
    let d2 = first
        .publish("<d>second document same peer</d>")
        .expect("publish");
    let versions = first.announced_versions();
    assert!(first.recovery_info().is_some_and(|i| !i.recovered));
    assert!(
        !first.is_recovering(),
        "fresh founder has nothing to catch up on"
    );
    drop(first);

    // The dir belongs to peer 7; peer 8 must be turned away.
    let wrong = LiveNode::start(8, durable_config(42, &dir, None), None);
    assert!(wrong.is_err(), "foreign data dir accepted");

    let second = LiveNode::start(7, durable_config(43, &dir, None), None).expect("restart");
    let info = second.recovery_info().expect("durability on");
    assert!(info.recovered);
    second.validate_durable().expect("clean state");
    let (sv, bv) = second.announced_versions();
    assert!(
        sv > versions.0 && bv > versions.1,
        "restart versions {:?} not above {versions:?}",
        (sv, bv)
    );
    // A lone founder with no recovered peers is immediately ready.
    assert!(second.await_ready(Duration::from_secs(5)));

    // Both documents answer local search under their original ids.
    let r = second.search_ranked("durable gossip", 10).expect("search");
    let ids: Vec<u64> = r.hits.iter().map(|h| h.doc).collect();
    assert!(ids.contains(&d1), "doc {d1} lost: {ids:?}");
    let r = second.search_ranked("second document", 10).expect("search");
    assert!(r.hits.iter().any(|h| h.doc == d2), "doc {d2} lost");

    // New publishes never reuse a recovered id.
    let d3 = second
        .publish("<d>published after restart</d>")
        .expect("publish");
    assert!(d3 > d2, "doc id {d3} collided with recovered history");

    let snap = second.metrics_snapshot();
    assert!(snap.counter(names::RECOVERY_RESTARTS) == 1);
    assert!(snap.counter(names::RECOVERY_DOCS_RESTORED) == 2);
    let _ = std::fs::remove_dir_all(&root);
}
