//! Delta-gossip equivalence: a community whose Bloom updates travel as
//! delta chains must end up *bit-identical* to one gossiping full
//! filters — same directory digests, same query plans, same ranked
//! results — while actually exercising the delta path (counters > 0).
//!
//! This is the live-runtime acceptance test for the delta wire format:
//! if a diff ever mis-applies, the mirrored filters diverge and either
//! the digests or the search results differ between the twins.

use planetp::live::{LiveConfig, LiveNode};
use planetp_gossip::GossipConfig;
use std::time::{Duration, Instant};

fn fast_config(seed: u64, delta_updates: bool) -> LiveConfig {
    LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: 40,
            max_interval_ms: 120,
            slowdown_ms: 20,
            delta_updates,
            ..GossipConfig::default()
        },
        io_timeout: Duration::from_secs(2),
        seed,
        ..LiveConfig::default()
    }
}

/// Spin until `cond` holds or the deadline passes.
fn wait_for(mut cond: impl FnMut() -> bool, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    cond()
}

fn start_community(n: u32, seed: u64, delta_updates: bool) -> Vec<LiveNode> {
    let founder = LiveNode::start(0, fast_config(seed, delta_updates), None).expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..n {
        nodes.push(
            LiveNode::start(
                id,
                fast_config(seed + u64::from(id), delta_updates),
                Some(bootstrap.clone()),
            )
            .expect("node starts"),
        );
    }
    nodes
}

fn converged(nodes: &[LiveNode]) -> bool {
    let d0 = nodes[0].directory_digest();
    nodes.iter().all(|n| n.directory_digest() == d0)
}

/// Run the same publish schedule against one community and return it
/// converged. Sequential publishes on the same peer build multi-step
/// delta chains; the interleaved convergence waits keep the schedule
/// deterministic across the twins.
fn run_schedule(nodes: &[LiveNode]) {
    assert!(
        wait_for(
            || nodes.iter().all(|n| n.directory_size() == nodes.len()),
            Duration::from_secs(30),
        ),
        "community never formed: {:?}",
        nodes.iter().map(|n| n.directory_size()).collect::<Vec<_>>()
    );
    let docs: [(usize, &str); 4] = [
        (
            1,
            "<doc><title>Epidemic algorithms</title><body>gossip spreads updates</body></doc>",
        ),
        (
            1,
            "<doc><title>Bloom filters</title><body>compact summaries for gossip</body></doc>",
        ),
        (
            2,
            "<doc><title>Content addressing</title><body>ranked search over summaries</body></doc>",
        ),
        (
            3,
            "<doc><title>Cooking</title><body>entirely unrelated content</body></doc>",
        ),
    ];
    for (who, xml) in docs {
        nodes[who].publish(xml).unwrap();
        assert!(
            wait_for(|| converged(nodes), Duration::from_secs(30)),
            "publish by node {who} never converged"
        );
    }
}

/// A ranked result reduced to comparable form (scores via exact bits:
/// "bit-identical" means the ranking math saw identical filters).
fn fingerprint(nodes: &[LiveNode], query: &str) -> Vec<(u32, u64, u64, String)> {
    let result = nodes[0].search_ranked(query, 10).unwrap();
    assert!(
        result.coverage.is_complete(),
        "healthy community must yield full coverage: {:?}",
        result.coverage
    );
    result
        .hits
        .into_iter()
        .map(|h| (h.peer, h.doc, h.score.to_bits(), h.xml))
        .collect()
}

#[test]
fn delta_gossip_matches_full_filter_gossip_bit_for_bit() {
    let delta = start_community(4, 4100, true);
    let full = start_community(4, 4100, false);
    run_schedule(&delta);
    run_schedule(&full);

    // Identical schedule → identical ranked results, hit for hit,
    // score bit for score bit.
    for query in [
        "gossip",
        "summaries",
        "ranked search",
        "nonexistent-term-xyz",
    ] {
        assert_eq!(
            fingerprint(&delta, query),
            fingerprint(&full, query),
            "twin communities disagree on {query:?}"
        );
    }

    // The delta run really took the delta path...
    let d_sent: u64 = delta.iter().map(|n| n.gossip_stats().deltas_sent).sum();
    let d_applied: u64 = delta.iter().map(|n| n.gossip_stats().deltas_applied).sum();
    let d_saved: u64 = delta
        .iter()
        .map(|n| n.gossip_stats().delta_bytes_saved)
        .sum();
    assert!(d_sent > 0, "delta community never sent a delta rumor");
    assert!(d_applied > 0, "delta community never applied a delta chain");
    assert!(d_saved > 0, "delta rumors saved no wire bytes");

    // ...and the full run never did.
    for n in &full {
        let s = n.gossip_stats();
        assert_eq!(
            s.deltas_sent,
            0,
            "node {} sent deltas with deltas off",
            n.id()
        );
        assert_eq!(
            s.deltas_applied,
            0,
            "node {} applied a delta with deltas off",
            n.id()
        );
    }
}
