//! Proxy search over the live runtime — the §7.2 extension where a
//! bandwidth-limited peer delegates the whole fan-out to a
//! well-connected proxy.

use planetp::live::{LiveConfig, LiveNode};
use planetp_gossip::GossipConfig;
use std::time::{Duration, Instant};

fn fast_config(seed: u64) -> LiveConfig {
    LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: 40,
            max_interval_ms: 120,
            slowdown_ms: 20,
            ..GossipConfig::default()
        },
        io_timeout: Duration::from_secs(2),
        seed,
        ..LiveConfig::default()
    }
}

fn wait_for(mut cond: impl FnMut() -> bool, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    cond()
}

#[test]
fn proxy_search_returns_same_hits_as_direct() {
    let founder = LiveNode::start(0, fast_config(900), None).expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..4 {
        nodes.push(
            LiveNode::start(
                id,
                fast_config(900 + u64::from(id)),
                Some(bootstrap.clone()),
            )
            .expect("node"),
        );
    }
    assert!(wait_for(
        || nodes.iter().all(|n| n.directory_size() == 4),
        Duration::from_secs(30),
    ));
    nodes[1]
        .publish("<d>planetary gossip economics</d>")
        .unwrap();
    nodes[2]
        .publish("<d>planetary weather patterns</d>")
        .unwrap();
    assert!(wait_for(
        || {
            let d = nodes[0].directory_digest();
            nodes.iter().all(|n| n.directory_digest() == d)
        },
        Duration::from_secs(30),
    ));

    // Node 3 (imagine it is modem-connected) asks node 0 to search on
    // its behalf.
    let direct = nodes[3].search_ranked("planetary", 10).unwrap().hits;
    let proxied = nodes[3].search_via_proxy(0, "planetary", 10).unwrap();
    assert!(
        proxied.coverage.is_complete(),
        "proxy fan-out should reach everyone here: {:?}",
        proxied.coverage
    );
    let proxied = proxied.hits;
    assert_eq!(direct.len(), proxied.len());
    let key = |h: &planetp::live::LiveHit| (h.peer, h.doc);
    let mut d: Vec<_> = direct.iter().map(key).collect();
    let mut p: Vec<_> = proxied.iter().map(key).collect();
    d.sort_unstable();
    p.sort_unstable();
    assert_eq!(d, p, "proxy must return the same result set");
}

#[test]
fn proxy_search_to_unknown_peer_errors() {
    let solo = LiveNode::start(0, fast_config(950), None).expect("founder");
    let err = solo.search_via_proxy(77, "anything", 5);
    assert!(err.is_err(), "unknown proxy must be an error");
}
