//! Parallel group fan-out under faults, and the directory-versioned
//! query cache, observed end to end through real sockets.
//!
//! The timing test injects *fault-clock* delays (deterministic sleeps in
//! the target's read path) rather than relying on scheduler luck: the
//! sequential walk has a hard injected-latency floor, the parallel walk
//! a hard deadline-derived ceiling, and the assertions compare those two
//! — wall-clock noise can only widen the gap, not flip it.

use planetp::faults::{FaultInjector, FaultPlan, FaultRules};
use planetp::health::RetryPolicy;
use planetp::live::{FanoutConfig, LiveConfig, LiveNode};
use planetp_gossip::GossipConfig;
use planetp_obs::names;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The straggler's injected delay per inbound operation.
const STRAGGLER_DELAY_MS: u64 = 500;
/// Every other peer's injected delay per inbound operation. One search
/// RPC crosses three delayed operations on the target (admit, request
/// read, reply write), so a contact costs ~3× this.
const PEER_DELAY_MS: u64 = 40;
/// Per-contact wall-clock budget for the fan-out.
const CONTACT_DEADLINE_MS: u64 = 200;

fn fanout_config(seed: u64, faults: Option<Arc<FaultInjector>>) -> LiveConfig {
    LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: 40,
            max_interval_ms: 120,
            slowdown_ms: 20,
            ..GossipConfig::default()
        },
        io_timeout: Duration::from_secs(2),
        seed,
        retry: RetryPolicy {
            max_attempts: 2,
            base_delay_ms: 20,
            max_delay_ms: 100,
        },
        fanout: FanoutConfig {
            group_size: 3,
            contact_deadline: Some(Duration::from_millis(CONTACT_DEADLINE_MS)),
            pool_threads: 4,
        },
        faults,
        ..LiveConfig::default()
    }
}

fn wait_for(mut cond: impl FnMut() -> bool, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    cond()
}

/// A delay-only injector: every inbound operation sleeps `ms`.
fn delayed(seed: u64, ms: u64) -> Option<Arc<FaultInjector>> {
    Some(Arc::new(FaultInjector::new(
        seed,
        FaultPlan {
            inbound: FaultRules {
                delay: 1.0,
                delay_ms: ms,
                ..FaultRules::default()
            },
            outbound: FaultRules::default(),
        },
    )))
}

/// Ten peers, every remote contact delayed, one delayed far past the
/// group deadline. The grouped walk must (a) beat the sequential walk,
/// whose injected floor is the *sum* of the slow contacts, (b) finish
/// under 2× the straggler's delay — i.e. the straggler cost its own
/// slot, not the whole query — and (c) return exactly the sequential
/// walk's results with the straggler accounted as failed, not silently
/// dropped.
#[test]
fn straggler_delays_its_slot_not_the_query() {
    const N: u32 = 10;
    const STRAGGLER: u32 = 5;
    let founder = LiveNode::start(0, fanout_config(90, None), None).expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..N {
        let ms = if id == STRAGGLER {
            STRAGGLER_DELAY_MS
        } else {
            PEER_DELAY_MS
        };
        nodes.push(
            LiveNode::start(
                id,
                fanout_config(90 + u64::from(id), delayed(90 + u64::from(id), ms)),
                Some(bootstrap.clone()),
            )
            .expect("node"),
        );
    }
    assert!(
        wait_for(
            || nodes.iter().all(|n| n.directory_size() == N as usize),
            Duration::from_secs(60),
        ),
        "directories never reached size {N}: {:?}",
        nodes.iter().map(|n| n.directory_size()).collect::<Vec<_>>()
    );
    for (i, n) in nodes.iter().enumerate() {
        n.publish(&format!("<doc><body>shared corpus entry {i}</body></doc>"))
            .unwrap();
    }
    assert!(
        wait_for(
            || {
                let d = nodes[0].directory_digest();
                nodes.iter().all(|n| n.directory_digest() == d)
            },
            Duration::from_secs(60),
        ),
        "directories never converged after publishes"
    );

    // Sequential baseline: group size 1 reproduces the old rank-order
    // walk, one contact at a time. Injected floor: 8 normal remotes at
    // ~3×PEER_DELAY_MS each, plus the straggler burning its full
    // deadline.
    let seq_started = Instant::now();
    let seq = nodes[0]
        .search_ranked_grouped("shared corpus", 50, 1)
        .unwrap();
    let seq_elapsed = seq_started.elapsed();

    // Grouped walk on the same node, same query (and now-warm cache).
    let par_started = Instant::now();
    let par = nodes[0]
        .search_ranked_grouped("shared corpus", 50, 3)
        .unwrap();
    let par_elapsed = par_started.elapsed();

    // (a) Parallelism must show: the sequential floor is
    // 8×3×PEER_DELAY_MS + CONTACT_DEADLINE ≈ 1160 ms of *injected*
    // latency, while the grouped walk's hard ceiling is
    // ceil(10/3) groups × CONTACT_DEADLINE = 800 ms.
    assert!(
        par_elapsed < seq_elapsed,
        "grouped fan-out ({par_elapsed:?}) did not beat sequential ({seq_elapsed:?})"
    );
    // (b) The straggler cost at most one group's deadline, not 500 ms
    // per group: 2×STRAGGLER_DELAY_MS = 1 s sits above the 800 ms
    // ceiling with margin for dispatch overhead.
    assert!(
        par_elapsed < Duration::from_millis(2 * STRAGGLER_DELAY_MS),
        "grouped query took {par_elapsed:?}, straggler serialized the groups"
    );

    // (c) Same results: every reachable peer's document, none from the
    // straggler, identical hits and scores in both walks.
    let ids =
        |r: &planetp::LiveSearchResult| r.hits.iter().map(|h| (h.peer, h.doc)).collect::<Vec<_>>();
    assert_eq!(ids(&seq), ids(&par), "grouped walk changed the result set");
    for (a, b) in seq.hits.iter().zip(&par.hits) {
        assert_eq!(a.score, b.score, "grouped walk changed a score");
    }
    assert_eq!(
        ids(&par).len(),
        (N - 1) as usize,
        "expected every peer's doc except the straggler's"
    );
    assert!(
        !par.hits.iter().any(|h| h.peer == STRAGGLER),
        "straggler cannot have answered within the deadline"
    );

    // Coverage owns up to the straggler in both walks: attempted but
    // failed (or, once its health walks to Offline, deliberately
    // skipped) — never silently missing.
    for (label, r) in [("sequential", &seq), ("parallel", &par)] {
        assert_eq!(
            r.coverage.peers_considered, N as usize,
            "{label}: all {N} filters are candidates"
        );
        assert_eq!(
            r.coverage.peers_contacted,
            (N - 1) as usize,
            "{label}: everyone but the straggler answers: {:?}",
            r.coverage
        );
        assert_eq!(
            r.coverage.peers_failed + r.coverage.peers_skipped,
            1,
            "{label}: the straggler must be accounted: {:?}",
            r.coverage
        );
    }

    // The fan-out showed up in the unified metrics: groups dispatched,
    // jobs through the shared pool, per-group latency recorded.
    let snap = nodes[0].metrics_snapshot();
    // Only groups that actually dispatched a remote contact count (a
    // group of purely local / skipped members records no sample). Of
    // the 10 sequential + 4 parallel groups, the local singleton never
    // counts and the straggler's singleton may be skipped once it is
    // backed off, as may the last parallel chunk: ≥ 8 + 3.
    assert!(
        snap.counter(names::SEARCH_GROUPS) >= 11,
        "at least 8 sequential + 3 parallel dispatched groups expected, saw {}",
        snap.counter(names::SEARCH_GROUPS)
    );
    assert!(
        snap.counter(names::POOL_JOBS) >= 16,
        "at least 8 remote contacts per walk go through the pool, saw {}",
        snap.counter(names::POOL_JOBS)
    );
    let fanout = snap
        .histogram(names::SEARCH_FANOUT_MS)
        .expect("fan-out histogram registered");
    assert!(
        fanout.count >= 4,
        "per-group timings recorded: {}",
        fanout.count
    );
}

/// Warm pooled searches must be Nagle-free: every live-runtime stream
/// sets `TCP_NODELAY`, so a small request frame goes out immediately
/// instead of waiting ~40 ms for a delayed-ACK/Nagle handshake on each
/// contact. With four fault-free peers a warm ranked search is a
/// handful of localhost round trips on already-open multiplexed
/// streams — single-digit milliseconds. The 150 ms median bound leaves
/// two orders of magnitude of scheduler slack while still failing hard
/// if Nagle's ~40 ms per contact ever sneaks back into the pooled
/// path.
#[test]
fn pooled_warm_search_latency_is_nagle_free() {
    let founder = LiveNode::start(0, fanout_config(160, None), None).expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..4u32 {
        nodes.push(
            LiveNode::start(
                id,
                fanout_config(160 + u64::from(id), None),
                Some(bootstrap.clone()),
            )
            .expect("node"),
        );
    }
    assert!(wait_for(
        || nodes.iter().all(|n| n.directory_size() == 4),
        Duration::from_secs(30),
    ));
    for (i, n) in nodes.iter().enumerate() {
        n.publish(&format!(
            "<doc><body>nodelay probe subject {i}</body></doc>"
        ))
        .unwrap();
    }
    assert!(wait_for(
        || {
            let d = nodes[0].directory_digest();
            nodes.iter().all(|n| n.directory_digest() == d)
        },
        Duration::from_secs(30),
    ));

    // Warm the pool and the query cache; these rounds may connect.
    for _ in 0..3 {
        let r = nodes[0].search_ranked("nodelay probe", 10).unwrap();
        assert_eq!(
            r.hits.len(),
            4,
            "warm-up search incomplete: {:?}",
            r.coverage
        );
    }

    // Measure: ten warm searches over pooled streams.
    let mut samples: Vec<Duration> = (0..10)
        .map(|_| {
            let started = Instant::now();
            let r = nodes[0].search_ranked("nodelay probe", 10).unwrap();
            assert!(
                r.coverage.is_complete(),
                "warm search lost a peer: {:?}",
                r.coverage
            );
            started.elapsed()
        })
        .collect();
    samples.sort();
    let median = samples[samples.len() / 2];
    assert!(
        median < Duration::from_millis(150),
        "warm pooled search median {median:?} — Nagle-scale latency is back \
         (samples: {samples:?})"
    );
}

/// The query cache across real gossip: a repeated query must not
/// re-probe any filter (misses flat, hits up — the IPF table comes out
/// of the cache), and a republish must invalidate exactly the bumped
/// peer's column (refreshes up, misses still flat) while the new
/// document becomes searchable.
#[test]
fn warm_cache_skips_probes_until_a_republish() {
    let founder = LiveNode::start(0, fanout_config(130, None), None).expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..4u32 {
        nodes.push(
            LiveNode::start(
                id,
                fanout_config(130 + u64::from(id), None),
                Some(bootstrap.clone()),
            )
            .expect("node"),
        );
    }
    assert!(wait_for(
        || nodes.iter().all(|n| n.directory_size() == 4),
        Duration::from_secs(30),
    ));
    for (i, n) in nodes.iter().enumerate() {
        n.publish(&format!("<doc><body>cached subject {i}</body></doc>"))
            .unwrap();
    }
    assert!(wait_for(
        || {
            let d = nodes[0].directory_digest();
            nodes.iter().all(|n| n.directory_digest() == d)
        },
        Duration::from_secs(30),
    ));

    // Cold query: terms are probed against every filter once.
    let cold = nodes[0].search_ranked("cached subject", 10).unwrap();
    assert_eq!(cold.hits.len(), 4, "one doc per peer");
    let s1 = nodes[0].metrics_snapshot();
    let cold_misses = s1.counter(names::SEARCH_CACHE_MISSES);
    assert!(cold_misses >= 1, "cold query must probe");
    assert!(
        s1.counter(names::SEARCH_CACHE_REBUILDS) >= 1,
        "initial population"
    );

    // Warm query: the whole plan (IPF + ranking) comes from the cache —
    // zero new probes, only hits move.
    let warm = nodes[0].search_ranked("cached subject", 10).unwrap();
    let s2 = nodes[0].metrics_snapshot();
    assert_eq!(
        s2.counter(names::SEARCH_CACHE_MISSES),
        cold_misses,
        "warm query re-probed filters (IPF was recomputed)"
    );
    assert!(
        s2.counter(names::SEARCH_CACHE_HITS) > s1.counter(names::SEARCH_CACHE_HITS),
        "warm query did not hit the cache"
    );
    assert_eq!(
        cold.hits
            .iter()
            .map(|h| (h.peer, h.doc))
            .collect::<Vec<_>>(),
        warm.hits
            .iter()
            .map(|h| (h.peer, h.doc))
            .collect::<Vec<_>>(),
        "cached plan changed the results"
    );

    // Peer 2 republishes: its gossiped version advances, so the next
    // query that sees the new directory state re-probes exactly that
    // peer's column — terms stay cached, misses stay flat.
    let fresh_doc = nodes[2]
        .publish("<doc><body>cached subject freshly republished</body></doc>")
        .unwrap();
    assert!(
        wait_for(
            || {
                let r = nodes[0].search_ranked("cached subject", 10).unwrap();
                r.hits.iter().any(|h| h.peer == 2 && h.doc == fresh_doc)
            },
            Duration::from_secs(30),
        ),
        "republished document never became searchable"
    );
    let s3 = nodes[0].metrics_snapshot();
    assert_eq!(
        s3.counter(names::SEARCH_CACHE_MISSES),
        cold_misses,
        "republish must not evict cached terms"
    );
    assert!(
        s3.counter(names::SEARCH_CACHE_PEER_REFRESHES) >= 1,
        "version bump must re-probe the republishing peer's column"
    );
    assert_eq!(
        s3.counter(names::SEARCH_CACHE_REBUILDS),
        s1.counter(names::SEARCH_CACHE_REBUILDS),
        "stable membership must never rebuild"
    );
}
