//! Adversarial tests of the live wire framing: hostile length
//! prefixes, connections dying mid-frame, pathological readers, the
//! multiplexed correlated framing under out-of-order and misrouted
//! replies — and the `GetStats` messages riding that framing intact.

use planetp::wire::{
    read_any_frame_meta_sized, read_any_frame_sized, read_frame, read_frame_sized,
    write_correlated_frame, write_frame, write_meta_frame, Frame, FrameMeta, Priority,
    MAX_FRAME_BYTES,
};
use planetp::{ConnConfig, ConnMetrics, ConnPool, LiveMsg, MetricsSnapshot, Registry};
use planetp_obs::names;
use std::io::{self, Read};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// A reader that doles out at most one byte per call and reports
/// `Interrupted` before every other byte — the worst legal behaviour a
/// socket can exhibit short of failing.
struct TricklingReader<'a> {
    data: &'a [u8],
    pos: usize,
    interrupt_next: bool,
}

impl<'a> TricklingReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            interrupt_next: true,
        }
    }
}

impl Read for TricklingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.interrupt_next && self.pos < self.data.len() {
            self.interrupt_next = false;
            return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
        }
        self.interrupt_next = true;
        if self.pos >= self.data.len() || buf.is_empty() {
            return Ok(0);
        }
        buf[0] = self.data[self.pos];
        self.pos += 1;
        Ok(1)
    }
}

#[test]
fn prefix_beyond_max_is_invalid_data() {
    for claimed in [MAX_FRAME_BYTES as u32 + 1, u32::MAX] {
        let mut buf = Vec::new();
        buf.extend_from_slice(&claimed.to_be_bytes());
        // Follow the lying prefix with some bytes so the failure cannot
        // be blamed on EOF.
        buf.extend_from_slice(&[0u8; 32]);
        let err = read_frame::<Vec<u32>>(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "claimed {claimed}");
    }
}

#[test]
fn huge_prefix_with_tiny_body_fails_at_eof_not_at_alloc() {
    // Claims 63 MiB (inside the limit, so the size check passes), sends
    // three bytes, hangs up. The incremental reader must buffer only
    // the arrived bytes and then report the truncation; pre-allocating
    // the claimed size up front would make this test OOM-prone rather
    // than fast.
    let mut buf = Vec::new();
    buf.extend_from_slice(&((63u32) << 20).to_be_bytes());
    buf.extend_from_slice(b"[1,");
    let err = read_frame::<Vec<u32>>(&mut buf.as_slice()).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
}

#[test]
fn zero_length_frame_is_rejected_not_eof() {
    // A 0-length frame is a complete frame whose body fails to parse:
    // InvalidData, not a clean EOF and not a truncation.
    let buf = 0u32.to_be_bytes();
    let err = read_frame::<Vec<u32>>(&mut buf.as_slice()).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
}

#[test]
fn death_inside_the_length_prefix_is_an_error() {
    // Clean EOF at a frame boundary is None...
    assert!(read_frame::<Vec<u32>>(&mut io::empty()).unwrap().is_none());
    // ...but dying after 1-3 prefix bytes is a truncation.
    for cut in 1..4usize {
        let buf = 8u32.to_be_bytes();
        let err = read_frame::<Vec<u32>>(&mut &buf[..cut]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
    }
}

#[test]
fn trickling_interrupted_reads_still_deliver_the_frame() {
    let mut wire = Vec::new();
    let written = write_frame(&mut wire, &[1u32, 2, 3]).unwrap();
    let mut r = TricklingReader::new(&wire);
    let (value, consumed) = read_frame_sized::<Vec<u32>>(&mut r)
        .unwrap()
        .expect("one frame");
    assert_eq!(value, vec![1, 2, 3]);
    assert_eq!(
        consumed, written,
        "reader and writer disagree on wire bytes"
    );
    assert!(
        read_frame::<Vec<u32>>(&mut r).unwrap().is_none(),
        "clean EOF"
    );
}

#[test]
fn get_stats_messages_round_trip() {
    // Build a snapshot with one of each metric kind, exactly as a node
    // would serve it over the GetStats RPC.
    let registry = Registry::new();
    registry.counter(names::GOSSIP_ROUNDS).add(42);
    registry.gauge("gossip.directory_size").set(6);
    let h = registry.histogram(names::RPC_LATENCY_MS, planetp_obs::LATENCY_MS_BUCKETS);
    h.observe(3);
    h.observe(480);
    let snapshot = registry.snapshot();

    // The runtime frames message *batches*; a stats exchange is a
    // request batch one way and a response batch back.
    let mut wire = Vec::new();
    write_frame(&mut wire, &[LiveMsg::StatsRequest]).unwrap();
    write_frame(
        &mut wire,
        &[LiveMsg::StatsResponse {
            snapshot: snapshot.clone(),
        }],
    )
    .unwrap();

    let mut r = wire.as_slice();
    let request: Vec<LiveMsg> = read_frame(&mut r).unwrap().expect("request batch");
    assert!(
        matches!(request.as_slice(), [LiveMsg::StatsRequest]),
        "request decoded as {request:?}"
    );
    let response: Vec<LiveMsg> = read_frame(&mut r).unwrap().expect("response batch");
    match response.as_slice() {
        [LiveMsg::StatsResponse { snapshot: got }] => {
            assert_eq!(got, &snapshot, "snapshot changed on the wire");
            assert_eq!(got.counter(names::GOSSIP_ROUNDS), 42);
            assert_eq!(got.gauge("gossip.directory_size"), 6);
            let h = got
                .histogram(names::RPC_LATENCY_MS)
                .expect("histogram kept");
            assert_eq!(h.count, 2);
            assert_eq!(h.sum, 483);
        }
        other => panic!("response decoded as {other:?}"),
    }
    assert!(read_frame::<Vec<LiveMsg>>(&mut r).unwrap().is_none());

    // And the snapshot itself survives its own JSON pretty-print cycle
    // (what `planetp stats --json` emits).
    let reparsed = MetricsSnapshot::from_json(&snapshot.to_json()).unwrap();
    assert_eq!(reparsed, snapshot);
}

#[test]
fn trickled_correlated_frames_on_a_reused_stream() {
    // Two back-to-back correlated frames arriving one byte at a time
    // with an Interrupted before every byte — the reader must deliver
    // both, with the right ids, and agree with the writer on sizes.
    let mut wire = Vec::new();
    let w1 = write_correlated_frame(&mut wire, 7, &vec![10u32, 20]).unwrap();
    let w2 = write_correlated_frame(&mut wire, 8, &vec![30u32]).unwrap();
    let mut r = TricklingReader::new(&wire);
    let (frame, consumed) = read_any_frame_sized::<Vec<u32>>(&mut r)
        .unwrap()
        .expect("first frame");
    assert_eq!(frame, Frame::Correlated(7, vec![10, 20]));
    assert_eq!(consumed, w1);
    let (frame, consumed) = read_any_frame_sized::<Vec<u32>>(&mut r)
        .unwrap()
        .expect("second frame");
    assert_eq!(frame, Frame::Correlated(8, vec![30]));
    assert_eq!(consumed, w2);
    assert!(
        read_any_frame_sized::<Vec<u32>>(&mut r).unwrap().is_none(),
        "clean EOF after both frames"
    );
}

#[test]
fn meta_frames_fail_safe_on_every_older_reader() {
    // A deadline+priority frame from a new client must be *loudly*
    // rejected by both generations of older readers — never silently
    // parsed into garbage, never a clean EOF a server would shrug off.
    let mut wire = Vec::new();
    write_meta_frame(
        &mut wire,
        41,
        FrameMeta::with_deadline(Priority::Interactive, 2_500),
        &vec![1u32, 2],
    )
    .unwrap();
    // Generation 0: the legacy reader (no flag masking at all).
    let err = read_frame_sized::<Vec<u32>>(&mut wire.as_slice()).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData, "legacy reader");
    // Generation 1: the correlated reader (masks only bit 31).
    let err = read_any_frame_sized::<Vec<u32>>(&mut wire.as_slice()).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData, "correlated reader");
}

#[test]
fn meta_reader_accepts_every_older_writer() {
    // The new reader on a stream written by all three generations in a
    // row: legacy, correlated, and meta frames interleaved.
    let mut wire = Vec::new();
    let w1 = write_frame(&mut wire, &vec![1u32]).unwrap();
    let w2 = write_correlated_frame(&mut wire, 9, &vec![2u32]).unwrap();
    let w3 = write_meta_frame(
        &mut wire,
        10,
        FrameMeta::new(Priority::Background),
        &vec![3u32],
    )
    .unwrap();
    let mut r = wire.as_slice();
    let (frame, meta, n) = read_any_frame_meta_sized::<Vec<u32>>(&mut r)
        .unwrap()
        .expect("legacy frame");
    assert_eq!(frame, Frame::Legacy(vec![1]));
    assert!(meta.is_none());
    assert_eq!(n, w1);
    let (frame, meta, n) = read_any_frame_meta_sized::<Vec<u32>>(&mut r)
        .unwrap()
        .expect("correlated frame");
    assert_eq!(frame, Frame::Correlated(9, vec![2]));
    assert!(meta.is_none());
    assert_eq!(n, w2);
    let (frame, meta, n) = read_any_frame_meta_sized::<Vec<u32>>(&mut r)
        .unwrap()
        .expect("meta frame");
    assert_eq!(frame, Frame::Correlated(10, vec![3]));
    let meta = meta.expect("meta survives");
    assert_eq!(meta.priority, Priority::Background);
    assert_eq!(meta.deadline_ms, None);
    assert_eq!(n, w3);
    assert!(
        read_any_frame_meta_sized::<Vec<u32>>(&mut r)
            .unwrap()
            .is_none(),
        "clean EOF"
    );
}

#[test]
fn trickled_meta_frames_deliver_deadline_and_class_intact() {
    // One byte at a time with an Interrupted before every byte — the
    // 17-byte extended header must reassemble exactly.
    let mut wire = Vec::new();
    let meta_in = FrameMeta::with_deadline(Priority::Control, 777);
    let written = write_meta_frame(&mut wire, 3, meta_in, &vec![5u32, 6]).unwrap();
    let mut r = TricklingReader::new(&wire);
    let (frame, meta, consumed) = read_any_frame_meta_sized::<Vec<u32>>(&mut r)
        .unwrap()
        .expect("one frame");
    assert_eq!(frame, Frame::Correlated(3, vec![5, 6]));
    assert_eq!(meta, Some(meta_in));
    assert_eq!(consumed, written);
}

/// A pool over a scripted server for the multiplexing tests; returns
/// the pool, shared metric handles, and the target address.
fn mux_pool(listener: &TcpListener) -> (Arc<ConnPool<Vec<u32>>>, ConnMetrics, String) {
    let addr = listener.local_addr().unwrap().to_string();
    let metrics = ConnMetrics::detached();
    let pool = Arc::new(ConnPool::new(
        ConnConfig::default(),
        Duration::from_secs(2),
        None,
        metrics.clone(),
    ));
    (pool, metrics, addr)
}

#[test]
fn mux_delivers_out_of_order_replies_to_the_right_callers() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let (pool, metrics, addr) = mux_pool(&listener);
    let server = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Priming RPC: echo it, so the clients' shared stream exists
        // before the concurrent callers start.
        let Some((Frame::Correlated(id, v), _)) = read_any_frame_sized::<Vec<u32>>(&mut s).unwrap()
        else {
            panic!("expected the priming request")
        };
        write_correlated_frame(&mut s, id, &v).unwrap();
        // Read both concurrent requests, then answer them in REVERSE
        // arrival order: the second caller's reply lands first.
        let mut reqs = Vec::new();
        for _ in 0..2 {
            let Some((Frame::Correlated(id, v), _)) =
                read_any_frame_sized::<Vec<u32>>(&mut s).unwrap()
            else {
                panic!("expected a correlated request")
            };
            reqs.push((id, v));
        }
        for (id, v) in reqs.into_iter().rev() {
            write_correlated_frame(&mut s, id, &v).unwrap();
        }
        // Hold the connection open until the clients are done.
        std::thread::sleep(Duration::from_millis(300));
    });
    let (reply, _) = pool.rpc(&addr, &vec![0], Duration::from_secs(2)).unwrap();
    assert_eq!(reply, vec![0], "priming echo");
    let mut callers = Vec::new();
    for payload in [1u32, 2] {
        let pool = Arc::clone(&pool);
        let addr = addr.clone();
        callers.push(std::thread::spawn(move || {
            let (reply, info) = pool
                .rpc(&addr, &vec![payload], Duration::from_secs(2))
                .unwrap();
            (payload, reply, info.reused)
        }));
    }
    for c in callers {
        let (payload, reply, reused) = c.join().unwrap();
        assert_eq!(
            reply,
            vec![payload],
            "caller {payload} must get its own reply despite reversal"
        );
        assert!(reused, "both callers share the primed stream");
    }
    assert_eq!(metrics.opened.get(), 1, "three RPCs, one TCP connect");
    assert_eq!(
        metrics.unknown_corr.get(),
        0,
        "every reply found its waiter"
    );
    drop(pool);
    server.join().unwrap();
}

#[test]
fn mux_skips_unknown_duplicate_and_legacy_frames() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let (pool, metrics, addr) = mux_pool(&listener);
    let server = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let Some((Frame::Correlated(id, v), _)) = read_any_frame_sized::<Vec<u32>>(&mut s).unwrap()
        else {
            panic!("expected first request")
        };
        // A reply under a bogus id, a legacy (uncorrelated) frame, the
        // real reply, then a duplicate of it.
        write_correlated_frame(&mut s, id ^ 0xdead_beef, &v).unwrap();
        write_frame(&mut s, &vec![99u32]).unwrap();
        write_correlated_frame(&mut s, id, &v).unwrap();
        write_correlated_frame(&mut s, id, &v).unwrap();
        // Second RPC served straight so the client drains the garbage.
        let Some((Frame::Correlated(id, v), _)) = read_any_frame_sized::<Vec<u32>>(&mut s).unwrap()
        else {
            panic!("expected second request")
        };
        write_correlated_frame(&mut s, id, &v).unwrap();
        std::thread::sleep(Duration::from_millis(300));
    });
    let (reply, _) = pool.rpc(&addr, &vec![5], Duration::from_secs(2)).unwrap();
    assert_eq!(reply, vec![5], "real reply survives the garbage around it");
    let (reply, info) = pool.rpc(&addr, &vec![6], Duration::from_secs(2)).unwrap();
    assert_eq!(reply, vec![6]);
    assert!(info.reused, "misrouted frames must not burn the stream");
    // Bogus id + legacy frame (during rpc 1) + duplicate (drained
    // during rpc 2, whose slot was already gone): all counted, none
    // fatal.
    assert_eq!(metrics.unknown_corr.get(), 3);
    assert_eq!(metrics.opened.get(), 1);
    drop(pool);
    server.join().unwrap();
}
