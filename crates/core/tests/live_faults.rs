//! The live runtime under injected faults: connections refused, frames
//! dropped mid-write — the socket-level analog of the paper's churn
//! experiments (§6.3). The community must still converge, searches must
//! still return the surviving peers' hits, and coverage summaries must
//! account for every peer that did not answer.
//!
//! Determinism: every fault decision comes from each node's seeded
//! injector, and all retry/backoff jitter is hash-derived, so this test
//! is required to pass 20 runs in a row before a change ships (run
//! `cargo test --test live_faults` in a loop; CI runs it once per push).

use planetp::faults::{FaultInjector, FaultPlan, FaultRules};
use planetp::health::{HealthConfig, RetryPolicy};
use planetp::live::{LiveConfig, LiveNode};
use planetp_gossip::GossipConfig;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn faulty_config(seed: u64, faults: Option<Arc<FaultInjector>>) -> LiveConfig {
    LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: 40,
            max_interval_ms: 120,
            slowdown_ms: 20,
            ..GossipConfig::default()
        },
        io_timeout: Duration::from_millis(500),
        seed,
        retry: RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 30,
            max_delay_ms: 200,
        },
        health: HealthConfig {
            base_backoff_ms: 200,
            max_backoff_ms: 2_000,
            ..HealthConfig::default()
        },
        fanout: planetp::FanoutConfig::default(),
        faults,
        ..LiveConfig::default()
    }
}

fn wait_for(mut cond: impl FnMut() -> bool, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    cond()
}

/// ~30% of contacts are disrupted (refusals on both sides plus
/// mid-frame drops), yet the directory converges, ranked search still
/// surfaces every surviving peer's documents, and the coverage summary
/// owns up to whatever was missed.
#[test]
fn community_converges_and_searches_under_faults() {
    let plan = FaultPlan {
        outbound: FaultRules {
            refuse_connection: 0.2,
            drop_mid_frame: 0.1,
            ..FaultRules::default()
        },
        inbound: FaultRules {
            refuse_connection: 0.1,
            ..FaultRules::default()
        },
    };
    let injectors: Vec<Arc<FaultInjector>> = (0..5)
        .map(|id| Arc::new(FaultInjector::new(7 + id, plan)))
        .collect();

    let founder = LiveNode::start(0, faulty_config(7, Some(Arc::clone(&injectors[0]))), None)
        .expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..5u32 {
        nodes.push(
            LiveNode::start(
                id,
                faulty_config(7 + u64::from(id), Some(Arc::clone(&injectors[id as usize]))),
                Some(bootstrap.clone()),
            )
            .expect("node"),
        );
    }

    // Membership must converge despite the fault rate: retries absorb
    // transient refusals, and gossip's redundancy covers the rest.
    assert!(
        wait_for(
            || nodes.iter().all(|n| n.directory_size() == 5),
            Duration::from_secs(60),
        ),
        "directories never reached size 5 under faults: {:?}",
        nodes.iter().map(|n| n.directory_size()).collect::<Vec<_>>()
    );

    nodes[1]
        .publish("<doc><title>Resilient gossip</title><body>faulty links tolerated</body></doc>")
        .unwrap();
    nodes[3]
        .publish("<doc><title>Backoff</title><body>faulty peers retried with backoff</body></doc>")
        .unwrap();

    assert!(
        wait_for(
            || {
                let d = nodes[0].directory_digest();
                nodes.iter().all(|n| n.directory_digest() == d)
            },
            Duration::from_secs(60),
        ),
        "directories never converged after publishes under faults"
    );

    // Ranked search keeps draining the rank order past failed contacts,
    // so both publishers' documents must eventually surface. Individual
    // attempts can lose peers to injected refusals that outlast the
    // retry budget, so poll: some attempt within the window finds both.
    let found_both = wait_for(
        || {
            let r = nodes[0].search_ranked("faulty", 10).unwrap();
            let owners: Vec<u32> = r.hits.iter().map(|h| h.peer).collect();
            owners.contains(&1) && owners.contains(&3)
        },
        Duration::from_secs(60),
    );
    assert!(
        found_both,
        "ranked search never surfaced both surviving peers' hits"
    );

    // Coverage bookkeeping must balance exactly, whatever happened.
    let r = nodes[0].search_ranked("faulty", 10).unwrap();
    let c = r.coverage;
    assert_eq!(c.peers_considered, 5, "all five filters are candidates");
    assert!(
        c.peers_attempted() <= c.peers_considered,
        "cannot attempt more peers than exist: {c:?}"
    );
    assert!(
        c.peers_contacted >= 1,
        "at least the local store answers: {c:?}"
    );
    let f = c.coverage_fraction();
    assert!(f > 0.0 && f <= 1.0, "coverage fraction out of range: {f}");

    // The injectors actually did something, or this test proves nothing.
    let injected: u64 = injectors.iter().map(|i| i.stats().total()).sum();
    assert!(injected > 0, "no faults were injected");

    // Failure handling showed up in the node-level counters: with a
    // 20-30% disruption rate something must have been retried.
    let retried: u64 = nodes
        .iter()
        .map(|n| {
            let s = n.stats();
            s.gossip_retries + s.rpc_retries + s.gossip_failures + s.rpc_failures
        })
        .sum();
    assert!(retried > 0, "fault handling never engaged");
}

/// With no fault injector but a genuinely dead peer, searches return
/// the survivors' hits and the coverage summary reports the dead peer
/// instead of pretending the result set is complete.
#[test]
fn coverage_reports_dead_peers() {
    let founder = LiveNode::start(0, faulty_config(40, None), None).expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..4u32 {
        nodes.push(
            LiveNode::start(
                id,
                faulty_config(40 + u64::from(id), None),
                Some(bootstrap.clone()),
            )
            .expect("node"),
        );
    }
    assert!(wait_for(
        || nodes.iter().all(|n| n.directory_size() == 4),
        Duration::from_secs(30),
    ));
    for n in &nodes[1..] {
        n.publish("<d>shared subject matter</d>").unwrap();
    }
    assert!(wait_for(
        || {
            let d = nodes[0].directory_digest();
            nodes.iter().all(|n| n.directory_digest() == d)
        },
        Duration::from_secs(30),
    ));

    // Kill node 3; its filter still matches, so search must attempt it,
    // fail after bounded retries, and say so.
    let dead = nodes.pop().expect("node 3");
    drop(dead);

    let r = nodes[0].search_ranked("shared subject", 10).unwrap();
    let owners: Vec<u32> = r.hits.iter().map(|h| h.peer).collect();
    assert!(
        owners.contains(&1) && owners.contains(&2),
        "survivors missing: {owners:?}"
    );
    assert!(!owners.contains(&3), "dead peer's docs returned");
    assert!(
        r.coverage.peers_failed + r.coverage.peers_skipped >= 1,
        "dead peer must show up in coverage: {:?}",
        r.coverage
    );
    assert!(r.coverage.coverage_fraction() < 1.0);

    // Repeated failures walk the peer to Offline and into the gossip
    // directory's offline marking. The exhausted contact may come from
    // a search RPC or from the background gossip loop, whichever got to
    // the dead peer first.
    let _ = nodes[0].search_ranked("shared subject", 10).unwrap();
    let _ = nodes[0].search_ranked("shared subject", 10).unwrap();
    let s = nodes[0].stats();
    assert!(
        s.rpc_failures + s.gossip_failures + s.contacts_skipped >= 1,
        "retry-exhausted contact not counted: {s:?}"
    );
    assert!(
        nodes[0]
            .peer_health(3)
            .is_some_and(|e| e.consecutive_failures >= 1),
        "health table never recorded the dead peer"
    );
}
