//! Persistent queries (§5.1) exercised through the crate's public API:
//! the registry driven by Bloom filters produced by real publishes
//! (stemming and all), and the full community path where a publish
//! fans upcalls out to every member — including the brokered-snippet
//! variant behind `PublishOptions::broker_hot_terms`.

use planetp::persistent::{Notification, PersistentQueryRegistry};
use planetp::{parse_query, Community, LocalDataStore, PublishOptions};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

type Log = Arc<Mutex<Vec<Notification>>>;

fn recorder(log: &Log) -> impl Fn(&Notification) + Send + Sync + 'static {
    let log = Arc::clone(log);
    move |n| log.lock().unwrap().push(n.clone())
}

/// The registry against a real data store: registered queries go
/// through the analyzer, so "gossiping protocols" must fire when a
/// document publishes "gossip protocol" — the stems, not the surface
/// words, are what the Bloom filter holds.
#[test]
fn bloom_matching_goes_through_the_analyzer() {
    let mut store = LocalDataStore::new();
    let mut reg = PersistentQueryRegistry::new();
    let log: Log = Log::default();
    let q = parse_query("gossiping protocols", store.analyzer());
    reg.register(q.terms, recorder(&log));

    store
        .publish("<d>a gossip protocol for directories</d>")
        .unwrap();
    reg.on_bloom_update("alice", store.bloom());
    assert_eq!(
        log.lock().unwrap().as_slice(),
        &[Notification::PeerMayMatch {
            peer: "alice".into()
        }],
        "stemmed query terms must hit the published stems"
    );

    // A filter that covers only part of the conjunction stays silent.
    let mut other = LocalDataStore::new();
    other
        .publish("<d>gossip without the other term</d>")
        .unwrap();
    reg.on_bloom_update("bob", other.bloom());
    assert_eq!(log.lock().unwrap().len(), 1, "partial match fired");
}

/// Register/unregister lifecycle: ids are distinct, removal is exact,
/// double-removal reports false, and a removed query never fires again
/// while its sibling keeps working.
#[test]
fn lifecycle_is_per_query_not_per_registry() {
    let mut store = LocalDataStore::new();
    let mut reg = PersistentQueryRegistry::new();
    let a_hits = Arc::new(AtomicUsize::new(0));
    let b_hits = Arc::new(AtomicUsize::new(0));
    let (a, b) = (Arc::clone(&a_hits), Arc::clone(&b_hits));
    let qa = reg.register(parse_query("epidemic", store.analyzer()).terms, move |_| {
        a.fetch_add(1, Ordering::SeqCst);
    });
    let qb = reg.register(parse_query("epidemic", store.analyzer()).terms, move |_| {
        b.fetch_add(1, Ordering::SeqCst);
    });
    assert_ne!(qa, qb);
    assert_eq!(reg.len(), 2);

    store.publish("<d>epidemic spread of updates</d>").unwrap();
    reg.on_bloom_update("p", store.bloom());
    assert_eq!(
        (a_hits.load(Ordering::SeqCst), b_hits.load(Ordering::SeqCst)),
        (1, 1)
    );

    assert!(reg.unregister(qa));
    assert!(!reg.unregister(qa), "double unregister must report false");
    assert!(!reg.is_empty());
    reg.on_bloom_update("p", store.bloom());
    assert_eq!(a_hits.load(Ordering::SeqCst), 1, "removed query fired");
    assert_eq!(b_hits.load(Ordering::SeqCst), 2, "surviving query silenced");
}

/// The community fan-out: one peer's publish notifies every member
/// whose registered query the new filter satisfies, carrying the
/// publisher's name.
#[test]
fn community_publish_notifies_all_matching_members() {
    let mut c = Community::new();
    let alice = c.add_peer("alice");
    let bob = c.add_peer("bob");
    let carol = c.add_peer("carol");

    let bob_log: Log = Log::default();
    let carol_log: Log = Log::default();
    c.register_persistent_query(bob, "bloom filters", recorder(&bob_log));
    c.register_persistent_query(carol, "unrelated topic", recorder(&carol_log));

    c.publish(
        alice,
        "<d>compact bloom filter summaries</d>",
        PublishOptions::default(),
    )
    .unwrap();

    assert_eq!(
        bob_log.lock().unwrap().as_slice(),
        &[Notification::PeerMayMatch {
            peer: "alice".into()
        }]
    );
    assert!(
        carol_log.lock().unwrap().is_empty(),
        "carol's query shares no terms with the publish"
    );
}

/// Brokered snippets (§6): hot-term publication fires `Snippet`
/// upcalls, but only for queries whose terms all sit inside the
/// snippet's key set — a query the document merely *contains* still
/// only gets the Bloom-side notification.
#[test]
fn snippet_upcalls_require_hot_key_overlap() {
    let mut c = Community::new();
    let alice = c.add_peer("alice");
    let bob = c.add_peer("bob");

    let hot_log: Log = Log::default();
    let cold_log: Log = Log::default();
    // "alert" dominates the document, so it lands in the hot keys;
    // "siren" appears once and should not.
    c.register_persistent_query(bob, "alert", recorder(&hot_log));
    c.register_persistent_query(bob, "siren", recorder(&cold_log));

    let xml = "<d>alert alert alert alert siren</d>";
    c.publish(
        alice,
        xml,
        PublishOptions {
            broker_hot_terms: Some(0.25),
        },
    )
    .unwrap();

    let hot = hot_log.lock().unwrap();
    assert!(
        hot.contains(&Notification::Snippet {
            publisher: "alice".into(),
            xml: xml.into(),
        }),
        "hot-key query never saw the snippet: {hot:?}"
    );
    assert!(
        hot.contains(&Notification::PeerMayMatch {
            peer: "alice".into()
        }),
        "snippet delivery must not replace the filter-side upcall"
    );

    let cold = cold_log.lock().unwrap();
    assert!(
        !cold
            .iter()
            .any(|n| matches!(n, Notification::Snippet { .. })),
        "cold-key query got a snippet: {cold:?}"
    );
    assert!(
        cold.contains(&Notification::PeerMayMatch {
            peer: "alice".into()
        }),
        "the document does contain 'siren'; the filter upcall is due"
    );
}
