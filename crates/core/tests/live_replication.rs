//! Autonomous replication end-to-end (DESIGN.md §15): a live
//! community with replication enabled pushes copies of published
//! documents to well-available peers, and when a document's home peer
//! crashes, ranked and exhaustive search keep answering from the
//! replicas — deduplicated by content hash, with the recovery visible
//! in `SearchCoverage::recovered_via_replicas`.

use planetp::live::{LiveConfig, LiveHit, LiveNode};
use planetp::{content_hash, Community, DurableConfig, PublishOptions, ReplicaConfig};
use planetp_gossip::GossipConfig;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn replica_config(seed: u64) -> LiveConfig {
    LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: 40,
            max_interval_ms: 120,
            slowdown_ms: 20,
            ..GossipConfig::default()
        },
        io_timeout: Duration::from_millis(500),
        seed,
        replica: ReplicaConfig {
            interval_ms: 60,
            decay_interval_ms: 2_000,
            ..ReplicaConfig::enabled()
        },
        ..LiveConfig::default()
    }
}

fn wait_for(mut cond: impl FnMut() -> bool, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    cond()
}

fn hosted_replicas(nodes: &[LiveNode]) -> usize {
    nodes
        .iter()
        .filter_map(|n| n.replica_hosted())
        .map(|(c, _)| c)
        .sum()
}

fn assert_unique_hashes(hits: &[LiveHit]) {
    let mut seen = HashSet::new();
    for h in hits {
        assert!(
            seen.insert(h.hash),
            "duplicate content hash {:#x} in results: {hits:?}",
            h.hash
        );
    }
}

/// Fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "planetp-replication-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The acceptance scenario: a 6-peer community replicates a crashing
/// member's documents, and both search modes keep finding them —
/// once each — after the home is gone.
#[test]
fn six_peer_community_recovers_offline_content_via_replicas() {
    let founder = LiveNode::start(0, replica_config(900), None).expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..6 {
        nodes.push(
            LiveNode::start(
                id,
                replica_config(900 + u64::from(id)),
                Some(bootstrap.clone()),
            )
            .expect("node"),
        );
    }
    assert!(wait_for(
        || nodes.iter().all(|n| n.directory_size() == 6),
        Duration::from_secs(30),
    ));

    let doomed_xml = "<d>epidemic dissemination survives the home crash</d>";
    let doomed_hash = content_hash(doomed_xml);
    nodes[5].publish(doomed_xml).unwrap();
    nodes[5]
        .publish("<d>directory gossip carries replica ads</d>")
        .unwrap();
    nodes[1]
        .publish("<d>stable content on a surviving peer</d>")
        .unwrap();

    // Replication runs off the gossip loop: node 5's two documents
    // must land on at least one surviving host each.
    assert!(
        wait_for(
            || hosted_replicas(&nodes[..5]) >= 2,
            Duration::from_secs(30),
        ),
        "documents were never replicated off their home"
    );

    // With the home still alive, home copy and replica both answer:
    // dedup must collapse them to one hit per content hash.
    assert!(wait_for(
        || {
            let r = nodes[0]
                .search_ranked("epidemic dissemination", 10)
                .unwrap();
            assert_unique_hashes(&r.hits);
            r.hits.iter().any(|h| h.hash == doomed_hash)
        },
        Duration::from_secs(30),
    ));

    // Crash the home (drop closes its listener and stops its threads).
    let dead = nodes.pop().expect("node 5");
    drop(dead);

    // Ranked search still answers from a replica, says so in coverage,
    // and never returns the same content twice.
    assert!(
        wait_for(
            || {
                let r = nodes[0]
                    .search_ranked("epidemic dissemination", 10)
                    .unwrap();
                assert_unique_hashes(&r.hits);
                let recovered = r
                    .hits
                    .iter()
                    .any(|h| h.hash == doomed_hash && matches!(h.replica_of, Some((5, _))));
                recovered && r.coverage.recovered_via_replicas >= 1
            },
            Duration::from_secs(30),
        ),
        "ranked search lost the crashed peer's document"
    );

    // Exhaustive search recovers it too.
    assert!(
        wait_for(
            || {
                let r = nodes[2].search_exhaustive("dissemination").unwrap();
                assert_unique_hashes(&r.hits);
                r.hits.iter().any(|h| h.hash == doomed_hash)
                    && r.coverage.recovered_via_replicas >= 1
            },
            Duration::from_secs(30),
        ),
        "exhaustive search lost the crashed peer's document"
    );

    // Untouched content is unaffected.
    let r = nodes[3].search_ranked("stable content", 5).unwrap();
    assert!(r.hits.iter().any(|h| h.peer == 1));
}

/// Broker abrupt-leave interplay: a brokered snippet dies with its
/// brokers (documented §6 behavior — snippets are soft state, never
/// re-replicated after an abrupt leave), while the replication path
/// keeps the *document* findable after the same kind of exit.
#[test]
fn broker_snippet_lost_but_replica_recovers_document() {
    let xml = "<d>hotspot hotspot hotspot weather report</d>";

    // In-process community: publish with hot-term brokerage, then take
    // every broker down abruptly. The snippet is gone and the home's
    // copy is only a "possibly on offline peer" hint.
    let mut c = Community::new();
    let alice = c.add_peer("alice");
    let bob = c.add_peer("bob");
    c.publish(
        alice,
        xml,
        PublishOptions {
            broker_hot_terms: Some(0.5),
        },
    )
    .unwrap();
    let before = c.search_exhaustive(bob, "hotspot").unwrap();
    assert!(
        !before.snippets.is_empty() || !before.results.is_empty(),
        "document must be findable while brokers are up"
    );
    c.set_offline(alice);
    c.set_offline(bob);
    let after = c.search_exhaustive(bob, "hotspot").unwrap();
    assert!(
        after.snippets.is_empty(),
        "snippets must die with their brokers"
    );
    assert!(after.results.is_empty());
    assert_eq!(after.possibly_on_offline_peers, vec!["alice".to_string()]);

    // Live community with replication: the same document survives its
    // home's abrupt exit as a real, searchable copy.
    let founder = LiveNode::start(0, replica_config(910), None).expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..3 {
        nodes.push(
            LiveNode::start(
                id,
                replica_config(910 + u64::from(id)),
                Some(bootstrap.clone()),
            )
            .expect("node"),
        );
    }
    assert!(wait_for(
        || nodes.iter().all(|n| n.directory_size() == 3),
        Duration::from_secs(30),
    ));
    nodes[2].publish(xml).unwrap();
    assert!(
        wait_for(
            || hosted_replicas(&nodes[..2]) >= 1,
            Duration::from_secs(30)
        ),
        "document was never replicated"
    );
    let dead = nodes.pop().expect("node 2");
    drop(dead);
    assert!(
        wait_for(
            || {
                let r = nodes[0].search_exhaustive("hotspot weather").unwrap();
                r.hits
                    .iter()
                    .any(|h| h.hash == content_hash(xml) && matches!(h.replica_of, Some((2, _))))
                    && r.coverage.recovered_via_replicas >= 1
            },
            Duration::from_secs(30),
        ),
        "replica did not recover the document the snippet path lost"
    );
}

/// Hosted replicas are durable state: a host that crashes and restarts
/// from its data directory still serves the copies it accepted, so a
/// later home crash is survivable across host restarts.
#[test]
fn hosted_replicas_survive_host_restart() {
    let dirs: Vec<PathBuf> = (0..3).map(|i| scratch(&format!("host{i}"))).collect();
    let config = |id: u32| LiveConfig {
        durable: Some(DurableConfig::at(dirs[id as usize].to_str().unwrap())),
        ..replica_config(920 + u64::from(id))
    };
    let founder = LiveNode::start(0, config(0), None).expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..3u32 {
        nodes.push(LiveNode::start(id, config(id), Some(bootstrap.clone())).expect("node"));
    }
    assert!(wait_for(
        || nodes.iter().all(|n| n.directory_size() == 3),
        Duration::from_secs(30),
    ));

    let xml = "<d>replicas outlive their host process</d>";
    nodes[1].publish(xml).unwrap();
    assert!(
        wait_for(
            || nodes[0].replica_hosted().is_some_and(|(c, _)| c >= 1)
                || nodes[2].replica_hosted().is_some_and(|(c, _)| c >= 1),
            Duration::from_secs(30),
        ),
        "document was never replicated"
    );
    let host_id = if nodes[0].replica_hosted().is_some_and(|(c, _)| c >= 1) {
        0usize
    } else {
        2
    };

    // Crash the host and bring it back from its data directory.
    let (before_count, before_bytes) = nodes[host_id].replica_hosted().expect("replication on");
    let old = nodes.remove(host_id);
    drop(old);
    let survivor = &nodes[0];
    let bootstrap = (survivor.id(), survivor.addr().to_string());
    let restarted =
        LiveNode::start(host_id as u32, config(host_id as u32), Some(bootstrap)).expect("restart");
    assert!(restarted.await_ready(Duration::from_secs(30)));
    assert_eq!(
        restarted.replica_hosted(),
        Some((before_count, before_bytes)),
        "hosted replicas must be restored from the WAL"
    );

    // The restored copy is live: kill the home, search from the third
    // node, find the document on the restarted host.
    let home_idx = nodes
        .iter()
        .position(|n| n.id() == 1)
        .expect("home still running");
    let home = nodes.remove(home_idx);
    drop(home);
    let searcher = &nodes[0];
    assert!(
        wait_for(
            || {
                let r = searcher.search_ranked("outlive host process", 5).unwrap();
                r.hits
                    .iter()
                    .any(|h| h.hash == content_hash(xml) && matches!(h.replica_of, Some((1, _))))
            },
            Duration::from_secs(30),
        ),
        "restored replica never answered for its dead home"
    );
    drop(restarted);
    for d in dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}
