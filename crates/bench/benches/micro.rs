//! Criterion micro-benchmarks of PlanetP's basic operations (Table 1):
//! Bloom filter insert/search/compress/decompress and inverted-index
//! insert/search, at the key counts the paper reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use planetp_bloom::{BloomFilter, CompressedBloom};
use planetp_index::{stem, tokenize, InvertedIndex};
use std::hint::black_box;

fn keys(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("term-{i}")).collect()
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("bloom");
    g.sample_size(20);
    for n in [1_000usize, 10_000, 50_000] {
        let ks = keys(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("insert", n), &ks, |b, ks| {
            b.iter(|| {
                let mut f = BloomFilter::with_paper_defaults();
                for k in ks {
                    f.insert(k);
                }
                black_box(f.count_ones())
            });
        });
        let mut filter = BloomFilter::with_paper_defaults();
        for k in &ks {
            filter.insert(k);
        }
        g.bench_with_input(BenchmarkId::new("search", n), &ks, |b, ks| {
            b.iter(|| {
                let mut hits = 0usize;
                for k in ks {
                    hits += usize::from(filter.contains(k));
                }
                black_box(hits)
            });
        });
        g.bench_with_input(BenchmarkId::new("compress", n), &filter, |b, f| {
            b.iter(|| black_box(CompressedBloom::compress(f)));
        });
        let compressed = CompressedBloom::compress(&filter);
        g.bench_with_input(BenchmarkId::new("decompress", n), &compressed, |b, cb| {
            b.iter(|| black_box(cb.decompress()));
        });
    }
    g.finish();
}

fn bench_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("inverted_index");
    g.sample_size(20);
    for n in [1_000usize, 10_000, 50_000] {
        let ks = keys(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("insert", n), &ks, |b, ks| {
            b.iter(|| {
                let mut idx = InvertedIndex::new();
                for (d, chunk) in ks.chunks(100).enumerate() {
                    idx.add_document(d as u64, chunk);
                }
                black_box(idx.num_terms())
            });
        });
        let mut idx = InvertedIndex::new();
        for (d, chunk) in ks.chunks(100).enumerate() {
            idx.add_document(d as u64, chunk);
        }
        g.bench_with_input(BenchmarkId::new("search", n), &ks, |b, ks| {
            b.iter(|| {
                let mut total = 0usize;
                for k in ks {
                    total += idx.postings(k).len();
                }
                black_box(total)
            });
        });
    }
    g.finish();
}

fn bench_text(c: &mut Criterion) {
    let mut g = c.benchmark_group("text_analysis");
    let text = "The epidemic gossiping protocols reliably replicate the \
                communal directory across thousands of cooperating peers "
        .repeat(100);
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("tokenize", |b| {
        b.iter(|| black_box(tokenize(&text)).len());
    });
    let words: Vec<String> = tokenize(&text);
    g.bench_function("porter_stem", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for w in &words {
                total += stem(w).len();
            }
            black_box(total)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_bloom, bench_index, bench_text);
criterion_main!(benches);
